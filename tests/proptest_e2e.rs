//! End-to-end property tests: random small scenarios through the whole
//! pipeline, checking the invariants the paper's conclusions rest on.

use cdn_core::{Scenario, ScenarioConfig, Strategy};
use proptest::prelude::*;
// `cdn_core::Strategy` shadows the prelude's trait of the same name; bring
// the trait's methods back into scope anonymously.
use proptest::strategy::Strategy as _;

/// Random small-but-valid scenario configurations.
fn arb_config() -> impl proptest::strategy::Strategy<Value = ScenarioConfig> {
    (
        2usize..5,    // servers
        4usize..10,   // sites
        20usize..80,  // objects per site
        0.05f64..0.5, // capacity fraction
        0.0f64..0.3,  // lambda
        any::<u64>(), // seed
        0.5f64..1.3,  // theta
    )
        .prop_map(|(n, m, l, capacity, lambda, seed, theta)| {
            let mut cfg = ScenarioConfig::small();
            cfg.hosts.n_servers = n;
            cfg.hosts.m_primaries = m;
            cfg.workload.m_sites = m;
            cfg.workload.objects_per_site = l;
            cfg.workload.base_requests = 1500;
            cfg.workload.theta = theta;
            cfg.capacity_fraction = capacity;
            cfg.lambda = lambda;
            cfg.seed = seed;
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn hybrid_prediction_dominates_pure_strategies(cfg in arb_config()) {
        let s = Scenario::generate(&cfg);
        let hybrid = s.plan(Strategy::Hybrid).predicted_cost;
        let caching = s.plan(Strategy::Caching).predicted_cost;
        let replication = s.plan(Strategy::Replication).predicted_cost;
        // Guaranteed by construction: the hybrid starts from the pure-
        // caching state and only accepts strictly improving replicas.
        prop_assert!(hybrid <= caching + 1e-6,
            "hybrid {hybrid} > caching {caching}");
        // NOT guaranteed: the hybrid greedy is myopic. If every single
        // replica has negative marginal benefit against the predicted
        // cache value, it stops — even on instances where filling the
        // disks with replicas (ignoring the cache entirely) would have
        // been better. Property testing found such instances a few
        // percent apart (see EXPERIMENTS.md "greedy myopia"), so we only
        // assert the hybrid is never *catastrophically* behind.
        prop_assert!(hybrid <= replication * 1.25 + 1e-6,
            "hybrid {hybrid} far above replication {replication}");
    }

    #[test]
    fn simulation_identities_hold_for_random_scenarios(cfg in arb_config()) {
        let s = Scenario::generate(&cfg);
        for strategy in [Strategy::Caching, Strategy::Hybrid] {
            let plan = s.plan(strategy);
            plan.placement.validate(&s.problem);
            let report = s.simulate(&plan);
            prop_assert_eq!(report.total_requests, s.problem.grand_total());
            prop_assert_eq!(
                report.local_requests + report.peer_fetches + report.origin_fetches,
                report.measured_requests
            );
            prop_assert_eq!(report.histogram.count(), report.measured_requests);
            prop_assert!(report.mean_latency_ms >= s.config.sim.hop_delay_ms - 1e-9);
            prop_assert!(report.mean_cost_hops >= 0.0);
        }
    }

    #[test]
    fn predicted_cost_tracks_simulated_cost_loosely(cfg in arb_config()) {
        // The Figure-6 property at arbitrary small scale: the planner's
        // prediction and the simulation should be the same order of
        // magnitude (tight bounds are asserted at fixed scale elsewhere;
        // random tiny scenarios are noisy).
        let s = Scenario::generate(&cfg);
        let plan = s.plan(Strategy::Hybrid);
        let predicted = plan.predicted_mean_hops(&s.problem);
        let actual = s.simulate(&plan).mean_cost_hops;
        if actual > 0.5 {
            let ratio = predicted / actual;
            prop_assert!((0.5..=2.0).contains(&ratio),
                "predicted {predicted} vs actual {actual}");
        }
    }

    #[test]
    fn capacity_is_never_exceeded_by_any_strategy(cfg in arb_config()) {
        let s = Scenario::generate(&cfg);
        for strategy in [
            Strategy::Replication,
            Strategy::Hybrid,
            Strategy::AdHoc { cache_fraction: 0.4 },
            Strategy::GreedyLocal,
            Strategy::Popularity,
        ] {
            let plan = s.plan(strategy);
            // validate() checks byte accounting including capacity.
            plan.placement.validate(&s.problem);
        }
    }
}
