//! Integration tests for the extension features: origin offload, the
//! read+update objective, popularity drift, size-aware caching and the
//! placement lower bound — all exercised end-to-end through the public API.

use cdn_core::placement::{optimality_gap, replication_cost_lower_bound, replication_only_cost};
use cdn_core::sim::simulate_system_streams;
use cdn_core::workload::{DriftConfig, Drifted};
use cdn_core::{cache, Scenario, ScenarioConfig, Strategy};

fn scenario() -> Scenario {
    Scenario::generate(&ScenarioConfig::small())
}

#[test]
fn origin_offload_identities() {
    let s = scenario();
    for strategy in [Strategy::Replication, Strategy::Caching, Strategy::Hybrid] {
        let report = s.simulate(&s.plan(strategy));
        // Every measured request is local, from a peer, or from the origin.
        assert_eq!(
            report.local_requests + report.peer_fetches + report.origin_fetches,
            report.measured_requests,
            "{}",
            strategy.name()
        );
        assert!(report.origin_offload() >= 0.0 && report.origin_offload() <= 1.0);
    }
    // Caching never has replicas, so nothing can be fetched from a peer.
    let caching = s.simulate(&s.plan(Strategy::Caching));
    assert_eq!(caching.peer_fetches, 0);
}

#[test]
fn any_strategy_offloads_more_than_no_cdn() {
    let s = scenario();
    // "No CDN": primaries only and zero cache — everything goes to origin.
    let plan = s.plan(Strategy::Caching);
    let zero: &(dyn Fn(u64) -> Box<dyn cache::Cache> + Sync) =
        &|_| Box::new(cache::LruCache::new(0));
    let bare = s.simulate_with_cache(&plan.placement, zero);
    assert_eq!(bare.origin_offload(), 0.0);
    let hybrid = s.simulate(&s.plan(Strategy::Hybrid));
    assert!(hybrid.origin_offload() > 0.3);
}

#[test]
fn update_rates_flow_through_the_scenario() {
    let s = scenario();
    let baseline = s.plan(Strategy::Hybrid);
    let mut problem = s.problem.clone();
    let heavy = s.problem.grand_total() / s.problem.m_sites() as u64;
    problem.set_update_rates(vec![heavy; problem.m_sites()]);
    let constrained = Strategy::Hybrid.run(&problem);
    assert!(
        constrained.placement.replica_count() <= baseline.placement.replica_count(),
        "updates must not increase replication"
    );
    constrained.placement.validate(&problem);
}

#[test]
fn gdsf_works_inside_the_full_simulator() {
    let s = scenario();
    let plan = s.plan(Strategy::Hybrid);
    let factory = |bytes: u64| cache::by_name("gdsf", bytes).expect("gdsf registered");
    let report = s.simulate_with_cache(&plan.placement, &factory);
    assert!(report.cache_hits > 0);
    // Size-aware caching should not be catastrophically worse than LRU.
    let lru = s.simulate(&plan);
    assert!(report.mean_latency_ms < lru.mean_latency_ms * 1.25);
}

#[test]
fn drift_hurts_caching_but_not_replication_end_to_end() {
    // Needs a cache much smaller than the object universe, otherwise
    // rotations shuffle objects that are all resident anyway.
    let mut cfg = ScenarioConfig::small();
    cfg.capacity_fraction = 0.05;
    cfg.workload.objects_per_site = 400;
    let s = Scenario::generate(&cfg);
    let lengths: Vec<u64> = (0..s.trace.n_servers())
        .map(|i| s.trace.len_for_server(i))
        .collect();
    let l = s.catalog.object_zipf.n() as u32;
    let drifted = |plan: &cdn_core::PlanResult, period: u64| {
        let zero: &(dyn Fn(u64) -> Box<dyn cache::Cache> + Sync) =
            &|_| Box::new(cache::LruCache::new(0));
        let factory = if plan.strategy == Strategy::Replication {
            Some(zero)
        } else {
            None
        };
        simulate_system_streams(
            &s.problem,
            &plan.placement,
            &s.catalog,
            &s.config.sim,
            factory,
            &lengths,
            |server| {
                Drifted::new(
                    s.trace.stream_for_server(server),
                    DriftConfig {
                        rotation_period: period,
                        objects_per_site: l,
                    },
                )
            },
        )
    };
    let caching = s.plan(Strategy::Caching);
    let replication = s.plan(Strategy::Replication);
    // Rotation is a sliding window (one fresh object per epoch), so it
    // must be fast relative to the stream to defeat LRU re-learning.
    let caching_slow = drifted(&caching, u64::MAX).mean_latency_ms;
    let caching_fast = drifted(&caching, 10).mean_latency_ms;
    let repl_slow = drifted(&replication, u64::MAX).mean_latency_ms;
    let repl_fast = drifted(&replication, 10).mean_latency_ms;
    assert!(
        caching_fast > caching_slow * 1.02,
        "caching unaffected by drift"
    );
    assert!(
        (repl_fast - repl_slow).abs() < repl_slow * 0.01,
        "replication should be drift-invariant: {repl_slow} vs {repl_fast}"
    );
}

#[test]
fn lower_bound_holds_for_every_strategy() {
    let s = scenario();
    let lb = replication_cost_lower_bound(&s.problem);
    assert!(lb > 0.0);
    for strategy in [
        Strategy::Replication,
        Strategy::Backtrack,
        Strategy::Popularity,
        Strategy::GreedyLocal,
        Strategy::Random { seed: 3 },
    ] {
        let plan = s.plan(strategy);
        let cost = replication_only_cost(&s.problem, &plan.placement);
        assert!(
            cost + 1e-9 >= lb,
            "{}: cost {cost} below LB {lb}",
            strategy.name()
        );
    }
    // And the gap metric is well-formed for the best heuristic.
    let greedy_cost = replication_only_cost(&s.problem, &s.plan(Strategy::Replication).placement);
    let gap = optimality_gap(greedy_cost, lb);
    assert!(gap >= 0.0 && gap.is_finite());
}
