//! End-to-end integration: generate a scenario, plan all strategies,
//! simulate, and check the paper's headline ordering.

use cdn_core::{compare_strategies, Scenario, ScenarioConfig, Strategy};

fn scenario() -> Scenario {
    Scenario::generate(&ScenarioConfig::small())
}

#[test]
fn hybrid_beats_pure_strategies_in_simulation() {
    let s = scenario();
    let cmp = compare_strategies(
        &s,
        &[Strategy::Replication, Strategy::Caching, Strategy::Hybrid],
    );
    let hybrid = cmp.row(Strategy::Hybrid).unwrap().report.mean_latency_ms;
    let caching = cmp.row(Strategy::Caching).unwrap().report.mean_latency_ms;
    let replication = cmp
        .row(Strategy::Replication)
        .unwrap()
        .report
        .mean_latency_ms;
    // The paper's core claim. Simulated with real caches, so allow a hair
    // of noise (2%) rather than strict dominance.
    assert!(
        hybrid <= caching * 1.02,
        "hybrid {hybrid} ms vs caching {caching} ms"
    );
    assert!(
        hybrid <= replication * 1.02,
        "hybrid {hybrid} ms vs replication {replication} ms"
    );
}

#[test]
fn simulation_accounting_is_consistent() {
    let s = scenario();
    for strategy in [Strategy::Replication, Strategy::Caching, Strategy::Hybrid] {
        let plan = s.plan(strategy);
        plan.placement.validate(&s.problem);
        let report = s.simulate(&plan);
        assert_eq!(
            report.total_requests,
            s.problem.grand_total(),
            "{}",
            strategy.name()
        );
        assert!(report.measured_requests > 0);
        assert_eq!(report.histogram.count(), report.measured_requests);
        assert_eq!(
            report.local_requests,
            report.cache_hits + report.replica_hits
        );
        if strategy == Strategy::Replication {
            assert_eq!(report.cache_hits, 0, "replication must not cache");
        }
        if strategy == Strategy::Caching {
            assert_eq!(report.replica_hits, 0, "caching must not replicate");
        }
        // All latencies are at least one hop (20 ms) and the mean sits
        // within the histogram's range.
        assert!(report.mean_latency_ms >= s.config.sim.hop_delay_ms);
        assert!(report.mean_latency_ms <= report.histogram.max());
    }
}

#[test]
fn latency_cdf_shapes_match_paper_description() {
    // "a large fraction of the requests are satisfied locally ... the CDF
    // curve of the hybrid scheme initially follows the caching curve."
    let s = scenario();
    let hop = s.config.sim.hop_delay_ms;
    let caching = s.simulate(&s.plan(Strategy::Caching));
    let replication = s.simulate(&s.plan(Strategy::Replication));
    let hybrid = s.simulate(&s.plan(Strategy::Hybrid));

    // At the first-hop latency, caching and hybrid have mass; replication
    // has only what's replicated (nothing at the first hop here unless a
    // replica landed in the same stub, which capacity makes rare but not
    // impossible — so compare against the cached systems instead).
    let c1 = caching.histogram.fraction_at_or_below(hop);
    let h1 = hybrid.histogram.fraction_at_or_below(hop);
    let r1 = replication.histogram.fraction_at_or_below(hop);
    assert!(c1 > 0.2, "caching first-hop mass {c1}");
    assert!(h1 > 0.2, "hybrid first-hop mass {h1}");
    assert!(
        h1 >= r1,
        "hybrid ({h1}) below replication ({r1}) at first hop"
    );

    // The hybrid tail must not be worse than caching's (replicas bound the
    // worst case).
    assert!(hybrid.histogram.percentile(0.99) <= caching.histogram.percentile(0.99));
}

#[test]
fn expired_scenario_still_favours_hybrid() {
    let mut config = ScenarioConfig::small();
    config.lambda = 0.10;
    config.lambda_mode = cdn_core::workload::LambdaMode::Expired;
    let s = Scenario::generate(&config);
    let cmp = compare_strategies(
        &s,
        &[Strategy::Replication, Strategy::Caching, Strategy::Hybrid],
    );
    let hybrid = cmp.row(Strategy::Hybrid).unwrap().report.mean_latency_ms;
    let caching = cmp.row(Strategy::Caching).unwrap().report.mean_latency_ms;
    let replication = cmp
        .row(Strategy::Replication)
        .unwrap()
        .report
        .mean_latency_ms;
    assert!(hybrid <= caching * 1.02);
    assert!(hybrid <= replication * 1.02);
}
