//! The Figure 6 check: the planner's predicted cost per request must track
//! the trace-driven simulation. The paper reports an overall error below
//! 7% at full scale; the small scenario here is noisier, so we allow 15%.
//!
//! Sizes are pinned to a constant: the model's buffer estimate `B ≈ c/ō`
//! uses the request-weighted mean object size, and at this tiny scale a
//! single SURGE Pareto-tail outlier landing on a popular rank swings ō —
//! and hence the prediction — by an order of magnitude for some catalog
//! draws. Constant sizes isolate what this test is about: equations (1)
//! and (2) composed through the planner versus the real LRU simulation.

use cdn_core::workload::config::SizeModel;
use cdn_core::workload::LambdaMode;
use cdn_core::{Scenario, ScenarioConfig, Strategy};

fn small_constant_size_config() -> ScenarioConfig {
    let mut config = ScenarioConfig::small();
    config.workload.size_model = SizeModel::constant(4096);
    config
}

fn check(capacity: f64, lambda: f64, tolerance: f64) {
    let mut config = small_constant_size_config();
    config.capacity_fraction = capacity;
    config.lambda = lambda;
    config.lambda_mode = LambdaMode::Uncacheable;
    let s = Scenario::generate(&config);

    let plan = s.plan(Strategy::Hybrid);
    let predicted = plan.predicted_mean_hops(&s.problem);
    let report = s.simulate(&plan);
    let actual = report.mean_cost_hops;

    // Warm-up skews the measured side slightly; both sides must be in the
    // same ballpark for the greedy trade-off to be meaningful.
    let err = (predicted - actual).abs() / actual.max(1e-9);
    assert!(
        err < tolerance,
        "capacity {capacity}, lambda {lambda}: predicted {predicted:.3} vs actual {actual:.3} hops \
         ({:.1}% error)",
        err * 100.0
    );
}

#[test]
fn prediction_tracks_simulation_at_15pc_capacity() {
    check(0.15, 0.0, 0.15);
}

#[test]
fn prediction_tracks_simulation_at_30pc_capacity() {
    check(0.30, 0.0, 0.15);
}

#[test]
fn prediction_tracks_simulation_with_uncacheable_requests() {
    check(0.15, 0.10, 0.15);
}

#[test]
fn pure_caching_prediction_also_tracks() {
    let s = Scenario::generate(&small_constant_size_config());
    let plan = s.plan(Strategy::Caching);
    let predicted = plan.predicted_mean_hops(&s.problem);
    let actual = s.simulate(&plan).mean_cost_hops;
    let err = (predicted - actual).abs() / actual.max(1e-9);
    assert!(
        err < 0.15,
        "caching: predicted {predicted:.3} vs actual {actual:.3} ({:.1}%)",
        err * 100.0
    );
}

#[test]
fn replication_prediction_is_nearly_exact() {
    // With no cache in play, prediction and simulation compute the same
    // deterministic quantity up to multinomial sampling of the trace, so
    // SURGE sizes stay on for this one — ō never enters the math.
    let s = Scenario::generate(&ScenarioConfig::small());
    let plan = s.plan(Strategy::Replication);
    let predicted = plan.predicted_mean_hops(&s.problem);
    let actual = s.simulate(&plan).mean_cost_hops;
    let err = (predicted - actual).abs() / actual.max(1e-9);
    assert!(
        err < 0.02,
        "replication: predicted {predicted:.4} vs actual {actual:.4} ({:.2}%)",
        err * 100.0
    );
}
