//! The Figure 6 check: the planner's predicted cost per request must track
//! the trace-driven simulation. The paper reports an overall error below
//! 7% at full scale; the small scenario here is noisier, so we allow 15%.

use cdn_core::{Scenario, ScenarioConfig, Strategy};
use cdn_core::workload::LambdaMode;

fn check(capacity: f64, lambda: f64, tolerance: f64) {
    let mut config = ScenarioConfig::small();
    config.capacity_fraction = capacity;
    config.lambda = lambda;
    config.lambda_mode = LambdaMode::Uncacheable;
    let s = Scenario::generate(&config);

    let plan = s.plan(Strategy::Hybrid);
    let predicted = plan.predicted_mean_hops(&s.problem);
    let report = s.simulate(&plan);
    let actual = report.mean_cost_hops;

    // Warm-up skews the measured side slightly; both sides must be in the
    // same ballpark for the greedy trade-off to be meaningful.
    let err = (predicted - actual).abs() / actual.max(1e-9);
    assert!(
        err < tolerance,
        "capacity {capacity}, lambda {lambda}: predicted {predicted:.3} vs actual {actual:.3} hops \
         ({:.1}% error)",
        err * 100.0
    );
}

#[test]
fn prediction_tracks_simulation_at_15pc_capacity() {
    check(0.15, 0.0, 0.15);
}

#[test]
fn prediction_tracks_simulation_at_30pc_capacity() {
    check(0.30, 0.0, 0.15);
}

#[test]
fn prediction_tracks_simulation_with_uncacheable_requests() {
    check(0.15, 0.10, 0.15);
}

#[test]
fn pure_caching_prediction_also_tracks() {
    let s = Scenario::generate(&ScenarioConfig::small());
    let plan = s.plan(Strategy::Caching);
    let predicted = plan.predicted_mean_hops(&s.problem);
    let actual = s.simulate(&plan).mean_cost_hops;
    let err = (predicted - actual).abs() / actual.max(1e-9);
    assert!(
        err < 0.15,
        "caching: predicted {predicted:.3} vs actual {actual:.3} ({:.1}%)",
        err * 100.0
    );
}

#[test]
fn replication_prediction_is_nearly_exact() {
    // With no cache in play, prediction and simulation compute the same
    // deterministic quantity up to multinomial sampling of the trace.
    let s = Scenario::generate(&ScenarioConfig::small());
    let plan = s.plan(Strategy::Replication);
    let predicted = plan.predicted_mean_hops(&s.problem);
    let actual = s.simulate(&plan).mean_cost_hops;
    let err = (predicted - actual).abs() / actual.max(1e-9);
    assert!(
        err < 0.02,
        "replication: predicted {predicted:.4} vs actual {actual:.4} ({:.2}%)",
        err * 100.0
    );
}
