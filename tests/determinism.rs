//! Full-pipeline determinism: identical configs must reproduce identical
//! placements, predictions and simulation results, including across the
//! rayon-parallelised planner and simulator.

use cdn_core::{Scenario, ScenarioConfig, Strategy};

#[test]
fn whole_pipeline_is_reproducible() {
    let run = || {
        let s = Scenario::generate(&ScenarioConfig::small());
        let plan = s.plan(Strategy::Hybrid);
        let report = s.simulate(&plan);
        (
            plan.placement.replica_count(),
            (0..s.problem.n_servers())
                .map(|i| plan.placement.sites_at(i))
                .collect::<Vec<_>>(),
            plan.predicted_cost.to_bits(),
            report.mean_latency_ms.to_bits(),
            report.cache_hits,
            report.cost_hops_bits(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_give_different_systems() {
    let mut a_cfg = ScenarioConfig::small();
    a_cfg.seed = 1;
    let mut b_cfg = ScenarioConfig::small();
    b_cfg.seed = 2;
    let a = Scenario::generate(&a_cfg);
    let b = Scenario::generate(&b_cfg);
    // Something structural must differ.
    let differs = a.problem.dist_primary(0, 0) != b.problem.dist_primary(0, 0)
        || a.catalog.total_bytes() != b.catalog.total_bytes()
        || a.demand.server_row(0) != b.demand.server_row(0);
    assert!(differs);
}

#[test]
fn all_strategies_are_reproducible() {
    let s1 = Scenario::generate(&ScenarioConfig::small());
    let s2 = Scenario::generate(&ScenarioConfig::small());
    for strategy in [
        Strategy::Replication,
        Strategy::Caching,
        Strategy::Hybrid,
        Strategy::AdHoc {
            cache_fraction: 0.4,
        },
        Strategy::Random { seed: 5 },
        Strategy::Popularity,
    ] {
        let a = s1.plan(strategy);
        let b = s2.plan(strategy);
        assert_eq!(
            a.predicted_cost.to_bits(),
            b.predicted_cost.to_bits(),
            "{} prediction not reproducible",
            strategy.name()
        );
        for i in 0..s1.problem.n_servers() {
            assert_eq!(a.placement.sites_at(i), b.placement.sites_at(i));
        }
    }
}

trait CostBits {
    fn cost_hops_bits(&self) -> u64;
}

impl CostBits for cdn_core::sim::SimReport {
    fn cost_hops_bits(&self) -> u64 {
        self.mean_cost_hops.to_bits()
    }
}
