//! Differential correctness harness: independent implementations of the
//! same quantity must agree.
//!
//! Each property here cross-checks two or three code paths that were
//! written separately (analytical model vs. trace-driven simulation,
//! greedy heuristic vs. brute-force optimum, faulted vs. fault-free
//! engine, eviction policies vs. their defining invariants). A divergence
//! is a bug in at least one of them — these oracles need no hand-computed
//! expected values, which is what lets them run over *randomized*
//! instances at full case count.
//!
//! Tolerances are documented in DESIGN.md ("Differential testing &
//! shrinking"); they were set empirically at ≥256 cases and hold with
//! margin. Keep the two in sync when tuning either.

use cdn_cache::{Cache, LruCache, ObjectKey};
use cdn_lru_model::{CheModel, ClosedFormLru, LruModel};
use cdn_placement::hybrid::hybrid_greedy_paper;
use cdn_placement::{
    exhaustive_optimal, greedy_global, replication_cost_lower_bound, replication_only_cost,
    update_cost, HybridConfig, PlacementProblem,
};
use cdn_sim::{
    simulate_server, simulate_server_faulted, FaultParams, FaultSchedule, Holder, ServerPlan,
    ServerReport, SimConfig,
};
use cdn_workload::{Flavor, Request, ZipfLike};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------------
// Oracle 1: analytical LRU model vs. Che's approximation vs. a trace-driven
// LRU simulation, on the same randomized workload.
// ---------------------------------------------------------------------------

/// Drive an actual `LruCache` of `b` unit-sized objects with an IRM trace
/// (site by popularity CDF, object by per-site Zipf) and measure the hit
/// ratio after warm-up.
fn trace_lru_hit_ratio(site_pops: &[f64], zipf: &ZipfLike, b: usize, seed: u64) -> f64 {
    const REQUESTS: usize = 8_000;
    const WARMUP: usize = 3_000;
    let cdf: Vec<f64> = site_pops
        .iter()
        .scan(0.0, |acc, p| {
            *acc += p;
            Some(*acc)
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cache = LruCache::new(b as u64);
    let mut hits = 0u64;
    for i in 0..REQUESTS {
        let u: f64 = rng.gen();
        let site = cdf.partition_point(|&c| c < u).min(site_pops.len() - 1);
        let rank = zipf.sample(&mut rng); // 1-based
        let hit = cache.access(ObjectKey::new(site as u32, (rank - 1) as u32), 1);
        if i >= WARMUP && hit {
            hits += 1;
        }
    }
    hits as f64 / (REQUESTS - WARMUP) as f64
}

/// The paper model's aggregate hit ratio: top-B mass → eviction horizon →
/// per-site hit ratios, weighted by site popularity.
fn paper_aggregate_hit_ratio(model: &LruModel, site_pops: &[f64], b: usize) -> f64 {
    let p_b = model.top_b_mass(site_pops, b);
    let k = model.eviction_horizon(b, p_b);
    site_pops
        .iter()
        .map(|&p| p * model.site_hit_ratio(p, k))
        .sum()
}

proptest! {
    #[test]
    fn lru_model_che_and_trace_simulation_agree(
        n_sites in 2usize..=5,
        l in 40usize..=120,
        theta in 0.6f64..1.2,
        b_frac in 0.08f64..0.5,
        seed in any::<u64>(),
    ) {
        // Random-but-normalised site popularities, never degenerate.
        let mut wrng = StdRng::seed_from_u64(seed ^ 0x5EED_5EED);
        let weights: Vec<f64> = (0..n_sites).map(|_| wrng.gen_range(0.5f64..2.0)).collect();
        let total_w: f64 = weights.iter().sum();
        let site_pops: Vec<f64> = weights.iter().map(|w| w / total_w).collect();

        let total_objects = n_sites * l;
        let b = ((b_frac * total_objects as f64) as usize).clamp(10, total_objects - 1);

        let zipf = ZipfLike::new(l, theta);
        let paper = LruModel::from_zipf(zipf.clone());
        let che = CheModel::from_zipf(zipf.clone());

        let closed = ClosedFormLru::from_zipf(zipf.clone());

        let h_paper = paper_aggregate_hit_ratio(&paper, &site_pops, b);
        let h_che = che.aggregate_hit_ratio(&site_pops, b);
        let h_closed = closed.aggregate_hit_ratio(&site_pops, b);
        let h_trace = trace_lru_hit_ratio(&site_pops, &zipf, b, seed);

        for h in [h_paper, h_che, h_closed, h_trace] {
            prop_assert!((0.0..=1.0).contains(&h), "hit ratio {h} out of [0,1]");
        }
        // Che's approximation is near-exact under IRM; the trace is the
        // ground truth it approximates.
        prop_assert!((h_che - h_trace).abs() <= 0.05,
            "che {h_che:.4} vs trace {h_trace:.4} (b={b}, θ={theta:.2}, sites={n_sites}, L={l})");
        // The paper's eviction-horizon model is cruder; hold it to the
        // same band the repo's fixed-point validation test uses.
        prop_assert!((h_paper - h_che).abs() <= 0.12,
            "paper {h_paper:.4} vs che {h_che:.4} (b={b}, θ={theta:.2}, sites={n_sites}, L={l})");
        prop_assert!((h_paper - h_trace).abs() <= 0.15,
            "paper {h_paper:.4} vs trace {h_trace:.4} (b={b}, θ={theta:.2}, sites={n_sites}, L={l})");
        // The closed-form model replaces the paper's tabulated series with
        // O(1) arithmetic; it must stay within the same band of the table
        // model it substitutes for (DESIGN.md documents the calibration).
        prop_assert!((h_closed - h_paper).abs() <= 0.15,
            "closed-form {h_closed:.4} vs paper {h_paper:.4} (b={b}, θ={theta:.2}, sites={n_sites}, L={l})");
        prop_assert!((h_closed - h_trace).abs() <= 0.15,
            "closed-form {h_closed:.4} vs trace {h_trace:.4} (b={b}, θ={theta:.2}, sites={n_sites}, L={l})");
    }
}

// ---------------------------------------------------------------------------
// Oracle 2: greedy placement vs. the exhaustive optimum on small instances.
// ---------------------------------------------------------------------------

/// A random tiny-but-valid placement instance (small enough for
/// `exhaustive_optimal`'s joint enumeration).
fn random_problem(n: usize, m: usize, seed: u64, with_updates: bool) -> PlacementProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dist_ss = vec![0u32; n * n];
    for i in 0..n {
        for k in (i + 1)..n {
            let d = rng.gen_range(1u32..=6);
            dist_ss[i * n + k] = d;
            dist_ss[k * n + i] = d;
        }
    }
    let dist_sp: Vec<u32> = (0..n * m).map(|_| rng.gen_range(3u32..15)).collect();
    let site_bytes: Vec<u64> = (0..m).map(|_| 100 * rng.gen_range(1u64..=4)).collect();
    let total_bytes: u64 = site_bytes.iter().sum();
    let capacities: Vec<u64> = (0..n).map(|_| rng.gen_range(0..=total_bytes)).collect();
    let demand: Vec<u64> = (0..n * m).map(|_| rng.gen_range(0u64..20)).collect();
    let mut problem = PlacementProblem::new(
        n,
        m,
        dist_ss,
        dist_sp,
        site_bytes,
        capacities,
        demand,
        vec![0.0; m],
        10.0,
        50,
        0.8,
    );
    if with_updates {
        problem.set_update_rates((0..m).map(|_| rng.gen_range(0u64..5)).collect());
    }
    problem
}

proptest! {
    #[test]
    fn greedy_never_beats_the_exhaustive_optimum(
        n in 2usize..=3,
        m in 3usize..=4,
        seed in any::<u64>(),
        with_updates in any::<bool>(),
    ) {
        let problem = random_problem(n, m, seed, with_updates);
        let optimal = exhaustive_optimal(&problem);
        optimal.placement.validate(&problem);

        let greedy = greedy_global(&problem);
        greedy.placement.validate(&problem);
        let greedy_cost = replication_only_cost(&problem, &greedy.placement)
            + update_cost(&problem, &greedy.placement);

        // The heuristic can never beat brute force on its own objective.
        prop_assert!(greedy_cost + 1e-9 >= optimal.cost,
            "greedy {greedy_cost} below exhaustive optimum {}", optimal.cost);
        // ... and the analytical lower bound can never exceed it.
        let lb = replication_cost_lower_bound(&problem);
        prop_assert!(lb <= optimal.cost + 1e-9,
            "lower bound {lb} above exhaustive optimum {}", optimal.cost);
        // Greedy accepts the best remaining candidate each round, and
        // placing a replica only shrinks other candidates' benefits, so
        // the accepted-benefit sequence is non-increasing.
        for w in greedy.benefits.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-9,
                "greedy benefits not monotone: {:?}", greedy.benefits);
        }

        // The hybrid planner optimises a different objective (it credits
        // the leftover cache space), but its output is still a feasible
        // placement, so the same replication-only floor applies.
        let hybrid = hybrid_greedy_paper(&problem, &HybridConfig::default());
        hybrid.placement.validate(&problem);
        let hybrid_cost = replication_only_cost(&problem, &hybrid.placement)
            + update_cost(&problem, &hybrid.placement);
        prop_assert!(hybrid_cost + 1e-9 >= optimal.cost,
            "hybrid {hybrid_cost} below exhaustive optimum {}", optimal.cost);
    }
}

// ---------------------------------------------------------------------------
// Oracle 2b: the incremental lazy-greedy hybrid planner vs. the dense
// Figure-2 rescan — same problem, same oracle, two independently written
// inner loops. The contract is bit-identicality of the full greedy trace,
// not approximate agreement: the lazy planner re-evaluates exactly the
// candidates whose inputs changed, so any divergence means its stale-set
// bookkeeping missed an invalidation.
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn lazy_hybrid_matches_dense_hybrid_bit_for_bit(
        n in 2usize..=4,
        m in 3usize..=6,
        seed in any::<u64>(),
        with_updates in any::<bool>(),
    ) {
        let problem = random_problem(n, m, seed, with_updates);
        let lazy = hybrid_greedy_paper(&problem, &HybridConfig::default());
        let dense = hybrid_greedy_paper(&problem, &HybridConfig {
            dense_scan: true,
            ..HybridConfig::default()
        });
        prop_assert_eq!(&lazy.replicas, &dense.replicas);
        let (a, b): (Vec<u64>, Vec<u64>) = (
            lazy.benefits.iter().map(|x| x.to_bits()).collect(),
            dense.benefits.iter().map(|x| x.to_bits()).collect(),
        );
        prop_assert_eq!(a, b, "benefit traces diverge");
        prop_assert_eq!(lazy.initial_cost.to_bits(), dense.initial_cost.to_bits());
        prop_assert_eq!(lazy.final_cost.to_bits(), dense.final_cost.to_bits());
        for (ra, rb) in lazy.hit_ratios.iter().zip(&dense.hit_ratios) {
            for (ha, hb) in ra.iter().zip(rb) {
                prop_assert_eq!(ha.to_bits(), hb.to_bits(), "hit rows diverge");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Oracle 3: a generated MTTF = ∞ fault schedule is bit-identical to the
// fault-free code path.
// ---------------------------------------------------------------------------

const FAULT_N_SERVERS: usize = 3;

/// A random single-server plan: per-site holder chains over 3 servers plus
/// the primary, with a random byte budget for the cache.
fn random_server_plan(m: usize, rng: &mut StdRng) -> ServerPlan {
    let mut replicated = Vec::with_capacity(m);
    let mut holders = Vec::with_capacity(m);
    for _ in 0..m {
        let local = rng.gen_bool(0.3);
        let mut chain = Vec::new();
        if local {
            chain.push(Holder {
                server: Some(0),
                hops: 0,
            });
        }
        if rng.gen_bool(0.5) {
            chain.push(Holder {
                server: Some(rng.gen_range(1u32..FAULT_N_SERVERS as u32)),
                hops: rng.gen_range(1u32..=4),
            });
        }
        chain.push(Holder {
            server: None,
            hops: rng.gen_range(4u32..=9),
        });
        replicated.push(local);
        holders.push(chain);
    }
    let nearest_hops = holders.iter().map(|c: &Vec<Holder>| c[0].hops).collect();
    let nearest_is_primary = holders.iter().map(|c| c[0].server.is_none()).collect();
    ServerPlan {
        server: 0,
        replicated,
        nearest_hops,
        nearest_is_primary,
        holders,
        cache_bytes: rng.gen_range(0u64..=4096),
    }
}

fn random_requests(m: usize, count: usize, rng: &mut StdRng) -> Vec<Request> {
    (0..count)
        .map(|_| {
            let u: f64 = rng.gen();
            Request {
                site: rng.gen_range(0u32..m as u32),
                object: rng.gen_range(0u32..50),
                flavor: if u < 0.7 {
                    Flavor::Normal
                } else if u < 0.85 {
                    Flavor::Expired
                } else {
                    Flavor::Uncacheable
                },
            }
        })
        .collect()
}

fn assert_server_reports_identical(a: &ServerReport, b: &ServerReport) {
    assert_eq!(a.histogram.count(), b.histogram.count());
    assert_eq!(a.histogram.mean().to_bits(), b.histogram.mean().to_bits());
    assert_eq!(a.histogram.cdf(), b.histogram.cdf());
    assert_eq!(a.cost_hops, b.cost_hops);
    assert_eq!(a.total_requests, b.total_requests);
    assert_eq!(a.measured_requests, b.measured_requests);
    assert_eq!(a.local_requests, b.local_requests);
    assert_eq!(a.cache_hits, b.cache_hits);
    assert_eq!(a.replica_hits, b.replica_hits);
    assert_eq!(a.origin_fetches, b.origin_fetches);
    assert_eq!(a.peer_fetches, b.peer_fetches);
    assert_eq!(a.failover_fetches, b.failover_fetches);
    assert_eq!(a.failed_requests, b.failed_requests);
    assert_eq!(a.failover_histogram.count(), b.failover_histogram.count());
    assert_eq!(a.total_bytes, b.total_bytes);
    assert_eq!(a.origin_bytes, b.origin_bytes);
    assert_eq!(a.cause, b.cause);
    assert_eq!(a.samples, b.samples);
}

proptest! {
    #[test]
    fn infinite_mttf_schedule_is_bit_identical_to_fault_free(
        m in 2usize..=4,
        seed in any::<u64>(),
    ) {
        const REQUESTS: usize = 1_000;
        const WARMUP: u64 = 200;
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = random_server_plan(m, &mut rng);
        let requests = random_requests(m, REQUESTS, &mut rng);
        let object_bytes = |site: u32, object: u32| 1 + (site as u64 * 131 + object as u64 * 17) % 64;
        let config = SimConfig::default();

        // MTTF defaults to ∞ with no origin outages: nothing can ever fire.
        let params = FaultParams::default();
        prop_assert!(params.is_zero_fault());
        let schedule = FaultSchedule::generate(&params, FAULT_N_SERVERS, REQUESTS as u64);

        let plain = simulate_server(
            &plan,
            &config,
            requests.iter().copied(),
            WARMUP,
            object_bytes,
            Box::new(LruCache::new(plan.cache_bytes)),
        );
        let faulted = simulate_server_faulted(
            &plan,
            &config,
            requests.iter().copied(),
            WARMUP,
            object_bytes,
            Box::new(LruCache::new(plan.cache_bytes)),
            Some(&schedule),
        );
        assert_server_reports_identical(&plain, &faulted);
    }
}

// ---------------------------------------------------------------------------
// Oracle 3b: the windowed timeline vs. the run-level counters — the same
// stream tallied by two independent accumulators (per-window grid vs. flat
// report fields). Summing every window must reproduce the run totals
// exactly, whatever eviction policy backs the cache.
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn windowed_counters_sum_to_run_level_for_every_policy(
        m in 2usize..=4,
        width in 1u64..=64,
        seed in any::<u64>(),
    ) {
        const REQUESTS: usize = 1_000;
        const WARMUP: u64 = 200;
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = random_server_plan(m, &mut rng);
        let requests = random_requests(m, REQUESTS, &mut rng);
        let object_bytes = |site: u32, object: u32| 1 + (site as u64 * 131 + object as u64 * 17) % 64;
        let config = SimConfig {
            window: Some(width),
            ..Default::default()
        };
        for name in cdn_cache::POLICY_NAMES {
            let cache = cdn_cache::by_name(name, plan.cache_bytes)
                .unwrap_or_else(|e| panic!("{e}"));
            let r = simulate_server_faulted(
                &plan,
                &config,
                requests.iter().copied(),
                WARMUP,
                object_bytes,
                cache,
                None,
            );
            let tl = r.timeline.as_ref().expect("timeline enabled");
            let sum = |f: fn(&cdn_sim::WindowStats) -> u64| -> u64 {
                tl.windows.iter().map(|(_, w)| f(w)).sum()
            };
            prop_assert_eq!(sum(|w| w.requests), r.measured_requests, "{}", name);
            prop_assert_eq!(sum(|w| w.local_requests), r.local_requests, "{}", name);
            prop_assert_eq!(sum(|w| w.cache_hits), r.cache_hits, "{}", name);
            prop_assert_eq!(sum(|w| w.replica_hits), r.replica_hits, "{}", name);
            prop_assert_eq!(sum(|w| w.origin_fetches), r.origin_fetches, "{}", name);
            prop_assert_eq!(sum(|w| w.peer_fetches), r.peer_fetches, "{}", name);
            prop_assert_eq!(sum(|w| w.failover_fetches), r.failover_fetches, "{}", name);
            prop_assert_eq!(sum(|w| w.failed_requests), r.failed_requests, "{}", name);
            prop_assert_eq!(sum(|w| w.cost_hops), r.cost_hops, "{}", name);
            prop_assert_eq!(sum(|w| w.total_bytes), r.total_bytes, "{}", name);
            prop_assert_eq!(sum(|w| w.origin_bytes), r.origin_bytes, "{}", name);
            // Every served (non-failed) request records exactly one latency
            // sample in its window's sketch.
            prop_assert_eq!(
                tl.windows.iter().map(|(_, w)| w.sketch.count()).sum::<u64>(),
                r.measured_requests - r.failed_requests,
                "{}", name
            );
            // Window ids are strictly increasing and keyed on stream ticks.
            for w in tl.windows.windows(2) {
                prop_assert!(w[0].0 < w[1].0, "{}: window ids not increasing", name);
            }
        }
    }
}

/// System-level twin of the oracle above, at the thread counts CI exercises:
/// the full parallel runner, each eviction policy, 1 vs. 4 rayon threads.
/// The timeline must be identical at both thread counts and still sum to
/// the run-level counters.
#[test]
fn windowed_counters_survive_the_parallel_runner_at_1_and_4_threads() {
    use cdn_core::{Scenario, ScenarioConfig, Strategy};

    let mut cfg = ScenarioConfig::small();
    cfg.sim.window = Some(256);
    let scenario = Scenario::generate(&cfg);
    let plan = scenario.plan(Strategy::Hybrid);
    for name in cdn_cache::POLICY_NAMES {
        let run = |threads: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| {
                    scenario.simulate_with_cache(&plan.placement, &|bytes| {
                        cdn_cache::by_name(name, bytes).unwrap_or_else(|e| panic!("{e}"))
                    })
                })
        };
        let (t1, t4) = (run(1), run(4));
        let tl = t1
            .timeline
            .as_ref()
            .unwrap_or_else(|| panic!("{name}: no timeline"));
        assert_eq!(
            Some(tl),
            t4.timeline.as_ref(),
            "{name}: thread-dependent timeline"
        );
        let sum = |f: fn(&cdn_sim::WindowStats) -> u64| -> u64 {
            tl.windows.iter().map(|(_, w)| f(w)).sum()
        };
        assert_eq!(sum(|w| w.requests), t1.measured_requests, "{name}");
        assert_eq!(sum(|w| w.cache_hits), t1.cache_hits, "{name}");
        assert_eq!(sum(|w| w.failed_requests), t1.failed_requests, "{name}");
        assert_eq!(sum(|w| w.total_bytes), t1.total_bytes, "{name}");
    }
}

// ---------------------------------------------------------------------------
// Oracle 3c: the deterministic quantile sketch vs. exact order statistics —
// every reported percentile must sit within the advertised relative error
// bound of the true (sorted) value, under the same rank convention.
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn quantile_sketch_stays_within_relative_error_of_exact(
        raw in proptest::collection::vec(0.05f64..50_000.0, 1..400),
        qs in proptest::collection::vec(0.0f64..=1.0, 1..8),
    ) {
        let mut sketch = cdn_telemetry::QuantileSketch::default();
        for &v in &raw {
            sketch.record(v);
        }
        let mut sorted = raw.clone();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len() as u64;
        for &q in &qs {
            let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
            let exact = sorted[(rank - 1) as usize];
            let got = sketch.percentile(q).expect("non-empty sketch");
            prop_assert!(
                (got - exact).abs() <= exact * cdn_telemetry::RELATIVE_ERROR,
                "q={q}: sketch {got} vs exact {exact} (n={n})"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Oracle 4: metamorphic eviction-policy invariants over random op sequences.
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn eviction_policies_respect_capacity_and_keep_the_latest_access(
        ops in proptest::collection::vec((0u32..24, 1u64..80), 1..40),
    ) {
        const CAPACITY: u64 = 64;
        // delayed-lru filters first-touch admissions, so the residency
        // half of the invariant only applies to the other five policies;
        // the byte-accounting half applies to all six.
        for name in cdn_cache::POLICY_NAMES {
            let mut cache = cdn_cache::by_name(name, CAPACITY)
                .unwrap_or_else(|e| panic!("{e}"));
            for &(key, bytes) in &ops {
                let key = ObjectKey::new(key % 3, key);
                cache.access(key, bytes);
                prop_assert!(cache.used_bytes() <= cache.capacity_bytes(),
                    "{name}: {} bytes used of {}", cache.used_bytes(), cache.capacity_bytes());
                if bytes <= CAPACITY && name != "delayed-lru" {
                    prop_assert!(cache.contains(key),
                        "{name} evicted the object it just admitted ({key:?}, {bytes} bytes)");
                }
            }
        }
        // delayed-lru's own contract: an admissible object touched twice
        // in a row is resident.
        let mut dlru = cdn_cache::by_name("delayed-lru", CAPACITY).unwrap();
        let key = ObjectKey::new(0, 999);
        dlru.access(key, 8);
        dlru.access(key, 8);
        prop_assert!(dlru.contains(key), "delayed-lru dropped a twice-touched object");
    }
}
