//! Cross-strategy integration checks: the hybrid against the ad-hoc splits
//! (the paper's Figure 5 claim) and against naive baselines.

use cdn_core::{Scenario, ScenarioConfig, Strategy};

#[test]
fn hybrid_prediction_beats_all_adhoc_splits() {
    let s = Scenario::generate(&ScenarioConfig::small());
    let hybrid = s.plan(Strategy::Hybrid).predicted_cost;
    for fraction in [0.2, 0.4, 0.6, 0.8] {
        let adhoc = s
            .plan(Strategy::AdHoc {
                cache_fraction: fraction,
            })
            .predicted_cost;
        assert!(
            hybrid <= adhoc + 1e-9,
            "hybrid {hybrid} worse than {:.0}% ad-hoc {adhoc}",
            fraction * 100.0
        );
    }
}

#[test]
fn hybrid_simulation_no_worse_than_adhoc_splits() {
    let s = Scenario::generate(&ScenarioConfig::small());
    let hybrid = s.simulate(&s.plan(Strategy::Hybrid)).mean_latency_ms;
    for fraction in [0.2, 0.8] {
        let adhoc = s
            .simulate(&s.plan(Strategy::AdHoc {
                cache_fraction: fraction,
            }))
            .mean_latency_ms;
        assert!(
            hybrid <= adhoc * 1.05,
            "hybrid {hybrid} ms vs {:.0}%-cache ad-hoc {adhoc} ms",
            fraction * 100.0
        );
    }
}

#[test]
fn planned_placements_beat_random_in_simulation() {
    let s = Scenario::generate(&ScenarioConfig::small());
    let random = s.simulate(&s.plan(Strategy::Random { seed: 11 }));
    let hybrid = s.simulate(&s.plan(Strategy::Hybrid));
    assert!(
        hybrid.mean_latency_ms <= random.mean_latency_ms * 1.02,
        "hybrid {} vs random {}",
        hybrid.mean_latency_ms,
        random.mean_latency_ms
    );
}

#[test]
fn popularity_baseline_is_reasonable_but_not_better_than_hybrid() {
    let s = Scenario::generate(&ScenarioConfig::small());
    let popularity = s.simulate(&s.plan(Strategy::Popularity));
    let hybrid = s.simulate(&s.plan(Strategy::Hybrid));
    // Popularity placement with leftover caching is a decent heuristic;
    // hybrid must still match or beat it.
    assert!(hybrid.mean_latency_ms <= popularity.mean_latency_ms * 1.05);
}

#[test]
fn capacity_monotonicity_for_hybrid() {
    // More storage can only help the hybrid planner's prediction.
    let mut costs = Vec::new();
    for capacity in [0.05, 0.15, 0.30] {
        let mut cfg = ScenarioConfig::small();
        cfg.capacity_fraction = capacity;
        let s = Scenario::generate(&cfg);
        costs.push(s.plan(Strategy::Hybrid).predicted_cost);
    }
    assert!(
        costs[0] >= costs[1] && costs[1] >= costs[2],
        "prediction not monotone in capacity: {costs:?}"
    );
}

#[test]
fn lambda_hurts_caching_more_than_replication() {
    // The paper's second experiment's premise: staleness penalises cached
    // copies (refresh) but not replicas (push-invalidated).
    let lat = |lambda: f64, strategy: Strategy| {
        let mut cfg = ScenarioConfig::small();
        cfg.lambda = lambda;
        cfg.lambda_mode = cdn_core::workload::LambdaMode::Expired;
        let s = Scenario::generate(&cfg);
        s.simulate(&s.plan(strategy)).mean_latency_ms
    };
    let caching_degradation = lat(0.2, Strategy::Caching) - lat(0.0, Strategy::Caching);
    let replication_degradation = lat(0.2, Strategy::Replication) - lat(0.0, Strategy::Replication);
    assert!(
        caching_degradation > replication_degradation,
        "caching degradation {caching_degradation} vs replication {replication_degradation}"
    );
}
