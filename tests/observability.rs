//! Telemetry determinism across thread counts: with the same seed, the
//! JSONL event trace and the metrics snapshot must be **byte-identical**
//! whether the pipeline runs on one rayon worker or many. This is the
//! in-process counterpart of the CI step that diffs `--trace-out` /
//! `--metrics-out` files between `RAYON_NUM_THREADS=1` and `=4` runs.
//!
//! Everything runs inside one `#[test]` because the telemetry layer is
//! process-global (enabled flag, registry, installed trace) — parallel
//! test functions would race on it.

use cdn_core::{Scenario, ScenarioConfig, Strategy};
use cdn_telemetry as telemetry;

/// Full pipeline pass on a dedicated pool, returning (trace, metrics).
fn run_with_threads(threads: usize) -> (String, String) {
    telemetry::reset_metrics();
    telemetry::install_trace();
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("build pool");
    pool.install(|| {
        let scenario = Scenario::generate(&ScenarioConfig::small());
        let plan = scenario.plan(Strategy::Hybrid);
        let _report = scenario.simulate(&plan);
    });
    let trace = telemetry::drain_trace().expect("trace installed");
    let metrics = telemetry::registry().snapshot_json();
    telemetry::uninstall_trace();
    (trace, metrics)
}

#[test]
fn trace_and_metrics_bytes_are_thread_count_invariant() {
    let (trace_1, metrics_1) = run_with_threads(1);
    let (trace_4, metrics_4) = run_with_threads(4);

    // The streams must be non-trivial before identical means anything.
    assert!(
        trace_1.lines().count() > 10,
        "trace suspiciously short:\n{trace_1}"
    );
    for needle in ["placement.hybrid", "sim.system", "sim.server"] {
        assert!(trace_1.contains(needle), "trace lacks `{needle}`");
    }
    for needle in [
        "lru_model.series_terms",
        "placement.candidates_evaluated",
        "sim.cache_hits",
        "sim.requests_total",
    ] {
        assert!(metrics_1.contains(needle), "metrics lack `{needle}`");
    }

    assert_eq!(
        trace_1, trace_4,
        "JSONL trace bytes differ between 1 and 4 threads"
    );
    assert_eq!(
        metrics_1, metrics_4,
        "metrics snapshot bytes differ between 1 and 4 threads"
    );

    // Every line must be valid JSON with strictly increasing `seq`.
    let mut prev_seq = 0u64;
    for line in trace_1.lines() {
        let doc = telemetry::json::parse(line).expect("valid JSONL line");
        let seq = doc
            .get("seq")
            .and_then(telemetry::json::Json::as_u64)
            .expect("seq field");
        assert!(seq > prev_seq || prev_seq == 0, "seq not increasing");
        prev_seq = seq;
    }

    // And a re-run at the same thread count is reproducible outright.
    let (trace_1b, metrics_1b) = run_with_threads(1);
    assert_eq!(trace_1, trace_1b);
    assert_eq!(metrics_1, metrics_1b);
}
