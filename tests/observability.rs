//! Telemetry determinism across thread counts: with the same seed, the
//! JSONL event trace and the metrics snapshot must be **byte-identical**
//! whether the pipeline runs on one rayon worker or many. This is the
//! in-process counterpart of the CI step that diffs `--trace-out` /
//! `--metrics-out` files between `RAYON_NUM_THREADS=1` and `=4` runs.
//!
//! The same contract extends to the wall-clock profiler and the request
//! sampler: turning either on must not change a single byte of the
//! deterministic outputs (timed data goes only to its own file), and the
//! sampled set itself must be thread-count invariant.
//!
//! Everything runs inside one `#[test]` because the telemetry layer is
//! process-global (enabled flag, registry, installed trace/profiler) —
//! parallel test functions would race on it.

use cdn_core::{Scenario, ScenarioConfig, Strategy};
use cdn_telemetry as telemetry;

struct Observed {
    trace: String,
    metrics: String,
    /// Chrome trace JSON, when profiling was on.
    profile: Option<String>,
    /// Sampled request paths as JSONL, when sampling was on (else empty).
    samples: String,
}

/// Full pipeline pass on a dedicated pool with the requested observers.
fn run_observed(
    threads: usize,
    profiled: bool,
    sample_every: Option<u64>,
    window: Option<u64>,
) -> Observed {
    telemetry::reset_metrics();
    telemetry::install_trace();
    if profiled {
        telemetry::profile::install();
    }
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("build pool");
    let report = pool.install(|| {
        let mut cfg = ScenarioConfig::small();
        cfg.sim.sample_every = sample_every;
        cfg.sim.window = window;
        let scenario = Scenario::generate(&cfg);
        let plan = scenario.plan(Strategy::Hybrid);
        scenario.simulate(&plan)
    });
    let mut samples = String::new();
    cdn_core::sim::render_samples_jsonl("t", &report, &mut samples);
    let trace = telemetry::drain_trace().expect("trace installed");
    let metrics = telemetry::registry().snapshot_json();
    telemetry::uninstall_trace();
    let profile = if profiled {
        let json = telemetry::profile::drain_chrome_trace();
        telemetry::profile::uninstall();
        json
    } else {
        None
    };
    Observed {
        trace,
        metrics,
        profile,
        samples,
    }
}

#[test]
fn trace_and_metrics_bytes_are_thread_count_invariant() {
    let base_1 = run_observed(1, false, None, None);
    let base_4 = run_observed(4, false, None, None);
    let (trace_1, metrics_1) = (&base_1.trace, &base_1.metrics);

    // The streams must be non-trivial before identical means anything.
    assert!(
        trace_1.lines().count() > 10,
        "trace suspiciously short:\n{trace_1}"
    );
    for needle in ["placement.hybrid", "sim.system", "sim.server"] {
        assert!(trace_1.contains(needle), "trace lacks `{needle}`");
    }
    for needle in [
        "lru_model.series_terms",
        "placement.candidates_evaluated",
        "sim.cache_hits",
        "sim.requests_total",
        "sim.cause.replica_hit",
        "sim.latency_ms",
    ] {
        assert!(metrics_1.contains(needle), "metrics lack `{needle}`");
    }

    assert_eq!(
        *trace_1, base_4.trace,
        "JSONL trace bytes differ between 1 and 4 threads"
    );
    assert_eq!(
        *metrics_1, base_4.metrics,
        "metrics snapshot bytes differ between 1 and 4 threads"
    );

    // Every line must be valid JSON with strictly increasing `seq`.
    let mut prev_seq = 0u64;
    for line in trace_1.lines() {
        let doc = telemetry::json::parse(line).expect("valid JSONL line");
        let seq = doc
            .get("seq")
            .and_then(telemetry::json::Json::as_u64)
            .expect("seq field");
        assert!(seq > prev_seq || prev_seq == 0, "seq not increasing");
        prev_seq = seq;
    }

    // And a re-run at the same thread count is reproducible outright.
    let base_1b = run_observed(1, false, None, None);
    assert_eq!(*trace_1, base_1b.trace);
    assert_eq!(*metrics_1, base_1b.metrics);

    // -- Profiling + sampling never perturb the deterministic artifacts. --
    assert!(base_1.samples.is_empty(), "sampling off must yield nothing");
    let probed = run_observed(4, true, Some(97), None);
    assert_eq!(
        *trace_1, probed.trace,
        "enabling the profiler/sampler changed the deterministic trace"
    );
    assert_eq!(
        *metrics_1, probed.metrics,
        "enabling the profiler/sampler changed the metrics snapshot"
    );

    // The sampled set is non-empty, valid JSONL, keyed on the stream index,
    // and identical at any thread count.
    assert!(!probed.samples.is_empty(), "sampler produced no samples");
    for line in probed.samples.lines() {
        let doc = telemetry::json::parse(line).expect("valid sample line");
        let index = doc
            .get("index")
            .and_then(telemetry::json::Json::as_u64)
            .expect("index field");
        assert_eq!(index % 97, 0, "sample off the 1-in-97 grid");
        assert!(doc.get("cause").is_some(), "sample without cause");
    }
    let probed_1 = run_observed(1, true, Some(97), None);
    assert_eq!(
        probed.samples, probed_1.samples,
        "sampled set differs between thread counts"
    );

    // The windowed timeline is purely observational too: with it on, the
    // trace and metrics snapshots stay byte-identical — it feeds nothing
    // into the registry or the event stream.
    let windowed = run_observed(4, false, None, Some(64));
    assert_eq!(
        *trace_1, windowed.trace,
        "enabling the timeline changed the deterministic trace"
    );
    assert_eq!(
        *metrics_1, windowed.metrics,
        "enabling the timeline changed the metrics snapshot"
    );

    // The wall-clock profile is valid Chrome trace JSON covering the
    // pipeline's phases (values are machine-dependent; shape is not).
    let profile = probed.profile.expect("profiler installed");
    let doc = telemetry::json::parse(&profile).expect("profile parses");
    let events = doc
        .get("traceEvents")
        .and_then(telemetry::json::Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "profile recorded no spans");
    for needle in ["scenario.generate", "scenario.plan", "sim.system"] {
        assert!(profile.contains(needle), "profile lacks `{needle}`");
    }
}

/// Full pipeline pass on a dedicated pool with a timeline configuration.
/// Unlike [`run_observed`] this touches no process-global telemetry state
/// (the timeline flows through the report alone), so the timeline tests
/// below can run as independent `#[test]`s.
fn run_timeline(
    threads: usize,
    shards: Option<usize>,
    window: Option<u64>,
) -> cdn_core::sim::SimReport {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("build pool");
    pool.install(|| {
        let mut cfg = ScenarioConfig::small();
        cfg.sim.window = window;
        cfg.sim.shards = shards;
        let scenario = Scenario::generate(&cfg);
        let plan = scenario.plan(Strategy::Hybrid);
        scenario.simulate(&plan)
    })
}

/// The rendered timeline artifact — JSON *and* CSV — is byte-identical at
/// every shard count in {1, 2, 4, 8} crossed with every thread count in
/// {1, 4}. This is the artifact-level pin of the §9.1 extension: windows
/// are keyed on per-server stream ticks and merged in global server order,
/// so neither knob can move a byte.
#[test]
fn timeline_bytes_are_shard_and_thread_count_invariant() {
    let reference = run_timeline(1, Some(1), Some(128));
    let tl = reference.timeline.as_ref().expect("timeline enabled");
    assert!(tl.windows.len() > 1, "scenario too small to window");
    assert!(!tl.per_server.is_empty(), "no per-server timelines");
    let runs = vec![("hybrid".to_string(), tl.clone())];
    let (json_ref, csv_ref) = (
        cdn_core::sim::render_timeline_json(&runs),
        cdn_core::sim::render_timeline_csv(&runs),
    );
    assert!(json_ref.contains("\"top_site\""), "{json_ref}");
    for shards in [1usize, 2, 4, 8] {
        for threads in [1usize, 4] {
            let r = run_timeline(threads, Some(shards), Some(128));
            let runs = vec![("hybrid".to_string(), r.timeline.expect("timeline enabled"))];
            assert_eq!(
                json_ref,
                cdn_core::sim::render_timeline_json(&runs),
                "timeline JSON differs at {shards} shard(s), {threads} thread(s)"
            );
            assert_eq!(
                csv_ref,
                cdn_core::sim::render_timeline_csv(&runs),
                "timeline CSV differs at {shards} shard(s), {threads} thread(s)"
            );
        }
    }
}

/// `--window 0` is the documented off switch: its report is bit-identical
/// to a run with no window configured at all.
#[test]
fn zero_window_is_bit_identical_to_no_window() {
    let off = run_timeline(2, None, None);
    let zero = run_timeline(2, None, Some(0));
    assert!(off.timeline.is_none());
    assert!(zero.timeline.is_none());
    assert_eq!(
        off.mean_latency_ms.to_bits(),
        zero.mean_latency_ms.to_bits()
    );
    assert_eq!(off.histogram.cdf(), zero.histogram.cdf());
    assert_eq!(off.measured_requests, zero.measured_requests);
    assert_eq!(off.cache_hits, zero.cache_hits);
    assert_eq!(off.replica_hits, zero.replica_hits);
    assert_eq!(off.total_bytes, zero.total_bytes);
    assert_eq!(off.cause, zero.cause);
    assert_eq!(off.samples, zero.samples);
}
