//! Thread-count configuration: a minimal `ThreadPoolBuilder` /
//! `ThreadPool` surface over the subset of rayon's global-pool API this
//! workspace uses.
//!
//! There is no persistent pool of parked threads: each parallel region
//! spawns scoped workers (see the crate root). What this module owns is
//! the *number* of workers a region may use, resolved in priority order:
//!
//! 1. a [`ThreadPool::install`] scope active on the calling thread,
//! 2. the global setting from [`ThreadPoolBuilder::build_global`],
//! 3. the `RAYON_NUM_THREADS` environment variable (read once),
//! 4. [`std::thread::available_parallelism`].
//!
//! Divergence from real rayon: `build_global` may be called more than
//! once and simply overwrites the setting (real rayon errors). The bench
//! binaries rely on this to time 1-thread vs N-thread configurations in
//! one process.

use std::cell::Cell;
use std::fmt;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// 0 means "unset"; any positive value wins over the environment.
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`] on this
    /// thread. 0 means "no install scope active".
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Parse a `RAYON_NUM_THREADS`-style value: a positive integer. Anything
/// else (empty, zero, garbage) is ignored, falling through to hardware
/// parallelism — matching rayon's lenient treatment.
pub(crate) fn parse_env_threads(raw: Option<&str>) -> Option<usize> {
    raw?.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| parse_env_threads(std::env::var("RAYON_NUM_THREADS").ok().as_deref()))
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

fn default_threads() -> usize {
    env_threads().unwrap_or_else(hardware_threads)
}

/// The number of threads the next parallel region on this thread will use.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(Cell::get);
    if installed > 0 {
        return installed;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    default_threads()
}

/// A fixed thread-count handle. Unlike real rayon there are no dedicated
/// pool threads; `install` just pins the worker count for regions run
/// inside it, which is all the workspace needs (and is exactly the knob
/// the determinism regression tests turn).
#[derive(Debug, Clone)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Run `op` with this pool's thread count, restoring the previous
    /// setting afterwards (panic-safe, so a panicking scenario inside a
    /// test cannot leak its thread count into the next test).
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(INSTALLED_THREADS.with(|c| c.replace(self.threads)));
        op()
    }
}

/// Builder for [`ThreadPool`] and the global setting.
#[derive(Debug, Default, Clone)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type kept for API compatibility; construction cannot currently
/// fail.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// 0 (the default) means "resolve from the environment / hardware".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    fn resolved(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            default_threads()
        }
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: self.resolved(),
        })
    }

    /// Set the process-wide thread count. Overwrites any previous setting
    /// (see the module docs for why this diverges from real rayon).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREADS.store(self.resolved(), Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing_accepts_only_positive_integers() {
        assert_eq!(parse_env_threads(Some("4")), Some(4));
        assert_eq!(parse_env_threads(Some(" 8 ")), Some(8));
        assert_eq!(parse_env_threads(Some("0")), None);
        assert_eq!(parse_env_threads(Some("")), None);
        assert_eq!(parse_env_threads(Some("lots")), None);
        assert_eq!(parse_env_threads(None), None);
    }

    #[test]
    fn install_overrides_and_restores() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let before = current_num_threads();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), before);
    }

    #[test]
    fn install_restores_after_panic() {
        let pool = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        let before = current_num_threads();
        let result = std::panic::catch_unwind(|| pool.install(|| panic!("boom")));
        assert!(result.is_err());
        assert_eq!(current_num_threads(), before);
    }

    #[test]
    fn nested_installs_shadow() {
        let outer = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        outer.install(|| {
            assert_eq!(current_num_threads(), 2);
            inner.install(|| assert_eq!(current_num_threads(), 7));
            assert_eq!(current_num_threads(), 2);
        });
    }
}
