//! Offline stand-in for `rayon`: the same combinator surface this workspace
//! uses (`par_iter`, `into_par_iter`, `map`, `filter_map`, `flat_map_iter`,
//! `collect`, `reduce`, `reduce_with`), executed **sequentially** on the
//! calling thread.
//!
//! The workspace requires every parallel region to be order-independent and
//! deterministic (see the `deterministic_end_to_end` tests), so sequential
//! execution is always a legal schedule — results are bit-identical to a
//! one-thread rayon pool. Swap the real rayon back in by repointing the
//! workspace dependency; no call site changes.

/// A "parallel" iterator: a thin deterministic wrapper over a sequential
/// [`Iterator`] exposing rayon's method signatures.
pub struct ParIter<I> {
    inner: I,
}

impl<I: Iterator> ParIter<I> {
    pub fn map<F, T>(self, f: F) -> ParIter<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> T,
    {
        ParIter {
            inner: self.inner.map(f),
        }
    }

    pub fn filter_map<F, T>(self, f: F) -> ParIter<std::iter::FilterMap<I, F>>
    where
        F: FnMut(I::Item) -> Option<T>,
    {
        ParIter {
            inner: self.inner.filter_map(f),
        }
    }

    pub fn filter<F>(self, f: F) -> ParIter<std::iter::Filter<I, F>>
    where
        F: FnMut(&I::Item) -> bool,
    {
        ParIter {
            inner: self.inner.filter(f),
        }
    }

    /// rayon's `flat_map_iter`: the inner iterators run sequentially even
    /// under real rayon, so this is exactly `Iterator::flat_map`.
    pub fn flat_map_iter<F, U>(self, f: F) -> ParIter<std::iter::FlatMap<I, U, F>>
    where
        F: FnMut(I::Item) -> U,
        U: IntoIterator,
    {
        ParIter {
            inner: self.inner.flat_map(f),
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: FnMut(I::Item),
    {
        self.inner.for_each(f)
    }

    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.inner.collect()
    }

    pub fn count(self) -> usize {
        self.inner.count()
    }

    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.inner.sum()
    }

    /// rayon's `reduce`: fold with an identity-producing closure.
    pub fn reduce<ID, F>(self, identity: ID, op: F) -> I::Item
    where
        ID: Fn() -> I::Item,
        F: Fn(I::Item, I::Item) -> I::Item,
    {
        self.inner.fold(identity(), op)
    }

    /// rayon's `reduce_with`: `None` on an empty iterator.
    pub fn reduce_with<F>(self, op: F) -> Option<I::Item>
    where
        F: Fn(I::Item, I::Item) -> I::Item,
    {
        self.inner.reduce(op)
    }

    pub fn max_by<F>(self, compare: F) -> Option<I::Item>
    where
        F: Fn(&I::Item, &I::Item) -> std::cmp::Ordering,
    {
        self.inner.max_by(compare)
    }

    pub fn min_by<F>(self, compare: F) -> Option<I::Item>
    where
        F: Fn(&I::Item, &I::Item) -> std::cmp::Ordering,
    {
        self.inner.min_by(compare)
    }
}

/// Owned conversion (`Range`, `Vec`, …).
pub trait IntoParallelIterator: IntoIterator + Sized {
    fn into_par_iter(self) -> ParIter<Self::IntoIter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

impl<T: IntoIterator> IntoParallelIterator for T {}

/// Shared-reference conversion (`&[T]`, `&Vec<T>`).
pub trait IntoParallelRefIterator<'a> {
    type Iter: Iterator;

    fn par_iter(&'a self) -> ParIter<Self::Iter>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
{
    type Iter = <&'a C as IntoIterator>::IntoIter;

    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

/// Mutable-reference conversion (`&mut [T]`, `&mut Vec<T>`).
pub trait IntoParallelRefMutIterator<'a> {
    type Iter: Iterator;

    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: IntoIterator,
{
    type Iter = <&'a mut C as IntoIterator>::IntoIter;

    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

/// Sequential stand-in for `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

pub mod prelude {
    pub use super::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_matches_sequential() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn reduce_with_and_identity_reduce() {
        let best = (0..10usize)
            .into_par_iter()
            .filter_map(|x| (x % 3 == 0).then_some(x))
            .reduce_with(std::cmp::max);
        assert_eq!(best, Some(9));
        let empty: Option<usize> = (0..0usize).into_par_iter().reduce_with(std::cmp::max);
        assert_eq!(empty, None);
        let sum = (1..=4usize).into_par_iter().reduce(|| 0, |a, b| a + b);
        assert_eq!(sum, 10);
    }

    #[test]
    fn flat_map_iter_flattens_in_order() {
        let rows: Vec<u32> = [1u32, 2]
            .par_iter()
            .flat_map_iter(|&x| vec![x * 10, x * 10 + 1])
            .collect();
        assert_eq!(rows, vec![10, 11, 20, 21]);
    }

    #[test]
    fn par_iter_mut_mutates() {
        let mut v = vec![1, 2, 3];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(v, vec![2, 3, 4]);
    }
}
