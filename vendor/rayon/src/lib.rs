//! Offline stand-in for `rayon`: the same combinator surface this
//! workspace uses (`par_iter`, `into_par_iter`, `map`, `filter_map`,
//! `flat_map_iter`, `collect`, `reduce`, `reduce_with`), executed on a
//! **real multi-threaded executor** built from `std::thread::scope` —
//! no dependencies, so the workspace stays hermetic.
//!
//! # Execution model
//!
//! A parallel iterator is a materialised `Vec` of input items plus a
//! composed per-item operation (map/filter/… fused into one monomorphised
//! pipeline, like rayon's consumer chain). A terminal method splits the
//! input into contiguous chunks, has scoped worker threads claim chunks
//! from a shared counter, and combines the per-chunk results **in chunk
//! order** on the calling thread.
//!
//! # Determinism
//!
//! Multi-threaded output is bit-identical to the 1-thread schedule:
//!
//! * the chunk layout is a pure function of the input *length* — never of
//!   the thread count or of which worker ran what — so the combine tree
//!   has the same shape at any `RAYON_NUM_THREADS`;
//! * `collect` concatenates chunk outputs in input-index order;
//! * `reduce`/`reduce_with`/`sum` fold each chunk left-to-right and then
//!   fold the chunk accumulators left-to-right. As with real rayon the
//!   operator must be associative (and `reduce`'s identity neutral) for
//!   the result to equal a plain sequential fold; every reduction in this
//!   workspace is either exact integer arithmetic or a selection with a
//!   total order and deterministic tie-break, so this holds bit-exactly;
//! * `max_by`/`min_by` keep `Iterator`'s tie rules (last / first winner).
//!
//! Panics in worker closures propagate to the caller with their original
//! payload. Threads are resolved per region (see [`pool`]): a
//! [`ThreadPool::install`] scope, then [`ThreadPoolBuilder::build_global`],
//! then `RAYON_NUM_THREADS`, then the hardware. `1` restores the old
//! sequential stub's behaviour exactly.

use std::panic::resume_unwind;
use std::sync::Mutex;

mod pool;

pub use pool::{current_num_threads, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder};

/// Upper bound on chunks per region: enough for even work-stealing-free
/// load balance at 10k+ items without drowning tiny inputs in overhead.
/// Must stay a constant: chunk shape may depend only on input length.
const MAX_CHUNKS: usize = 256;

/// How many chunks a region of `len` items splits into. A pure function
/// of `len` — this is what makes the combine tree thread-count-invariant.
fn chunk_count(len: usize) -> usize {
    len.min(MAX_CHUNKS)
}

/// Split `items` into `k` contiguous chunks whose sizes differ by at most
/// one (the first `len % k` chunks get the extra item). O(len) moves.
fn split_chunks<T>(mut items: Vec<T>, k: usize) -> Vec<Vec<T>> {
    let len = items.len();
    debug_assert!(k >= 1 && k <= len);
    let (base, extra) = (len / k, len % k);
    let mut out: Vec<Vec<T>> = Vec::with_capacity(k);
    for i in (0..k).rev() {
        let start = i * base + extra.min(i);
        out.push(items.split_off(start));
    }
    out.reverse();
    out
}

/// Run `work` over every chunk of `items`, returning the per-chunk
/// results in chunk (= input) order. Spawns `current_num_threads() - 1`
/// scoped workers (the caller is the last worker); chunks are claimed
/// from a shared queue, so scheduling is dynamic but the output layout
/// is not. Worker panics are re-raised here with their original payload.
fn execute_chunked<T, R, W>(items: Vec<T>, work: W) -> Vec<R>
where
    T: Send,
    R: Send,
    W: Fn(Vec<T>) -> R + Sync,
{
    let len = items.len();
    if len == 0 {
        return Vec::new();
    }
    let k = chunk_count(len);
    let threads = current_num_threads().min(k);
    let chunks = split_chunks(items, k);
    if threads <= 1 {
        return chunks.into_iter().map(work).collect();
    }

    let queue = Mutex::new(chunks.into_iter().enumerate());
    let slots: Vec<Mutex<Option<R>>> = (0..k).map(|_| Mutex::new(None)).collect();
    let worker = || loop {
        // Take the lock only to claim a chunk; the work itself runs
        // unlocked.
        let claimed = queue.lock().unwrap().next();
        match claimed {
            Some((index, chunk)) => {
                let result = work(chunk);
                *slots[index].lock().unwrap() = Some(result);
            }
            None => break,
        }
    };
    std::thread::scope(|scope| {
        let worker = &worker;
        let handles: Vec<_> = (1..threads).map(|_| scope.spawn(worker)).collect();
        worker();
        for handle in handles {
            if let Err(payload) = handle.join() {
                resume_unwind(payload);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("worker finished without storing its chunk result")
        })
        .collect()
}

/// One fused per-item stage: feed `item` through the pipeline, calling
/// `sink` once per surviving output (zero or many times for
/// filter/flat-map stages). Generic over the sink so the whole pipeline
/// monomorphises into straight-line code, rayon-consumer style.
pub trait ItemOp<In>: Sync {
    type Out;

    fn apply<S: FnMut(Self::Out)>(&self, item: In, sink: &mut S);
}

/// The no-op head of every pipeline.
pub struct Identity;

impl<T> ItemOp<T> for Identity {
    type Out = T;

    #[inline]
    fn apply<S: FnMut(T)>(&self, item: T, sink: &mut S) {
        sink(item);
    }
}

pub struct MapOp<P, F> {
    prev: P,
    f: F,
}

impl<In, P, F, T> ItemOp<In> for MapOp<P, F>
where
    P: ItemOp<In>,
    F: Fn(P::Out) -> T + Sync,
{
    type Out = T;

    #[inline]
    fn apply<S: FnMut(T)>(&self, item: In, sink: &mut S) {
        self.prev.apply(item, &mut |x| sink((self.f)(x)));
    }
}

pub struct FilterOp<P, F> {
    prev: P,
    f: F,
}

impl<In, P, F> ItemOp<In> for FilterOp<P, F>
where
    P: ItemOp<In>,
    F: Fn(&P::Out) -> bool + Sync,
{
    type Out = P::Out;

    #[inline]
    fn apply<S: FnMut(P::Out)>(&self, item: In, sink: &mut S) {
        self.prev.apply(item, &mut |x| {
            if (self.f)(&x) {
                sink(x);
            }
        });
    }
}

pub struct FilterMapOp<P, F> {
    prev: P,
    f: F,
}

impl<In, P, F, T> ItemOp<In> for FilterMapOp<P, F>
where
    P: ItemOp<In>,
    F: Fn(P::Out) -> Option<T> + Sync,
{
    type Out = T;

    #[inline]
    fn apply<S: FnMut(T)>(&self, item: In, sink: &mut S) {
        self.prev.apply(item, &mut |x| {
            if let Some(y) = (self.f)(x) {
                sink(y);
            }
        });
    }
}

pub struct FlatMapIterOp<P, F> {
    prev: P,
    f: F,
}

impl<In, P, F, U> ItemOp<In> for FlatMapIterOp<P, F>
where
    P: ItemOp<In>,
    F: Fn(P::Out) -> U + Sync,
    U: IntoIterator,
{
    type Out = U::Item;

    #[inline]
    fn apply<S: FnMut(U::Item)>(&self, item: In, sink: &mut S) {
        self.prev.apply(item, &mut |x| {
            for y in (self.f)(x) {
                sink(y);
            }
        });
    }
}

/// A parallel iterator: materialised input items plus the fused per-item
/// pipeline applied by the terminal methods.
pub struct ParIter<T, O = Identity> {
    items: Vec<T>,
    op: O,
}

impl<T, O> ParIter<T, O>
where
    T: Send,
    O: ItemOp<T>,
{
    pub fn map<F, U>(self, f: F) -> ParIter<T, MapOp<O, F>>
    where
        F: Fn(O::Out) -> U + Sync,
    {
        ParIter {
            items: self.items,
            op: MapOp { prev: self.op, f },
        }
    }

    pub fn filter<F>(self, f: F) -> ParIter<T, FilterOp<O, F>>
    where
        F: Fn(&O::Out) -> bool + Sync,
    {
        ParIter {
            items: self.items,
            op: FilterOp { prev: self.op, f },
        }
    }

    pub fn filter_map<F, U>(self, f: F) -> ParIter<T, FilterMapOp<O, F>>
    where
        F: Fn(O::Out) -> Option<U> + Sync,
    {
        ParIter {
            items: self.items,
            op: FilterMapOp { prev: self.op, f },
        }
    }

    /// rayon's `flat_map_iter`: the inner iterators run sequentially
    /// within their item even under real rayon.
    pub fn flat_map_iter<F, U>(self, f: F) -> ParIter<T, FlatMapIterOp<O, F>>
    where
        F: Fn(O::Out) -> U + Sync,
        U: IntoIterator,
    {
        ParIter {
            items: self.items,
            op: FlatMapIterOp { prev: self.op, f },
        }
    }

    /// Evaluate one chunk through the pipeline, folding the outputs.
    fn chunk_fold<A, Step>(chunk: Vec<T>, op: &O, seed: A, mut step: Step) -> A
    where
        Step: FnMut(A, O::Out) -> A,
    {
        let mut acc = Some(seed);
        for item in chunk {
            op.apply(item, &mut |out| {
                let prev = acc.take().expect("accumulator always present");
                acc = Some(step(prev, out));
            });
        }
        acc.expect("accumulator always present")
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(O::Out) + Sync,
    {
        let op = &self.op;
        let f = &f;
        execute_chunked(self.items, |chunk| {
            Self::chunk_fold(chunk, op, (), |(), out| f(out))
        });
    }

    pub fn collect<C: FromIterator<O::Out>>(self) -> C
    where
        O::Out: Send,
    {
        let op = &self.op;
        let per_chunk = execute_chunked(self.items, |chunk| {
            Self::chunk_fold(chunk, op, Vec::new(), |mut acc, out| {
                acc.push(out);
                acc
            })
        });
        per_chunk.into_iter().flatten().collect()
    }

    pub fn count(self) -> usize {
        let op = &self.op;
        execute_chunked(self.items, |chunk| {
            Self::chunk_fold(chunk, op, 0usize, |n, _| n + 1)
        })
        .into_iter()
        .sum()
    }

    pub fn sum<S>(self) -> S
    where
        O::Out: Send,
        S: std::iter::Sum<O::Out> + std::iter::Sum<S> + Send,
    {
        let op = &self.op;
        execute_chunked(self.items, |chunk| {
            Self::chunk_fold(chunk, op, Vec::new(), |mut acc, out| {
                acc.push(out);
                acc
            })
            .into_iter()
            .sum::<S>()
        })
        .into_iter()
        .sum()
    }

    /// rayon's `reduce`. `identity()` must be a neutral element and `op`
    /// associative (rayon's own contract): each chunk folds from a fresh
    /// identity, and the chunk results fold left-to-right from another.
    pub fn reduce<ID, F>(self, identity: ID, op: F) -> O::Out
    where
        O::Out: Send,
        ID: Fn() -> O::Out + Sync,
        F: Fn(O::Out, O::Out) -> O::Out + Sync,
    {
        let pipeline = &self.op;
        let identity = &identity;
        let op = &op;
        execute_chunked(self.items, |chunk| {
            Self::chunk_fold(chunk, pipeline, identity(), op)
        })
        .into_iter()
        .fold(identity(), op)
    }

    /// rayon's `reduce_with`: `None` on an empty pipeline output. Same
    /// associativity requirement and fixed combine shape as [`reduce`].
    ///
    /// [`reduce`]: Self::reduce
    pub fn reduce_with<F>(self, op: F) -> Option<O::Out>
    where
        O::Out: Send,
        F: Fn(O::Out, O::Out) -> O::Out + Sync,
    {
        let pipeline = &self.op;
        let op = &op;
        execute_chunked(self.items, |chunk| {
            Self::chunk_fold(chunk, pipeline, None, |acc, out| match acc {
                None => Some(out),
                Some(prev) => Some(op(prev, out)),
            })
        })
        .into_iter()
        .flatten()
        .reduce(op)
    }

    /// `Iterator::max_by` tie semantics: the *last* maximal element wins.
    pub fn max_by<F>(self, compare: F) -> Option<O::Out>
    where
        O::Out: Send,
        F: Fn(&O::Out, &O::Out) -> std::cmp::Ordering + Sync,
    {
        use std::cmp::Ordering::Greater;
        self.reduce_with(|a, b| if compare(&a, &b) == Greater { a } else { b })
    }

    /// `Iterator::min_by` tie semantics: the *first* minimal element wins.
    pub fn min_by<F>(self, compare: F) -> Option<O::Out>
    where
        O::Out: Send,
        F: Fn(&O::Out, &O::Out) -> std::cmp::Ordering + Sync,
    {
        use std::cmp::Ordering::Greater;
        self.reduce_with(|a, b| if compare(&a, &b) == Greater { b } else { a })
    }
}

/// Owned conversion (`Range`, `Vec`, …). The input is materialised here;
/// every region in this workspace is over a small index space or a
/// per-server plan list, so this is cheap relative to the work fanned out.
pub trait IntoParallelIterator: IntoIterator + Sized
where
    Self::Item: Send,
{
    fn into_par_iter(self) -> ParIter<Self::Item> {
        ParIter {
            items: self.into_iter().collect(),
            op: Identity,
        }
    }
}

impl<T: IntoIterator> IntoParallelIterator for T where T::Item: Send {}

/// Shared-reference conversion (`&[T]`, `&Vec<T>`).
pub trait IntoParallelRefIterator<'a> {
    type Item: Send;

    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
    <&'a C as IntoIterator>::Item: Send,
{
    type Item = <&'a C as IntoIterator>::Item;

    fn par_iter(&'a self) -> ParIter<Self::Item> {
        ParIter {
            items: self.into_iter().collect(),
            op: Identity,
        }
    }
}

/// Mutable-reference conversion (`&mut [T]`, `&mut Vec<T>`).
pub trait IntoParallelRefMutIterator<'a> {
    type Item: Send;

    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: IntoIterator,
    <&'a mut C as IntoIterator>::Item: Send,
{
    type Item = <&'a mut C as IntoIterator>::Item;

    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item> {
        ParIter {
            items: self.into_iter().collect(),
            op: Identity,
        }
    }
}

/// rayon's `join`: run both closures, `b` on a scoped thread when more
/// than one thread is configured. Panics from either side propagate.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() > 1 {
        std::thread::scope(|scope| {
            let handle = scope.spawn(b);
            let ra = a();
            match handle.join() {
                Ok(rb) => (ra, rb),
                Err(payload) => resume_unwind(payload),
            }
        })
    } else {
        (a(), b())
    }
}

pub mod prelude {
    pub use super::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{chunk_count, split_chunks, ThreadPool, ThreadPoolBuilder};

    fn pool(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn map_collect_matches_sequential() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn reduce_with_and_identity_reduce() {
        let best = (0..10usize)
            .into_par_iter()
            .filter_map(|x| (x % 3 == 0).then_some(x))
            .reduce_with(std::cmp::max);
        assert_eq!(best, Some(9));
        let empty: Option<usize> = (0..0usize).into_par_iter().reduce_with(std::cmp::max);
        assert_eq!(empty, None);
        let sum = (1..=4usize).into_par_iter().reduce(|| 0, |a, b| a + b);
        assert_eq!(sum, 10);
    }

    #[test]
    fn flat_map_iter_flattens_in_order() {
        let rows: Vec<u32> = [1u32, 2]
            .par_iter()
            .flat_map_iter(|&x| vec![x * 10, x * 10 + 1])
            .collect();
        assert_eq!(rows, vec![10, 11, 20, 21]);
    }

    #[test]
    fn par_iter_mut_mutates() {
        let mut v = vec![1, 2, 3];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(v, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_all_terminals() {
        pool(4).install(|| {
            let v: Vec<u64> = Vec::new();
            let collected: Vec<u64> = v.par_iter().map(|&x| x + 1).collect();
            assert!(collected.is_empty());
            assert_eq!(v.par_iter().count(), 0);
            assert_eq!(v.par_iter().map(|&x| x).sum::<u64>(), 0);
            assert_eq!(v.par_iter().map(|&x| x).reduce(|| 7, |a, b| a + b), 7);
            assert_eq!(v.par_iter().map(|&x| x).reduce_with(|a, b| a + b), None);
            assert_eq!(v.par_iter().max_by(|a, b| a.cmp(b)), None);
        });
    }

    #[test]
    fn single_item_all_terminals() {
        pool(4).install(|| {
            let v = [41u64];
            let collected: Vec<u64> = v.par_iter().map(|&x| x + 1).collect();
            assert_eq!(collected, vec![42]);
            assert_eq!(v.par_iter().map(|&x| x).reduce(|| 0, |a, b| a + b), 41);
            assert_eq!(v.par_iter().map(|&x| x).reduce_with(|a, b| a + b), Some(41));
        });
    }

    #[test]
    fn input_larger_than_thread_count() {
        let input: Vec<u64> = (0..10_000).collect();
        let expected: Vec<u64> = input.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8] {
            let out: Vec<u64> =
                pool(threads).install(|| input.par_iter().map(|&x| x * 3 + 1).collect());
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn collect_preserves_input_index_order() {
        // Stress ordering: many items, uneven per-item work so chunks
        // finish out of order, several thread counts.
        let input: Vec<usize> = (0..5000).collect();
        for threads in [2, 4, 7] {
            let out: Vec<usize> = pool(threads).install(|| {
                input
                    .par_iter()
                    .map(|&x| {
                        if x % 97 == 0 {
                            std::thread::yield_now();
                        }
                        x
                    })
                    .collect()
            });
            assert_eq!(out, input, "threads = {threads}");
        }
    }

    #[test]
    fn panic_propagates_with_payload() {
        let result = std::panic::catch_unwind(|| {
            pool(4).install(|| {
                (0..1000usize).into_par_iter().for_each(|x| {
                    if x == 617 {
                        panic!("worker exploded on {x}");
                    }
                });
            });
        });
        let payload = result.expect_err("worker panic must reach the caller");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            message.contains("worker exploded on 617"),
            "original payload must survive: {message:?}"
        );
    }

    #[test]
    fn reduce_tree_is_thread_count_invariant() {
        // Floating-point addition is not associative, so bit-identical
        // results across thread counts prove the combine tree has a fixed
        // shape (chunking by length only), not merely that the maths is
        // commutative.
        let input: Vec<f64> = (1..=1537).map(|i| 1.0 / i as f64).collect();
        let reference = pool(1).install(|| {
            input
                .par_iter()
                .map(|&x| x)
                .reduce(|| 0.0, |a, b| a + b)
                .to_bits()
        });
        for threads in [2, 3, 4, 8] {
            let bits = pool(threads).install(|| {
                input
                    .par_iter()
                    .map(|&x| x)
                    .reduce(|| 0.0, |a, b| a + b)
                    .to_bits()
            });
            assert_eq!(bits, reference, "threads = {threads}");
        }
    }

    #[test]
    fn reduce_matches_sequential_fold_for_associative_ops() {
        let input: Vec<u64> = (0..4097).collect();
        let sequential = input.iter().fold(0u64, |a, &b| a ^ (b * 2654435761));
        let parallel = pool(8).install(|| {
            input
                .par_iter()
                .map(|&b| b * 2654435761)
                .reduce(|| 0, |a, b| a ^ b)
        });
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn one_thread_matches_many_threads_bitwise() {
        // The RAYON_NUM_THREADS=1 equivalence guarantee, exercised via the
        // same override mechanism the env var feeds.
        let input: Vec<u64> = (0..3001).collect();
        let run = |p: &ThreadPool| -> (Vec<u64>, usize, u64) {
            p.install(|| {
                let mapped: Vec<u64> = input.par_iter().map(|&x| x.wrapping_mul(31)).collect();
                let count = input.par_iter().filter(|&&x| x % 3 == 0).count();
                let total: u64 = input.par_iter().map(|&x| x).sum();
                (mapped, count, total)
            })
        };
        assert_eq!(run(&pool(1)), run(&pool(8)));
    }

    #[test]
    fn max_by_min_by_keep_iterator_tie_semantics() {
        // Keys collide; Iterator::max_by returns the last maximum and
        // Iterator::min_by the first minimum.
        let input: Vec<(u32, usize)> = (0..1000).map(|i| (i as u32 % 5, i)).collect();
        let key = |t: &(u32, usize)| t.0;
        let expected_max = input.iter().copied().max_by_key(key).unwrap();
        let expected_min = input.iter().copied().min_by_key(key).unwrap();
        for threads in [1, 4] {
            let max =
                pool(threads).install(|| input.par_iter().map(|&t| t).max_by(|a, b| a.0.cmp(&b.0)));
            let min =
                pool(threads).install(|| input.par_iter().map(|&t| t).min_by(|a, b| a.0.cmp(&b.0)));
            assert_eq!(max, Some(expected_max), "threads = {threads}");
            assert_eq!(min, Some(expected_min), "threads = {threads}");
        }
    }

    #[test]
    fn join_runs_both_and_propagates_panics() {
        let (a, b) = pool(4).install(|| super::join(|| 6 * 7, || "ok"));
        assert_eq!((a, b), (42, "ok"));
        let result = std::panic::catch_unwind(|| {
            pool(4).install(|| super::join(|| 1, || panic!("right side")))
        });
        assert!(result.is_err());
    }

    #[test]
    fn chunk_layout_is_a_pure_function_of_length() {
        for len in [1usize, 2, 255, 256, 257, 1000, 10_000] {
            let k = chunk_count(len);
            assert!(k >= 1 && k <= len.min(super::MAX_CHUNKS));
            let chunks = split_chunks((0..len).collect(), k);
            assert_eq!(chunks.len(), k);
            let sizes: Vec<usize> = chunks.iter().map(Vec::len).collect();
            assert!(sizes.iter().all(|&s| s > 0));
            assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
            let flat: Vec<usize> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, (0..len).collect::<Vec<_>>(), "len = {len}");
        }
    }
}
