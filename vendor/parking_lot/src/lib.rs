//! Offline stand-in for `parking_lot`: `Mutex` and `RwLock` with
//! parking_lot's panic-free-looking API (no `Result` from `lock()`),
//! implemented over `std::sync`. Poisoning is translated to a panic, which
//! matches parking_lot's behaviour closely enough for this workspace (a
//! poisoned lock here means a worker already panicked).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().expect("mutex poisoned")
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("mutex poisoned")
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().expect("rwlock poisoned")
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().expect("rwlock poisoned")
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("rwlock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
