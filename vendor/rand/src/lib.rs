//! Offline stand-in for the `rand` crate, exposing exactly the API surface
//! this workspace uses: `StdRng` seeded via [`SeedableRng::seed_from_u64`],
//! the [`Rng`] extension methods (`gen`, `gen_range`, `gen_bool`) and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ (public domain reference algorithm by
//! Blackman & Vigna) seeded through SplitMix64 — the same construction the
//! real `rand` documents for seeding — so streams are high quality and fully
//! deterministic, but they are **not bit-compatible with upstream `rand`**.
//! Nothing in this workspace depends on upstream streams; every consumer
//! only requires determinism and reasonable uniformity.

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible uniformly at random from an RNG (the stub's analogue of
/// sampling from the `Standard` distribution).
pub trait StandardSample: Sized {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer in `[0, bound)` by rejection on the widening multiply
/// (Lemire's method).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let low = m as u64;
        if low >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return <$t>::standard_sample(rng);
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t>::standard_sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t>::standard_sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level convenience methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Deterministically seedable RNGs.
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ with SplitMix64 seed expansion.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; reseed it.
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice extensions (only what the workspace uses).
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-0.5f64..=0.5);
            assert!((-0.5..=0.5).contains(&f));
            let u: usize = rng.gen_range(0..5usize);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left slice sorted");
    }

    #[test]
    fn small_ranges_unbiased_enough() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[rng.gen_range(0..3usize)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
    }
}
