//! Offline stand-in for `criterion`: the macro/builder surface this
//! workspace's benches use (`benchmark_group`, `throughput`, `sample_size`,
//! `bench_function`, `iter`, `iter_batched`), backed by a deliberately tiny
//! timing loop — a handful of timed iterations and a median report, with no
//! statistical analysis, warm-up tuning, or HTML output. Good enough to keep
//! `cargo bench` compiling and producing ballpark numbers offline; swap the
//! real criterion back in by repointing the workspace dependency.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_benchmark(id, None, sample_size, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id);
        run_benchmark(&full_id, self.throughput, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark<F>(id: &str, throughput: Option<Throughput>, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // One untimed shot to warm caches, then `sample_size` timed samples.
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        samples.push(bencher.elapsed);
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!("  {:.0} elem/s", n as f64 / median.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            format!("  {:.0} B/s", n as f64 / median.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "bench: {id:<40} median {median:>12.3?} (min {:?}, max {:?}, {} samples){rate}",
        samples[0],
        samples[samples.len() - 1],
        samples.len(),
    );
}

pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed = start.elapsed();
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_sum(c: &mut Criterion) {
        let mut group = c.benchmark_group("sum");
        group.throughput(Throughput::Elements(1000));
        group.sample_size(3);
        group.bench_function("range", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.bench_function("batched", |b| {
            b.iter_batched(
                || (0..1000u64).collect::<Vec<_>>(),
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    criterion_group!(benches, bench_sum);

    #[test]
    fn harness_runs() {
        benches();
    }
}
