//! Offline stand-in for `proptest`, covering the subset this workspace
//! uses: the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! [`strategy::Strategy`] with `prop_map`, range/tuple/[`Just`] strategies,
//! [`arbitrary::any`], [`collection::vec`], [`prop_oneof!`], and the
//! `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports the sampled inputs (via
//!   `Debug`) and the deterministic per-test seed, but is not minimised.
//! * **Deterministic sampling.** Each `#[test]` derives its RNG seed from
//!   its own name (FNV-1a), so failures reproduce without a persistence
//!   file; `.proptest-regressions` files are ignored.
//! * Default case count is 64 (upstream: 256) to keep offline CI fast;
//!   override per block with `ProptestConfig::with_cases`.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

pub mod test_runner {
    /// Why a single case failed.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        pub message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Per-block configuration (only the knobs this workspace touches).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

pub mod strategy {
    use super::TestRng;

    /// A generator of values. Object-safe: the combinators are `Sized`-only.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { strategy: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) strategy: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.strategy.sample(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// Weighted union of boxed strategies — the engine behind
    /// [`crate::prop_oneof!`].
    pub struct OneOf<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> OneOf<T> {
        /// # Panics
        /// Panics if `arms` is empty or all weights are zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total_weight: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total_weight > 0, "prop_oneof: no positive-weight arm");
            Self { arms, total_weight }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rand::Rng::gen_range(rng, 0..self.total_weight);
            for (weight, strategy) in &self.arms {
                if pick < *weight as u64 {
                    return strategy.sample(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("weights changed mid-sample")
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Full-domain uniform sampling for primitives.
    pub trait Arbitrary: Sized {
        fn arbitrary_sample(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut TestRng) -> Self {
                    rand::Rng::gen(rng)
                }
            }
        )*};
    }
    impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `vec(element, 1..200)` — a `Vec` of `element` samples with length
    /// uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(rng, self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Seed a test's RNG deterministically from its name.
pub fn rng_for_test(name: &str, case: u32) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash ^ ((case as u64) << 32))
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((
                $weight as u32,
                ::std::boxed::Box::new($strategy) as $crate::strategy::BoxedStrategy<_>,
            )),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr); $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut proptest_rng = $crate::rng_for_test(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::sample(&$strategy, &mut proptest_rng);)+
                // Captured up front: the body takes the inputs by value.
                let proptest_inputs = format!("{:#?}", ($(&$arg,)+));
                let result = (|| -> $crate::test_runner::TestCaseResult {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs: {}",
                        case + 1,
                        config.cases,
                        e,
                        proptest_inputs
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<u32>> {
        crate::collection::vec(0u32..10, 1..5)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in 0.25f64..=0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..=0.75).contains(&f));
        }

        #[test]
        fn tuples_and_maps_compose(pair in (0u8..4, 10u8..14).prop_map(|(a, b)| (b, a))) {
            prop_assert!(pair.0 >= 10 && pair.1 < 4, "got {:?}", pair);
        }

        #[test]
        fn vec_lengths_respected(v in small_vec()) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            for x in v {
                prop_assert!(x < 10);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn oneof_honours_arms(x in prop_oneof![4 => 0u32..5, 1 => Just(99u32)]) {
            prop_assert!(x < 5u32 || x == 99u32);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1000, 3..10);
        let a = s.sample(&mut crate::rng_for_test("t", 0));
        let b = s.sample(&mut crate::rng_for_test("t", 0));
        let c = s.sample(&mut crate::rng_for_test("t", 1));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(1))]
        #[allow(dead_code)]
        fn always_fails(x in 0u32..1) {
            prop_assert!(x > 0u32, "x was {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_inputs() {
        always_fails();
    }
}
