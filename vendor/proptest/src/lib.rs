//! Offline stand-in for `proptest`, covering the subset this workspace
//! uses: the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! [`strategy::Strategy`] with `prop_map`, range/tuple/[`Just`] strategies,
//! [`arbitrary::any`], [`collection::vec`], [`prop_oneof!`], and the
//! `prop_assert*` macros.
//!
//! Unlike the original stub, this version implements the two upstream
//! behaviours the differential harness needs:
//!
//! * **Shrinking.** Every draw a strategy makes from its [`TestRng`] is
//!   recorded on an integer *choice tape*. When a case fails, the runner
//!   minimises the tape — chunk deletion plus per-entry binary search
//!   toward zero, accepting a candidate only if it still fails *and* is
//!   strictly simpler in shortlex order (so shrinking always terminates) —
//!   and reports the minimal counterexample. Range strategies map raw
//!   draws monotonically (widening multiply), so smaller tape entries mean
//!   smaller sampled values.
//! * **`.proptest-regressions` persistence.** Failures append a
//!   `cc <hex tape>` line next to the test's source file, and every stored
//!   tape is replayed before any random case on subsequent runs — the same
//!   file-level semantics as upstream (each entry is tried by every test
//!   in the file; foreign entries simply generate a passing case).
//!
//! Remaining differences from upstream, by design: sampling is
//! deterministic (per-test FNV-1a seeds, no OS entropy), the tape encoding
//! is this stub's own (legacy upstream hex blobs still parse — they replay
//! as a short tape prefix), and the default case count honours a
//! `PROPTEST_CASES` environment override (upstream's default of 256
//! otherwise).

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The RNG handed to strategies: replays a recorded choice tape (falling
/// back to a seeded fresh stream when the tape runs out) and records every
/// draw it actually hands out.
///
/// The fallback must be a real RNG rather than a constant: the vendored
/// `rand` rejection-samples bounded draws (Lemire), and a constant zero
/// stream can be rejected forever for non-power-of-two bounds.
pub struct TestRng {
    tape: Vec<u64>,
    pos: usize,
    fresh: StdRng,
    consumed: Vec<u64>,
}

impl TestRng {
    /// Purely random stream (records everything drawn).
    pub fn random(seed: u64) -> Self {
        Self::replay(Vec::new(), seed)
    }

    /// Replay `tape`, then continue from a stream seeded with `seed`.
    pub fn replay(tape: Vec<u64>, seed: u64) -> Self {
        Self {
            tape,
            pos: 0,
            fresh: StdRng::seed_from_u64(seed),
            consumed: Vec::new(),
        }
    }

    /// Every draw handed out so far, in order — the canonical tape of the
    /// run (replaying it reproduces the same values exactly).
    pub fn consumed(&self) -> &[u64] {
        &self.consumed
    }

    /// Consume the recorder.
    pub fn into_consumed(self) -> Vec<u64> {
        self.consumed
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        let v = if self.pos < self.tape.len() {
            let v = self.tape[self.pos];
            self.pos += 1;
            v
        } else {
            self.fresh.next_u64()
        };
        self.consumed.push(v);
        v
    }
}

pub mod test_runner {
    /// Why a single case failed.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        pub message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Parse a `PROPTEST_CASES`-style override; falls back to upstream's
    /// default of 256 on absent/empty/zero/garbage values.
    pub fn cases_from_env(value: Option<&str>) -> u32 {
        value
            .and_then(|s| s.trim().parse::<u32>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(256)
    }

    /// Per-block configuration (only the knobs this workspace touches).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Random cases per property (after any persisted replays).
        pub cases: u32,
        /// Cap on candidate executions during shrinking.
        pub max_shrink_iters: u32,
        /// Append new failures to the source file's `.proptest-regressions`.
        pub persist: bool,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: cases_from_env(std::env::var("PROPTEST_CASES").ok().as_deref()),
                max_shrink_iters: 1024,
                persist: true,
            }
        }
    }
}

pub mod strategy {
    use super::TestRng;

    /// A generator of values. Object-safe: the combinators are `Sized`-only.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { strategy: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) strategy: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.strategy.sample(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// Weighted union of boxed strategies — the engine behind
    /// [`crate::prop_oneof!`].
    pub struct OneOf<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> OneOf<T> {
        /// # Panics
        /// Panics if `arms` is empty or all weights are zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total_weight: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total_weight > 0, "prop_oneof: no positive-weight arm");
            Self { arms, total_weight }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rand::Rng::gen_range(rng, 0..self.total_weight);
            for (weight, strategy) in &self.arms {
                if pick < *weight as u64 {
                    return strategy.sample(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("weights changed mid-sample")
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Full-domain uniform sampling for primitives.
    pub trait Arbitrary: Sized {
        fn arbitrary_sample(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut TestRng) -> Self {
                    rand::Rng::gen(rng)
                }
            }
        )*};
    }
    impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `vec(element, 1..200)` — a `Vec` of `element` samples with length
    /// uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(rng, self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// FNV-1a of a test's name — the base of its deterministic seed schedule.
fn fnv1a(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Parse a `PROPTEST_SEED`-style salt (decimal or `0x`-prefixed hex);
/// absent/garbage values mean 0 — the standard deterministic schedule.
pub fn salt_from_env(value: Option<&str>) -> u64 {
    value
        .map(str::trim)
        .and_then(|s| match s.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16).ok(),
            None => s.parse::<u64>().ok(),
        })
        .unwrap_or(0)
}

/// Global seed salt, read once from `PROPTEST_SEED`. A non-zero salt is
/// XORed into every per-case seed, letting CI explore a fresh universe of
/// cases per run while staying reproducible: re-exporting the printed salt
/// replays the exact schedule. Persisted regression tapes are unaffected —
/// a complete tape never consults the seeded fallback RNG.
pub fn seed_salt() -> u64 {
    static SALT: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *SALT.get_or_init(|| salt_from_env(std::env::var("PROPTEST_SEED").ok().as_deref()))
}

/// Seed for one `(test, case)` pair.
pub fn seed_for(name: &str, case: u32) -> u64 {
    fnv1a(name) ^ ((case as u64) << 32) ^ seed_salt()
}

/// Seed a test's RNG deterministically from its name.
pub fn rng_for_test(name: &str, case: u32) -> TestRng {
    TestRng::random(seed_for(name, case))
}

pub mod persistence {
    //! `.proptest-regressions` files: one `cc <hex>` line per known
    //! failure, stored next to the test's source file, replayed before any
    //! random case and appended to when a new failure shrinks.

    use std::path::{Path, PathBuf};

    const HEADER: &str = "\
# Seeds for failure cases proptest has generated in the past. It is
# automatically read and these particular cases re-run before any
# novel cases are generated.
#
# It is recommended to check this file in to source control so that
# everyone who runs the test benefits from these saved cases.
";

    /// Resolve the regressions file for a source file. `file` is the
    /// compile-time `file!()` path (relative to the workspace root);
    /// `manifest_dir` is the invoking crate's `CARGO_MANIFEST_DIR`. The
    /// source is searched for under the manifest dir and a few ancestors
    /// (workspace layouts invoke rustc from the workspace root, so
    /// `file!()` is not always manifest-relative).
    pub fn locate(file: &str, manifest_dir: &str) -> Option<PathBuf> {
        let mut base = PathBuf::from(manifest_dir);
        for _ in 0..4 {
            let source = base.join(file);
            if source.is_file() {
                return Some(source.with_extension("proptest-regressions"));
            }
            if !base.pop() {
                break;
            }
        }
        None
    }

    /// Hex-encode a tape, 16 digits per entry.
    pub fn encode(tape: &[u64]) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(tape.len() * 16);
        for &w in tape {
            let _ = write!(s, "{w:016x}");
        }
        s
    }

    /// Decode a hex blob into a tape. Accepts any blob whose length is a
    /// positive multiple of 16 hex digits — including legacy upstream
    /// 32-byte seeds, which replay as a 4-entry tape prefix.
    pub fn decode(hex: &str) -> Option<Vec<u64>> {
        if hex.is_empty() || !hex.len().is_multiple_of(16) {
            return None;
        }
        hex.as_bytes()
            .chunks(16)
            .map(|c| u64::from_str_radix(std::str::from_utf8(c).ok()?, 16).ok())
            .collect()
    }

    /// All stored tapes, in file order. Missing or unreadable files load
    /// as empty; malformed lines are skipped.
    pub fn load(path: &Path) -> Vec<Vec<u64>> {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Vec::new();
        };
        text.lines()
            .filter_map(|line| {
                let rest = line.trim().strip_prefix("cc ")?;
                let blob = rest.split_whitespace().next()?;
                decode(blob)
            })
            .collect()
    }

    /// Append one failure (deduplicated against existing entries); creates
    /// the file with the conventional header when absent. Best-effort: IO
    /// errors are swallowed — persistence must never mask the test failure
    /// itself.
    pub fn append(path: &Path, tape: &[u64], inputs: &str) {
        if load(path).iter().any(|t| t == tape) {
            return;
        }
        let mut text = match std::fs::read_to_string(path) {
            Ok(t) if !t.is_empty() => {
                let mut t = t;
                if !t.ends_with('\n') {
                    t.push('\n');
                }
                t
            }
            _ => HEADER.to_string(),
        };
        text.push_str(&format!("cc {} # shrinks to {}\n", encode(tape), inputs));
        let _ = std::fs::write(path, text);
    }
}

/// A shrunk property failure, as found by [`check_property`].
#[derive(Debug)]
pub struct Failure {
    /// The (shrunk) case's error message.
    pub message: String,
    /// `Debug` rendering of the minimal inputs.
    pub inputs: String,
    /// The minimal choice tape (replayable via [`TestRng::replay`]).
    pub tape: Vec<u64>,
    /// Where the failure came from (`case k/N` or a persisted entry).
    pub origin: String,
    /// Candidate executions the shrinker spent.
    pub shrink_runs: u32,
    /// Regressions file the failure was appended to, if any.
    pub persisted: Option<std::path::PathBuf>,
}

/// Strictly-simpler-than in shortlex order — the shrinker's acceptance
/// criterion, and the reason it terminates.
fn simpler(a: &[u64], b: &[u64]) -> bool {
    (a.len(), a) < (b.len(), b)
}

/// Run `sample`+`test` once. `tape = None` draws fresh from `seed`;
/// `Some` replays (with `seed` as the beyond-tape fallback). Panics in the
/// test body count as failures (and therefore shrink).
fn run_once<V>(
    tape: Option<&[u64]>,
    seed: u64,
    sample: &impl Fn(&mut TestRng) -> V,
    test: &impl Fn(V) -> test_runner::TestCaseResult,
) -> (Vec<u64>, Option<test_runner::TestCaseError>) {
    let mut rng = match tape {
        Some(t) => TestRng::replay(t.to_vec(), seed),
        None => TestRng::random(seed),
    };
    let value = sample(&mut rng);
    let consumed = rng.into_consumed();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(value)));
    let error = match outcome {
        Ok(Ok(())) => None,
        Ok(Err(e)) => Some(e),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("test body panicked");
            Some(test_runner::TestCaseError::fail(format!("panic: {msg}")))
        }
    };
    (consumed, error)
}

/// Minimise a failing tape: alternating chunk-deletion and per-entry
/// binary-search-toward-zero passes, repeated to fixpoint (or until
/// `budget` candidate runs). A candidate is accepted only if it still
/// fails and its *consumed* tape is strictly simpler than the incumbent.
fn shrink_tape<V>(
    initial: Vec<u64>,
    initial_error: test_runner::TestCaseError,
    seed: u64,
    budget: u32,
    sample: &impl Fn(&mut TestRng) -> V,
    test: &impl Fn(V) -> test_runner::TestCaseResult,
) -> (Vec<u64>, test_runner::TestCaseError, u32) {
    let mut best = initial;
    let mut best_error = initial_error;
    let mut runs: u32 = 0;

    macro_rules! try_accept {
        ($cand:expr) => {{
            runs += 1;
            let (consumed, error) = run_once(Some(&$cand), seed, sample, test);
            match error {
                Some(e) if simpler(&consumed, &best) => {
                    best = consumed;
                    best_error = e;
                    true
                }
                _ => false,
            }
        }};
    }

    loop {
        let mut improved = false;

        // Deletion pass: drop chunks, largest first — shortens vectors and
        // removes whole sub-values that drifted out of alignment.
        let mut size = (best.len() / 2).max(1);
        loop {
            let mut start = 0;
            while start < best.len() && runs < budget {
                let end = (start + size).min(best.len());
                let mut cand = Vec::with_capacity(best.len() - (end - start));
                cand.extend_from_slice(&best[..start]);
                cand.extend_from_slice(&best[end..]);
                if try_accept!(cand) {
                    improved = true;
                    // best changed; retry the same offset against it.
                } else {
                    start += size;
                }
            }
            if size == 1 || runs >= budget {
                break;
            }
            size /= 2;
        }

        // Minimisation pass: per entry, try zero outright, else binary
        // search the smallest still-failing value. Range draws map raw
        // words monotonically (widening multiply), so this is a binary
        // search over the sampled value too.
        let mut i = 0;
        while i < best.len() && runs < budget {
            if best[i] != 0 {
                let mut cand = best.clone();
                cand[i] = 0;
                if try_accept!(cand) {
                    improved = true;
                } else {
                    // Invariant: `lo` passes (or misaligns), best[i] fails.
                    let mut lo = 0u64;
                    while i < best.len() && best[i] - lo > 1 && runs < budget {
                        let mid = lo + (best[i] - lo) / 2;
                        let mut cand = best.clone();
                        cand[i] = mid;
                        if try_accept!(cand) {
                            improved = true;
                        } else {
                            lo = mid;
                        }
                    }
                }
            }
            i += 1;
        }

        if !improved || runs >= budget {
            break;
        }
    }
    (best, best_error, runs)
}

/// Execute one property: replay persisted regressions, then run random
/// cases; on the first failure, shrink it, persist the minimal tape (when
/// configured and a regressions path is known) and return the [`Failure`].
/// Returns `None` when every case passes.
pub fn check_property<V: std::fmt::Debug>(
    name: &str,
    regressions: Option<std::path::PathBuf>,
    config: &test_runner::ProptestConfig,
    sample: impl Fn(&mut TestRng) -> V,
    test: impl Fn(V) -> test_runner::TestCaseResult,
) -> Option<Failure> {
    let mut schedule: Vec<(Option<Vec<u64>>, u64, String)> = Vec::new();
    if let Some(path) = &regressions {
        for (idx, tape) in persistence::load(path).into_iter().enumerate() {
            schedule.push((
                Some(tape),
                seed_for(name, 0),
                format!("persisted regression {}", idx + 1),
            ));
        }
    }
    for case in 0..config.cases {
        schedule.push((
            None,
            seed_for(name, case),
            format!("case {}/{}", case + 1, config.cases),
        ));
    }

    for (tape, seed, origin) in schedule {
        let (consumed, error) = run_once(tape.as_deref(), seed, &sample, &test);
        let Some(error) = error else {
            continue;
        };
        let (tape, error, shrink_runs) = shrink_tape(
            consumed,
            error,
            seed,
            config.max_shrink_iters,
            &sample,
            &test,
        );
        // Re-sample the minimal tape for the input report (the tape is
        // canonical, so this replays exactly).
        let mut rng = TestRng::replay(tape.clone(), seed);
        let minimal = sample(&mut rng);
        let inputs = format!("{minimal:#?}");
        let mut persisted = None;
        if config.persist {
            if let Some(path) = &regressions {
                persistence::append(path, &tape, &format!("{minimal:?}"));
                persisted = Some(path.clone());
            }
        }
        return Some(Failure {
            message: error.message,
            inputs,
            tape,
            origin,
            shrink_runs,
            persisted,
        });
    }
    None
}

/// [`check_property`], panicking with a diagnostic on failure — the entry
/// point the [`proptest!`] macro expands to.
pub fn run_property<V: std::fmt::Debug>(
    name: &str,
    regressions: Option<std::path::PathBuf>,
    config: &test_runner::ProptestConfig,
    sample: impl Fn(&mut TestRng) -> V,
    test: impl Fn(V) -> test_runner::TestCaseResult,
) {
    if let Some(f) = check_property(name, regressions, config, sample, test) {
        let persisted = match &f.persisted {
            Some(p) => format!("\npersisted to {}", p.display()),
            None => String::new(),
        };
        panic!(
            "proptest case failed ({origin}): {message}\n\
             minimal inputs: {inputs}\n\
             shrunk in {runs} runs; minimal tape: cc {tape}{persisted}",
            origin = f.origin,
            message = f.message,
            inputs = f.inputs,
            runs = f.shrink_runs,
            tape = persistence::encode(&f.tape),
        );
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((
                $weight as u32,
                ::std::boxed::Box::new($strategy) as $crate::strategy::BoxedStrategy<_>,
            )),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr); $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let strategies = ($($strategy,)+);
            $crate::run_property(
                stringify!($name),
                $crate::persistence::locate(file!(), env!("CARGO_MANIFEST_DIR")),
                &config,
                |proptest_rng| $crate::strategy::Strategy::sample(&strategies, proptest_rng),
                |($($arg,)+)| -> $crate::test_runner::TestCaseResult {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::cases_from_env;
    use crate::{salt_from_env, seed_for};

    fn small_vec() -> impl Strategy<Value = Vec<u32>> {
        crate::collection::vec(0u32..10, 1..5)
    }

    /// A config that never writes regressions files from the stub's own
    /// test suite.
    fn quiet(cases: u32) -> ProptestConfig {
        ProptestConfig {
            persist: false,
            ..ProptestConfig::with_cases(cases)
        }
    }

    proptest! {
        #![proptest_config(quiet(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in 0.25f64..=0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..=0.75).contains(&f));
        }

        #[test]
        fn tuples_and_maps_compose(pair in (0u8..4, 10u8..14).prop_map(|(a, b)| (b, a))) {
            prop_assert!(pair.0 >= 10 && pair.1 < 4, "got {:?}", pair);
        }

        #[test]
        fn vec_lengths_respected(v in small_vec()) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            for x in v {
                prop_assert!(x < 10);
            }
        }
    }

    proptest! {
        #![proptest_config(quiet(8))]

        #[test]
        fn oneof_honours_arms(x in prop_oneof![4 => 0u32..5, 1 => Just(99u32)]) {
            prop_assert!(x < 5u32 || x == 99u32);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1000, 3..10);
        let a = s.sample(&mut crate::rng_for_test("t", 0));
        let b = s.sample(&mut crate::rng_for_test("t", 0));
        let c = s.sample(&mut crate::rng_for_test("t", 1));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn replaying_the_consumed_tape_reproduces_the_value() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1000, 3..10);
        let mut rng = crate::rng_for_test("replay", 7);
        let original = s.sample(&mut rng);
        let tape = rng.into_consumed();
        let mut replayed = crate::TestRng::replay(tape, 0);
        assert_eq!(s.sample(&mut replayed), original);
    }

    proptest! {
        #![proptest_config(quiet(1))]
        #[allow(dead_code)]
        fn always_fails(x in 0u32..1) {
            prop_assert!(x > 0u32, "x was {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_inputs() {
        always_fails();
    }

    /// The documented smallest counterexample: `x < 10` over `0u64..256`
    /// must shrink to exactly `x == 10`. The bound is a power of two, so
    /// the raw-word → value map is monotone and rejection-free; binary
    /// search over the single tape entry lands on the boundary exactly.
    #[test]
    fn shrinks_scalar_to_smallest_counterexample() {
        use crate::strategy::Strategy as _;
        let failure = crate::check_property(
            "shrinks_scalar",
            None,
            &quiet(64),
            |rng| (0u64..256).sample(rng),
            |x| {
                if x < 10 {
                    Ok(())
                } else {
                    Err(TestCaseError::fail(format!("{x} >= 10")))
                }
            },
        )
        .expect("property must fail");
        let mut rng = crate::TestRng::replay(failure.tape.clone(), 0);
        let minimal = (0u64..256).sample(&mut rng);
        assert_eq!(minimal, 10, "shrank to {} instead of 10", minimal);
        assert_eq!(failure.inputs, "10");
    }

    /// Vector minimisation: "some element >= 8" over `vec(0u32..16, 1..9)`
    /// must shrink to the single-element vector `[8]` (deletion passes
    /// remove the innocent elements, the length entry shrinks to 1, and
    /// the surviving element binary-searches to the boundary).
    #[test]
    fn shrinks_vec_to_single_boundary_element() {
        use crate::strategy::Strategy as _;
        let strategy = crate::collection::vec(0u32..16, 1..9);
        let failure = crate::check_property(
            "shrinks_vec",
            None,
            &quiet(64),
            |rng| strategy.sample(rng),
            |v| {
                if v.iter().all(|&x| x < 8) {
                    Ok(())
                } else {
                    Err(TestCaseError::fail("element >= 8"))
                }
            },
        )
        .expect("property must fail");
        let mut rng = crate::TestRng::replay(failure.tape.clone(), 0);
        let minimal = strategy.sample(&mut rng);
        assert_eq!(minimal, vec![8], "shrank to {:?}", minimal);
    }

    /// Panicking test bodies are failures too, and shrink the same way.
    #[test]
    fn panics_are_caught_and_shrunk() {
        use crate::strategy::Strategy as _;
        let failure = crate::check_property(
            "panics_shrink",
            None,
            &quiet(64),
            |rng| (0u64..256).sample(rng),
            |x| {
                assert!(x < 100, "boom at {x}");
                Ok(())
            },
        )
        .expect("property must fail");
        assert!(failure.message.contains("panic"), "{}", failure.message);
        let mut rng = crate::TestRng::replay(failure.tape.clone(), 0);
        assert_eq!((0u64..256).sample(&mut rng), 100);
    }

    /// A failure lands in the regressions file, and the stored tape is
    /// replayed (first, before any random case) on the next run.
    #[test]
    fn regressions_file_roundtrip() {
        use crate::strategy::Strategy as _;
        let path = std::env::temp_dir().join(format!(
            "proptest-stub-roundtrip-{}.proptest-regressions",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);

        let persist = ProptestConfig::with_cases(64);
        let failure = crate::check_property(
            "roundtrip",
            Some(path.clone()),
            &persist,
            |rng| (0u64..256).sample(rng),
            |x| {
                if x < 10 {
                    Ok(())
                } else {
                    Err(TestCaseError::fail("too big"))
                }
            },
        )
        .expect("property must fail");
        assert_eq!(failure.persisted.as_deref(), Some(path.as_path()));
        let stored = crate::persistence::load(&path);
        assert_eq!(stored, vec![failure.tape.clone()]);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("# shrinks to 10"), "{text}");

        // Next run: the stored tape is executed before any random case.
        let first_seen = std::cell::Cell::new(None);
        let outcome = crate::check_property(
            "roundtrip",
            Some(path.clone()),
            &persist,
            |rng| (0u64..256).sample(rng),
            |x| {
                if first_seen.get().is_none() {
                    first_seen.set(Some(x));
                }
                Ok(())
            },
        );
        assert!(outcome.is_none());
        assert_eq!(
            first_seen.get(),
            Some(10),
            "persisted case not replayed first"
        );

        // A replayed failure does not duplicate its entry.
        let again = crate::check_property(
            "roundtrip",
            Some(path.clone()),
            &persist,
            |rng| (0u64..256).sample(rng),
            |x| {
                if x < 10 {
                    Ok(())
                } else {
                    Err(TestCaseError::fail("too big"))
                }
            },
        )
        .expect("persisted case must still fail");
        assert!(again.origin.contains("persisted"), "{}", again.origin);
        assert_eq!(crate::persistence::load(&path).len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn legacy_upstream_blobs_decode_as_tapes() {
        // 64 hex chars (an upstream 32-byte seed) → a 4-word tape.
        let blob = "06c814b6efbf5f6a3880758e9687b8235ec1947e84254b0f07846cd6412a1d49";
        let tape = crate::persistence::decode(blob).expect("must decode");
        assert_eq!(tape.len(), 4);
        assert_eq!(tape[0], 0x06c8_14b6_efbf_5f6a);
        assert!(crate::persistence::decode("xyz").is_none());
        assert!(crate::persistence::decode("0123").is_none());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let tape = vec![0u64, 1, u64::MAX, 0xdead_beef];
        let hex = crate::persistence::encode(&tape);
        assert_eq!(crate::persistence::decode(&hex), Some(tape));
    }

    #[test]
    fn default_cases_honour_env_override() {
        assert_eq!(cases_from_env(None), 256);
        assert_eq!(cases_from_env(Some("64")), 64);
        assert_eq!(cases_from_env(Some(" 12 ")), 12);
        assert_eq!(cases_from_env(Some("0")), 256);
        assert_eq!(cases_from_env(Some("many")), 256);
    }

    #[test]
    fn seed_salt_parses_and_perturbs_every_case() {
        assert_eq!(salt_from_env(None), 0);
        assert_eq!(salt_from_env(Some("12345")), 12345);
        assert_eq!(salt_from_env(Some(" 0xdeadbeef ")), 0xdead_beef);
        assert_eq!(salt_from_env(Some("garbage")), 0);
        // Whatever the salt, the schedule still separates cases and tests.
        assert_ne!(seed_for("t", 0), seed_for("t", 1));
        assert_ne!(seed_for("a", 0), seed_for("b", 0));
    }

    #[test]
    fn locate_finds_sources_under_ancestors() {
        // This very file, as rustc names it from the workspace root.
        let manifest = env!("CARGO_MANIFEST_DIR");
        let direct = crate::persistence::locate("src/lib.rs", manifest).unwrap();
        assert!(direct.ends_with("src/lib.proptest-regressions"));
        let nested = crate::persistence::locate("vendor/proptest/src/lib.rs", manifest);
        assert!(nested.is_some(), "ancestor walk failed");
        assert!(crate::persistence::locate("no/such/file.rs", manifest).is_none());
    }
}
