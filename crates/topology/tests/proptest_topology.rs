//! Property-based tests for the topology substrate.

use cdn_topology::gen::transit_stub::{TransitStubConfig, TransitStubTopology};
use cdn_topology::shortest_path::{bfs_hops, dijkstra, DistanceMatrix};
use cdn_topology::{GraphBuilder, NodeId};
use proptest::prelude::*;

/// Arbitrary connected graph: a random tree over `n` nodes plus extra edges.
fn connected_graph() -> impl Strategy<Value = cdn_topology::Graph> {
    (2usize..40, any::<u64>()).prop_map(|(n, seed)| {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for v in 1..n {
            let parent = rng.gen_range(0..v);
            b.add_edge(parent as NodeId, v as NodeId);
        }
        let extra = rng.gen_range(0..n);
        for _ in 0..extra {
            let a = rng.gen_range(0..n) as NodeId;
            let c = rng.gen_range(0..n) as NodeId;
            if a != c {
                b.add_edge(a, c);
            }
        }
        b.build()
    })
}

proptest! {
    #[test]
    fn bfs_distances_symmetric(g in connected_graph()) {
        let n = g.n_nodes();
        for s in 0..n {
            let ds = bfs_hops(&g, s as NodeId);
            for (t, &d_st) in ds.iter().enumerate() {
                let dt = bfs_hops(&g, t as NodeId);
                prop_assert_eq!(d_st, dt[s]);
            }
        }
    }

    #[test]
    fn bfs_satisfies_triangle_inequality(g in connected_graph()) {
        let n = g.n_nodes();
        let all: Vec<Vec<u32>> = (0..n).map(|s| bfs_hops(&g, s as NodeId)).collect();
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    prop_assert!(all[a][c] <= all[a][b] + all[b][c]);
                }
            }
        }
    }

    #[test]
    fn adjacent_nodes_distance_one(g in connected_graph()) {
        for v in 0..g.n_nodes() as NodeId {
            let d = bfs_hops(&g, v);
            for &w in g.neighbors(v) {
                prop_assert_eq!(d[w as usize], 1);
            }
        }
    }

    #[test]
    fn dijkstra_equals_bfs_on_unit_weights(g in connected_graph()) {
        for v in 0..g.n_nodes() as NodeId {
            prop_assert_eq!(bfs_hops(&g, v), dijkstra(&g, v));
        }
    }

    #[test]
    fn distance_matrix_consistent_with_bfs(g in connected_graph(), seed in any::<u64>()) {
        use rand::rngs::StdRng;
        use rand::{seq::SliceRandom, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut nodes: Vec<NodeId> = (0..g.n_nodes() as NodeId).collect();
        nodes.shuffle(&mut rng);
        let hosts = &nodes[..nodes.len().min(5)];
        let m = DistanceMatrix::compute(&g, hosts);
        for (h, &src) in hosts.iter().enumerate() {
            prop_assert_eq!(m.row(h), &bfs_hops(&g, src)[..]);
        }
    }

    #[test]
    fn transit_stub_generation_always_connected(seed in any::<u64>(),
                                                t in 1usize..3,
                                                nt in 1usize..4,
                                                s in 1usize..4,
                                                ns in 1usize..6) {
        let cfg = TransitStubConfig {
            transit_domains: t,
            transit_nodes_per_domain: nt,
            stubs_per_transit_node: s,
            stub_nodes_per_domain: ns,
            transit_edge_prob: 0.3,
            stub_edge_prob: 0.3,
            extra_transit_domain_edges: 1,
            multihome_prob: 0.1,
        };
        let topo = TransitStubTopology::generate(&cfg, seed);
        prop_assert!(topo.graph.is_connected());
        prop_assert_eq!(topo.graph.n_nodes(), cfg.total_nodes());
    }
}
