//! Compact undirected graph in compressed-sparse-row (CSR) form.
//!
//! The topology generators accumulate edges in a [`GraphBuilder`] and then
//! freeze them into a [`Graph`], whose adjacency is two flat arrays. All
//! shortest-path work in this workspace iterates neighbour lists in tight
//! loops, so the CSR layout (one indirection, cache-friendly) matters more
//! than mutation ergonomics.

use crate::Hops;

/// Index of a node. Kept at 32 bits: the largest graphs in the reproduction
/// are a few thousand nodes, and halving the index size keeps the CSR arrays
/// and the distance matrices compact.
pub type NodeId = u32;

/// An undirected edge with a hop weight (always 1 for the paper's graphs,
/// but kept general so weighted variants can reuse the machinery).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    pub a: NodeId,
    pub b: NodeId,
    pub weight: Hops,
}

/// Incremental edge accumulator. Duplicate edges and self-loops are rejected
/// at insertion time so generators cannot silently double-connect domains.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n_nodes: usize,
    edges: Vec<Edge>,
    seen: std::collections::HashSet<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Create a builder for a graph with `n_nodes` nodes and no edges.
    pub fn new(n_nodes: usize) -> Self {
        Self {
            n_nodes,
            edges: Vec::new(),
            seen: std::collections::HashSet::new(),
        }
    }

    /// Number of nodes the final graph will have.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of distinct edges added so far.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Append `extra` fresh nodes, returning the id of the first new node.
    pub fn grow(&mut self, extra: usize) -> NodeId {
        let first = self.n_nodes as NodeId;
        self.n_nodes += extra;
        first
    }

    /// Add an undirected unit-weight edge. Returns `false` (and adds
    /// nothing) if the edge is a self-loop or already present.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        self.add_weighted_edge(a, b, 1)
    }

    /// Add an undirected edge with an explicit weight.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_weighted_edge(&mut self, a: NodeId, b: NodeId, weight: Hops) -> bool {
        assert!(
            (a as usize) < self.n_nodes && (b as usize) < self.n_nodes,
            "edge ({a}, {b}) out of range for {} nodes",
            self.n_nodes
        );
        if a == b {
            return false;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if !self.seen.insert(key) {
            return false;
        }
        self.edges.push(Edge { a, b, weight });
        true
    }

    /// True if the undirected edge `(a, b)` has already been added.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        let key = if a < b { (a, b) } else { (b, a) };
        self.seen.contains(&key)
    }

    /// Freeze into CSR form.
    pub fn build(self) -> Graph {
        let n = self.n_nodes;
        let mut degree = vec![0usize; n];
        for e in &self.edges {
            degree[e.a as usize] += 1;
            degree[e.b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets[..n].to_vec();
        let mut targets = vec![0 as NodeId; acc];
        let mut weights = vec![0 as Hops; acc];
        for e in &self.edges {
            let ca = cursor[e.a as usize];
            targets[ca] = e.b;
            weights[ca] = e.weight;
            cursor[e.a as usize] += 1;
            let cb = cursor[e.b as usize];
            targets[cb] = e.a;
            weights[cb] = e.weight;
            cursor[e.b as usize] += 1;
        }
        Graph {
            offsets,
            targets,
            weights,
            n_edges: self.edges.len(),
        }
    }
}

/// Immutable undirected graph in CSR form.
#[derive(Debug, Clone)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `targets`/`weights` for node `v`.
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
    weights: Vec<Hops>,
    n_edges: usize,
}

impl Graph {
    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// Degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Neighbours of `v` (targets only).
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Neighbours of `v` paired with edge weights.
    pub fn neighbors_weighted(&self, v: NodeId) -> impl Iterator<Item = (NodeId, Hops)> + '_ {
        let range = self.offsets[v as usize]..self.offsets[v as usize + 1];
        self.targets[range.clone()]
            .iter()
            .copied()
            .zip(self.weights[range].iter().copied())
    }

    /// True if every edge has weight 1, enabling the BFS fast path.
    pub fn is_unit_weight(&self) -> bool {
        self.weights.iter().all(|&w| w == 1)
    }

    /// True if the graph is connected (trivially true for empty graphs).
    pub fn is_connected(&self) -> bool {
        let n = self.n_nodes();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0 as NodeId];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(v) = stack.pop() {
            for &w in self.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 1..n {
            b.add_edge((i - 1) as NodeId, i as NodeId);
        }
        b.build()
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.n_nodes(), 0);
        assert_eq!(g.n_edges(), 0);
        assert!(g.is_connected());
    }

    #[test]
    fn singleton_graph() {
        let g = GraphBuilder::new(1).build();
        assert_eq!(g.n_nodes(), 1);
        assert_eq!(g.degree(0), 0);
        assert!(g.is_connected());
    }

    #[test]
    fn path_graph_structure() {
        let g = path_graph(5);
        assert_eq!(g.n_nodes(), 5);
        assert_eq!(g.n_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert!(g.is_connected());
        assert!(g.is_unit_weight());
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        let g = b.build();
        assert!(!g.is_connected());
    }

    #[test]
    fn self_loops_rejected() {
        let mut b = GraphBuilder::new(3);
        assert!(!b.add_edge(1, 1));
        assert_eq!(b.n_edges(), 0);
    }

    #[test]
    fn duplicate_edges_rejected_in_both_orientations() {
        let mut b = GraphBuilder::new(3);
        assert!(b.add_edge(0, 1));
        assert!(!b.add_edge(0, 1));
        assert!(!b.add_edge(1, 0));
        assert_eq!(b.n_edges(), 1);
        assert!(b.has_edge(1, 0));
    }

    #[test]
    fn neighbors_are_symmetric() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(2, 3);
        let g = b.build();
        for v in 0..4u32 {
            for &w in g.neighbors(v) {
                assert!(g.neighbors(w).contains(&v), "{v} -> {w} not symmetric");
            }
        }
    }

    #[test]
    fn grow_appends_nodes() {
        let mut b = GraphBuilder::new(2);
        let first = b.grow(3);
        assert_eq!(first, 2);
        assert_eq!(b.n_nodes(), 5);
        assert!(b.add_edge(0, 4));
    }

    #[test]
    fn weighted_edges_round_trip() {
        let mut b = GraphBuilder::new(2);
        b.add_weighted_edge(0, 1, 7);
        let g = b.build();
        let (t, w) = g.neighbors_weighted(0).next().unwrap();
        assert_eq!((t, w), (1, 7));
        assert!(!g.is_unit_weight());
    }

    #[test]
    #[should_panic]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 5);
    }
}
