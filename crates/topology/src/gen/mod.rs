//! Random topology generators.
//!
//! * [`flat`] — flat random graphs (random tree + extra edges, Waxman-style
//!   probability), the building block for domains.
//! * [`transit_stub`] — the two-level transit-stub model of GT-ITM, which is
//!   what the paper generates its evaluation network with.

pub mod barabasi;
pub mod flat;
pub mod transit_stub;
