//! Barabási–Albert preferential-attachment graphs.
//!
//! The transit-stub model captures the Internet's administrative hierarchy;
//! preferential attachment captures its degree distribution (a few highly
//! connected hubs, many leaves). The paper evaluates only on transit-stub;
//! our `ablation_topology` benchmark re-runs the headline comparison on BA
//! graphs to check the conclusions do not hinge on the hierarchy.

use crate::graph::{Graph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the BA process.
#[derive(Debug, Clone, Copy)]
pub struct BarabasiAlbertConfig {
    /// Final number of nodes.
    pub n_nodes: usize,
    /// Edges each new node attaches with (`m` in the literature).
    pub edges_per_node: usize,
}

impl BarabasiAlbertConfig {
    fn validate(&self) {
        assert!(
            self.edges_per_node >= 1,
            "need at least one edge per new node"
        );
        assert!(
            self.n_nodes > self.edges_per_node,
            "need more nodes ({}) than edges per node ({})",
            self.n_nodes,
            self.edges_per_node
        );
    }
}

/// Generate a connected BA graph: start from a clique of `m + 1` seed
/// nodes, then attach each new node to `m` distinct existing nodes chosen
/// proportionally to their degree (implemented with the standard
/// repeated-endpoints trick: sample uniformly from the edge-endpoint list).
pub fn barabasi_albert(config: &BarabasiAlbertConfig, seed: u64) -> Graph {
    config.validate();
    let mut rng = StdRng::seed_from_u64(seed);
    let m = config.edges_per_node;
    let mut builder = GraphBuilder::new(config.n_nodes);

    // Endpoint multiset: each edge contributes both endpoints, so sampling
    // uniformly from it is degree-proportional sampling.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * config.n_nodes * m);

    // Seed clique over m + 1 nodes.
    let seed_nodes = m + 1;
    for a in 0..seed_nodes {
        for b in a + 1..seed_nodes {
            builder.add_edge(a as NodeId, b as NodeId);
            endpoints.push(a as NodeId);
            endpoints.push(b as NodeId);
        }
    }

    for v in seed_nodes..config.n_nodes {
        let mut targets = Vec::with_capacity(m);
        // Rejection-sample m distinct degree-proportional targets.
        while targets.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for t in targets {
            builder.add_edge(v as NodeId, t);
            endpoints.push(v as NodeId);
            endpoints.push(t);
        }
    }

    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(n: usize, m: usize) -> BarabasiAlbertConfig {
        BarabasiAlbertConfig {
            n_nodes: n,
            edges_per_node: m,
        }
    }

    #[test]
    fn node_and_edge_counts() {
        let cfg = config(100, 2);
        let g = barabasi_albert(&cfg, 1);
        assert_eq!(g.n_nodes(), 100);
        // Clique of 3 (3 edges) + 97 nodes × 2 edges.
        assert_eq!(g.n_edges(), 3 + 97 * 2);
    }

    #[test]
    fn always_connected() {
        for seed in 0..5 {
            let g = barabasi_albert(&config(200, 2), seed);
            assert!(g.is_connected(), "seed {seed}");
        }
    }

    #[test]
    fn produces_hubs() {
        // Preferential attachment must yield a max degree far above the
        // mean — the defining property versus uniform random graphs.
        let g = barabasi_albert(&config(500, 2), 3);
        let max_degree = (0..500u32).map(|v| g.degree(v)).max().unwrap();
        let mean_degree = 2.0 * g.n_edges() as f64 / 500.0;
        assert!(
            max_degree as f64 > 4.0 * mean_degree,
            "max {max_degree} vs mean {mean_degree}"
        );
    }

    #[test]
    fn minimum_degree_is_m() {
        let g = barabasi_albert(&config(300, 3), 4);
        for v in 0..300u32 {
            assert!(g.degree(v) >= 3, "node {v} degree {}", g.degree(v));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = barabasi_albert(&config(150, 2), 9);
        let b = barabasi_albert(&config(150, 2), 9);
        for v in 0..150u32 {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }

    #[test]
    #[should_panic]
    fn degenerate_config_panics() {
        barabasi_albert(&config(2, 2), 0);
    }
}
