//! Flat random graphs over a contiguous range of node ids.
//!
//! GT-ITM builds each domain as a connected random graph; we reproduce that
//! with a random spanning tree (guaranteeing connectivity) plus extra edges
//! added either uniformly with probability `p` (pure random model) or with a
//! Waxman probability `a * exp(-d / (b * L))` over random unit-square
//! coordinates (GT-ITM's default edge model).

use crate::graph::{GraphBuilder, NodeId};
use rand::Rng;

/// Connect `nodes` into a random spanning tree: each node after the first
/// attaches to a uniformly random earlier node. Produces trees with a
/// realistic mix of chains and fans.
pub fn connect_random_tree<R: Rng>(builder: &mut GraphBuilder, nodes: &[NodeId], rng: &mut R) {
    for (idx, &v) in nodes.iter().enumerate().skip(1) {
        let parent = nodes[rng.gen_range(0..idx)];
        builder.add_edge(parent, v);
    }
}

/// Add each absent pair edge independently with probability `p`.
pub fn add_uniform_edges<R: Rng>(
    builder: &mut GraphBuilder,
    nodes: &[NodeId],
    p: f64,
    rng: &mut R,
) -> usize {
    let mut added = 0;
    for (i, &a) in nodes.iter().enumerate() {
        for &b in &nodes[i + 1..] {
            if rng.gen_bool(p.clamp(0.0, 1.0)) && builder.add_edge(a, b) {
                added += 1;
            }
        }
    }
    added
}

/// Add extra edges with the Waxman model: nodes get uniform coordinates in
/// the unit square and each pair is connected with probability
/// `alpha * exp(-d / (beta * sqrt(2)))` where `d` is Euclidean distance.
/// Returns the number of edges added.
pub fn add_waxman_edges<R: Rng>(
    builder: &mut GraphBuilder,
    nodes: &[NodeId],
    alpha: f64,
    beta: f64,
    rng: &mut R,
) -> usize {
    let coords: Vec<(f64, f64)> = nodes.iter().map(|_| (rng.gen(), rng.gen())).collect();
    let max_d = std::f64::consts::SQRT_2;
    let mut added = 0;
    for i in 0..nodes.len() {
        for j in i + 1..nodes.len() {
            let dx = coords[i].0 - coords[j].0;
            let dy = coords[i].1 - coords[j].1;
            let d = (dx * dx + dy * dy).sqrt();
            let p = alpha * (-d / (beta * max_d)).exp();
            if rng.gen_bool(p.clamp(0.0, 1.0)) && builder.add_edge(nodes[i], nodes[j]) {
                added += 1;
            }
        }
    }
    added
}

/// Build a connected random domain: spanning tree plus uniform extra edges.
pub fn connected_random_domain<R: Rng>(
    builder: &mut GraphBuilder,
    nodes: &[NodeId],
    extra_edge_prob: f64,
    rng: &mut R,
) {
    connect_random_tree(builder, nodes, rng);
    add_uniform_edges(builder, nodes, extra_edge_prob, rng);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ids(n: usize) -> Vec<NodeId> {
        (0..n as NodeId).collect()
    }

    #[test]
    fn random_tree_is_connected_and_has_n_minus_one_edges() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 3, 10, 57] {
            let mut b = GraphBuilder::new(n);
            connect_random_tree(&mut b, &ids(n), &mut rng);
            assert_eq!(b.n_edges(), n.saturating_sub(1));
            assert!(b.build().is_connected(), "n = {n}");
        }
    }

    #[test]
    fn uniform_edges_probability_zero_adds_nothing() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut b = GraphBuilder::new(20);
        let added = add_uniform_edges(&mut b, &ids(20), 0.0, &mut rng);
        assert_eq!(added, 0);
    }

    #[test]
    fn uniform_edges_probability_one_completes_graph() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 12usize;
        let mut b = GraphBuilder::new(n);
        let added = add_uniform_edges(&mut b, &ids(n), 1.0, &mut rng);
        assert_eq!(added, n * (n - 1) / 2);
    }

    #[test]
    fn waxman_alpha_one_beta_huge_is_nearly_complete() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 10usize;
        let mut b = GraphBuilder::new(n);
        let added = add_waxman_edges(&mut b, &ids(n), 1.0, 1e9, &mut rng);
        assert_eq!(added, n * (n - 1) / 2);
    }

    #[test]
    fn waxman_alpha_zero_adds_nothing() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut b = GraphBuilder::new(10);
        assert_eq!(add_waxman_edges(&mut b, &ids(10), 0.0, 0.3, &mut rng), 0);
    }

    #[test]
    fn connected_domain_is_connected() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut b = GraphBuilder::new(30);
        connected_random_domain(&mut b, &ids(30), 0.15, &mut rng);
        assert!(b.build().is_connected());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let build = || {
            let mut rng = StdRng::seed_from_u64(42);
            let mut b = GraphBuilder::new(25);
            connected_random_domain(&mut b, &ids(25), 0.2, &mut rng);
            b.n_edges()
        };
        assert_eq!(build(), build());
    }
}
