//! Two-level transit-stub topology generator (GT-ITM model).
//!
//! The Internet-like structure GT-ITM produces: a small core of *transit
//! domains* (backbone ASes) whose nodes each attach a handful of *stub
//! domains* (edge networks). Traffic between stubs crosses the transit core,
//! which gives shortest-path hop counts their characteristic bimodal shape —
//! cheap within a stub, several hops across the core — and that shape is what
//! drives the replica-placement trade-offs in the paper.

use crate::gen::flat;
use crate::graph::{Graph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Role of a node in the two-level hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// Backbone node; `domain` is the transit-domain index.
    Transit { domain: u32 },
    /// Edge node; `domain` is the global stub-domain index.
    Stub { domain: u32 },
}

/// One stub domain: its member nodes and the transit node it hangs off.
#[derive(Debug, Clone)]
pub struct StubDomain {
    pub nodes: Vec<NodeId>,
    pub transit_attachment: NodeId,
}

/// Parameters of the generator. `paper_default` reproduces the scale used in
/// the paper's evaluation (a ~1560-node transit-stub graph; see DESIGN.md's
/// parameter-reconstruction table for how that number was recovered from the
/// OCR'd text).
#[derive(Debug, Clone, Copy)]
pub struct TransitStubConfig {
    /// Number of transit domains.
    pub transit_domains: usize,
    /// Nodes per transit domain.
    pub transit_nodes_per_domain: usize,
    /// Stub domains attached to each transit node.
    pub stubs_per_transit_node: usize,
    /// Nodes per stub domain.
    pub stub_nodes_per_domain: usize,
    /// Extra-edge probability inside a transit domain (beyond the tree).
    pub transit_edge_prob: f64,
    /// Extra-edge probability inside a stub domain (beyond the tree).
    pub stub_edge_prob: f64,
    /// Extra transit-domain-to-transit-domain edges beyond the spanning tree.
    pub extra_transit_domain_edges: usize,
    /// Probability that a stub domain gets a second attachment to a random
    /// transit node (multi-homing).
    pub multihome_prob: f64,
}

impl TransitStubConfig {
    /// The evaluation-scale configuration: 4 transit domains of 6 nodes,
    /// 4 stub domains per transit node, 16 nodes per stub domain:
    /// `4*6 + 4*6*4*16 = 1560` nodes.
    pub fn paper_default() -> Self {
        Self {
            transit_domains: 4,
            transit_nodes_per_domain: 6,
            stubs_per_transit_node: 4,
            stub_nodes_per_domain: 16,
            transit_edge_prob: 0.5,
            stub_edge_prob: 0.2,
            extra_transit_domain_edges: 2,
            multihome_prob: 0.05,
        }
    }

    /// The internet-scale tier: 8 transit domains of 8 nodes, 32 stub
    /// domains per transit node, 4 nodes per stub domain:
    /// `8*8 + 8*8*32*4 = 8256` nodes and 2048 stub domains — enough to
    /// host thousands of servers in distinct stub domains.
    pub fn large() -> Self {
        Self {
            transit_domains: 8,
            transit_nodes_per_domain: 8,
            stubs_per_transit_node: 32,
            stub_nodes_per_domain: 4,
            transit_edge_prob: 0.5,
            stub_edge_prob: 0.2,
            extra_transit_domain_edges: 2,
            multihome_prob: 0.05,
        }
    }

    /// A small configuration for unit tests and examples (~84 nodes).
    pub fn small() -> Self {
        Self {
            transit_domains: 2,
            transit_nodes_per_domain: 2,
            stubs_per_transit_node: 4,
            stub_nodes_per_domain: 5,
            transit_edge_prob: 0.5,
            stub_edge_prob: 0.3,
            extra_transit_domain_edges: 1,
            multihome_prob: 0.0,
        }
    }

    /// Total number of nodes the configuration produces.
    pub fn total_nodes(&self) -> usize {
        let transit = self.transit_domains * self.transit_nodes_per_domain;
        transit + transit * self.stubs_per_transit_node * self.stub_nodes_per_domain
    }

    /// Total number of stub domains.
    pub fn total_stub_domains(&self) -> usize {
        self.transit_domains * self.transit_nodes_per_domain * self.stubs_per_transit_node
    }

    fn validate(&self) {
        assert!(
            self.transit_domains >= 1,
            "need at least one transit domain"
        );
        assert!(
            self.transit_nodes_per_domain >= 1,
            "need at least one node per transit domain"
        );
        assert!(
            self.stub_nodes_per_domain >= 1,
            "need at least one node per stub domain"
        );
    }
}

/// A generated transit-stub topology: the graph plus the hierarchy metadata
/// needed to place CDN servers and primary sites inside stub domains.
///
/// ```
/// use cdn_topology::{TransitStubConfig, TransitStubTopology};
/// let topo = TransitStubTopology::generate(&TransitStubConfig::small(), 42);
/// assert!(topo.graph.is_connected());
/// assert_eq!(topo.graph.n_nodes(), TransitStubConfig::small().total_nodes());
/// ```
#[derive(Debug, Clone)]
pub struct TransitStubTopology {
    pub graph: Graph,
    pub roles: Vec<NodeRole>,
    pub transit_nodes: Vec<NodeId>,
    pub stub_domains: Vec<StubDomain>,
}

impl TransitStubTopology {
    /// Generate a topology from `config` with the given `seed`.
    /// Deterministic: equal `(config, seed)` gives an identical topology.
    pub fn generate(config: &TransitStubConfig, seed: u64) -> Self {
        config.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut builder = GraphBuilder::new(0);
        let mut roles = Vec::new();

        // 1. Transit domains: connected random subgraphs.
        let mut transit_domain_nodes: Vec<Vec<NodeId>> = Vec::new();
        for d in 0..config.transit_domains {
            let first = builder.grow(config.transit_nodes_per_domain);
            let nodes: Vec<NodeId> =
                (first..first + config.transit_nodes_per_domain as NodeId).collect();
            roles.extend(nodes.iter().map(|_| NodeRole::Transit { domain: d as u32 }));
            flat::connected_random_domain(&mut builder, &nodes, config.transit_edge_prob, &mut rng);
            transit_domain_nodes.push(nodes);
        }

        // 2. Connect transit domains: spanning tree over domains plus extras,
        // using random endpoint nodes for every inter-domain edge.
        for d in 1..config.transit_domains {
            let other = rng.gen_range(0..d);
            let a = *pick(&transit_domain_nodes[d], &mut rng);
            let b = *pick(&transit_domain_nodes[other], &mut rng);
            builder.add_edge(a, b);
        }
        if config.transit_domains > 1 {
            let mut added = 0;
            let mut attempts = 0;
            while added < config.extra_transit_domain_edges && attempts < 64 {
                attempts += 1;
                let d1 = rng.gen_range(0..config.transit_domains);
                let d2 = rng.gen_range(0..config.transit_domains);
                if d1 == d2 {
                    continue;
                }
                let a = *pick(&transit_domain_nodes[d1], &mut rng);
                let b = *pick(&transit_domain_nodes[d2], &mut rng);
                if builder.add_edge(a, b) {
                    added += 1;
                }
            }
        }

        let transit_nodes: Vec<NodeId> = transit_domain_nodes.iter().flatten().copied().collect();

        // 3. Stub domains hanging off every transit node.
        let mut stub_domains = Vec::with_capacity(config.total_stub_domains());
        for &t in &transit_nodes {
            for _ in 0..config.stubs_per_transit_node {
                let domain_idx = stub_domains.len() as u32;
                let first = builder.grow(config.stub_nodes_per_domain);
                let nodes: Vec<NodeId> =
                    (first..first + config.stub_nodes_per_domain as NodeId).collect();
                roles.extend(nodes.iter().map(|_| NodeRole::Stub { domain: domain_idx }));
                flat::connected_random_domain(
                    &mut builder,
                    &nodes,
                    config.stub_edge_prob,
                    &mut rng,
                );
                let gateway = *pick(&nodes, &mut rng);
                builder.add_edge(gateway, t);
                // Occasional multi-homing to a second transit node.
                if config.multihome_prob > 0.0 && rng.gen_bool(config.multihome_prob) {
                    let t2 = *pick(&transit_nodes, &mut rng);
                    if t2 != t {
                        let gw2 = *pick(&nodes, &mut rng);
                        builder.add_edge(gw2, t2);
                    }
                }
                stub_domains.push(StubDomain {
                    nodes,
                    transit_attachment: t,
                });
            }
        }

        let graph = builder.build();
        debug_assert!(graph.is_connected());
        Self {
            graph,
            roles,
            transit_nodes,
            stub_domains,
        }
    }
}

fn pick<'a, T, R: Rng>(slice: &'a [T], rng: &mut R) -> &'a T {
    &slice[rng.gen_range(0..slice.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_has_1560_nodes() {
        assert_eq!(TransitStubConfig::paper_default().total_nodes(), 1560);
    }

    #[test]
    fn generated_node_count_matches_config() {
        let cfg = TransitStubConfig::small();
        let topo = TransitStubTopology::generate(&cfg, 7);
        assert_eq!(topo.graph.n_nodes(), cfg.total_nodes());
        assert_eq!(topo.roles.len(), cfg.total_nodes());
        assert_eq!(topo.stub_domains.len(), cfg.total_stub_domains());
    }

    #[test]
    fn generated_graph_is_connected() {
        for seed in 0..5 {
            let topo = TransitStubTopology::generate(&TransitStubConfig::small(), seed);
            assert!(topo.graph.is_connected(), "seed {seed}");
        }
    }

    #[test]
    fn paper_scale_graph_is_connected() {
        let topo = TransitStubTopology::generate(&TransitStubConfig::paper_default(), 1);
        assert!(topo.graph.is_connected());
        assert_eq!(topo.graph.n_nodes(), 1560);
    }

    #[test]
    fn roles_partition_matches_domains() {
        let cfg = TransitStubConfig::small();
        let topo = TransitStubTopology::generate(&cfg, 3);
        let transit = topo
            .roles
            .iter()
            .filter(|r| matches!(r, NodeRole::Transit { .. }))
            .count();
        assert_eq!(transit, cfg.transit_domains * cfg.transit_nodes_per_domain);
        for (d, sd) in topo.stub_domains.iter().enumerate() {
            for &n in &sd.nodes {
                assert_eq!(topo.roles[n as usize], NodeRole::Stub { domain: d as u32 });
            }
        }
    }

    #[test]
    fn stub_domains_attach_to_transit_nodes() {
        let topo = TransitStubTopology::generate(&TransitStubConfig::small(), 11);
        for sd in &topo.stub_domains {
            assert!(topo.transit_nodes.contains(&sd.transit_attachment));
            // At least one stub node must have an edge to the attachment.
            let attached = sd
                .nodes
                .iter()
                .any(|&n| topo.graph.neighbors(n).contains(&sd.transit_attachment));
            assert!(attached);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = TransitStubConfig::small();
        let a = TransitStubTopology::generate(&cfg, 99);
        let b = TransitStubTopology::generate(&cfg, 99);
        assert_eq!(a.graph.n_edges(), b.graph.n_edges());
        for v in 0..a.graph.n_nodes() as NodeId {
            assert_eq!(a.graph.neighbors(v), b.graph.neighbors(v));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = TransitStubConfig::paper_default();
        let a = TransitStubTopology::generate(&cfg, 1);
        let b = TransitStubTopology::generate(&cfg, 2);
        let same_everywhere =
            (0..a.graph.n_nodes() as NodeId).all(|v| a.graph.neighbors(v) == b.graph.neighbors(v));
        assert!(!same_everywhere);
    }

    #[test]
    fn single_domain_minimal_config_works() {
        let cfg = TransitStubConfig {
            transit_domains: 1,
            transit_nodes_per_domain: 1,
            stubs_per_transit_node: 1,
            stub_nodes_per_domain: 1,
            transit_edge_prob: 0.0,
            stub_edge_prob: 0.0,
            extra_transit_domain_edges: 0,
            multihome_prob: 0.0,
        };
        let topo = TransitStubTopology::generate(&cfg, 0);
        assert_eq!(topo.graph.n_nodes(), 2);
        assert!(topo.graph.is_connected());
    }
}
