//! Shortest paths and the distance matrix consumed by the placement layer.
//!
//! The paper collapses the topology to `C(i, j)`, the hop count of the
//! shortest path between CDN hosts, computed once up front ("we assume that
//! the values of C(i, j) are known a priori"). [`DistanceMatrix::compute`]
//! reproduces that: one single-source search per host node, parallelised with
//! rayon since the sources are independent.

use crate::graph::{Graph, NodeId};
use crate::{Hops, UNREACHABLE};
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Single-source BFS for unit-weight graphs. Returns a distance per node,
/// `UNREACHABLE` for nodes not connected to `source`.
pub fn bfs_hops(graph: &Graph, source: NodeId) -> Vec<Hops> {
    let mut dist = vec![UNREACHABLE; graph.n_nodes()];
    let mut queue = std::collections::VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &w in graph.neighbors(v) {
            if dist[w as usize] == UNREACHABLE {
                dist[w as usize] = dv + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Single-source Dijkstra for general non-negative weights.
pub fn dijkstra(graph: &Graph, source: NodeId) -> Vec<Hops> {
    let mut dist = vec![UNREACHABLE; graph.n_nodes()];
    let mut heap = BinaryHeap::new();
    dist[source as usize] = 0;
    heap.push(Reverse((0 as Hops, source)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue; // stale entry
        }
        for (w, weight) in graph.neighbors_weighted(v) {
            let nd = d.saturating_add(weight);
            if nd < dist[w as usize] {
                dist[w as usize] = nd;
                heap.push(Reverse((nd, w)));
            }
        }
    }
    dist
}

/// Distances from a set of "host" nodes (CDN servers and primary sites) to
/// every node, stored row-major: `dist(h, v)` for host index `h`.
///
/// Placement algorithms only ever need host-to-host distances, but keeping
/// the full rows costs little at this scale and lets the simulator look up
/// arbitrary nodes.
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    n_nodes: usize,
    hosts: Vec<NodeId>,
    rows: Vec<Hops>,
}

impl DistanceMatrix {
    /// Run one single-source search per host (BFS when the graph is
    /// unit-weight, Dijkstra otherwise), in parallel across hosts.
    pub fn compute(graph: &Graph, hosts: &[NodeId]) -> Self {
        let unit = graph.is_unit_weight();
        let rows: Vec<Hops> = hosts
            .par_iter()
            .flat_map_iter(|&h| {
                if unit {
                    bfs_hops(graph, h)
                } else {
                    dijkstra(graph, h)
                }
            })
            .collect();
        Self {
            n_nodes: graph.n_nodes(),
            hosts: hosts.to_vec(),
            rows,
        }
    }

    /// Number of host rows.
    pub fn n_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// The node ids of the hosts, in row order.
    pub fn hosts(&self) -> &[NodeId] {
        &self.hosts
    }

    /// Distance from host row `h` to node `v`.
    #[inline]
    pub fn dist(&self, h: usize, v: NodeId) -> Hops {
        self.rows[h * self.n_nodes + v as usize]
    }

    /// Distance between two host rows.
    #[inline]
    pub fn host_dist(&self, a: usize, b: usize) -> Hops {
        self.dist(a, self.hosts[b])
    }

    /// Full distance row of host `h`.
    pub fn row(&self, h: usize) -> &[Hops] {
        &self.rows[h * self.n_nodes..(h + 1) * self.n_nodes]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn path_graph(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 1..n {
            b.add_edge((i - 1) as NodeId, i as NodeId);
        }
        b.build()
    }

    fn cycle_graph(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            b.add_edge(i as NodeId, ((i + 1) % n) as NodeId);
        }
        b.build()
    }

    #[test]
    fn bfs_on_path() {
        let g = path_graph(5);
        let d = bfs_hops(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_on_cycle_wraps() {
        let g = cycle_graph(6);
        let d = bfs_hops(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn dijkstra_matches_bfs_on_unit_graph() {
        let g = cycle_graph(9);
        for s in 0..9u32 {
            assert_eq!(bfs_hops(&g, s), dijkstra(&g, s), "source {s}");
        }
    }

    #[test]
    fn dijkstra_prefers_cheap_long_path() {
        // 0 -5- 1, 0 -1- 2 -1- 1 : the two-hop route is cheaper.
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 5);
        b.add_weighted_edge(0, 2, 1);
        b.add_weighted_edge(2, 1, 1);
        let d = dijkstra(&b.build(), 0);
        assert_eq!(d, vec![0, 2, 1]);
    }

    #[test]
    fn unreachable_nodes_marked() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        let g = b.build();
        let d = bfs_hops(&g, 0);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(dijkstra(&g, 0)[2], UNREACHABLE);
    }

    #[test]
    fn distance_matrix_rows_match_single_source() {
        let g = cycle_graph(8);
        let hosts = vec![0u32, 3, 5];
        let m = DistanceMatrix::compute(&g, &hosts);
        for (h, &node) in hosts.iter().enumerate() {
            assert_eq!(m.row(h), &bfs_hops(&g, node)[..]);
        }
    }

    #[test]
    fn host_dist_is_symmetric_on_undirected_graph() {
        let g = cycle_graph(10);
        let hosts = vec![1u32, 4, 7, 9];
        let m = DistanceMatrix::compute(&g, &hosts);
        for a in 0..hosts.len() {
            for b in 0..hosts.len() {
                assert_eq!(m.host_dist(a, b), m.host_dist(b, a));
            }
        }
    }

    #[test]
    fn distance_matrix_is_thread_count_invariant() {
        // All-pairs rows must be laid out identically whether the
        // per-source searches run on one thread or several — ordered
        // collect is what guarantees the row-major concatenation.
        let mut b = GraphBuilder::new(300);
        for i in 1..300 {
            b.add_edge((i - 1) as NodeId, i as NodeId);
        }
        for i in (0..280).step_by(17) {
            b.add_edge(i as NodeId, (i + 20) as NodeId);
        }
        let g = b.build();
        let hosts: Vec<NodeId> = (0..300).step_by(9).collect();
        let pool = |n| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .unwrap()
        };
        let one = pool(1).install(|| DistanceMatrix::compute(&g, &hosts));
        let four = pool(4).install(|| DistanceMatrix::compute(&g, &hosts));
        for h in 0..hosts.len() {
            assert_eq!(one.row(h), four.row(h), "host row {h}");
        }
    }

    #[test]
    fn self_distance_is_zero() {
        let g = path_graph(4);
        let m = DistanceMatrix::compute(&g, &[2]);
        assert_eq!(m.host_dist(0, 0), 0);
    }
}
