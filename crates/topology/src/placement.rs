//! Assignment of CDN servers and primary sites to the topology.
//!
//! The paper "placed each server and primary site inside a randomly selected
//! stub domain". We reproduce that, by default without reusing a stub domain
//! for two servers (so first-hop populations do not collapse onto the same
//! node), while primaries may land anywhere.

use crate::gen::transit_stub::TransitStubTopology;
use crate::graph::NodeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// How to pick host nodes within the topology.
#[derive(Debug, Clone, Copy)]
pub struct HostPlacementConfig {
    /// Number of CDN servers (N in the paper; 50 in the evaluation).
    pub n_servers: usize,
    /// Number of primary sites (M in the paper; 200 in the evaluation).
    pub m_primaries: usize,
    /// If true, each server goes to a distinct stub domain (fails if there
    /// are fewer stub domains than servers).
    pub distinct_server_domains: bool,
}

impl HostPlacementConfig {
    /// The paper's evaluation scale: N = 50 servers, M = 200 sites.
    pub fn paper_default() -> Self {
        Self {
            n_servers: 50,
            m_primaries: 200,
            distinct_server_domains: true,
        }
    }

    /// The internet-scale tier: N = 2000 servers, M = 400 sites.
    pub fn large() -> Self {
        Self {
            n_servers: 2000,
            m_primaries: 400,
            distinct_server_domains: true,
        }
    }

    /// A small scale for tests and examples.
    pub fn small() -> Self {
        Self {
            n_servers: 6,
            m_primaries: 15,
            distinct_server_domains: true,
        }
    }
}

/// The chosen host nodes. Indices into `servers` are the "server ids" used
/// throughout the workspace; likewise `primaries[j]` is the primary node of
/// site `j`.
#[derive(Debug, Clone)]
pub struct HostPlacement {
    pub servers: Vec<NodeId>,
    pub primaries: Vec<NodeId>,
}

impl HostPlacement {
    /// Place hosts into stub domains of `topo`.
    ///
    /// # Panics
    /// Panics if `distinct_server_domains` is set and the topology has fewer
    /// stub domains than servers.
    pub fn place(topo: &TransitStubTopology, config: &HostPlacementConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_domains = topo.stub_domains.len();
        assert!(n_domains > 0, "topology has no stub domains");

        let servers = if config.distinct_server_domains {
            assert!(
                n_domains >= config.n_servers,
                "{} stub domains cannot host {} servers distinctly",
                n_domains,
                config.n_servers
            );
            let mut domains: Vec<usize> = (0..n_domains).collect();
            domains.shuffle(&mut rng);
            domains[..config.n_servers]
                .iter()
                .map(|&d| random_node_in_domain(topo, d, &mut rng))
                .collect()
        } else {
            (0..config.n_servers)
                .map(|_| {
                    let d = rng.gen_range(0..n_domains);
                    random_node_in_domain(topo, d, &mut rng)
                })
                .collect()
        };

        let primaries = (0..config.m_primaries)
            .map(|_| {
                let d = rng.gen_range(0..n_domains);
                random_node_in_domain(topo, d, &mut rng)
            })
            .collect();

        Self { servers, primaries }
    }

    /// All host nodes in distance-matrix row order: servers first, then
    /// primaries. Row `i` for server `i`; row `n_servers + j` for site `j`.
    pub fn host_rows(&self) -> Vec<NodeId> {
        let mut rows = self.servers.clone();
        rows.extend_from_slice(&self.primaries);
        rows
    }
}

fn random_node_in_domain(topo: &TransitStubTopology, domain: usize, rng: &mut StdRng) -> NodeId {
    let nodes = &topo.stub_domains[domain].nodes;
    nodes[rng.gen_range(0..nodes.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::transit_stub::{NodeRole, TransitStubConfig};

    fn small_topo() -> TransitStubTopology {
        TransitStubTopology::generate(&TransitStubConfig::small(), 5)
    }

    #[test]
    fn places_requested_counts() {
        let topo = small_topo();
        let cfg = HostPlacementConfig {
            n_servers: 4,
            m_primaries: 9,
            distinct_server_domains: true,
        };
        let p = HostPlacement::place(&topo, &cfg, 1);
        assert_eq!(p.servers.len(), 4);
        assert_eq!(p.primaries.len(), 9);
    }

    #[test]
    fn all_hosts_are_stub_nodes() {
        let topo = small_topo();
        let cfg = HostPlacementConfig::small();
        let p = HostPlacement::place(&topo, &cfg, 2);
        for &n in p.servers.iter().chain(p.primaries.iter()) {
            assert!(matches!(topo.roles[n as usize], NodeRole::Stub { .. }));
        }
    }

    #[test]
    fn distinct_server_domains_enforced() {
        let topo = small_topo();
        let cfg = HostPlacementConfig {
            n_servers: topo.stub_domains.len(),
            m_primaries: 3,
            distinct_server_domains: true,
        };
        let p = HostPlacement::place(&topo, &cfg, 3);
        let mut domains: Vec<u32> = p
            .servers
            .iter()
            .map(|&n| match topo.roles[n as usize] {
                NodeRole::Stub { domain } => domain,
                NodeRole::Transit { .. } => unreachable!(),
            })
            .collect();
        domains.sort_unstable();
        domains.dedup();
        assert_eq!(domains.len(), p.servers.len());
    }

    #[test]
    #[should_panic]
    fn too_many_distinct_servers_panics() {
        let topo = small_topo();
        let cfg = HostPlacementConfig {
            n_servers: topo.stub_domains.len() + 1,
            m_primaries: 1,
            distinct_server_domains: true,
        };
        HostPlacement::place(&topo, &cfg, 0);
    }

    #[test]
    fn non_distinct_mode_allows_more_servers_than_domains() {
        let topo = small_topo();
        let cfg = HostPlacementConfig {
            n_servers: topo.stub_domains.len() * 2,
            m_primaries: 1,
            distinct_server_domains: false,
        };
        let p = HostPlacement::place(&topo, &cfg, 4);
        assert_eq!(p.servers.len(), topo.stub_domains.len() * 2);
    }

    #[test]
    fn host_rows_order_servers_then_primaries() {
        let topo = small_topo();
        let cfg = HostPlacementConfig::small();
        let p = HostPlacement::place(&topo, &cfg, 5);
        let rows = p.host_rows();
        assert_eq!(&rows[..p.servers.len()], &p.servers[..]);
        assert_eq!(&rows[p.servers.len()..], &p.primaries[..]);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let topo = small_topo();
        let cfg = HostPlacementConfig::small();
        let a = HostPlacement::place(&topo, &cfg, 9);
        let b = HostPlacement::place(&topo, &cfg, 9);
        assert_eq!(a.servers, b.servers);
        assert_eq!(a.primaries, b.primaries);
    }
}
