//! Graph export for visualisation and interchange.
//!
//! Generated topologies are easiest to sanity-check visually; this module
//! renders them as Graphviz DOT (plain graphs or transit-stub graphs with
//! role-based styling) and as a simple edge-list CSV for downstream tools.

use crate::gen::transit_stub::TransitStubTopology;
use crate::graph::{Graph, NodeId};
use std::fmt::Write;

/// Render an undirected graph as Graphviz DOT.
pub fn to_dot(graph: &Graph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    let _ = writeln!(out, "  node [shape=point];");
    for v in 0..graph.n_nodes() as NodeId {
        for &w in graph.neighbors(v) {
            if v < w {
                let _ = writeln!(out, "  n{v} -- n{w};");
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Render a transit-stub topology as DOT with transit nodes highlighted
/// and stub domains clustered.
pub fn transit_stub_to_dot(topo: &TransitStubTopology, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    let _ = writeln!(out, "  node [shape=point];");
    for &t in &topo.transit_nodes {
        let _ = writeln!(
            out,
            "  n{t} [shape=circle, style=filled, fillcolor=black, width=0.15];"
        );
    }
    for (d, sd) in topo.stub_domains.iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_stub{d} {{");
        let _ = writeln!(out, "    style=dotted;");
        for &v in &sd.nodes {
            let _ = writeln!(out, "    n{v};");
        }
        let _ = writeln!(out, "  }}");
    }
    for v in 0..topo.graph.n_nodes() as NodeId {
        for &w in topo.graph.neighbors(v) {
            if v < w {
                let _ = writeln!(out, "  n{v} -- n{w};");
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Edge list as CSV (`a,b,weight` with a header row).
pub fn to_edge_csv(graph: &Graph) -> String {
    let mut out = String::from("a,b,weight\n");
    for v in 0..graph.n_nodes() as NodeId {
        for (w, weight) in graph.neighbors_weighted(v) {
            if v < w {
                let _ = writeln!(out, "{v},{w},{weight}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::transit_stub::TransitStubConfig;
    use crate::graph::GraphBuilder;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        b.build()
    }

    #[test]
    fn dot_contains_each_edge_once() {
        let dot = to_dot(&triangle(), "t");
        assert!(dot.starts_with("graph t {"));
        assert!(dot.trim_end().ends_with('}'));
        assert_eq!(dot.matches(" -- ").count(), 3);
        assert!(dot.contains("n0 -- n1;"));
        assert!(!dot.contains("n1 -- n0;"), "edge duplicated");
    }

    #[test]
    fn edge_csv_round_trips_counts() {
        let csv = to_edge_csv(&triangle());
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines[0], "a,b,weight");
        assert_eq!(lines.len(), 4);
        assert!(lines.contains(&"0,1,1"));
    }

    #[test]
    fn transit_stub_dot_clusters_and_highlights() {
        let topo = crate::TransitStubTopology::generate(&TransitStubConfig::small(), 3);
        let dot = transit_stub_to_dot(&topo, "ts");
        assert_eq!(
            dot.matches("subgraph cluster_stub").count(),
            topo.stub_domains.len()
        );
        assert_eq!(
            dot.matches("fillcolor=black").count(),
            topo.transit_nodes.len()
        );
        assert_eq!(dot.matches(" -- ").count(), topo.graph.n_edges());
    }

    #[test]
    fn empty_graph_exports_cleanly() {
        let g = GraphBuilder::new(0).build();
        assert!(to_dot(&g, "e").contains("graph e {"));
        assert_eq!(to_edge_csv(&g).trim(), "a,b,weight");
    }
}
