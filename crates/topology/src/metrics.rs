//! Structural summaries of generated topologies.
//!
//! Used by tests (sanity bounds on the generator) and logged by the
//! experiment harness so a run's topology can be characterised without
//! shipping the whole graph.

use crate::graph::{Graph, NodeId};
use crate::shortest_path::bfs_hops;
use crate::{Hops, UNREACHABLE};
use rayon::prelude::*;

/// Summary statistics of a graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopologyMetrics {
    pub n_nodes: usize,
    pub n_edges: usize,
    /// Longest shortest path over the sampled sources.
    pub diameter: Hops,
    /// Mean shortest-path length over the sampled sources.
    pub mean_path_hops: f64,
    /// Mean node degree.
    pub mean_degree: f64,
}

/// Compute metrics, sampling every `stride`-th node as a BFS source (use
/// `stride = 1` for exact values; larger strides for big graphs).
///
/// # Panics
/// Panics if `stride == 0` or the graph is disconnected (metrics would be
/// meaningless and the generators guarantee connectivity).
pub fn compute_metrics(graph: &Graph, stride: usize) -> TopologyMetrics {
    assert!(stride > 0, "stride must be positive");
    let n = graph.n_nodes();
    assert!(n > 0, "empty graph has no metrics");

    let sources: Vec<NodeId> = (0..n).step_by(stride).map(|v| v as NodeId).collect();
    let (sum, count, diameter) = sources
        .par_iter()
        .map(|&s| {
            let dist = bfs_hops(graph, s);
            let mut sum = 0u64;
            let mut count = 0u64;
            let mut max = 0 as Hops;
            for (v, &d) in dist.iter().enumerate() {
                assert!(d != UNREACHABLE, "graph is disconnected at node {v}");
                if v as NodeId != s {
                    sum += d as u64;
                    count += 1;
                    max = max.max(d);
                }
            }
            (sum, count, max)
        })
        .reduce(|| (0, 0, 0), |a, b| (a.0 + b.0, a.1 + b.1, a.2.max(b.2)));

    TopologyMetrics {
        n_nodes: n,
        n_edges: graph.n_edges(),
        diameter,
        mean_path_hops: if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        },
        mean_degree: 2.0 * graph.n_edges() as f64 / n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::transit_stub::{TransitStubConfig, TransitStubTopology};
    use crate::graph::GraphBuilder;

    fn path_graph(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 1..n {
            b.add_edge((i - 1) as NodeId, i as NodeId);
        }
        b.build()
    }

    #[test]
    fn path_metrics_exact() {
        let m = compute_metrics(&path_graph(4), 1);
        assert_eq!(m.n_nodes, 4);
        assert_eq!(m.n_edges, 3);
        assert_eq!(m.diameter, 3);
        // Pairwise distances: 1+2+3 + 1+1+2 + ... = (sum over ordered pairs) / 12
        let expected = (2.0 * (1.0 + 2.0 + 3.0 + 1.0 + 2.0 + 1.0)) / 12.0;
        assert!((m.mean_path_hops - expected).abs() < 1e-12);
    }

    #[test]
    fn complete_graph_diameter_one() {
        let mut b = GraphBuilder::new(5);
        for i in 0..5u32 {
            for j in i + 1..5u32 {
                b.add_edge(i, j);
            }
        }
        let m = compute_metrics(&b.build(), 1);
        assert_eq!(m.diameter, 1);
        assert!((m.mean_path_hops - 1.0).abs() < 1e-12);
        assert!((m.mean_degree - 4.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_metrics_close_to_exact() {
        let topo = TransitStubTopology::generate(&TransitStubConfig::small(), 2);
        let exact = compute_metrics(&topo.graph, 1);
        let sampled = compute_metrics(&topo.graph, 3);
        assert!(sampled.diameter <= exact.diameter);
        assert!((sampled.mean_path_hops - exact.mean_path_hops).abs() / exact.mean_path_hops < 0.2);
    }

    #[test]
    fn transit_stub_has_local_structure() {
        // Mean path length should be well below the diameter for a
        // hierarchical graph: most pairs cross the core.
        let topo = TransitStubTopology::generate(&TransitStubConfig::paper_default(), 3);
        let m = compute_metrics(&topo.graph, 16);
        assert!(m.diameter >= 4, "diameter {} too small", m.diameter);
        assert!(m.mean_path_hops > 2.0);
        assert!(m.mean_path_hops < m.diameter as f64);
    }

    #[test]
    #[should_panic]
    fn zero_stride_panics() {
        compute_metrics(&path_graph(2), 0);
    }

    #[test]
    #[should_panic]
    fn disconnected_graph_panics() {
        let b = GraphBuilder::new(2);
        compute_metrics(&b.build(), 1);
    }
}
