//! Network topology substrate for the hybrid CDN reproduction.
//!
//! The paper (Bakiras & Loukopoulos, IPDPS 2005) evaluates its placement
//! algorithms on a random *transit-stub* graph produced by the GT-ITM
//! topology generator, collapsed to a hop-count distance matrix between the
//! CDN servers and the primary sites. GT-ITM is not available to us, so this
//! crate implements the same class of generator from scratch:
//!
//! * [`graph`] — a compact CSR-backed undirected graph.
//! * [`gen`] — random graph generators: the two-level transit-stub model and
//!   the Waxman-style flat random graphs it is built from.
//! * [`shortest_path`] — Dijkstra / BFS and the [`DistanceMatrix`] consumed
//!   by the placement and simulation crates.
//! * [`placement`] — assignment of CDN servers and primary sites to stub
//!   domains, mirroring the paper's "placed each server and primary site
//!   inside a randomly selected stub domain".
//! * [`metrics`] — structural summaries (diameter, mean path length) used by
//!   tests and by the experiment logs.
//!
//! All randomness is driven by caller-supplied seeds; every function in this
//! crate is deterministic given its inputs.

pub mod export;
pub mod gen;
pub mod graph;
pub mod metrics;
pub mod placement;
pub mod shortest_path;

pub use gen::barabasi::{barabasi_albert, BarabasiAlbertConfig};
pub use gen::transit_stub::{TransitStubConfig, TransitStubTopology};
pub use graph::{Graph, GraphBuilder, NodeId};
pub use placement::{HostPlacement, HostPlacementConfig};
pub use shortest_path::{bfs_hops, dijkstra, DistanceMatrix};

/// Distance in hops between two nodes. The paper measures communication cost
/// as "the total number of hops" on the shortest path.
pub type Hops = u32;

/// Marker for "unreachable" in distance computations.
pub const UNREACHABLE: Hops = Hops::MAX;
