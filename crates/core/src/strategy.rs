//! The content-delivery strategies under comparison.

use cdn_placement::hybrid::{
    che_oracle_for, closed_form_oracle_for, hybrid_greedy, paper_oracle_for, pure_caching,
};
use cdn_placement::{
    adhoc_split, greedy_backtrack, greedy_global, greedy_local, popularity_placement,
    predicted_cost, random_placement, BacktrackConfig, HitRatioOracle, HybridConfig, Placement,
    PlacementProblem,
};

/// Which analytical hit-ratio model the planner consults. Every model
/// answers the same oracle question; they differ in fidelity and cost (see
/// the `ablation_model` benchmark for the measured accuracy of each).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModelBackend {
    /// The paper's Equations (1)–(2) on the quantised memo table.
    #[default]
    Paper,
    /// Che's approximation — O(objects-per-site) per characteristic time,
    /// intended for small instances and ablations.
    Che,
    /// The closed-form characteristic-rank model — O(1) per query after a
    /// scalar solve per `(server, buffer)`.
    ClosedForm,
}

/// Every model name [`ModelBackend::by_name`] recognises, in
/// documentation order.
pub const MODEL_NAMES: [&str; 3] = ["paper", "che", "closed-form"];

impl ModelBackend {
    /// Resolve a CLI/bench model name. Unknown names report the
    /// alternatives as an `Err` so arg parsing can surface it instead of
    /// panicking.
    pub fn by_name(name: &str) -> Result<Self, String> {
        Ok(match name {
            "paper" => ModelBackend::Paper,
            "che" => ModelBackend::Che,
            "closed-form" => ModelBackend::ClosedForm,
            _ => {
                return Err(format!(
                    "unknown hit-ratio model '{name}' (known models: {})",
                    MODEL_NAMES.join(", ")
                ))
            }
        })
    }

    /// The canonical name (inverse of [`Self::by_name`]).
    pub fn name(&self) -> &'static str {
        match self {
            ModelBackend::Paper => "paper",
            ModelBackend::Che => "che",
            ModelBackend::ClosedForm => "closed-form",
        }
    }

    /// Construct this backend's oracle for `problem`.
    pub fn oracle_for(&self, problem: &PlacementProblem) -> Box<dyn HitRatioOracle> {
        match self {
            ModelBackend::Paper => Box::new(paper_oracle_for(problem)),
            ModelBackend::Che => Box::new(che_oracle_for(problem)),
            ModelBackend::ClosedForm => Box::new(closed_form_oracle_for(problem)),
        }
    }
}

/// A placement strategy. The first three are the paper's comparison
/// (its Figures 3–4); `AdHoc` is its Figure 5; the rest are context
/// baselines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Stand-alone greedy-global replication, no caching at all.
    Replication,
    /// No replicas; all storage is LRU cache.
    Caching,
    /// The paper's hybrid algorithm (Figure 2).
    Hybrid,
    /// Fixed fraction of storage reserved for cache, greedy replication on
    /// the rest.
    AdHoc { cache_fraction: f64 },
    /// Random replicas until full, leftover space cached.
    Random { seed: u64 },
    /// Hottest sites replicated everywhere first, leftover space cached.
    Popularity,
    /// Per-server greedy knapsack (no coordination), leftover space cached.
    GreedyLocal,
    /// Greedy-global followed by drop/add interchange, no caching
    /// (replication-only refinement baseline).
    Backtrack,
    /// The hybrid algorithm driven by Che's approximation instead of the
    /// paper's model — the oracle ablation.
    HybridChe,
}

impl Strategy {
    /// Short label used in CSV output and logs.
    pub fn name(&self) -> String {
        match self {
            Strategy::Replication => "replication".into(),
            Strategy::Caching => "caching".into(),
            Strategy::Hybrid => "hybrid".into(),
            Strategy::AdHoc { cache_fraction } => {
                format!("adhoc-{:.0}%cache", cache_fraction * 100.0)
            }
            Strategy::Random { .. } => "random".into(),
            Strategy::Popularity => "popularity".into(),
            Strategy::GreedyLocal => "greedy-local".into(),
            Strategy::Backtrack => "backtrack".into(),
            Strategy::HybridChe => "hybrid-che".into(),
        }
    }

    /// Does the simulated system run a cache for this strategy?
    pub fn uses_cache(&self) -> bool {
        !matches!(self, Strategy::Replication | Strategy::Backtrack)
    }

    /// Execute the strategy against `problem` with the paper's model.
    pub fn run(&self, problem: &PlacementProblem) -> PlanResult {
        self.run_with_model(problem, ModelBackend::Paper)
    }

    /// Execute the strategy against `problem`, consulting `model` wherever
    /// a hit-ratio oracle is needed. `Replication` and `Backtrack` never
    /// cache, so they ignore the backend; `HybridChe` *is* a fixed-backend
    /// ablation and keeps Che regardless.
    pub fn run_with_model(&self, problem: &PlacementProblem, model: ModelBackend) -> PlanResult {
        match *self {
            Strategy::Hybrid => {
                let oracle = model.oracle_for(problem);
                let out = hybrid_greedy(problem, oracle.as_ref(), &HybridConfig::default());
                PlanResult {
                    strategy: *self,
                    predicted_cost: out.final_cost,
                    hit_ratios: Some(out.hit_ratios),
                    placement: out.placement,
                }
            }
            Strategy::Caching => {
                let oracle = model.oracle_for(problem);
                let out = pure_caching(problem, oracle.as_ref());
                PlanResult {
                    strategy: *self,
                    predicted_cost: out.final_cost,
                    hit_ratios: Some(out.hit_ratios),
                    placement: out.placement,
                }
            }
            Strategy::Replication => {
                let out = greedy_global(problem);
                let cost = predicted_cost(problem, &out.placement, |_, _| 0.0);
                PlanResult {
                    strategy: *self,
                    placement: out.placement,
                    predicted_cost: cost,
                    hit_ratios: None,
                }
            }
            Strategy::AdHoc { cache_fraction } => {
                let placement = adhoc_split(problem, cache_fraction);
                predicted_with_oracle(*self, problem, placement, model)
            }
            Strategy::Random { seed } => {
                let placement = random_placement(problem, seed);
                predicted_with_oracle(*self, problem, placement, model)
            }
            Strategy::Popularity => {
                let placement = popularity_placement(problem);
                predicted_with_oracle(*self, problem, placement, model)
            }
            Strategy::GreedyLocal => {
                let placement = greedy_local(problem);
                predicted_with_oracle(*self, problem, placement, model)
            }
            Strategy::Backtrack => {
                let out = greedy_backtrack(problem, &BacktrackConfig::default());
                PlanResult {
                    strategy: *self,
                    predicted_cost: out.final_cost,
                    placement: out.placement,
                    hit_ratios: None,
                }
            }
            Strategy::HybridChe => {
                let che = che_oracle_for(problem);
                let out = hybrid_greedy(problem, &che, &HybridConfig::default());
                PlanResult {
                    strategy: *self,
                    predicted_cost: out.final_cost,
                    hit_ratios: Some(out.hit_ratios),
                    placement: out.placement,
                }
            }
        }
    }
}

/// Predict the cost of a fixed placement whose free space runs an LRU, by
/// evaluating `model`'s oracle at each server's final buffer size.
///
/// Servers are independent, so the outer loop fans out over the rayon pool;
/// the ordered collect keeps `hits` identical to the sequential evaluation.
fn predicted_with_oracle(
    strategy: Strategy,
    problem: &PlacementProblem,
    placement: Placement,
    model: ModelBackend,
) -> PlanResult {
    use rayon::prelude::*;
    let oracle = model.oracle_for(problem);
    let hits: Vec<Vec<f64>> = (0..problem.n_servers())
        .into_par_iter()
        .map(|i| {
            let b = problem.buffer_objects(placement.free_bytes(i));
            (0..problem.m_sites())
                .map(|j| {
                    if placement.is_replicated(i, j) {
                        0.0
                    } else {
                        oracle.site_hit_ratio(i, problem.site_popularity(i, j), b)
                            * (1.0 - problem.lambda[j])
                    }
                })
                .collect()
        })
        .collect();
    let cost = predicted_cost(problem, &placement, |i, j| hits[i][j]);
    PlanResult {
        strategy,
        placement,
        predicted_cost: cost,
        hit_ratios: Some(hits),
    }
}

/// The outcome of running a strategy: the placement plus the planner's own
/// cost prediction (in hop·requests; divide by total requests for the
/// Figure 6 metric).
#[derive(Debug, Clone)]
pub struct PlanResult {
    pub strategy: Strategy,
    pub placement: Placement,
    /// Predicted total transfer cost `D`.
    pub predicted_cost: f64,
    /// Predicted per-(server, site) hit ratios, when the strategy caches.
    pub hit_ratios: Option<Vec<Vec<f64>>>,
}

impl PlanResult {
    /// Predicted mean hops per request.
    pub fn predicted_mean_hops(&self, problem: &PlacementProblem) -> f64 {
        cdn_placement::mean_hops_per_request(problem, self.predicted_cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_problem() -> PlacementProblem {
        // 3 servers in a line, 4 sites, generous primary distances.
        let n = 3;
        let m = 4;
        let mut dist_ss = vec![0u32; n * n];
        for i in 0..n {
            for k in 0..n {
                dist_ss[i * n + k] = (i as i64 - k as i64).unsigned_abs() as u32;
            }
        }
        let dist_sp = vec![9u32; n * m];
        PlacementProblem::new(
            n,
            m,
            dist_ss,
            dist_sp,
            vec![1000; m],
            vec![2000; n],
            vec![25; n * m],
            vec![0.0; m],
            50.0,
            40,
            1.0,
        )
    }

    #[test]
    fn strategy_names_are_stable() {
        assert_eq!(Strategy::Hybrid.name(), "hybrid");
        assert_eq!(
            Strategy::AdHoc {
                cache_fraction: 0.2
            }
            .name(),
            "adhoc-20%cache"
        );
        assert!(!Strategy::Replication.uses_cache());
        assert!(Strategy::Caching.uses_cache());
    }

    #[test]
    fn all_strategies_produce_valid_placements() {
        let p = toy_problem();
        for s in [
            Strategy::Replication,
            Strategy::Caching,
            Strategy::Hybrid,
            Strategy::AdHoc {
                cache_fraction: 0.5,
            },
            Strategy::Random { seed: 1 },
            Strategy::Popularity,
            Strategy::GreedyLocal,
            Strategy::Backtrack,
            Strategy::HybridChe,
        ] {
            let out = s.run(&p);
            out.placement.validate(&p);
            assert!(out.predicted_cost >= 0.0, "{}", s.name());
            assert!(out.predicted_cost.is_finite());
        }
    }

    #[test]
    fn caching_strategy_places_no_replicas() {
        let p = toy_problem();
        let out = Strategy::Caching.run(&p);
        assert_eq!(out.placement.replica_count(), 0);
        assert!(out.hit_ratios.is_some());
    }

    #[test]
    fn hybrid_prediction_no_worse_than_pure_strategies() {
        let p = toy_problem();
        let hybrid = Strategy::Hybrid.run(&p).predicted_cost;
        let caching = Strategy::Caching.run(&p).predicted_cost;
        let replication = Strategy::Replication.run(&p).predicted_cost;
        assert!(hybrid <= caching + 1e-9);
        assert!(hybrid <= replication + 1e-9);
    }

    #[test]
    fn backtrack_no_worse_than_replication() {
        let p = toy_problem();
        let greedy = Strategy::Replication.run(&p).predicted_cost;
        let backtrack = Strategy::Backtrack.run(&p).predicted_cost;
        assert!(backtrack <= greedy + 1e-9);
    }

    #[test]
    fn hybrid_che_close_to_hybrid_paper() {
        let p = toy_problem();
        let paper = Strategy::Hybrid.run(&p);
        let che = Strategy::HybridChe.run(&p);
        // Different oracles, same machinery: placements may differ but both
        // must beat the pure strategies and land in the same ballpark.
        let caching = Strategy::Caching.run(&p).predicted_cost;
        assert!(che.predicted_cost <= caching + 1e-9);
        let rel =
            (che.predicted_cost - paper.predicted_cost).abs() / paper.predicted_cost.max(1e-9);
        assert!(
            rel < 0.25,
            "paper {} vs che {}",
            paper.predicted_cost,
            che.predicted_cost
        );
    }

    #[test]
    fn greedy_local_replicates_something_useful() {
        let p = toy_problem();
        let out = Strategy::GreedyLocal.run(&p);
        assert!(out.placement.replica_count() > 0);
        assert!(out.hit_ratios.is_some());
    }

    #[test]
    fn predicted_mean_hops_normalised() {
        let p = toy_problem();
        let out = Strategy::Replication.run(&p);
        let mean = out.predicted_mean_hops(&p);
        assert!((0.0..=9.0).contains(&mean));
    }

    #[test]
    fn model_backend_names_round_trip() {
        for name in MODEL_NAMES {
            let m = ModelBackend::by_name(name).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(m.name(), name);
        }
        let err = ModelBackend::by_name("ttl").expect_err("must reject");
        assert!(err.contains("unknown hit-ratio model 'ttl'"), "{err}");
        assert!(err.contains("closed-form"), "{err}");
        assert_eq!(ModelBackend::default(), ModelBackend::Paper);
    }

    #[test]
    fn every_backend_plans_every_caching_strategy() {
        let p = toy_problem();
        let caching_paper = Strategy::Caching.run(&p).predicted_cost;
        for model in [
            ModelBackend::Paper,
            ModelBackend::Che,
            ModelBackend::ClosedForm,
        ] {
            for s in [Strategy::Hybrid, Strategy::Caching, Strategy::GreedyLocal] {
                let out = s.run_with_model(&p, model);
                out.placement.validate(&p);
                assert!(
                    out.predicted_cost.is_finite() && out.predicted_cost >= 0.0,
                    "{} × {}",
                    s.name(),
                    model.name()
                );
            }
            // The backends disagree in detail but not in the story: hybrid
            // beats pure caching under every one of them.
            let hybrid = Strategy::Hybrid.run_with_model(&p, model).predicted_cost;
            assert!(
                hybrid <= caching_paper * 1.05,
                "{}: hybrid {hybrid} vs paper-caching {caching_paper}",
                model.name()
            );
        }
    }

    #[test]
    fn paper_backend_matches_plain_run() {
        let p = toy_problem();
        for s in [Strategy::Hybrid, Strategy::Caching, Strategy::Popularity] {
            let a = s.run(&p);
            let b = s.run_with_model(&p, ModelBackend::Paper);
            assert_eq!(a.predicted_cost.to_bits(), b.predicted_cost.to_bits());
        }
    }
}
