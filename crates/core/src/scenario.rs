//! End-to-end scenario assembly: topology → hosts → distances → workload →
//! placement problem → trace.

use crate::strategy::{PlanResult, Strategy};
use cdn_cache::Cache;
use cdn_placement::hybrid::paper_oracle_for;
use cdn_placement::{Placement, PlacementProblem};
use cdn_sim::{simulate_system, SimConfig, SimReport};
use cdn_topology::{
    DistanceMatrix, HostPlacement, HostPlacementConfig, TransitStubConfig, TransitStubTopology,
};
use cdn_workload::{DemandMatrix, LambdaMode, SiteCatalog, TraceSpec, WorkloadConfig};

/// How total storage is spread across servers. The paper assumes
/// homogeneous servers; `Skewed` models a fleet where a few big POPs hold
/// most of the disk (capacity of server i ∝ `ratio^(i/(N−1))`, normalised
/// so the fleet total matches the homogeneous case).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CapacityProfile {
    Uniform,
    Skewed {
        /// Largest-to-smallest server capacity ratio (> 1).
        ratio: f64,
    },
}

/// Everything that defines one experiment, with the paper's defaults.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    pub topology: TransitStubConfig,
    pub hosts: HostPlacementConfig,
    pub workload: WorkloadConfig,
    /// Per-server storage as a fraction of the cumulative size of all web
    /// sites (the paper's x-axis parameter: 5%, 10%, 20%).
    pub capacity_fraction: f64,
    /// Distribution of that storage across the fleet.
    pub capacity_profile: CapacityProfile,
    /// Mean fraction of requests that are uncacheable / expired.
    pub lambda: f64,
    /// Half-width of the per-site λ spread: site j's λ is drawn uniformly
    /// from `lambda ± lambda_spread` (clamped to [0, 1]). The paper's §3.3
    /// has every site provide its own λ_j; 0 recovers the homogeneous
    /// setting used in its figures.
    pub lambda_spread: f64,
    /// Whether λ-requests bypass the cache (uncacheable) or force a refresh
    /// (expired under strong consistency).
    pub lambda_mode: LambdaMode,
    pub sim: SimConfig,
    /// Master seed; all derived generators use fixed offsets of it.
    pub seed: u64,
}

impl ScenarioConfig {
    /// The paper's evaluation setup at a given capacity and λ
    /// (Figures 3–6): N = 50 servers, M = 200 sites, 1560-node topology,
    /// θ = 1.0, 20 ms/hop.
    pub fn paper(capacity_fraction: f64, lambda: f64, lambda_mode: LambdaMode) -> Self {
        Self {
            topology: TransitStubConfig::paper_default(),
            hosts: HostPlacementConfig::paper_default(),
            workload: WorkloadConfig::paper_default(),
            capacity_fraction,
            capacity_profile: CapacityProfile::Uniform,
            lambda,
            lambda_spread: 0.0,
            lambda_mode,
            sim: SimConfig::default(),
            seed: 20050404, // IPDPS 2005 — any fixed value works
        }
    }

    /// The internet-scale tier: N = 2000 servers, M = 400 sites of 5000
    /// objects, 8256-node topology, 10^8 requests. This is the regime where
    /// the sharded parallel simulator earns its keep (`bench_parallel
    /// --scale large`).
    pub fn large(capacity_fraction: f64, lambda: f64, lambda_mode: LambdaMode) -> Self {
        Self {
            topology: TransitStubConfig::large(),
            hosts: HostPlacementConfig::large(),
            workload: WorkloadConfig::large(),
            capacity_fraction,
            capacity_profile: CapacityProfile::Uniform,
            lambda,
            lambda_spread: 0.0,
            lambda_mode,
            sim: SimConfig::default(),
            seed: 20050404,
        }
    }

    /// The CI-sized variant of [`ScenarioConfig::large`]: identical topology,
    /// fleet and catalog, but one tenth the trace (10^7 requests) so the
    /// gating `perf-large` job finishes in CI time budgets.
    pub fn large_ci(capacity_fraction: f64, lambda: f64, lambda_mode: LambdaMode) -> Self {
        let mut cfg = Self::large(capacity_fraction, lambda, lambda_mode);
        cfg.workload.base_requests = 4_000;
        cfg
    }

    /// A fast small-scale setup for tests, docs and examples.
    pub fn small() -> Self {
        Self {
            topology: TransitStubConfig::small(),
            hosts: HostPlacementConfig::small(),
            workload: WorkloadConfig::small(),
            capacity_fraction: 0.15,
            capacity_profile: CapacityProfile::Uniform,
            lambda: 0.0,
            lambda_spread: 0.0,
            lambda_mode: LambdaMode::Uncacheable,
            sim: SimConfig::default(),
            seed: 7,
        }
    }

    fn validate(&self) {
        assert!(
            self.capacity_fraction > 0.0 && self.capacity_fraction <= 1.0,
            "capacity fraction {} out of (0, 1]",
            self.capacity_fraction
        );
        assert!(
            (0.0..=1.0).contains(&self.lambda),
            "lambda {} out of [0, 1]",
            self.lambda
        );
        assert!(
            self.lambda_spread >= 0.0 && self.lambda_spread.is_finite(),
            "lambda spread must be non-negative"
        );
        if let CapacityProfile::Skewed { ratio } = self.capacity_profile {
            assert!(ratio >= 1.0 && ratio.is_finite(), "skew ratio must be >= 1");
        }
    }

    /// Per-server capacities implied by the profile, preserving the fleet
    /// total `n · capacity_fraction · corpus`.
    fn capacities(&self, n: usize, corpus_bytes: u64) -> Vec<u64> {
        let per_server = corpus_bytes as f64 * self.capacity_fraction;
        match self.capacity_profile {
            CapacityProfile::Uniform => vec![per_server as u64; n],
            CapacityProfile::Skewed { ratio } => {
                let weights: Vec<f64> = (0..n)
                    .map(|i| {
                        if n == 1 {
                            1.0
                        } else {
                            ratio.powf(i as f64 / (n as f64 - 1.0))
                        }
                    })
                    .collect();
                let total_weight: f64 = weights.iter().sum();
                weights
                    .iter()
                    .map(|w| (per_server * n as f64 * w / total_weight) as u64)
                    .collect()
            }
        }
    }
}

/// A fully generated experiment instance.
pub struct Scenario {
    pub config: ScenarioConfig,
    pub topology: TransitStubTopology,
    pub hosts: HostPlacement,
    pub catalog: SiteCatalog,
    pub demand: DemandMatrix,
    pub problem: PlacementProblem,
    pub trace: TraceSpec,
}

impl Scenario {
    /// Generate the whole instance deterministically from `config`.
    pub fn generate(config: &ScenarioConfig) -> Self {
        let _prof = cdn_telemetry::profile::span("scenario.generate");
        config.validate();
        let topology = TransitStubTopology::generate(&config.topology, config.seed);
        let hosts = HostPlacement::place(
            &topology,
            &config.hosts,
            config.seed ^ 0x517c_c1b7_2722_0a95,
        );
        let distances = DistanceMatrix::compute(&topology.graph, &hosts.host_rows());
        let catalog = SiteCatalog::generate(&config.workload, config.seed ^ 0x2545_f491_4f6c_dd1d);
        let n = config.hosts.n_servers;
        let m = config.workload.m_sites;
        assert_eq!(
            m, config.hosts.m_primaries,
            "workload sites must match primary count"
        );
        let demand = DemandMatrix::generate(&catalog, n, config.seed ^ 0x9e37_79b9_7f4a_7c15);

        // Per-site λ_j (paper §3.3): uniform around the configured mean.
        let lambdas: Vec<f64> = if config.lambda_spread == 0.0 {
            vec![config.lambda; m]
        } else {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(config.seed ^ 0x94d0_49bb_1331_11eb);
            (0..m)
                .map(|_| {
                    (config.lambda + rng.gen_range(-config.lambda_spread..=config.lambda_spread))
                        .clamp(0.0, 1.0)
                })
                .collect()
        };

        // Flatten host-to-host distances: servers are rows 0..n, primaries
        // rows n..n+m of the distance matrix.
        let mut dist_ss = vec![0u32; n * n];
        for i in 0..n {
            for k in 0..n {
                dist_ss[i * n + k] = distances.host_dist(i, k);
            }
        }
        let mut dist_sp = vec![0u32; n * m];
        for i in 0..n {
            for j in 0..m {
                dist_sp[i * m + j] = distances.host_dist(i, n + j);
            }
        }

        let site_bytes: Vec<u64> = catalog.sites.iter().map(|s| s.total_bytes).collect();
        let capacities = config.capacities(n, catalog.total_bytes());
        let raw_demand: Vec<u64> = (0..n)
            .flat_map(|i| (0..m).map(move |j| (i, j)))
            .map(|(i, j)| demand.requests(i, j))
            .collect();

        let problem = PlacementProblem::new(
            n,
            m,
            dist_ss,
            dist_sp,
            site_bytes,
            capacities,
            raw_demand,
            lambdas.clone(),
            catalog.mean_request_bytes(),
            config.workload.objects_per_site,
            config.workload.theta,
        );

        let trace = TraceSpec::with_per_site_lambda(
            &demand,
            catalog.object_zipf.clone(),
            lambdas,
            config.lambda_mode,
            config.seed ^ 0xbf58_476d_1ce4_e5b9,
        );

        Self {
            config: config.clone(),
            topology,
            hosts,
            catalog,
            demand,
            problem,
            trace,
        }
    }

    /// Run a placement strategy against this scenario.
    pub fn plan(&self, strategy: Strategy) -> PlanResult {
        self.plan_with_model(strategy, crate::ModelBackend::Paper)
    }

    /// Run a placement strategy with an explicit hit-ratio model backend.
    pub fn plan_with_model(&self, strategy: Strategy, model: crate::ModelBackend) -> PlanResult {
        let _prof = cdn_telemetry::profile::span("scenario.plan");
        strategy.run_with_model(&self.problem, model)
    }

    /// Simulate a plan with the trace-driven simulator. Pure replication is
    /// simulated cache-less (it is the *stand-alone* baseline); every other
    /// strategy runs an LRU sized to each server's leftover space.
    pub fn simulate(&self, plan: &PlanResult) -> SimReport {
        let make_zero: &(dyn Fn(u64) -> Box<dyn Cache> + Sync) =
            &|_| Box::new(cdn_cache::LruCache::new(0));
        let factory = match plan.strategy {
            Strategy::Replication => Some(make_zero),
            _ => None,
        };
        simulate_system(
            &self.problem,
            &plan.placement,
            &self.catalog,
            &self.trace,
            &self.config.sim,
            factory,
        )
    }

    /// Simulate with an explicit cache factory (policy ablations).
    pub fn simulate_with_cache(
        &self,
        placement: &Placement,
        make_cache: &(dyn Fn(u64) -> Box<dyn Cache> + Sync),
    ) -> SimReport {
        simulate_system(
            &self.problem,
            placement,
            &self.catalog,
            &self.trace,
            &self.config.sim,
            Some(make_cache),
        )
    }

    /// The paper's hit-ratio oracle for this scenario's problem.
    pub fn oracle(&self) -> cdn_placement::PaperOracle {
        paper_oracle_for(&self.problem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scenario_generates_consistently() {
        let s = Scenario::generate(&ScenarioConfig::small());
        let cfg = &s.config;
        assert_eq!(s.problem.n_servers(), cfg.hosts.n_servers);
        assert_eq!(s.problem.m_sites(), cfg.workload.m_sites);
        assert_eq!(s.trace.n_servers(), cfg.hosts.n_servers);
        // Capacity fraction respected.
        let expected = (s.catalog.total_bytes() as f64 * cfg.capacity_fraction) as u64;
        assert_eq!(s.problem.capacities[0], expected);
        assert!(s.problem.capacities.iter().all(|&c| c == expected));
        // Demand matches the demand matrix.
        assert_eq!(s.problem.grand_total(), s.demand.grand_total());
    }

    #[test]
    fn distances_embedded_correctly() {
        let s = Scenario::generate(&ScenarioConfig::small());
        let n = s.problem.n_servers();
        for i in 0..n {
            assert_eq!(s.problem.dist_servers(i, i), 0);
            for k in 0..n {
                assert_eq!(s.problem.dist_servers(i, k), s.problem.dist_servers(k, i));
            }
        }
        // Primaries are in stub domains ≥ 1 hop from any distinct server.
        let mut nonzero = 0;
        for i in 0..n {
            for j in 0..s.problem.m_sites() {
                if s.problem.dist_primary(i, j) > 0 {
                    nonzero += 1;
                }
            }
        }
        assert!(nonzero > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Scenario::generate(&ScenarioConfig::small());
        let b = Scenario::generate(&ScenarioConfig::small());
        assert_eq!(a.problem.grand_total(), b.problem.grand_total());
        assert_eq!(a.catalog.total_bytes(), b.catalog.total_bytes());
        assert_eq!(a.problem.dist_primary(0, 0), b.problem.dist_primary(0, 0));
    }

    #[test]
    fn lambda_spread_produces_heterogeneous_sites() {
        let mut cfg = ScenarioConfig::small();
        cfg.lambda = 0.2;
        cfg.lambda_spread = 0.15;
        let s = Scenario::generate(&cfg);
        let lambdas = &s.problem.lambda;
        assert!(lambdas.iter().all(|l| (0.05..=0.35).contains(l)));
        let min = lambdas.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = lambdas.iter().cloned().fold(0.0f64, f64::max);
        assert!(max - min > 0.05, "spread too small: {min}..{max}");
        let mean = lambdas.iter().sum::<f64>() / lambdas.len() as f64;
        assert!((mean - 0.2).abs() < 0.07, "mean {mean}");
        // Trace carries the same per-site values.
        for (j, &l) in lambdas.iter().enumerate() {
            assert_eq!(s.trace.lambda_for_site(j), l);
        }
    }

    #[test]
    fn heterogeneous_lambda_prediction_still_tracks_simulation() {
        let mut cfg = ScenarioConfig::small();
        cfg.lambda = 0.15;
        cfg.lambda_spread = 0.15;
        let s = Scenario::generate(&cfg);
        let plan = s.plan(crate::Strategy::Hybrid);
        let predicted = plan.predicted_mean_hops(&s.problem);
        let actual = s.simulate(&plan).mean_cost_hops;
        let err = (predicted - actual).abs() / actual.max(1e-9);
        assert!(err < 0.2, "predicted {predicted} vs actual {actual}");
    }

    #[test]
    fn skewed_capacities_preserve_fleet_total() {
        let mut cfg = ScenarioConfig::small();
        cfg.capacity_profile = CapacityProfile::Skewed { ratio: 8.0 };
        let s = Scenario::generate(&cfg);
        let uniform_total = (s.catalog.total_bytes() as f64 * cfg.capacity_fraction) as u64
            * s.problem.n_servers() as u64;
        let skewed_total: u64 = s.problem.capacities.iter().sum();
        let rel = (skewed_total as f64 - uniform_total as f64).abs() / uniform_total as f64;
        assert!(rel < 0.001, "fleet total drifted by {rel}");
        // Monotone ramp with the configured extremes.
        let first = s.problem.capacities[0] as f64;
        let last = *s.problem.capacities.last().unwrap() as f64;
        assert!((last / first - 8.0).abs() < 0.1, "ratio {}", last / first);
        for w in s.problem.capacities.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn hybrid_handles_heterogeneous_fleet() {
        let mut cfg = ScenarioConfig::small();
        cfg.capacity_profile = CapacityProfile::Skewed { ratio: 10.0 };
        let s = Scenario::generate(&cfg);
        let plan = s.plan(crate::Strategy::Hybrid);
        plan.placement.validate(&s.problem);
        let report = s.simulate(&plan);
        assert!(report.mean_latency_ms > 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let mut cfg = ScenarioConfig::small();
        cfg.capacity_fraction = 0.0;
        Scenario::generate(&cfg);
    }

    #[test]
    #[should_panic]
    fn mismatched_sites_and_primaries_rejected() {
        let mut cfg = ScenarioConfig::small();
        cfg.hosts.m_primaries = cfg.workload.m_sites + 1;
        Scenario::generate(&cfg);
    }
}
