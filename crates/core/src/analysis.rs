//! Side-by-side strategy comparison and result formatting.

use crate::scenario::Scenario;
use crate::strategy::{PlanResult, Strategy};
use cdn_sim::SimReport;

/// One strategy's planned and simulated outcome.
pub struct ComparisonRow {
    pub strategy: Strategy,
    pub plan: PlanResult,
    pub report: SimReport,
}

impl ComparisonRow {
    /// Predicted mean hops per request (planner's view).
    pub fn predicted_hops(&self, scenario: &Scenario) -> f64 {
        self.plan.predicted_mean_hops(&scenario.problem)
    }
}

/// The full comparison for one scenario.
pub struct StrategyComparison {
    pub rows: Vec<ComparisonRow>,
}

impl StrategyComparison {
    /// Find a strategy's row.
    pub fn row(&self, strategy: Strategy) -> Option<&ComparisonRow> {
        self.rows.iter().find(|r| r.strategy == strategy)
    }

    /// Mean-latency improvement of `a` over `b` as a fraction
    /// (0.4 = "a is 40% faster than b").
    pub fn improvement(&self, a: Strategy, b: Strategy) -> Option<f64> {
        let la = self.row(a)?.report.mean_latency_ms;
        let lb = self.row(b)?.report.mean_latency_ms;
        if lb == 0.0 {
            return None;
        }
        Some((lb - la) / lb)
    }

    /// Render a compact summary table.
    pub fn summary_table(&self) -> String {
        let mut out =
            String::from("strategy            mean_ms   p95_ms  local%   cache-hit%  replicas\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{:<18} {:>8.2} {:>8.1} {:>7.1} {:>11.1} {:>9}\n",
                r.strategy.name(),
                r.report.mean_latency_ms,
                r.report.histogram.percentile(0.95),
                100.0 * r.report.local_ratio(),
                100.0 * r.report.cache_hit_ratio(),
                r.plan.placement.replica_count(),
            ));
        }
        out
    }

    /// Render the availability view — only meaningful for fault-injected
    /// runs (all-100% otherwise).
    pub fn fault_table(&self) -> String {
        let mut out =
            String::from("strategy            avail%   failed  failover  degraded_p95_ms\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{:<18} {:>7.3} {:>8} {:>9} {:>16.1}\n",
                r.strategy.name(),
                100.0 * r.report.availability(),
                r.report.failed_requests,
                r.report.failover_fetches,
                r.report.failover_histogram.percentile(0.95),
            ));
        }
        out
    }
}

/// Plan and simulate each strategy against `scenario`.
pub fn compare_strategies(scenario: &Scenario, strategies: &[Strategy]) -> StrategyComparison {
    compare_strategies_with_policy(scenario, strategies, None).expect("None policy is always valid")
}

/// [`compare_strategies`] with an explicit replacement policy for each
/// server's leftover cache space (`None` = the paper's plain LRU). Pure
/// replication stays cache-less either way — it is the stand-alone
/// baseline. The name is resolved through [`cdn_cache::by_name`], so an
/// unknown policy surfaces as an `Err` for the caller's arg parsing
/// instead of a panic mid-run.
pub fn compare_strategies_with_policy(
    scenario: &Scenario,
    strategies: &[Strategy],
    policy: Option<&str>,
) -> Result<StrategyComparison, String> {
    compare_strategies_with_options(scenario, strategies, policy, crate::ModelBackend::Paper)
}

/// [`compare_strategies_with_policy`] plus an explicit hit-ratio model
/// backend for the planners (the simulator itself is model-free — it runs
/// real caches — so `model` only changes the plans being simulated).
pub fn compare_strategies_with_options(
    scenario: &Scenario,
    strategies: &[Strategy],
    policy: Option<&str>,
    model: crate::ModelBackend,
) -> Result<StrategyComparison, String> {
    if let Some(name) = policy {
        cdn_cache::by_name(name, 0)?;
    }
    let rows = strategies
        .iter()
        .map(|&s| {
            let plan = scenario.plan_with_model(s, model);
            let report = match policy {
                Some(name) if s != Strategy::Replication => {
                    let factory = |bytes: u64| {
                        cdn_cache::by_name(name, bytes).expect("policy validated above")
                    };
                    scenario.simulate_with_cache(&plan.placement, &factory)
                }
                _ => scenario.simulate(&plan),
            };
            ComparisonRow {
                strategy: s,
                plan,
                report,
            }
        })
        .collect();
    Ok(StrategyComparison { rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;

    #[test]
    fn comparison_covers_requested_strategies() {
        let scenario = Scenario::generate(&ScenarioConfig::small());
        let cmp = compare_strategies(&scenario, &[Strategy::Caching, Strategy::Hybrid]);
        assert_eq!(cmp.rows.len(), 2);
        assert!(cmp.row(Strategy::Hybrid).is_some());
        assert!(cmp.row(Strategy::Replication).is_none());
        let table = cmp.summary_table();
        assert!(table.contains("hybrid"));
        assert!(table.contains("caching"));
    }

    #[test]
    fn unknown_policy_is_an_error_not_a_panic() {
        let scenario = Scenario::generate(&ScenarioConfig::small());
        let err = compare_strategies_with_policy(&scenario, &[Strategy::Hybrid], Some("arc"))
            .err()
            .expect("unknown policy must be rejected");
        assert!(err.contains("arc"), "{err}");
        let ok = compare_strategies_with_policy(&scenario, &[Strategy::Hybrid], Some("gdsf"));
        assert!(ok.is_ok());
    }

    #[test]
    fn improvement_is_antisymmetric_in_sign() {
        let scenario = Scenario::generate(&ScenarioConfig::small());
        let cmp = compare_strategies(&scenario, &[Strategy::Caching, Strategy::Hybrid]);
        let ab = cmp
            .improvement(Strategy::Hybrid, Strategy::Caching)
            .unwrap();
        let ba = cmp
            .improvement(Strategy::Caching, Strategy::Hybrid)
            .unwrap();
        assert!(ab * ba <= 0.0 || (ab == 0.0 && ba == 0.0));
        assert!(cmp
            .improvement(Strategy::Replication, Strategy::Hybrid)
            .is_none());
    }
}
