//! # hybrid-cdn — replication + caching for CDNs, reproduced
//!
//! A from-scratch Rust reproduction of *"Increasing the Performance of CDNs
//! Using Replication and Caching: A Hybrid Approach"* (Bakiras &
//! Loukopoulos, IPDPS 2005): a CDN whose servers devote their storage
//! jointly to whole-site replicas (placed by a greedy algorithm) and an LRU
//! page cache (sized by an analytical hit-ratio model), beating both pure
//! replication and pure caching.
//!
//! This crate is the front door. It re-exports the substrate crates and
//! adds the [`Scenario`] type, which wires a generated topology, workload,
//! placement problem and trace together so an experiment is three calls:
//!
//! ```
//! use cdn_core::{Scenario, ScenarioConfig, Strategy};
//!
//! let scenario = Scenario::generate(&ScenarioConfig::small());
//! let plan = scenario.plan(Strategy::Hybrid);
//! let report = scenario.simulate(&plan);
//! assert!(report.mean_latency_ms > 0.0);
//! ```
//!
//! Substrates (each usable stand-alone):
//!
//! * [`topology`] — transit-stub graphs, shortest paths ([`cdn_topology`]).
//! * [`workload`] — SURGE-like site catalog, demand, traces
//!   ([`cdn_workload`]).
//! * [`cache`] — LRU and baseline replacement policies ([`cdn_cache`]).
//! * [`lru_model`] — the paper's analytical hit-ratio model
//!   ([`cdn_lru_model`]).
//! * [`placement`] — greedy-global, the hybrid algorithm, ad-hoc splits
//!   ([`cdn_placement`]).
//! * [`sim`] — the trace-driven simulator ([`cdn_sim`]).

pub use cdn_cache as cache;
pub use cdn_lru_model as lru_model;
pub use cdn_placement as placement;
pub use cdn_sim as sim;
pub use cdn_topology as topology;
pub use cdn_workload as workload;

pub mod analysis;
pub mod replay;
pub mod scenario;
pub mod strategy;

pub use analysis::{
    compare_strategies, compare_strategies_with_options, compare_strategies_with_policy,
    ComparisonRow, StrategyComparison,
};
pub use replay::{export_events, parse_csv_trace, replay_events, ReplayStreams};
pub use scenario::{CapacityProfile, Scenario, ScenarioConfig};
pub use strategy::{ModelBackend, PlanResult, Strategy, MODEL_NAMES};
