//! Real-trace replay: drive the simulator from a `.events` trace file
//! instead of a generated stream, and export synthetic scenarios to the
//! same format.
//!
//! The binary format itself ([`cdn_workload::trace_file`]) stores
//! `(key, timestamp_us)` pairs; this module gives them simulation
//! semantics:
//!
//! * **Export** — [`export_events`] walks a synthetic scenario's
//!   per-server streams in a deterministic round-robin interleave and
//!   packs each request as `key = (site << 32) | object` with a
//!   strictly increasing timestamp, so any scenario can be round-tripped
//!   through a trace file.
//! * **Ingest** — [`parse_csv_trace`] converts text traces (either
//!   `timestamp_us,key` or `timestamp_us,site,object` columns) into
//!   events, sorting stably by timestamp.
//! * **Replay** — [`ReplayStreams::from_events`] partitions events
//!   across servers by a deterministic key hash (all requests for an
//!   object land on one server, the regime where delayed-hit coalescing
//!   matters) and clamps sites/objects into the replaying scenario's
//!   catalog, so any trace replays against any scenario. The resulting
//!   per-server streams feed [`cdn_sim::simulate_system_streams`], which
//!   keeps replay byte-identical at any thread or shard count (DESIGN.md
//!   §9.1: per-server state is keyed on the deterministic stream tick).

use crate::scenario::Scenario;
use crate::strategy::{PlanResult, Strategy};
use cdn_cache::Cache;
use cdn_sim::{simulate_system_streams, SimReport};
use cdn_workload::{pack_key, unpack_key, Flavor, Request, TraceEvent};

/// Deterministic 64-bit mix (splitmix64 finaliser) for the key → server
/// partition. Not a security hash; just a stable spreader.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Export a scenario's synthetic workload as a timestamped event list.
///
/// Per-server streams are interleaved round-robin (server 0's tick t,
/// server 1's tick t, …, then tick t+1), which is deterministic and gives
/// every event a unique, strictly increasing timestamp:
/// `t * 1000 + server` microseconds — i.e. a virtual 1 ms between
/// consecutive ticks of one server.
pub fn export_events(scenario: &Scenario) -> Vec<TraceEvent> {
    let n = scenario.trace.n_servers();
    let mut streams: Vec<_> = (0..n)
        .map(|s| scenario.trace.stream_for_server(s))
        .collect();
    let mut events = Vec::new();
    let mut tick: u64 = 0;
    loop {
        let mut any = false;
        for (server, stream) in streams.iter_mut().enumerate() {
            if let Some(req) = stream.next() {
                any = true;
                events.push(TraceEvent {
                    key: pack_key(req.site, req.object),
                    timestamp_us: tick * 1000 + server as u64,
                });
            }
        }
        if !any {
            break;
        }
        tick += 1;
    }
    events
}

/// Parse a CSV trace into events. Accepted row shapes (header rows and
/// blank lines are skipped):
///
/// * `timestamp_us,key` — the key is used verbatim;
/// * `timestamp_us,site,object` — packed via [`pack_key`].
///
/// Events are sorted stably by timestamp, so out-of-order inputs ingest
/// deterministically.
pub fn parse_csv_trace(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split(',').map(str::trim).collect();
        let parse = |s: &str| s.parse::<u64>().ok();
        let event = match cols.as_slice() {
            [ts, key] => parse(ts)
                .zip(parse(key))
                .map(|(timestamp_us, key)| TraceEvent { key, timestamp_us }),
            [ts, site, object] => match (parse(ts), parse(site), parse(object)) {
                (Some(timestamp_us), Some(site), Some(object)) => {
                    if site > u64::from(u32::MAX) || object > u64::from(u32::MAX) {
                        return Err(format!(
                            "line {}: site/object out of u32 range: {line}",
                            lineno + 1
                        ));
                    }
                    Some(TraceEvent {
                        key: pack_key(site as u32, object as u32),
                        timestamp_us,
                    })
                }
                _ => None,
            },
            _ => {
                return Err(format!(
                    "line {}: expected 2 or 3 comma-separated columns, got {}: {line}",
                    lineno + 1,
                    cols.len()
                ))
            }
        };
        match event {
            Some(e) => events.push(e),
            // A non-numeric first row is a header; anywhere else it is data
            // corruption worth reporting.
            None if lineno == 0 => continue,
            None => return Err(format!("line {}: non-numeric field: {line}", lineno + 1)),
        }
    }
    events.sort_by_key(|e| e.timestamp_us);
    Ok(events)
}

/// Per-server request streams rebuilt from a trace, ready to feed
/// [`cdn_sim::simulate_system_streams`].
pub struct ReplayStreams {
    streams: Vec<Vec<Request>>,
}

impl ReplayStreams {
    /// Partition `events` into per-server streams.
    ///
    /// * Server: `mix64(key) % n_servers` — all requests for one object
    ///   land on one server, deterministically.
    /// * Site/object: the packed halves of the key, clamped into the
    ///   replaying catalog (`site % m_sites`, `object % objects_per_site`),
    ///   so any trace replays against any scenario.
    /// * Order: stable by timestamp (ties keep input order), so replay is
    ///   independent of how the trace was produced or stored.
    ///
    /// All requests replay as [`Flavor::Normal`]; the `.events` format
    /// carries no uncacheable/expired flags.
    pub fn from_events(
        mut events: Vec<TraceEvent>,
        n_servers: usize,
        m_sites: usize,
        objects_per_site: usize,
    ) -> Self {
        assert!(n_servers > 0, "need at least one server");
        assert!(m_sites > 0, "need at least one site");
        assert!(objects_per_site > 0, "need at least one object per site");
        events.sort_by_key(|e| e.timestamp_us);
        let mut streams = vec![Vec::new(); n_servers];
        for e in &events {
            let (site, object) = unpack_key(e.key);
            let server = (mix64(e.key) % n_servers as u64) as usize;
            streams[server].push(Request {
                site: site % m_sites as u32,
                object: object % objects_per_site as u32,
                flavor: Flavor::Normal,
            });
        }
        Self { streams }
    }

    /// Stream lengths per server (the warm-up sizing input).
    pub fn lengths(&self) -> Vec<u64> {
        self.streams.iter().map(|s| s.len() as u64).collect()
    }

    /// Total events across all servers.
    pub fn total_events(&self) -> u64 {
        self.streams.iter().map(|s| s.len() as u64).sum()
    }

    /// Iterate one server's stream (cloned requests, cheap `Copy` items).
    pub fn stream_for_server(&self, server: usize) -> impl Iterator<Item = Request> + '_ {
        self.streams[server].iter().copied()
    }
}

/// Replay a trace against a planned scenario: the placement and catalog
/// come from the scenario, the requests from the trace. Cache policy
/// mirrors [`Scenario::simulate`]: pure replication runs cache-less, every
/// other strategy uses the default LRU sized to each server's leftover
/// space.
pub fn replay_events(scenario: &Scenario, plan: &PlanResult, events: Vec<TraceEvent>) -> SimReport {
    let streams = ReplayStreams::from_events(
        events,
        scenario.problem.n_servers(),
        scenario.problem.m_sites(),
        scenario.config.workload.objects_per_site,
    );
    let lengths = streams.lengths();
    let make_zero: &(dyn Fn(u64) -> Box<dyn Cache> + Sync) =
        &|_| Box::new(cdn_cache::LruCache::new(0));
    let factory = match plan.strategy {
        Strategy::Replication => Some(make_zero),
        _ => None,
    };
    simulate_system_streams(
        &scenario.problem,
        &plan.placement,
        &scenario.catalog,
        &scenario.config.sim,
        factory,
        &lengths,
        |server| streams.stream_for_server(server),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use crate::Strategy;

    #[test]
    fn export_is_deterministic_and_timestamp_ordered() {
        let s = Scenario::generate(&ScenarioConfig::small());
        let a = export_events(&s);
        let b = export_events(&s);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let total: u64 = (0..s.trace.n_servers())
            .map(|i| s.trace.len_for_server(i))
            .sum();
        assert_eq!(a.len() as u64, total);
        for w in a.windows(2) {
            assert!(
                w[0].timestamp_us < w[1].timestamp_us || {
                    // Round-robin interleave: within a tick, server order.
                    w[0].timestamp_us / 1000 == w[1].timestamp_us / 1000
                }
            );
        }
        // Sorting by timestamp must be a no-op modulo stability.
        let mut sorted = a.clone();
        sorted.sort_by_key(|e| e.timestamp_us);
        assert_eq!(sorted, a);
    }

    #[test]
    fn csv_two_and_three_column_rows_parse() {
        let text = "timestamp_us,site,object\n30,2,7\n10,1,5\n20,0,0\n";
        let events = parse_csv_trace(text).unwrap();
        assert_eq!(events.len(), 3);
        // Sorted by timestamp.
        assert_eq!(
            events[0],
            TraceEvent {
                key: pack_key(1, 5),
                timestamp_us: 10
            }
        );
        assert_eq!(events[2].key, pack_key(2, 7));
        let packed = format!("ts,key\n5,{}\n", pack_key(3, 9));
        let events = parse_csv_trace(&packed).unwrap();
        assert_eq!(
            events,
            vec![TraceEvent {
                key: pack_key(3, 9),
                timestamp_us: 5
            }]
        );
    }

    #[test]
    fn csv_errors_are_contextful() {
        let err = parse_csv_trace("1,2,3\nnope,2,3\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = parse_csv_trace("1,2,3,4\n").unwrap_err();
        assert!(err.contains("2 or 3"), "{err}");
        let err = parse_csv_trace(&format!("1,{},0\n", u64::from(u32::MAX) + 1)).unwrap_err();
        assert!(err.contains("u32 range"), "{err}");
    }

    #[test]
    fn replay_clamps_into_catalog_and_covers_every_event() {
        let s = Scenario::generate(&ScenarioConfig::small());
        let m = s.problem.m_sites() as u32;
        let l = s.config.workload.objects_per_site as u32;
        // Keys far outside the catalog must wrap, not panic.
        let events: Vec<TraceEvent> = (0..200u64)
            .map(|i| TraceEvent {
                key: pack_key(m * 3 + i as u32, l * 5 + i as u32),
                timestamp_us: i,
            })
            .collect();
        let streams =
            ReplayStreams::from_events(events, s.problem.n_servers(), m as usize, l as usize);
        assert_eq!(streams.total_events(), 200);
        for server in 0..s.problem.n_servers() {
            for req in streams.stream_for_server(server) {
                assert!(req.site < m);
                assert!(req.object < l);
            }
        }
        let plan = s.plan(Strategy::Hybrid);
        let report = replay_events(
            &s,
            &plan,
            (0..200u64)
                .map(|i| TraceEvent {
                    key: pack_key(i as u32 % (2 * m), i as u32 % (2 * l)),
                    timestamp_us: i,
                })
                .collect(),
        );
        assert_eq!(report.total_requests, 200);
    }

    #[test]
    fn replay_is_bit_identical_across_shards_and_threads() {
        // The ISSUE acceptance grid: shards {1,2,4,8} x threads {1,4}.
        let mut cfg = ScenarioConfig::small();
        cfg.sim.fetch_latency = Some(16);
        let s = Scenario::generate(&cfg);
        let plan = s.plan(Strategy::Hybrid);
        let events = export_events(&s);
        let run = |shards: Option<usize>| {
            let mut sc = s.config.clone();
            sc.sim.shards = shards;
            let mut scenario_shards = Scenario::generate(&sc);
            // Same generated instance; only the shard count differs.
            scenario_shards.config.sim.shards = shards;
            replay_events(&scenario_shards, &plan, events.clone())
        };
        let base = run(Some(1));
        assert!(base.measured_requests > 0);
        assert!(base.delayed_hits > 0, "replay never coalesced");
        for shards in [2, 4, 8] {
            let r = run(Some(shards));
            assert_eq!(base.mean_latency_ms.to_bits(), r.mean_latency_ms.to_bits());
            assert_eq!(base.cache_hits, r.cache_hits);
            assert_eq!(base.delayed_hits, r.delayed_hits);
            assert_eq!(base.histogram.cdf(), r.histogram.cdf());
            assert_eq!(base.cause, r.cause);
        }
        let pool = |n: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .unwrap()
        };
        let one = pool(1).install(|| run(Some(4)));
        let four = pool(4).install(|| run(Some(4)));
        assert_eq!(
            one.mean_latency_ms.to_bits(),
            four.mean_latency_ms.to_bits()
        );
        assert_eq!(one.cause, four.cause);
        assert_eq!(one.histogram.cdf(), four.histogram.cdf());
    }

    #[test]
    fn export_replay_round_trip_reuses_every_request() {
        let s = Scenario::generate(&ScenarioConfig::small());
        let plan = s.plan(Strategy::Hybrid);
        let events = export_events(&s);
        let report = replay_events(&s, &plan, events.clone());
        assert_eq!(report.total_requests, events.len() as u64);
        // Deterministic: same trace, same report.
        let again = replay_events(&s, &plan, events);
        assert_eq!(
            report.mean_latency_ms.to_bits(),
            again.mean_latency_ms.to_bits()
        );
        assert_eq!(report.cause, again.cause);
    }
}
