//! Replica placement for the hybrid CDN reproduction.
//!
//! The paper casts placement as a file-allocation problem: find the 0/1
//! matrix `X` (site j replicated at server i) minimising the total transfer
//! cost `D = Σ_{i,j} (1 − h_j^(i)) · r_j^(i) · C(i, SN_j^(i))` subject to
//! per-server storage capacities, where `h` is the cache hit ratio of the
//! storage left over for caching. The stand-alone problem (`h ≡ 0`) is
//! NP-complete, so everything here is heuristic:
//!
//! * [`greedy_global`] — the classic greedy-global heuristic the paper uses
//!   as the stand-alone replication baseline.
//! * [`hybrid`] — the paper's contribution (its Figure 2): greedy with the
//!   benefit of each candidate replica charged for the cache space it
//!   steals, as predicted by the analytical LRU model.
//! * [`adhoc`] — fixed cache/replica splits (the paper's Figure 5 strawmen).
//! * [`baselines`] — random and popularity-ranked placements for context.
//!
//! [`problem`] holds the immutable instance, [`solution::Placement`] the
//! mutable assignment with incremental nearest-replica maintenance, and
//! [`oracle`] the hit-ratio predictors (paper model or Che's approximation)
//! the hybrid planner consults.

pub mod adhoc;
pub mod backtrack;
pub mod baselines;
pub mod bounds;
pub mod cost;
pub mod exhaustive;
pub mod greedy_global;
pub mod greedy_local;
pub mod hybrid;
pub mod oracle;
pub mod problem;
pub mod solution;

pub use adhoc::adhoc_split;
pub use backtrack::{greedy_backtrack, BacktrackConfig, BacktrackOutcome};
pub use baselines::{popularity_placement, random_placement};
pub use bounds::{optimality_gap, replication_cost_lower_bound};
pub use cost::{
    mean_hops_per_request, predicted_cost, replication_only_cost, total_cost, update_cost,
};
pub use exhaustive::{exhaustive_optimal, ExhaustiveOutcome};
pub use greedy_global::greedy_global;
pub use greedy_local::greedy_local;
pub use hybrid::{hybrid_greedy, HybridConfig, HybridOutcome};
pub use oracle::{CheOracle, ClosedFormOracle, HitRatioOracle, PaperOracle};
pub use problem::PlacementProblem;
pub use solution::{Nearest, Placement, RankedHolder};

/// Hop distance, mirroring `cdn_topology::Hops` without depending on it
/// (this crate is pure algorithm; it consumes pre-computed matrices).
pub type Hops = u32;
