//! The mutable placement: the X matrix, per-server free space, and the
//! nearest-replica (`SN`) pointers, maintained incrementally as replicas
//! are created — the book-keeping of lines 19–25 of the paper's Figure 2.

use crate::problem::PlacementProblem;
use crate::Hops;

/// Where server `i` sends its requests for site `j` when they are not
/// answered locally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Nearest {
    /// The primary site holds the closest copy.
    Primary,
    /// Server with this index holds the closest replica (may be `i` itself
    /// if `i` is a replicator).
    Server(u32),
}

/// One copy holder of a site as seen from a particular server: who holds
/// the copy and how far away it is. Produced by
/// [`Placement::ranked_holders`] for failover routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankedHolder {
    pub holder: Nearest,
    pub dist: Hops,
}

/// A (partial) assignment of site replicas to servers.
#[derive(Debug, Clone)]
pub struct Placement {
    n: usize,
    m: usize,
    /// `x[i * m + j]` — true if site j is replicated at server i.
    x: Vec<bool>,
    /// `nearest[i * m + j]` — SN_j^(i).
    nearest: Vec<Nearest>,
    /// Capacity remaining at each server (available to the cache).
    free_bytes: Vec<u64>,
    replica_count: usize,
}

impl Placement {
    /// The starting point of every algorithm here: only primary copies
    /// exist and all storage is free.
    pub fn primaries_only(problem: &PlacementProblem) -> Self {
        let n = problem.n_servers();
        let m = problem.m_sites();
        Self {
            n,
            m,
            x: vec![false; n * m],
            nearest: vec![Nearest::Primary; n * m],
            free_bytes: problem.capacities.clone(),
            replica_count: 0,
        }
    }

    pub fn n_servers(&self) -> usize {
        self.n
    }

    pub fn m_sites(&self) -> usize {
        self.m
    }

    /// Is site `j` replicated at server `i`?
    #[inline]
    pub fn is_replicated(&self, i: usize, j: usize) -> bool {
        self.x[i * self.m + j]
    }

    /// The nearest holder of site `j` for server `i`.
    #[inline]
    pub fn nearest(&self, i: usize, j: usize) -> Nearest {
        self.nearest[i * self.m + j]
    }

    /// Hops from server `i` to the nearest copy of site `j`.
    #[inline]
    pub fn nearest_dist(&self, problem: &PlacementProblem, i: usize, j: usize) -> Hops {
        match self.nearest(i, j) {
            Nearest::Primary => problem.dist_primary(i, j),
            Nearest::Server(k) => problem.dist_servers(i, k as usize),
        }
    }

    /// Bytes still free (cache space) at server `i`.
    #[inline]
    pub fn free_bytes(&self, i: usize) -> u64 {
        self.free_bytes[i]
    }

    /// Total replicas created (excludes primaries).
    pub fn replica_count(&self) -> usize {
        self.replica_count
    }

    /// Servers replicating site `j`.
    pub fn replicators_of(&self, j: usize) -> Vec<usize> {
        (0..self.n).filter(|&i| self.is_replicated(i, j)).collect()
    }

    /// Sites replicated at server `i`.
    pub fn sites_at(&self, i: usize) -> Vec<usize> {
        (0..self.m).filter(|&j| self.is_replicated(i, j)).collect()
    }

    /// Can server `i` still hold a replica of site `j`?
    pub fn fits(&self, problem: &PlacementProblem, i: usize, j: usize) -> bool {
        !self.is_replicated(i, j) && problem.site_bytes[j] <= self.free_bytes[i]
    }

    /// Create the replica `(i, j)`, updating free space and every server's
    /// SN pointer for site `j` (lines 19–25 of the paper's Figure 2).
    ///
    /// Returns the servers whose nearest-copy distance for site `j`
    /// *strictly improved* (always includes `i` unless it already held the
    /// site at distance 0, which `add_replica` forbids) — callers maintain
    /// caches keyed on those distances.
    ///
    /// # Panics
    /// Panics if the replica already exists or does not fit.
    pub fn add_replica(&mut self, problem: &PlacementProblem, i: usize, j: usize) -> Vec<usize> {
        assert!(
            !self.is_replicated(i, j),
            "replica ({i}, {j}) already exists"
        );
        assert!(
            problem.site_bytes[j] <= self.free_bytes[i],
            "replica ({i}, {j}) exceeds free space"
        );
        self.x[i * self.m + j] = true;
        self.free_bytes[i] -= problem.site_bytes[j];
        self.replica_count += 1;
        let mut improved = Vec::new();
        for k in 0..self.n {
            let cur = self.nearest_dist(problem, k, j);
            if problem.dist_servers(k, i) < cur {
                self.nearest[k * self.m + j] = Nearest::Server(i as u32);
                improved.push(k);
            }
        }
        // The replicator itself is always its own nearest copy.
        self.nearest[i * self.m + j] = Nearest::Server(i as u32);
        improved
    }

    /// Remove the replica `(i, j)`, restoring free space and recomputing
    /// every server's SN pointer for site `j` (the only affected column).
    /// O(N²). Used by the backtracking heuristic.
    ///
    /// # Panics
    /// Panics if the replica does not exist.
    pub fn remove_replica(&mut self, problem: &PlacementProblem, i: usize, j: usize) {
        assert!(self.is_replicated(i, j), "replica ({i}, {j}) absent");
        self.x[i * self.m + j] = false;
        self.free_bytes[i] += problem.site_bytes[j];
        self.replica_count -= 1;
        for k in 0..self.n {
            let mut best = Nearest::Primary;
            let mut best_d = problem.dist_primary(k, j);
            for s in 0..self.n {
                if self.is_replicated(s, j) {
                    let d = problem.dist_servers(k, s);
                    if d < best_d || (d == best_d && best == Nearest::Primary) {
                        best = Nearest::Server(s as u32);
                        best_d = d;
                    }
                }
            }
            self.nearest[k * self.m + j] = best;
        }
    }

    /// Recompute every SN pointer from scratch — O(N²M); used by tests to
    /// check the incremental maintenance and by bulk constructors.
    pub fn rebuild_nearest(&mut self, problem: &PlacementProblem) {
        for i in 0..self.n {
            for j in 0..self.m {
                let mut best = Nearest::Primary;
                let mut best_d = problem.dist_primary(i, j);
                for k in 0..self.n {
                    if self.is_replicated(k, j) {
                        let d = problem.dist_servers(i, k);
                        if d < best_d || (d == best_d && best == Nearest::Primary) {
                            best = Nearest::Server(k as u32);
                            best_d = d;
                        }
                    }
                }
                self.nearest[i * self.m + j] = best;
            }
        }
    }

    /// Every holder of site `j` (each replicator plus the primary), ranked
    /// by distance from server `i` — the failover order when holders crash.
    ///
    /// Rank 0 is always exactly `self.nearest(i, j)`: the incremental SN
    /// maintenance in [`add_replica`](Self::add_replica) breaks distance
    /// ties differently from a fresh sort (an existing pointer keeps its
    /// site on equal distance), so the head of the list is pinned to the
    /// live pointer rather than re-derived. The rest of the list is sorted
    /// by `(dist, server index)` with the primary last among equals.
    pub fn ranked_holders(
        &self,
        problem: &PlacementProblem,
        i: usize,
        j: usize,
    ) -> Vec<RankedHolder> {
        let mut holders: Vec<RankedHolder> = (0..self.n)
            .filter(|&k| self.is_replicated(k, j))
            .map(|k| RankedHolder {
                holder: Nearest::Server(k as u32),
                dist: problem.dist_servers(i, k),
            })
            .collect();
        holders.push(RankedHolder {
            holder: Nearest::Primary,
            dist: problem.dist_primary(i, j),
        });
        // Primary sorts after any equally distant replica (replicas are
        // CDN-internal; the origin is the copy of last resort at a tie).
        holders.sort_by_key(|h| {
            (
                h.dist,
                match h.holder {
                    Nearest::Server(k) => k,
                    Nearest::Primary => u32::MAX,
                },
            )
        });
        let head = self.nearest(i, j);
        let pos = holders
            .iter()
            .position(|h| h.holder == head)
            .expect("SN pointer must be a holder");
        // `head` is at minimal distance (validate() guarantees it), so the
        // rotation below only reorders equal-distance entries.
        holders[..=pos].rotate_right(1);
        holders
    }

    /// Check all structural invariants; panics with a description on
    /// violation. Used by tests and `debug_assert!`s.
    pub fn validate(&self, problem: &PlacementProblem) {
        assert_eq!(self.n, problem.n_servers());
        assert_eq!(self.m, problem.m_sites());
        for i in 0..self.n {
            let used: u64 = (0..self.m)
                .filter(|&j| self.is_replicated(i, j))
                .map(|j| problem.site_bytes[j])
                .sum();
            assert_eq!(
                used + self.free_bytes[i],
                problem.capacities[i],
                "byte accounting broken at server {i}"
            );
        }
        for i in 0..self.n {
            for j in 0..self.m {
                // SN must point at an actual holder, and no holder may be
                // strictly closer.
                let d = match self.nearest(i, j) {
                    Nearest::Primary => problem.dist_primary(i, j),
                    Nearest::Server(k) => {
                        assert!(
                            self.is_replicated(k as usize, j),
                            "SN of ({i},{j}) points at non-replicator {k}"
                        );
                        problem.dist_servers(i, k as usize)
                    }
                };
                assert!(
                    d <= problem.dist_primary(i, j),
                    "SN of ({i},{j}) farther than primary"
                );
                for k in 0..self.n {
                    if self.is_replicated(k, j) {
                        assert!(
                            problem.dist_servers(i, k) >= d,
                            "server {k} closer to ({i},{j}) than its SN"
                        );
                    }
                }
                if self.is_replicated(i, j) {
                    assert_eq!(
                        self.nearest(i, j),
                        Nearest::Server(i as u32),
                        "replicator ({i},{j}) not its own SN"
                    );
                }
            }
        }
        let count = self.x.iter().filter(|&&b| b).count();
        assert_eq!(count, self.replica_count, "replica_count drifted");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::testkit::*;

    fn problem() -> PlacementProblem {
        line_problem(4, 3, 1000, 2500, uniform_demand(4, 3, 10))
    }

    #[test]
    fn primaries_only_initial_state() {
        let p = problem();
        let pl = Placement::primaries_only(&p);
        assert_eq!(pl.replica_count(), 0);
        assert_eq!(pl.free_bytes(0), 2500);
        assert_eq!(pl.nearest(2, 1), Nearest::Primary);
        assert_eq!(pl.nearest_dist(&p, 2, 1), p.dist_primary(2, 1));
        pl.validate(&p);
    }

    #[test]
    fn add_replica_updates_everything() {
        let p = problem();
        let mut pl = Placement::primaries_only(&p);
        pl.add_replica(&p, 1, 0);
        assert!(pl.is_replicated(1, 0));
        assert_eq!(pl.free_bytes(1), 1500);
        assert_eq!(pl.replica_count(), 1);
        // Everyone now routes site 0 to server 1 (closer than any primary).
        for i in 0..4 {
            assert_eq!(pl.nearest(i, 0), Nearest::Server(1));
        }
        assert_eq!(pl.nearest_dist(&p, 3, 0), 2);
        pl.validate(&p);
    }

    #[test]
    fn closer_replica_takes_over() {
        let p = problem();
        let mut pl = Placement::primaries_only(&p);
        pl.add_replica(&p, 0, 0);
        assert_eq!(pl.nearest(3, 0), Nearest::Server(0));
        pl.add_replica(&p, 3, 0);
        assert_eq!(pl.nearest(3, 0), Nearest::Server(3));
        assert_eq!(pl.nearest(2, 0), Nearest::Server(3));
        // Server 1 keeps the original, equally-near-or-closer copy.
        assert_eq!(pl.nearest(1, 0), Nearest::Server(0));
        pl.validate(&p);
    }

    #[test]
    fn incremental_matches_rebuild() {
        let p = problem();
        let mut incr = Placement::primaries_only(&p);
        incr.add_replica(&p, 0, 0);
        incr.add_replica(&p, 3, 0);
        incr.add_replica(&p, 2, 1);
        let mut rebuilt = incr.clone();
        rebuilt.rebuild_nearest(&p);
        for i in 0..4 {
            for j in 0..3 {
                assert_eq!(
                    incr.nearest_dist(&p, i, j),
                    rebuilt.nearest_dist(&p, i, j),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn fits_respects_capacity_and_duplicates() {
        let p = problem();
        let mut pl = Placement::primaries_only(&p);
        assert!(pl.fits(&p, 0, 0));
        pl.add_replica(&p, 0, 0);
        assert!(!pl.fits(&p, 0, 0), "duplicate accepted");
        pl.add_replica(&p, 0, 1);
        // 2500 - 2000 = 500 left; a 1000-byte site no longer fits.
        assert!(!pl.fits(&p, 0, 2));
    }

    #[test]
    fn replicators_and_sites_listings() {
        let p = problem();
        let mut pl = Placement::primaries_only(&p);
        pl.add_replica(&p, 0, 2);
        pl.add_replica(&p, 3, 2);
        assert_eq!(pl.replicators_of(2), vec![0, 3]);
        assert_eq!(pl.sites_at(0), vec![2]);
        assert!(pl.sites_at(1).is_empty());
    }

    #[test]
    fn ranked_holders_head_is_sn_pointer_and_list_is_complete() {
        let p = problem();
        let mut pl = Placement::primaries_only(&p);
        pl.add_replica(&p, 0, 0);
        pl.add_replica(&p, 3, 0);
        for i in 0..4 {
            let ranked = pl.ranked_holders(&p, i, 0);
            // Two replicators plus the primary, each exactly once.
            assert_eq!(ranked.len(), 3);
            assert_eq!(ranked[0].holder, pl.nearest(i, 0));
            assert_eq!(ranked[0].dist, pl.nearest_dist(&p, i, 0));
            for w in ranked.windows(2) {
                assert!(w[0].dist <= w[1].dist, "holders out of order: {ranked:?}");
            }
            let mut seen: Vec<Nearest> = ranked.iter().map(|h| h.holder).collect();
            seen.sort_by_key(|h| match h {
                Nearest::Server(k) => *k,
                Nearest::Primary => u32::MAX,
            });
            assert_eq!(
                seen,
                vec![Nearest::Server(0), Nearest::Server(3), Nearest::Primary]
            );
        }
    }

    #[test]
    fn ranked_holders_without_replicas_is_just_the_primary() {
        let p = problem();
        let pl = Placement::primaries_only(&p);
        let ranked = pl.ranked_holders(&p, 1, 2);
        assert_eq!(
            ranked,
            vec![RankedHolder {
                holder: Nearest::Primary,
                dist: p.dist_primary(1, 2),
            }]
        );
    }

    #[test]
    fn ranked_holders_head_tracks_incremental_tie_breaks() {
        // Two replicas equidistant from server 1: the incremental SN keeps
        // whichever arrived first, and ranked_holders must mirror that
        // pointer at rank 0 even though a fresh sort would pick the lower
        // index.
        let p = problem();
        let mut pl = Placement::primaries_only(&p);
        pl.add_replica(&p, 2, 0); // dist(1,2) = 1
        pl.add_replica(&p, 0, 0); // dist(1,0) = 1, not strictly closer
        assert_eq!(pl.nearest(1, 0), Nearest::Server(2));
        let ranked = pl.ranked_holders(&p, 1, 0);
        assert_eq!(ranked[0].holder, Nearest::Server(2));
        assert_eq!(ranked[1].holder, Nearest::Server(0));
        assert_eq!(ranked[0].dist, ranked[1].dist);
        assert_eq!(ranked[2].holder, Nearest::Primary);
    }

    #[test]
    #[should_panic]
    fn double_add_panics() {
        let p = problem();
        let mut pl = Placement::primaries_only(&p);
        pl.add_replica(&p, 0, 0);
        pl.add_replica(&p, 0, 0);
    }

    #[test]
    #[should_panic]
    fn overfull_add_panics() {
        let p = line_problem(2, 2, 3000, 2500, uniform_demand(2, 2, 1));
        let mut pl = Placement::primaries_only(&p);
        pl.add_replica(&p, 0, 0);
    }
}
