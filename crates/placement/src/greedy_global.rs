//! The stand-alone greedy-global replica placement heuristic
//! (Kangasharju/Roberts/Ross; Qiu/Padmanabhan/Voelker) — the paper's pure
//! replication baseline and the skeleton of its hybrid algorithm.
//!
//! Each iteration scores every feasible (server, site) pair by the global
//! cost reduction its replica would produce and materialises the best one;
//! it stops when no pair has positive benefit or nothing fits anywhere.

use crate::problem::PlacementProblem;
use crate::solution::Placement;
use rayon::prelude::*;

/// Result of the stand-alone greedy: the placement and the trace of
/// per-iteration benefits (useful for tests and diagnostics).
#[derive(Debug, Clone)]
pub struct GreedyOutcome {
    pub placement: Placement,
    /// Benefit (cost reduction) of each accepted replica, in order.
    pub benefits: Vec<f64>,
}

/// Benefit of creating replica `(i, j)`: every server `k` whose current
/// nearest copy of `j` is farther than `i` reroutes, saving
/// `r_j^(k) · (C(k, SN) − C(k, i))`; server `i` itself saves its whole
/// remote cost.
fn benefit(problem: &PlacementProblem, placement: &Placement, i: usize, j: usize) -> f64 {
    // A replica of a mutable site costs its update propagation.
    let mut b = -problem.replica_update_cost(i, j);
    for k in 0..problem.n_servers() {
        if placement.is_replicated(k, j) {
            continue;
        }
        let cur = placement.nearest_dist(problem, k, j) as f64;
        let via_i = problem.dist_servers(k, i) as f64;
        if via_i < cur {
            b += problem.requests(k, j) as f64 * (cur - via_i);
        }
    }
    b
}

/// Run greedy-global to fixpoint. Deterministic: ties are broken toward the
/// smallest `(server, site)` pair.
///
/// ```
/// use cdn_placement::{greedy_global, PlacementProblem};
/// // 2 servers 1 hop apart, 1 site with a distant primary (5 hops).
/// let problem = PlacementProblem::new(
///     2, 1,
///     vec![0, 1, 1, 0], vec![5, 5],
///     vec![100], vec![100, 0],
///     vec![10, 10], vec![0.0],
///     10.0, 10, 1.0,
/// );
/// let outcome = greedy_global(&problem);
/// // The only feasible replica (server 0) serves both servers.
/// assert!(outcome.placement.is_replicated(0, 0));
/// ```
pub fn greedy_global(problem: &PlacementProblem) -> GreedyOutcome {
    let n = problem.n_servers();
    let m = problem.m_sites();
    let mut placement = Placement::primaries_only(problem);
    let mut benefits = Vec::new();

    loop {
        // Score all feasible candidates in parallel; reduce to the best,
        // breaking benefit ties toward the smallest flat index so the
        // result does not depend on rayon's split points.
        let best = (0..n * m)
            .into_par_iter()
            .filter_map(|flat| {
                let (i, j) = (flat / m, flat % m);
                if !placement.fits(problem, i, j) {
                    return None;
                }
                let b = benefit(problem, &placement, i, j);
                (b > 0.0).then_some((b, flat))
            })
            .reduce_with(|a, b| {
                if (b.0, std::cmp::Reverse(b.1)) > (a.0, std::cmp::Reverse(a.1)) {
                    b
                } else {
                    a
                }
            });

        match best {
            Some((b, flat)) => {
                placement.add_replica(problem, flat / m, flat % m);
                benefits.push(b);
            }
            None => break,
        }
    }

    GreedyOutcome {
        placement,
        benefits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::replication_only_cost;
    use crate::problem::testkit::*;

    #[test]
    fn benefits_are_positive_and_cost_drops_accordingly() {
        let p = line_problem(4, 3, 1000, 2000, uniform_demand(4, 3, 10));
        let before = replication_only_cost(&p, &Placement::primaries_only(&p));
        let out = greedy_global(&p);
        let after = replication_only_cost(&p, &out.placement);
        assert!(out.benefits.iter().all(|&b| b > 0.0));
        let claimed: f64 = out.benefits.iter().sum();
        assert!(
            (before - after - claimed).abs() < 1e-6,
            "benefit accounting: before {before}, after {after}, claimed {claimed}"
        );
        out.placement.validate(&p);
    }

    #[test]
    fn fills_capacity_when_everything_helps() {
        // Uniform demand, distant primaries: replicas always help until
        // space runs out. Capacity of 2 sites per server.
        let p = line_problem(3, 4, 1000, 2000, uniform_demand(3, 4, 10));
        let out = greedy_global(&p);
        for i in 0..3 {
            assert_eq!(out.placement.sites_at(i).len(), 2, "server {i} not full");
        }
    }

    #[test]
    fn zero_demand_site_never_replicated() {
        let mut demand = uniform_demand(3, 3, 10);
        for i in 0..3 {
            demand[i * 3 + 1] = 0; // site 1 unwanted
        }
        let p = line_problem(3, 3, 1000, 1000, demand);
        let out = greedy_global(&p);
        assert!(out.placement.replicators_of(1).is_empty());
    }

    #[test]
    fn first_replica_is_globally_best() {
        // Server demand for site 0 dwarfs everything; the middle server
        // serves the whole line best.
        let mut demand = uniform_demand(3, 2, 1);
        demand[2] = 100; // (server 1, site 0)
        demand[4] = 100; // (server 2, site 0)
        demand[0] = 100; // (server 0, site 0)
        let p = line_problem(3, 2, 1000, 1000, demand);
        let out = greedy_global(&p);
        // First pick must be site 0 (only one site fits per server).
        assert!(!out.placement.replicators_of(0).is_empty());
        let first_benefit = out.benefits[0];
        // Site 0 at server 0: saves 100·(10) + 100·(11−1) + 100·(12−2) = 3000.
        assert!(first_benefit >= 3000.0);
    }

    #[test]
    fn respects_capacity_strictly() {
        let p = line_problem(2, 3, 1500, 1600, uniform_demand(2, 3, 5));
        let out = greedy_global(&p);
        for i in 0..2 {
            assert!(out.placement.sites_at(i).len() <= 1);
        }
        out.placement.validate(&p);
    }

    #[test]
    fn deterministic() {
        let p = line_problem(4, 5, 700, 2100, uniform_demand(4, 5, 3));
        let a = greedy_global(&p);
        let b = greedy_global(&p);
        for i in 0..4 {
            assert_eq!(a.placement.sites_at(i), b.placement.sites_at(i));
        }
        assert_eq!(a.benefits, b.benefits);
    }

    #[test]
    fn update_rates_discourage_replication() {
        let p = line_problem(3, 3, 1000, 3000, uniform_demand(3, 3, 10));
        let baseline = greedy_global(&p).placement.replica_count();
        let mut hot = p.clone();
        // Updates so frequent that no replica can pay for itself:
        // max read saving per replica < u_j * C(SP, i).
        hot.set_update_rates(vec![1_000_000; 3]);
        let out = greedy_global(&hot);
        assert_eq!(out.placement.replica_count(), 0);
        assert!(baseline > 0);
    }

    #[test]
    fn mild_update_rates_thin_out_replicas() {
        let p = line_problem(4, 6, 1000, 4000, uniform_demand(4, 6, 10));
        let baseline = greedy_global(&p).placement.replica_count();
        let mut mild = p.clone();
        mild.set_update_rates(vec![15; 6]);
        let thinned = greedy_global(&mild).placement.replica_count();
        assert!(thinned <= baseline);
    }

    #[test]
    fn too_small_capacity_places_nothing() {
        let p = line_problem(2, 2, 1000, 500, uniform_demand(2, 2, 10));
        let out = greedy_global(&p);
        assert_eq!(out.placement.replica_count(), 0);
        assert!(out.benefits.is_empty());
    }
}
