//! The objective function `D` and derived metrics.

use crate::problem::PlacementProblem;
use crate::solution::Placement;

/// Total predicted transfer cost
/// `D = Σ_{i,j} (1 − h(i, j)) · r_j^(i) · C(i, SN_j^(i))`,
/// with `h` supplied by the caller (per-server, per-site predicted cache
/// hit ratio; return 0 everywhere for a cache-less system). Requests for
/// locally replicated sites cost nothing (`C = 0`).
pub fn predicted_cost(
    problem: &PlacementProblem,
    placement: &Placement,
    hit: impl Fn(usize, usize) -> f64,
) -> f64 {
    let mut d = 0.0;
    for i in 0..problem.n_servers() {
        for j in 0..problem.m_sites() {
            if placement.is_replicated(i, j) {
                continue;
            }
            let r = problem.requests(i, j) as f64;
            if r == 0.0 {
                continue;
            }
            let c = placement.nearest_dist(problem, i, j) as f64;
            let h = hit(i, j).clamp(0.0, 1.0);
            d += (1.0 - h) * r * c;
        }
    }
    d
}

/// `D` for a pure replication system (no caching): `h ≡ 0`.
pub fn replication_only_cost(problem: &PlacementProblem, placement: &Placement) -> f64 {
    predicted_cost(problem, placement, |_, _| 0.0)
}

/// Consistency (update-propagation) cost of a placement: every update of
/// site `j` is pushed from the primary to each of its replicas,
/// `U = Σ_j u_j · Σ_{i: X_ij} C(SP_j, i)`. Zero under the paper's
/// read-only objective (all update rates default to 0).
pub fn update_cost(problem: &PlacementProblem, placement: &Placement) -> f64 {
    let mut u = 0.0;
    for j in 0..problem.m_sites() {
        if problem.update_rates[j] == 0 {
            continue;
        }
        for i in placement.replicators_of(j) {
            u += problem.replica_update_cost(i, j);
        }
    }
    u
}

/// Read cost plus update cost — the full read+update objective.
pub fn total_cost(
    problem: &PlacementProblem,
    placement: &Placement,
    hit: impl Fn(usize, usize) -> f64,
) -> f64 {
    predicted_cost(problem, placement, hit) + update_cost(problem, placement)
}

/// Average cost in hops per request — the y-axis of the paper's Figure 6.
pub fn mean_hops_per_request(problem: &PlacementProblem, total_cost: f64) -> f64 {
    let total = problem.grand_total();
    if total == 0 {
        0.0
    } else {
        total_cost / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::testkit::*;

    #[test]
    fn primaries_only_cost_is_demand_times_primary_distance() {
        let p = line_problem(2, 2, 100, 1000, vec![5, 3, 2, 7]);
        let pl = Placement::primaries_only(&p);
        let expected: f64 = (0..2)
            .flat_map(|i| (0..2).map(move |j| (i, j)))
            .map(|(i, j)| p.requests(i, j) as f64 * p.dist_primary(i, j) as f64)
            .sum();
        assert_eq!(replication_only_cost(&p, &pl), expected);
    }

    #[test]
    fn replicating_reduces_cost_to_zero_locally() {
        let p = line_problem(2, 1, 100, 1000, vec![5, 5]);
        let mut pl = Placement::primaries_only(&p);
        let before = replication_only_cost(&p, &pl);
        pl.add_replica(&p, 0, 0);
        let after = replication_only_cost(&p, &pl);
        // Server 0 now costs 0; server 1 pays 1 hop instead of 11.
        assert!(after < before);
        assert_eq!(after, 5.0 * 1.0);
    }

    #[test]
    fn hit_ratio_scales_cost() {
        let p = line_problem(1, 1, 100, 1000, vec![10]);
        let pl = Placement::primaries_only(&p);
        let full = predicted_cost(&p, &pl, |_, _| 0.0);
        let half = predicted_cost(&p, &pl, |_, _| 0.5);
        let none = predicted_cost(&p, &pl, |_, _| 1.0);
        assert!((half - full / 2.0).abs() < 1e-12);
        assert_eq!(none, 0.0);
    }

    #[test]
    fn out_of_range_hit_ratios_clamped() {
        let p = line_problem(1, 1, 100, 1000, vec![10]);
        let pl = Placement::primaries_only(&p);
        assert_eq!(predicted_cost(&p, &pl, |_, _| 7.0), 0.0);
        assert_eq!(
            predicted_cost(&p, &pl, |_, _| -3.0),
            replication_only_cost(&p, &pl)
        );
    }

    #[test]
    fn update_cost_zero_without_rates_or_replicas() {
        let p = line_problem(2, 2, 100, 1000, vec![1, 1, 1, 1]);
        let mut pl = Placement::primaries_only(&p);
        assert_eq!(update_cost(&p, &pl), 0.0);
        pl.add_replica(&p, 0, 0);
        assert_eq!(update_cost(&p, &pl), 0.0); // rates default to 0
    }

    #[test]
    fn update_cost_counts_every_replica() {
        let mut p = line_problem(2, 2, 100, 1000, vec![1, 1, 1, 1]);
        p.set_update_rates(vec![5, 0]);
        let mut pl = Placement::primaries_only(&p);
        pl.add_replica(&p, 0, 0);
        pl.add_replica(&p, 1, 0);
        pl.add_replica(&p, 1, 1); // site 1 has zero update rate
                                  // Site 0: primary distances are 10 (server 0) and 11 (server 1).
        assert_eq!(update_cost(&p, &pl), 5.0 * (10.0 + 11.0));
        let read = predicted_cost(&p, &pl, |_, _| 0.0);
        assert_eq!(total_cost(&p, &pl, |_, _| 0.0), read + 105.0);
    }

    #[test]
    fn mean_hops_normalises_by_grand_total() {
        let p = line_problem(2, 2, 100, 1000, vec![1, 1, 1, 1]);
        assert!((mean_hops_per_request(&p, 40.0) - 10.0).abs() < 1e-12);
    }
}
