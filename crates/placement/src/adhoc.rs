//! Ad-hoc fixed cache/replica splits — the strawmen of the paper's
//! Figure 5 ("what if we allocate a fixed percentage of the storage space
//! to caching and run the greedy global replication algorithm for the
//! remaining part?").

use crate::greedy_global::greedy_global;
use crate::problem::PlacementProblem;
use crate::solution::Placement;

/// Reserve `cache_fraction` of every server's capacity for caching, run
/// stand-alone greedy-global on the remainder, and return the placement
/// *against the original problem* (so `free_bytes` — the cache space — is
/// the reserved fraction plus whatever replication fragmentation left
/// unused).
///
/// # Panics
/// Panics if `cache_fraction` is outside `[0, 1]`.
pub fn adhoc_split(problem: &PlacementProblem, cache_fraction: f64) -> Placement {
    assert!(
        (0.0..=1.0).contains(&cache_fraction),
        "cache fraction {cache_fraction} out of [0,1]"
    );
    // Shrink capacities for the replication pass.
    let mut shrunk = problem.clone();
    shrunk.capacities = problem
        .capacities
        .iter()
        .map(|&c| ((c as f64) * (1.0 - cache_fraction)).floor() as u64)
        .collect();
    let outcome = greedy_global(&shrunk);

    // Replay the replica set against the full-capacity problem so the
    // leftover bytes are correctly accounted as cache space.
    let mut placement = Placement::primaries_only(problem);
    for i in 0..problem.n_servers() {
        for j in outcome.placement.sites_at(i) {
            placement.add_replica(problem, i, j);
        }
    }
    placement
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::testkit::*;

    #[test]
    fn fraction_zero_equals_greedy_global() {
        let p = line_problem(3, 4, 1000, 2000, uniform_demand(3, 4, 10));
        let adhoc = adhoc_split(&p, 0.0);
        let greedy = greedy_global(&p);
        for i in 0..3 {
            assert_eq!(adhoc.sites_at(i), greedy.placement.sites_at(i));
        }
    }

    #[test]
    fn fraction_one_is_pure_caching() {
        let p = line_problem(3, 4, 1000, 2000, uniform_demand(3, 4, 10));
        let adhoc = adhoc_split(&p, 1.0);
        assert_eq!(adhoc.replica_count(), 0);
        for i in 0..3 {
            assert_eq!(adhoc.free_bytes(i), 2000);
        }
    }

    #[test]
    fn reserved_cache_space_is_respected() {
        let p = line_problem(4, 6, 1000, 4000, uniform_demand(4, 6, 10));
        for f in [0.2, 0.5, 0.8] {
            let adhoc = adhoc_split(&p, f);
            for i in 0..4 {
                let reserved = (4000.0 * f).floor() as u64;
                assert!(
                    adhoc.free_bytes(i) >= reserved,
                    "f={f}, server {i}: free {} < reserved {reserved}",
                    adhoc.free_bytes(i)
                );
            }
            adhoc.validate(&p);
        }
    }

    #[test]
    fn more_cache_means_fewer_replicas() {
        let p = line_problem(4, 6, 1000, 4000, uniform_demand(4, 6, 10));
        let r20 = adhoc_split(&p, 0.2).replica_count();
        let r80 = adhoc_split(&p, 0.8).replica_count();
        assert!(r80 <= r20);
    }

    #[test]
    #[should_panic]
    fn invalid_fraction_panics() {
        let p = line_problem(2, 2, 100, 200, uniform_demand(2, 2, 1));
        adhoc_split(&p, 1.5);
    }
}
