//! Greedy-global with backtracking (drop/add interchange).
//!
//! The paper's related-work survey notes that among the k-median-style
//! heuristics, "a greedy one that performs back tracking offers the better
//! results" (Jamin et al., INFOCOM 2001). This module extends our
//! stand-alone greedy with that idea: after the constructive phase, a local
//! search repeatedly tries to *drop* one placed replica and *add* a better
//! one in the freed space, until no interchange improves the cost.
//!
//! Used by the extension benchmarks to quantify how much headroom the
//! constructive greedy leaves on the table (typically very little — which
//! is why the paper builds on plain greedy-global).

use crate::cost::replication_only_cost;
use crate::greedy_global::greedy_global;
use crate::problem::PlacementProblem;
use crate::solution::Placement;

/// Limits for the interchange phase.
#[derive(Debug, Clone, Copy)]
pub struct BacktrackConfig {
    /// Maximum full passes over all placed replicas.
    pub max_passes: usize,
    /// Minimum cost improvement for a swap to be committed.
    pub min_gain: f64,
}

impl Default for BacktrackConfig {
    fn default() -> Self {
        Self {
            max_passes: 4,
            min_gain: 1e-9,
        }
    }
}

/// Outcome of the backtracking search.
#[derive(Debug, Clone)]
pub struct BacktrackOutcome {
    pub placement: Placement,
    /// Cost after the constructive greedy phase.
    pub greedy_cost: f64,
    /// Cost after interchange converged.
    pub final_cost: f64,
    /// Number of committed swaps.
    pub swaps: usize,
}

/// Run greedy-global, then interchange replicas (same-server drop/add)
/// while it strictly improves the replication-only cost.
pub fn greedy_backtrack(problem: &PlacementProblem, config: &BacktrackConfig) -> BacktrackOutcome {
    let mut placement = greedy_global(problem).placement;
    let greedy_cost = replication_only_cost(problem, &placement);
    let mut cost = greedy_cost;
    let mut swaps = 0;

    for _ in 0..config.max_passes {
        let mut improved = false;
        for i in 0..problem.n_servers() {
            // Snapshot: sites_at allocates, but the pass is outside any hot
            // loop and placements mutate beneath us otherwise.
            for j in placement.sites_at(i) {
                placement.remove_replica(problem, i, j);
                let without = replication_only_cost(problem, &placement);

                // Best replacement at this server, which may be j itself.
                let mut best: Option<(f64, usize)> = None;
                for l in 0..problem.m_sites() {
                    if !placement.fits(problem, i, l) {
                        continue;
                    }
                    let mut trial = placement.clone();
                    trial.add_replica(problem, i, l);
                    let c = replication_only_cost(problem, &trial);
                    if best.map(|(bc, _)| c < bc).unwrap_or(true) {
                        best = Some((c, l));
                    }
                }

                match best {
                    Some((c, l)) if c + config.min_gain < cost => {
                        placement.add_replica(problem, i, l);
                        if l != j {
                            swaps += 1;
                            improved = true;
                        }
                        cost = c;
                    }
                    _ => {
                        // No strict improvement over the incumbent: put j
                        // back if it still helps, otherwise keep the drop
                        // (a pure drop can only help if j had become
                        // redundant through other replicas).
                        if without + config.min_gain < cost {
                            cost = without;
                            swaps += 1;
                            improved = true;
                        } else {
                            placement.add_replica(problem, i, j);
                        }
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }

    let final_cost = replication_only_cost(problem, &placement);
    BacktrackOutcome {
        placement,
        greedy_cost,
        final_cost,
        swaps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::testkit::*;

    #[test]
    fn never_worse_than_constructive_greedy() {
        for seed_shift in 0..3u64 {
            let p = line_problem(
                4,
                6,
                1000,
                2000 + 500 * seed_shift,
                uniform_demand(4, 6, 10 + seed_shift),
            );
            let out = greedy_backtrack(&p, &BacktrackConfig::default());
            assert!(
                out.final_cost <= out.greedy_cost + 1e-9,
                "backtrack {} worse than greedy {}",
                out.final_cost,
                out.greedy_cost
            );
            out.placement.validate(&p);
        }
    }

    #[test]
    fn reported_cost_matches_placement() {
        let p = line_problem(3, 5, 800, 2400, uniform_demand(3, 5, 6));
        let out = greedy_backtrack(&p, &BacktrackConfig::default());
        assert!((replication_only_cost(&p, &out.placement) - out.final_cost).abs() < 1e-9);
    }

    #[test]
    fn zero_passes_is_plain_greedy() {
        let p = line_problem(3, 4, 1000, 2000, uniform_demand(3, 4, 10));
        let cfg = BacktrackConfig {
            max_passes: 0,
            ..Default::default()
        };
        let out = greedy_backtrack(&p, &cfg);
        assert_eq!(out.swaps, 0);
        assert_eq!(out.greedy_cost, out.final_cost);
    }

    #[test]
    fn converges_without_max_pass_exhaustion() {
        let p = line_problem(4, 5, 700, 2100, uniform_demand(4, 5, 3));
        let a = greedy_backtrack(
            &p,
            &BacktrackConfig {
                max_passes: 50,
                ..Default::default()
            },
        );
        let b = greedy_backtrack(
            &p,
            &BacktrackConfig {
                max_passes: 51,
                ..Default::default()
            },
        );
        assert_eq!(a.final_cost, b.final_cost);
    }
}
