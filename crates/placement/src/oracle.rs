//! Hit-ratio oracles the hybrid planner consults.
//!
//! The planner only ever asks one question: *if server `i`'s cache holds
//! `b` objects, what hit ratio does a site with popularity `p` achieve
//! there?* [`PaperOracle`] answers with the paper's analytical model
//! (Equations 1–2, memoised per the paper's pre-computation scheme);
//! [`CheOracle`] answers with Che's approximation, for the model ablation;
//! [`ClosedFormOracle`] answers with the closed-form characteristic-rank
//! model — O(1) per query after a scalar solve per `(server, buffer)`.

use cdn_lru_model::{CheModel, ClosedFormLru, DemandScale, HitRatioTable, LruModel};
use parking_lot::Mutex;
use std::collections::HashMap;

/// A predictor of per-site LRU hit ratios.
pub trait HitRatioOracle: Sync + Send {
    /// Hit ratio of a site with popularity `p` (relative to all requests of
    /// server `server`) when that server's cache holds `b` objects.
    fn site_hit_ratio(&self, server: usize, p: f64, b: usize) -> f64;

    /// Opaque fingerprint of the oracle's whole response surface at
    /// `(server, b)`: if two buffer sizes return equal `Some` fingerprints,
    /// `site_hit_ratio(server, p, ·)` is guaranteed bit-identical between
    /// them for **every** `p`. `None` makes no such guarantee and callers
    /// must recompute. The lazy hybrid planner uses this to skip whole
    /// hit-ratio row refreshes when a buffer shrink stays inside one
    /// quantisation cell.
    fn buffer_signature(&self, _server: usize, _b: usize) -> Option<u64> {
        None
    }
}

/// The paper's model. Per the paper's implementation notes:
///
/// * `p_B` — the cumulative popularity of the top-B objects — is computed
///   **once per server at initialisation** and treated as constant while
///   replicas are created ("calculating K during each iteration produced
///   the same result", §4);
/// * `h(p, K)` is memoised on the quantised grid of [`HitRatioTable`];
/// * `K(B, p_B)` uses the closed-form horizon for large buffers.
#[derive(Debug)]
pub struct PaperOracle {
    table: HitRatioTable,
    /// Fixed-at-init p_B per server.
    p_b: Vec<f64>,
    /// `K(B, p_B)` per `(server, buffer)`. The small-buffer horizon is an
    /// exact O(B) summation and every oracle query needs the horizon just
    /// to build its memo-table key, so planners re-probing the same
    /// buffers would otherwise pay the summation millions of times.
    /// Compute-once under the lock: the amount of model work stays a pure
    /// function of the query set, independent of thread schedule.
    horizons: Vec<Mutex<HashMap<usize, f64>>>,
}

impl PaperOracle {
    /// Build from the shared object law and, per server, the site
    /// popularities and the *initial* buffer size (full capacity devoted to
    /// caching — the hybrid algorithm's starting state).
    pub fn new(model: LruModel, per_server_pops: &[Vec<f64>], initial_buffers: &[usize]) -> Self {
        assert_eq!(per_server_pops.len(), initial_buffers.len());
        let p_b = per_server_pops
            .iter()
            .zip(initial_buffers)
            .map(|(pops, &b)| model.top_b_mass(pops, b))
            .collect();
        let horizons = (0..per_server_pops.len())
            .map(|_| Mutex::new(HashMap::new()))
            .collect();
        Self {
            table: HitRatioTable::planner_default(model),
            p_b,
            horizons,
        }
    }

    fn horizon(&self, server: usize, b: usize) -> f64 {
        let mut memo = self.horizons[server].lock();
        if let Some(&k) = memo.get(&b) {
            return k;
        }
        let k = self
            .table
            .model()
            .eviction_horizon_approx(b, self.p_b[server]);
        memo.insert(b, k);
        k
    }

    /// The fixed `p_B` of a server.
    pub fn p_b(&self, server: usize) -> f64 {
        self.p_b[server]
    }

    /// The underlying memo table (for instrumentation).
    pub fn table(&self) -> &HitRatioTable {
        &self.table
    }
}

impl HitRatioOracle for PaperOracle {
    fn site_hit_ratio(&self, server: usize, p: f64, b: usize) -> f64 {
        if b == 0 || p <= 0.0 {
            return 0.0;
        }
        let k = self.horizon(server, b);
        self.table.site_hit_ratio(p, k)
    }

    fn buffer_signature(&self, server: usize, b: usize) -> Option<u64> {
        // `b` only reaches the table through the quantised horizon, so the
        // K cell is a complete fingerprint of the row this buffer produces.
        // (`b == 0` short-circuits to an all-zero row, which the K≈0 cell 0
        // also denotes — a harmless collision, both rows are identical.)
        if b == 0 {
            return Some(0);
        }
        let k = self.horizon(server, b);
        Some(self.table.k_cell(k))
    }
}

/// Che's approximation, memoising the characteristic time per
/// `(server, buffer)` pair. Solving for `t_C` costs O(M·L) per distinct
/// buffer size, so this oracle is intended for small instances (the
/// ablation) rather than paper-scale planning.
pub struct CheOracle {
    model: CheModel,
    per_server_pops: Vec<Vec<f64>>,
    /// (server, b) → t_C.
    memo: Mutex<HashMap<(usize, usize), f64>>,
}

impl CheOracle {
    pub fn new(model: CheModel, per_server_pops: Vec<Vec<f64>>) -> Self {
        Self {
            model,
            per_server_pops,
            memo: Mutex::new(HashMap::new()),
        }
    }

    fn characteristic_time(&self, server: usize, b: usize) -> f64 {
        // Compute-once: hold the lock across the solve so racing workers
        // never both pay O(M·L) for the same cell, and so the amount of
        // model work is deterministic for any thread schedule.
        let mut memo = self.memo.lock();
        if let Some(&t) = memo.get(&(server, b)) {
            return t;
        }
        let t = self
            .model
            .characteristic_time(&self.per_server_pops[server], b);
        memo.insert((server, b), t);
        t
    }
}

impl HitRatioOracle for CheOracle {
    fn site_hit_ratio(&self, server: usize, p: f64, b: usize) -> f64 {
        if b == 0 || p <= 0.0 {
            return 0.0;
        }
        let t = self.characteristic_time(server, b);
        self.model.site_hit_ratio(p, t)
    }
}

/// The closed-form model: per-site hit ratios in O(1) arithmetic once the
/// shared characteristic scale `τ` of a `(server, buffer)` pair is known.
/// The `τ` bisection costs O(M·64) and is memoised compute-once, so racing
/// rayon workers never both pay for it and the amount of solver work is a
/// pure function of the query set — independent of thread schedule.
pub struct ClosedFormOracle {
    model: ClosedFormLru,
    /// Per-server demand geometry (site popularity mix).
    scales: Vec<DemandScale>,
    /// (server, b) → τ.
    memo: Mutex<HashMap<(usize, usize), f64>>,
}

impl ClosedFormOracle {
    pub fn new(model: ClosedFormLru, per_server_pops: &[Vec<f64>]) -> Self {
        let scales = per_server_pops
            .iter()
            .map(|pops| model.demand_scale(pops))
            .collect();
        Self {
            model,
            scales,
            memo: Mutex::new(HashMap::new()),
        }
    }

    /// The underlying model (for instrumentation and ablations).
    pub fn model(&self) -> &ClosedFormLru {
        &self.model
    }

    fn characteristic_scale(&self, server: usize, b: usize) -> f64 {
        let mut memo = self.memo.lock();
        if let Some(&tau) = memo.get(&(server, b)) {
            return tau;
        }
        let tau = self.model.characteristic_scale(b, &self.scales[server]);
        memo.insert((server, b), tau);
        tau
    }
}

impl HitRatioOracle for ClosedFormOracle {
    fn site_hit_ratio(&self, server: usize, p: f64, b: usize) -> f64 {
        if b == 0 || p <= 0.0 {
            return 0.0;
        }
        let tau = self.characteristic_scale(server, b);
        self.model.site_hit_ratio_at(p, tau)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pops() -> Vec<Vec<f64>> {
        vec![vec![0.5, 0.3, 0.2], vec![0.1, 0.1, 0.8]]
    }

    fn paper_oracle() -> PaperOracle {
        PaperOracle::new(LruModel::new(100, 1.0), &pops(), &[150, 80])
    }

    #[test]
    fn paper_oracle_zero_buffer_zero_hits() {
        let o = paper_oracle();
        assert_eq!(o.site_hit_ratio(0, 0.5, 0), 0.0);
        assert_eq!(o.site_hit_ratio(0, 0.0, 100), 0.0);
    }

    #[test]
    fn paper_oracle_monotone_in_buffer_and_popularity() {
        let o = paper_oracle();
        let small = o.site_hit_ratio(0, 0.3, 30);
        let large = o.site_hit_ratio(0, 0.3, 250);
        assert!(large > small, "large {large} <= small {small}");
        assert!(o.site_hit_ratio(0, 0.5, 100) > o.site_hit_ratio(0, 0.05, 100));
    }

    #[test]
    fn paper_oracle_p_b_reflects_initial_buffer() {
        let o = paper_oracle();
        // Server 0's initial buffer (150) covers half the 300 objects —
        // p_B must be well above one half given Zipf skew.
        assert!(o.p_b(0) > 0.5);
        assert!(o.p_b(0) <= 1.0);
        // Smaller buffer at server 1 → smaller p_B than a full-coverage one.
        assert!(o.p_b(1) < 1.0);
    }

    #[test]
    fn che_oracle_memoises() {
        let o = CheOracle::new(CheModel::new(100, 1.0), pops());
        let a = o.site_hit_ratio(1, 0.8, 60);
        let b = o.site_hit_ratio(1, 0.8, 60);
        assert_eq!(a, b);
        assert_eq!(o.memo.lock().len(), 1);
        let _ = o.site_hit_ratio(1, 0.8, 61);
        assert_eq!(o.memo.lock().len(), 2);
    }

    #[test]
    fn oracles_roughly_agree() {
        let paper = paper_oracle();
        let che = CheOracle::new(CheModel::new(100, 1.0), pops());
        let cf = ClosedFormOracle::new(ClosedFormLru::new(100, 1.0), &pops());
        for &(s, p, b) in &[(0usize, 0.3f64, 100usize), (1, 0.8, 60), (0, 0.2, 200)] {
            let hp = paper.site_hit_ratio(s, p, b);
            let hc = che.site_hit_ratio(s, p, b);
            let hf = cf.site_hit_ratio(s, p, b);
            assert!(
                (hp - hc).abs() < 0.12,
                "server {s} p {p} b {b}: paper {hp} vs che {hc}"
            );
            assert!(
                (hp - hf).abs() < 0.15,
                "server {s} p {p} b {b}: paper {hp} vs closed-form {hf}"
            );
        }
    }

    #[test]
    fn closed_form_oracle_memoises_and_degenerates() {
        let o = ClosedFormOracle::new(ClosedFormLru::new(100, 1.0), &pops());
        assert_eq!(o.site_hit_ratio(0, 0.5, 0), 0.0);
        assert_eq!(o.site_hit_ratio(0, 0.0, 100), 0.0);
        let a = o.site_hit_ratio(1, 0.8, 60);
        let b = o.site_hit_ratio(1, 0.8, 60);
        assert_eq!(a, b);
        assert_eq!(o.memo.lock().len(), 1);
        let bigger = o.site_hit_ratio(1, 0.8, 120);
        assert_eq!(o.memo.lock().len(), 2);
        assert!(bigger >= a, "more buffer can't hurt: {bigger} < {a}");
    }
}
