//! Hit-ratio oracles the hybrid planner consults.
//!
//! The planner only ever asks one question: *if server `i`'s cache holds
//! `b` objects, what hit ratio does a site with popularity `p` achieve
//! there?* [`PaperOracle`] answers with the paper's analytical model
//! (Equations 1–2, memoised per the paper's pre-computation scheme);
//! [`CheOracle`] answers with Che's approximation, for the model ablation.

use cdn_lru_model::{CheModel, HitRatioTable, LruModel};
use parking_lot::Mutex;
use std::collections::HashMap;

/// A predictor of per-site LRU hit ratios.
pub trait HitRatioOracle: Sync + Send {
    /// Hit ratio of a site with popularity `p` (relative to all requests of
    /// server `server`) when that server's cache holds `b` objects.
    fn site_hit_ratio(&self, server: usize, p: f64, b: usize) -> f64;
}

/// The paper's model. Per the paper's implementation notes:
///
/// * `p_B` — the cumulative popularity of the top-B objects — is computed
///   **once per server at initialisation** and treated as constant while
///   replicas are created ("calculating K during each iteration produced
///   the same result", §4);
/// * `h(p, K)` is memoised on the quantised grid of [`HitRatioTable`];
/// * `K(B, p_B)` uses the closed-form horizon for large buffers.
#[derive(Debug)]
pub struct PaperOracle {
    table: HitRatioTable,
    /// Fixed-at-init p_B per server.
    p_b: Vec<f64>,
}

impl PaperOracle {
    /// Build from the shared object law and, per server, the site
    /// popularities and the *initial* buffer size (full capacity devoted to
    /// caching — the hybrid algorithm's starting state).
    pub fn new(model: LruModel, per_server_pops: &[Vec<f64>], initial_buffers: &[usize]) -> Self {
        assert_eq!(per_server_pops.len(), initial_buffers.len());
        let p_b = per_server_pops
            .iter()
            .zip(initial_buffers)
            .map(|(pops, &b)| model.top_b_mass(pops, b))
            .collect();
        Self {
            table: HitRatioTable::planner_default(model),
            p_b,
        }
    }

    /// The fixed `p_B` of a server.
    pub fn p_b(&self, server: usize) -> f64 {
        self.p_b[server]
    }

    /// The underlying memo table (for instrumentation).
    pub fn table(&self) -> &HitRatioTable {
        &self.table
    }
}

impl HitRatioOracle for PaperOracle {
    fn site_hit_ratio(&self, server: usize, p: f64, b: usize) -> f64 {
        if b == 0 || p <= 0.0 {
            return 0.0;
        }
        let k = self
            .table
            .model()
            .eviction_horizon_approx(b, self.p_b[server]);
        self.table.site_hit_ratio(p, k)
    }
}

/// Che's approximation, memoising the characteristic time per
/// `(server, buffer)` pair. Solving for `t_C` costs O(M·L) per distinct
/// buffer size, so this oracle is intended for small instances (the
/// ablation) rather than paper-scale planning.
pub struct CheOracle {
    model: CheModel,
    per_server_pops: Vec<Vec<f64>>,
    /// (server, b) → t_C.
    memo: Mutex<HashMap<(usize, usize), f64>>,
}

impl CheOracle {
    pub fn new(model: CheModel, per_server_pops: Vec<Vec<f64>>) -> Self {
        Self {
            model,
            per_server_pops,
            memo: Mutex::new(HashMap::new()),
        }
    }

    fn characteristic_time(&self, server: usize, b: usize) -> f64 {
        // Compute-once: hold the lock across the solve so racing workers
        // never both pay O(M·L) for the same cell, and so the amount of
        // model work is deterministic for any thread schedule.
        let mut memo = self.memo.lock();
        if let Some(&t) = memo.get(&(server, b)) {
            return t;
        }
        let t = self
            .model
            .characteristic_time(&self.per_server_pops[server], b);
        memo.insert((server, b), t);
        t
    }
}

impl HitRatioOracle for CheOracle {
    fn site_hit_ratio(&self, server: usize, p: f64, b: usize) -> f64 {
        if b == 0 || p <= 0.0 {
            return 0.0;
        }
        let t = self.characteristic_time(server, b);
        self.model.site_hit_ratio(p, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pops() -> Vec<Vec<f64>> {
        vec![vec![0.5, 0.3, 0.2], vec![0.1, 0.1, 0.8]]
    }

    fn paper_oracle() -> PaperOracle {
        PaperOracle::new(LruModel::new(100, 1.0), &pops(), &[150, 80])
    }

    #[test]
    fn paper_oracle_zero_buffer_zero_hits() {
        let o = paper_oracle();
        assert_eq!(o.site_hit_ratio(0, 0.5, 0), 0.0);
        assert_eq!(o.site_hit_ratio(0, 0.0, 100), 0.0);
    }

    #[test]
    fn paper_oracle_monotone_in_buffer_and_popularity() {
        let o = paper_oracle();
        let small = o.site_hit_ratio(0, 0.3, 30);
        let large = o.site_hit_ratio(0, 0.3, 250);
        assert!(large > small, "large {large} <= small {small}");
        assert!(o.site_hit_ratio(0, 0.5, 100) > o.site_hit_ratio(0, 0.05, 100));
    }

    #[test]
    fn paper_oracle_p_b_reflects_initial_buffer() {
        let o = paper_oracle();
        // Server 0's initial buffer (150) covers half the 300 objects —
        // p_B must be well above one half given Zipf skew.
        assert!(o.p_b(0) > 0.5);
        assert!(o.p_b(0) <= 1.0);
        // Smaller buffer at server 1 → smaller p_B than a full-coverage one.
        assert!(o.p_b(1) < 1.0);
    }

    #[test]
    fn che_oracle_memoises() {
        let o = CheOracle::new(CheModel::new(100, 1.0), pops());
        let a = o.site_hit_ratio(1, 0.8, 60);
        let b = o.site_hit_ratio(1, 0.8, 60);
        assert_eq!(a, b);
        assert_eq!(o.memo.lock().len(), 1);
        let _ = o.site_hit_ratio(1, 0.8, 61);
        assert_eq!(o.memo.lock().len(), 2);
    }

    #[test]
    fn oracles_roughly_agree() {
        let paper = paper_oracle();
        let che = CheOracle::new(CheModel::new(100, 1.0), pops());
        for &(s, p, b) in &[(0usize, 0.3f64, 100usize), (1, 0.8, 60), (0, 0.2, 200)] {
            let hp = paper.site_hit_ratio(s, p, b);
            let hc = che.site_hit_ratio(s, p, b);
            assert!(
                (hp - hc).abs() < 0.12,
                "server {s} p {p} b {b}: paper {hp} vs che {hc}"
            );
        }
    }
}
