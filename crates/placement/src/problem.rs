//! The immutable placement-problem instance.

use crate::Hops;

/// Everything the algorithms need, flattened into dense matrices:
/// server-to-server and server-to-primary distances, site sizes, server
/// capacities, the demand matrix, and the caching parameters of the hybrid
/// objective (per-site λ, mean request size, objects per site, Zipf θ).
#[derive(Debug, Clone)]
pub struct PlacementProblem {
    n_servers: usize,
    m_sites: usize,
    /// `dist_ss[i * n + k]`: hops between servers i and k.
    dist_ss: Vec<Hops>,
    /// `dist_sp[i * m + j]`: hops from server i to the primary of site j.
    dist_sp: Vec<Hops>,
    /// `o_j`: bytes to store a replica of site j.
    pub site_bytes: Vec<u64>,
    /// `s_i`: storage capacity of server i in bytes.
    pub capacities: Vec<u64>,
    /// `r[i * m + j]`: requests from server i's clients for site j.
    demand: Vec<u64>,
    /// Per-server total demand (cached).
    server_totals: Vec<u64>,
    /// λ_j: fraction of site j's requests that are uncacheable/expired.
    pub lambda: Vec<f64>,
    /// `u_j`: updates to site j over the measurement period. Every update
    /// must be pushed from the primary to each replica, so replicas of
    /// frequently updated sites carry a consistency cost — the read+update
    /// FAP extension (Loukopoulos & Ahmad; Wolfson et al.). Zero by
    /// default, which recovers the paper's read-only objective.
    pub update_rates: Vec<u64>,
    /// Mean request size ō in bytes (buffer size B = cache bytes / ō).
    pub mean_request_bytes: f64,
    /// Objects per site (L) and Zipf exponent (θ) of the shared
    /// object-popularity law — inputs to the hit-ratio oracles.
    pub objects_per_site: usize,
    pub theta: f64,
}

impl PlacementProblem {
    /// Assemble an instance, validating shapes.
    ///
    /// # Panics
    /// Panics on any dimension mismatch, non-positive mean request size, or
    /// out-of-range λ.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        n_servers: usize,
        m_sites: usize,
        dist_ss: Vec<Hops>,
        dist_sp: Vec<Hops>,
        site_bytes: Vec<u64>,
        capacities: Vec<u64>,
        demand: Vec<u64>,
        lambda: Vec<f64>,
        mean_request_bytes: f64,
        objects_per_site: usize,
        theta: f64,
    ) -> Self {
        assert!(n_servers > 0 && m_sites > 0, "empty instance");
        assert_eq!(dist_ss.len(), n_servers * n_servers, "dist_ss shape");
        assert_eq!(dist_sp.len(), n_servers * m_sites, "dist_sp shape");
        assert_eq!(site_bytes.len(), m_sites, "site_bytes shape");
        assert_eq!(capacities.len(), n_servers, "capacities shape");
        assert_eq!(demand.len(), n_servers * m_sites, "demand shape");
        assert_eq!(lambda.len(), m_sites, "lambda shape");
        assert!(
            mean_request_bytes > 0.0 && mean_request_bytes.is_finite(),
            "mean request size must be positive"
        );
        assert!(
            lambda.iter().all(|&l| (0.0..=1.0).contains(&l)),
            "lambda out of [0,1]"
        );
        assert!(objects_per_site > 0, "need objects per site");
        for i in 0..n_servers {
            assert_eq!(dist_ss[i * n_servers + i], 0, "self-distance must be 0");
        }
        let server_totals = (0..n_servers)
            .map(|i| demand[i * m_sites..(i + 1) * m_sites].iter().sum())
            .collect();
        Self {
            n_servers,
            m_sites,
            dist_ss,
            dist_sp,
            site_bytes,
            capacities,
            demand,
            server_totals,
            lambda,
            update_rates: vec![0; m_sites],
            mean_request_bytes,
            objects_per_site,
            theta,
        }
    }

    /// Set per-site update rates (read+update objective).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn set_update_rates(&mut self, rates: Vec<u64>) {
        assert_eq!(rates.len(), self.m_sites, "update_rates shape");
        self.update_rates = rates;
    }

    /// Consistency cost of keeping one replica of site `j` at server `i`:
    /// every update travels primary → replica.
    #[inline]
    pub fn replica_update_cost(&self, i: usize, j: usize) -> f64 {
        self.update_rates[j] as f64 * self.dist_primary(i, j) as f64
    }

    pub fn n_servers(&self) -> usize {
        self.n_servers
    }

    pub fn m_sites(&self) -> usize {
        self.m_sites
    }

    /// Hops between servers `i` and `k`.
    #[inline]
    pub fn dist_servers(&self, i: usize, k: usize) -> Hops {
        self.dist_ss[i * self.n_servers + k]
    }

    /// Hops from server `i` to the primary of site `j`.
    #[inline]
    pub fn dist_primary(&self, i: usize, j: usize) -> Hops {
        self.dist_sp[i * self.m_sites + j]
    }

    /// `r_j^(i)`.
    #[inline]
    pub fn requests(&self, i: usize, j: usize) -> u64 {
        self.demand[i * self.m_sites + j]
    }

    /// Σ_j r_j^(i).
    pub fn server_total(&self, i: usize) -> u64 {
        self.server_totals[i]
    }

    /// Grand total of requests.
    pub fn grand_total(&self) -> u64 {
        self.server_totals.iter().sum()
    }

    /// Site popularity `p_j^(i)` (fraction of server i's requests).
    pub fn site_popularity(&self, i: usize, j: usize) -> f64 {
        let t = self.server_totals[i];
        if t == 0 {
            0.0
        } else {
            self.requests(i, j) as f64 / t as f64
        }
    }

    /// All site popularities at server `i`.
    pub fn popularity_row(&self, i: usize) -> Vec<f64> {
        (0..self.m_sites)
            .map(|j| self.site_popularity(i, j))
            .collect()
    }

    /// LRU buffer size (in objects) for `cache_bytes` of free space.
    pub fn buffer_objects(&self, cache_bytes: u64) -> usize {
        (cache_bytes as f64 / self.mean_request_bytes).floor() as usize
    }
}

#[cfg(test)]
pub(crate) mod testkit {
    use super::*;

    /// A tiny deterministic instance used across the algorithm tests:
    /// `n` servers on a line (distance |i−k|), primaries `prim_dist` hops
    /// beyond the far end, uniform site sizes and capacities.
    pub fn line_problem(
        n: usize,
        m: usize,
        site_bytes: u64,
        capacity: u64,
        demand: Vec<u64>,
    ) -> PlacementProblem {
        let mut dist_ss = vec![0 as Hops; n * n];
        for i in 0..n {
            for k in 0..n {
                dist_ss[i * n + k] = (i as i64 - k as i64).unsigned_abs() as Hops;
            }
        }
        // Primary of site j sits 10 hops past server 0, plus j to vary.
        let mut dist_sp = vec![0 as Hops; n * m];
        for i in 0..n {
            for j in 0..m {
                dist_sp[i * m + j] = 10 + i as Hops + (j % 3) as Hops;
            }
        }
        PlacementProblem::new(
            n,
            m,
            dist_ss,
            dist_sp,
            vec![site_bytes; m],
            vec![capacity; n],
            demand,
            vec![0.0; m],
            100.0,
            50,
            1.0,
        )
    }

    pub fn uniform_demand(n: usize, m: usize, r: u64) -> Vec<u64> {
        vec![r; n * m]
    }
}

#[cfg(test)]
mod tests {
    use super::testkit::*;
    use super::*;

    #[test]
    fn accessors_work() {
        let p = line_problem(3, 4, 1000, 5000, uniform_demand(3, 4, 10));
        assert_eq!(p.n_servers(), 3);
        assert_eq!(p.m_sites(), 4);
        assert_eq!(p.dist_servers(0, 2), 2);
        assert_eq!(p.dist_servers(2, 0), 2);
        assert_eq!(p.dist_primary(1, 0), 11);
        assert_eq!(p.requests(2, 3), 10);
        assert_eq!(p.server_total(0), 40);
        assert_eq!(p.grand_total(), 120);
    }

    #[test]
    fn popularity_normalises() {
        let p = line_problem(2, 2, 100, 100, vec![30, 10, 0, 0]);
        assert!((p.site_popularity(0, 0) - 0.75).abs() < 1e-12);
        assert_eq!(p.site_popularity(1, 0), 0.0);
        let row = p.popularity_row(0);
        assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn buffer_objects_uses_mean_request_size() {
        let p = line_problem(1, 1, 100, 100, vec![1]);
        assert_eq!(p.buffer_objects(1050), 10);
        assert_eq!(p.buffer_objects(0), 0);
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_panics() {
        PlacementProblem::new(
            2,
            2,
            vec![0; 4],
            vec![0; 4],
            vec![1; 2],
            vec![1; 2],
            vec![1; 3], // wrong
            vec![0.0; 2],
            1.0,
            10,
            1.0,
        );
    }

    #[test]
    #[should_panic]
    fn nonzero_self_distance_panics() {
        PlacementProblem::new(
            1,
            1,
            vec![5],
            vec![0],
            vec![1],
            vec![1],
            vec![1],
            vec![0.0],
            1.0,
            10,
            1.0,
        );
    }
}
