//! Lower bounds on the replication-only objective.
//!
//! The stand-alone placement problem is NP-complete, so no heuristic here
//! comes with an optimality certificate. This module provides a cheap,
//! *valid* lower bound via per-server relaxation, letting tests and
//! benchmarks report how far greedy / backtracking can possibly be from
//! optimal instead of comparing heuristics only against each other.
//!
//! The relaxation: fix a server `i`. For any placement, a request from `i`
//! for a site `j` not replicated at `i` costs at least
//! `δ_ij = min( C(i, SP_j), min_{k≠i} C(i, k) )` per request — no holder
//! can be closer than the closest other server, and the primary is always
//! available. Replicating `j` at `i` zeroes that cost but consumes `o_j`
//! of `i`'s capacity. Allowing *fractional* replication (knapsack
//! relaxation) can only help, so
//!
//! ```text
//! OPT ≥ Σ_i [ Σ_j r_ij·δ_ij  −  FracKnapsack(values r_ij·δ_ij, weights o_j, cap s_i) ]
//! ```
//!
//! The bound is exact when capacity is zero (primaries-only) and degrades
//! gracefully as inter-server cooperation (which it ignores) matters more.

use crate::problem::PlacementProblem;

/// Per-request distance floor `δ_ij` for a non-local site.
fn distance_floor(problem: &PlacementProblem, i: usize, j: usize) -> f64 {
    let primary = problem.dist_primary(i, j);
    let nearest_other = (0..problem.n_servers())
        .filter(|&k| k != i)
        .map(|k| problem.dist_servers(i, k))
        .min()
        .unwrap_or(primary);
    primary.min(nearest_other) as f64
}

/// Fractional-knapsack maximum of `Σ value` subject to `Σ weight <= cap`.
fn fractional_knapsack(mut items: Vec<(f64, u64)>, cap: u64) -> f64 {
    // Sort by value density, descending; zero-weight items are free value.
    items.sort_by(|a, b| {
        let da = a.0 / a.1.max(1) as f64;
        let db = b.0 / b.1.max(1) as f64;
        db.partial_cmp(&da).expect("finite densities")
    });
    let mut remaining = cap as f64;
    let mut total = 0.0;
    for (value, weight) in items {
        if value <= 0.0 {
            continue;
        }
        let w = weight as f64;
        if w <= remaining {
            total += value;
            remaining -= w;
        } else {
            if remaining > 0.0 {
                total += value * remaining / w;
            }
            break;
        }
    }
    total
}

/// A valid lower bound on the replication-only cost of **any** placement
/// for `problem` (caching disabled, update rates ignored — both only
/// *raise* true cost relative to this bound... update costs raise it, and
/// caching lowers read cost, so the bound applies to the pure replication
/// objective the greedy baseline optimises).
pub fn replication_cost_lower_bound(problem: &PlacementProblem) -> f64 {
    let n = problem.n_servers();
    let m = problem.m_sites();
    let mut bound = 0.0;
    for i in 0..n {
        let mut base = 0.0;
        let mut items = Vec::with_capacity(m);
        for j in 0..m {
            let v = problem.requests(i, j) as f64 * distance_floor(problem, i, j);
            base += v;
            items.push((v, problem.site_bytes[j]));
        }
        let saved = fractional_knapsack(items, problem.capacities[i]);
        bound += (base - saved).max(0.0);
    }
    bound
}

/// Relative optimality gap of a heuristic cost against the lower bound:
/// `(cost − LB) / LB`, or 0 when the bound is 0 (trivially optimal).
pub fn optimality_gap(cost: f64, lower_bound: f64) -> f64 {
    if lower_bound <= 0.0 {
        0.0
    } else {
        (cost - lower_bound).max(0.0) / lower_bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backtrack::{greedy_backtrack, BacktrackConfig};
    use crate::cost::replication_only_cost;
    use crate::greedy_global::greedy_global;
    use crate::problem::testkit::*;
    use crate::solution::Placement;

    #[test]
    fn bound_is_below_greedy_and_backtrack() {
        for (cap, demand_level) in [(1000u64, 5u64), (2500, 10), (4000, 3)] {
            let p = line_problem(4, 5, 1000, cap, uniform_demand(4, 5, demand_level));
            let lb = replication_cost_lower_bound(&p);
            let greedy = replication_only_cost(&p, &greedy_global(&p).placement);
            let bt = greedy_backtrack(&p, &BacktrackConfig::default()).final_cost;
            assert!(lb <= greedy + 1e-9, "LB {lb} > greedy {greedy}");
            assert!(lb <= bt + 1e-9, "LB {lb} > backtrack {bt}");
            assert!(lb >= 0.0);
        }
    }

    #[test]
    fn zero_capacity_bound_is_tight() {
        // Nothing can be replicated, but the bound may still assume the
        // (closer) neighbouring server holds a copy — which zero capacity
        // forbids — so it is a lower bound; for a single server there is no
        // neighbour and the bound must be exact.
        let p = line_problem(1, 3, 1000, 0, uniform_demand(1, 3, 10));
        let lb = replication_cost_lower_bound(&p);
        let actual = replication_only_cost(&p, &Placement::primaries_only(&p));
        assert!((lb - actual).abs() < 1e-9, "lb {lb} vs actual {actual}");
    }

    #[test]
    fn infinite_capacity_bound_is_zero() {
        let p = line_problem(3, 3, 1000, u64::MAX / 4, uniform_demand(3, 3, 10));
        assert_eq!(replication_cost_lower_bound(&p), 0.0);
    }

    #[test]
    fn bound_monotone_in_capacity() {
        let mut prev = f64::INFINITY;
        for cap in [0u64, 1000, 2000, 5000] {
            let p = line_problem(3, 5, 1000, cap, uniform_demand(3, 5, 10));
            let lb = replication_cost_lower_bound(&p);
            assert!(lb <= prev + 1e-9, "cap {cap}: {lb} > {prev}");
            prev = lb;
        }
    }

    #[test]
    fn greedy_gap_is_moderate_on_line_instances() {
        let p = line_problem(5, 8, 1000, 3000, uniform_demand(5, 8, 10));
        let lb = replication_cost_lower_bound(&p);
        let greedy = replication_only_cost(&p, &greedy_global(&p).placement);
        let gap = optimality_gap(greedy, lb);
        // The relaxation is loose (it lets every neighbour hold everything),
        // but greedy should still land within a small constant factor.
        assert!(gap < 20.0, "gap {gap}");
    }

    #[test]
    fn gap_of_zero_bound_is_zero() {
        assert_eq!(optimality_gap(123.0, 0.0), 0.0);
        assert_eq!(optimality_gap(50.0, 100.0), 0.0); // cost below bound clamps
        assert!((optimality_gap(150.0, 100.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fractional_knapsack_basics() {
        // cap 10: take all of (6, 5) then half of (4, 10) → 6 + 2 = 8.
        let items = vec![(6.0, 5u64), (4.0, 10u64)];
        assert!((fractional_knapsack(items, 10) - 8.0).abs() < 1e-12);
        // Zero-weight high-value items always taken.
        let items = vec![(3.0, 0u64), (1.0, 100u64)];
        assert!((fractional_knapsack(items, 0) - 3.0).abs() < 1e-12);
    }
}
