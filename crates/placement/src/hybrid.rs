//! The paper's hybrid replica-placement + storage-allocation algorithm
//! (its Figure 2), with an incremental lazy-greedy planner.
//!
//! Start from a network holding only primary copies — every byte of every
//! server is cache. Each iteration scores feasible (server, site) replica
//! candidates:
//!
//! ```text
//! benefit(i, j) =   (1 − h_j^(i)) · r_j^(i) · C(i, SN_j^(i))     // local gain
//!                 + Σ_{k≠i, X_kj=0} max(0, C(k,SN) − C(k,i))
//!                         · (1 − h_j^(k)) · r_j^(k)              // remote gain
//!                 − Σ_{k≠j, X_ik=0} (h_k^(i) − h'_k^(i))
//!                         · r_k^(i) · C(i, SN_k^(i))             // cache shrink
//! ```
//!
//! where `h'` is the predicted hit ratio after the candidate replica steals
//! `o_j` bytes from server `i`'s cache. The best positive candidate is
//! materialised; the algorithm stops when none remains.
//!
//! The naive loop rescans all N·M candidates every iteration (O(N²M) total
//! at paper scale, hopeless at internet scale). The default planner instead
//! keeps every candidate's last score in a max-heap and, after accepting a
//! replica, re-evaluates only the candidates whose inputs actually changed
//! (see `stale-set` comments below and DESIGN.md §9.2). Because benefits
//! here can *increase* after a placement (shrinking a cache raises other
//! candidates' remote-gain factors), stale scores are not upper bounds à la
//! CELF — so the planner eagerly refreshes the exact stale set instead of
//! lazily re-checking heap tops, and remains bit-identical to the dense
//! scan ([`HybridConfig::dense_scan`]) at any thread count.

use crate::cost::predicted_cost;
use crate::oracle::{CheOracle, ClosedFormOracle, HitRatioOracle, PaperOracle};
use crate::problem::PlacementProblem;
use crate::solution::Placement;
use crate::Hops;
use cdn_lru_model::{CheModel, ClosedFormLru, LruModel};
use cdn_telemetry::{self as telemetry, Value};
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Tunables of the hybrid run.
#[derive(Debug, Clone, Copy)]
pub struct HybridConfig {
    /// Accept a candidate only if its benefit exceeds this (the paper uses
    /// "positive benefit", i.e. 0).
    pub min_benefit: f64,
    /// Safety valve on iterations.
    pub max_replicas: usize,
    /// Evaluate the cache-shrink penalty exactly per candidate (the
    /// literal Figure 2 inner loop, O(M) oracle queries per candidate)
    /// instead of the memoised decomposition. Slower by ~2 orders of
    /// magnitude at paper scale; kept as the reference implementation the
    /// fast path is tested against.
    pub exact_shrink_scan: bool,
    /// Re-evaluate every feasible candidate each iteration (the literal
    /// Figure 2 outer loop) instead of only the stale set. Kept as the
    /// reference implementation the lazy planner is tested against — the
    /// two must produce bit-identical replica traces.
    pub dense_scan: bool,
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self {
            min_benefit: 0.0,
            max_replicas: usize::MAX,
            exact_shrink_scan: false,
            dense_scan: false,
        }
    }
}

/// Bound on how far the incrementally tracked cost (initial − Σ benefits)
/// may drift from the exactly recomputed final cost, as a fraction of the
/// initial cost. Each accepted benefit is exact up to the oracle's
/// quantisation (1%-relative K cells, plus the `ShrinkMemo`'s 0.5%-relative
/// buffer buckets), and those per-step errors do not accumulate: the next
/// iteration re-derives its scores from the refreshed `hits` rows, so the
/// drift stays bounded by the quantisation error of the final
/// configuration's rows rather than the sum over steps. 5% is an order of
/// magnitude above anything observed (quick: <0.1%, large-ci: <1%).
pub const COST_DRIFT_TOLERANCE: f64 = 0.05;

/// Result of a hybrid (or pure-caching) run.
#[derive(Debug, Clone)]
pub struct HybridOutcome {
    pub placement: Placement,
    /// Predicted per-(server, site) hit ratio of the final configuration
    /// (λ-adjusted; 0 for locally replicated sites). Indexed `[i][j]`.
    pub hit_ratios: Vec<Vec<f64>>,
    /// Predicted cost before any replica was placed (pure caching).
    pub initial_cost: f64,
    /// Predicted cost of the final configuration.
    pub final_cost: f64,
    /// Benefit of each accepted replica, in order.
    pub benefits: Vec<f64>,
    /// The `(server, site)` of each accepted replica, in placement order —
    /// together with `benefits` this is the full greedy trace, which the
    /// lazy and dense planners must agree on bit-for-bit.
    pub replicas: Vec<(usize, usize)>,
}

impl HybridOutcome {
    /// Predicted hit ratio lookup usable with [`predicted_cost`].
    pub fn hit(&self, i: usize, j: usize) -> f64 {
        self.hit_ratios[i][j]
    }

    /// |(initial − Σ benefits) − final|: how far the incrementally tracked
    /// cost drifted from the exact recomputation (bounded by
    /// [`COST_DRIFT_TOLERANCE`] · initial).
    pub fn cost_drift(&self) -> f64 {
        let tracked = self.initial_cost - self.benefits.iter().sum::<f64>();
        (tracked - self.final_cost).abs()
    }
}

/// λ-adjusted hit ratio of site `j` at server `i` for buffer size `b`.
fn adjusted_hit(
    problem: &PlacementProblem,
    oracle: &dyn HitRatioOracle,
    i: usize,
    j: usize,
    b: usize,
) -> f64 {
    oracle.site_hit_ratio(i, problem.site_popularity(i, j), b) * (1.0 - problem.lambda[j])
}

/// Recompute server `i`'s full hit-ratio row for buffer size `b`
/// (0 for sites replicated at `i` — those never touch the cache).
fn hit_row(
    problem: &PlacementProblem,
    placement: &Placement,
    oracle: &dyn HitRatioOracle,
    i: usize,
    b: usize,
) -> Vec<f64> {
    (0..problem.m_sites())
        .map(|j| {
            if placement.is_replicated(i, j) {
                0.0
            } else {
                adjusted_hit(problem, oracle, i, j, b)
            }
        })
        .collect()
}

struct Candidate {
    benefit: f64,
    flat: usize,
}

/// Memoised cache-shrink bookkeeping for one server.
///
/// The naive evaluation of a candidate's shrink penalty is O(M) hit-ratio
/// queries; with N·M candidates per iteration that dominates paper-scale
/// planning. The penalty decomposes as
///
/// ```text
/// Σ_{k≠j} (h_k(B) − h_k(B'))·r_k·C_k
///   = [W(B) − S(B')] − (h_j(B) − h_j(B'))·r_j·C_j
/// ```
///
/// where `W(B) = Σ_k h_k(B)·r_k·C_k` is fixed until the server's state
/// changes and `S(B') = Σ_k h_k(B')·r_k·C_k` depends only on the shrunken
/// buffer size. `S` is memoised per 0.5%-relative buffer bucket (the hit
/// ratio varies smoothly in B, and the oracle already quantises K at 1%),
/// so each candidate costs O(1) amortised. When a replica lands, cached
/// entries are updated in place by the one term the placement changed
/// (see [`ShrinkMemo::apply_replica`]) rather than invalidated wholesale.
struct ShrinkMemo {
    /// `W` per server; `None` = needs recomputation.
    cur_w: Vec<Option<f64>>,
    /// `S(bucket)` per server, behind a lock for the parallel scan.
    s: Vec<parking_lot::Mutex<std::collections::HashMap<u32, f64>>>,
}

impl ShrinkMemo {
    fn new(n: usize) -> Self {
        Self {
            cur_w: vec![None; n],
            s: (0..n)
                .map(|_| parking_lot::Mutex::new(std::collections::HashMap::new()))
                .collect(),
        }
    }

    /// Geometric bucket of a buffer size (0.5% relative).
    fn bucket(b: usize) -> u32 {
        if b == 0 {
            0
        } else {
            ((b as f64).ln() / 0.005f64.ln_1p()).round() as u32 + 1
        }
    }

    /// Canonical buffer size of a bucket: the geometric grid point the
    /// bucket rounds around. `S` is always evaluated here rather than at
    /// whichever candidate's exact buffer size reaches the bucket first,
    /// making the cached value a pure function of its key — without this
    /// the memo's contents (and hence placements) would depend on scan
    /// scheduling once the scan runs on several threads.
    fn representative(bucket: u32) -> usize {
        if bucket == 0 {
            0
        } else {
            (f64::from(bucket - 1) * 0.005f64.ln_1p()).exp().round() as usize
        }
    }

    /// Exact incremental maintenance after replica `(i, j)` is placed.
    ///
    /// Wholesale invalidation here is what kept hybrid planning off the
    /// internet-scale tier: clearing a server's `S` map forces the next
    /// scan to rebuild every bucket with an O(M) weighted sum of oracle
    /// queries, and a single replica invalidates every server whose
    /// nearest-copy distance improved — at N = 2000 that is hundreds of
    /// millions of memo-table lookups per planning run, all through one
    /// lock. But one replica changes each sum in exactly one term:
    ///
    /// * the replicator `i` now holds site `j`, so `j`'s term leaves every
    ///   cached `S_i` bucket (`W_i` is rebuilt from the refreshed hits row
    ///   — `S` never depends on the live row, only on the oracle at the
    ///   bucket representative);
    /// * a server whose nearest copy of `j` moved from `c_old` to `c_new`
    ///   keeps every other term, so `W` and each cached `S` bucket shift
    ///   by `h_j · r · (c_new − c_old)`.
    ///
    /// Bucket updates are independent of one another, so the (seeded,
    /// per-process) `HashMap` iteration order cannot affect the resulting
    /// values, and the oracle work is one memoised query per cached bucket
    /// instead of M per rebuilt bucket.
    #[allow(clippy::too_many_arguments)] // internal update hook; mirrors evaluate_candidate
    fn apply_replica(
        &mut self,
        problem: &PlacementProblem,
        placement: &Placement,
        oracle: &dyn HitRatioOracle,
        hits: &[Vec<f64>],
        i: usize,
        j: usize,
        old_col: &[u32],
        improved: &[usize],
    ) {
        self.cur_w[i] = None;
        let r_ij = problem.requests(i, j) as f64;
        let c_old_i = old_col[i] as f64;
        if r_ij > 0.0 && c_old_i > 0.0 {
            for (&bucket, s) in self.s[i].get_mut().iter_mut() {
                let rep = Self::representative(bucket);
                *s -= adjusted_hit(problem, oracle, i, j, rep) * r_ij * c_old_i;
            }
        }
        for &k in improved {
            if k == i {
                continue;
            }
            let r = problem.requests(k, j) as f64;
            if r == 0.0 {
                continue;
            }
            let delta = placement.nearest_dist(problem, k, j) as f64 - old_col[k] as f64;
            if let Some(w) = self.cur_w[k] {
                self.cur_w[k] = Some(w + hits[k][j] * r * delta);
            }
            for (&bucket, s) in self.s[k].get_mut().iter_mut() {
                let rep = Self::representative(bucket);
                *s += adjusted_hit(problem, oracle, k, j, rep) * r * delta;
            }
        }
    }

    /// Recompute every stale `W` (sequential phase, between scans).
    #[allow(clippy::needless_range_loop)] // i indexes three parallel arrays
    fn refresh_w(&mut self, problem: &PlacementProblem, placement: &Placement, hits: &[Vec<f64>]) {
        for i in 0..problem.n_servers() {
            if self.cur_w[i].is_some() {
                continue;
            }
            self.cur_w[i] = Some(weighted_hit_sum(problem, placement, i, |k| hits[i][k]));
        }
    }

    /// `S_i(B')`, filling the bucket on first use.
    fn shrunken_sum(
        &self,
        problem: &PlacementProblem,
        placement: &Placement,
        oracle: &dyn HitRatioOracle,
        i: usize,
        new_buf: usize,
    ) -> f64 {
        let bucket = Self::bucket(new_buf);
        // Compute-once: hold the per-server lock across the evaluation so
        // racing workers never both fill the same bucket. The value would
        // be identical either way (the representative is canonical), but
        // the *amount* of oracle work must be schedule-independent for the
        // telemetry work counters to be bit-identical across thread counts.
        let mut cells = self.s[i].lock();
        if let Some(&s) = cells.get(&bucket) {
            return s;
        }
        let rep = Self::representative(bucket);
        let s = weighted_hit_sum(problem, placement, i, |k| {
            adjusted_hit(problem, oracle, i, k, rep)
        });
        cells.insert(bucket, s);
        s
    }
}

/// `Σ_{k: !x_ik} h(k)·r_ik·C(i, SN_ik)` for an arbitrary hit function.
fn weighted_hit_sum(
    problem: &PlacementProblem,
    placement: &Placement,
    i: usize,
    hit: impl Fn(usize) -> f64,
) -> f64 {
    let mut w = 0.0;
    for k in 0..problem.m_sites() {
        if placement.is_replicated(i, k) {
            continue;
        }
        let r = problem.requests(i, k) as f64;
        if r == 0.0 {
            continue;
        }
        let c = placement.nearest_dist(problem, i, k) as f64;
        if c == 0.0 {
            continue;
        }
        w += hit(k) * r * c;
    }
    w
}

/// Servers that can still profit from a new replica of site `j`: those
/// whose nearest copy is ≥ 2 hops away (a remote-gain term needs
/// `dist(k, i) < cur`, and distinct servers are ≥ 1 hop apart). Sorted by
/// descending current distance, ties to the lower index, so the remote-gain
/// summation order is a pure function of the placement state — shared by
/// the dense and lazy planners, independent of thread schedule. The list
/// shrinks as replicas accumulate, which is what makes late-phase
/// evaluations cheap at internet scale.
fn contrib_column(problem: &PlacementProblem, placement: &Placement, j: usize) -> Vec<u32> {
    let mut v: Vec<u32> = (0..problem.n_servers() as u32)
        .filter(|&k| placement.nearest_dist(problem, k as usize, j) >= 2)
        .collect();
    v.sort_unstable_by_key(|&k| (Reverse(placement.nearest_dist(problem, k as usize, j)), k));
    v
}

#[allow(clippy::needless_range_loop)] // k indexes hits alongside problem lookups
#[allow(clippy::too_many_arguments)] // internal scan helper; grouping would obscure the formula
fn evaluate_candidate(
    problem: &PlacementProblem,
    placement: &Placement,
    oracle: &dyn HitRatioOracle,
    hits: &[Vec<f64>],
    memo: &ShrinkMemo,
    contrib: &[Vec<u32>],
    exact: bool,
    cached_remote: Option<i64>,
    i: usize,
    j: usize,
) -> (f64, i64) {
    let c_ij = placement.nearest_dist(problem, i, j) as f64;
    let r_ij = problem.requests(i, j) as f64;
    // Local gain: site j's remote traffic from server i becomes free —
    // minus the consistency cost if the site receives updates.
    let mut b = (1.0 - hits[i][j]) * r_ij * c_ij - problem.replica_update_cost(i, j);

    // Cache-shrink penalty at server i.
    let new_buf = problem.buffer_objects(placement.free_bytes(i) - problem.site_bytes[j]);
    if exact {
        // Literal Figure 2, lines 10–13: recompute every remaining site's
        // hit ratio at the shrunken buffer.
        for k in 0..problem.m_sites() {
            if k == j || placement.is_replicated(i, k) {
                continue;
            }
            let c = placement.nearest_dist(problem, i, k) as f64;
            if c == 0.0 {
                continue;
            }
            let r = problem.requests(i, k) as f64;
            if r == 0.0 {
                continue;
            }
            let h_new = adjusted_hit(problem, oracle, i, k, new_buf);
            b -= (hits[i][k] - h_new) * r * c;
        }
    } else {
        // Memoised decomposition (see ShrinkMemo).
        let w_cur = memo.cur_w[i].expect("refresh_w ran before the scan");
        let s_new = memo.shrunken_sum(problem, placement, oracle, i, new_buf);
        let h_j_new = adjusted_hit(problem, oracle, i, j, new_buf);
        let j_term = (hits[i][j] - h_j_new) * r_ij * c_ij;
        b -= (w_cur - s_new) - j_term;
    }

    // Remote gain: servers that would reroute site j's traffic to i.
    // `contrib[j]` pre-filters to servers that can profit at all, in a
    // fixed order (see `contrib_column`). Each term is quantised to fixed
    // point and the sum kept in an integer, so it is a pure function of
    // site j's column state with *exactly reversible* addition — the lazy
    // planner caches the integer per candidate and applies exact deltas
    // when a single contributor's hit ratio moves, instead of re-walking
    // the whole contributor list (see `LazyPlanner::remote`).
    let remote_q = cached_remote.unwrap_or_else(|| {
        let mut r = 0i64;
        for &k in &contrib[j] {
            let k = k as usize;
            if k == i {
                continue;
            }
            let cur = placement.nearest_dist(problem, k, j) as f64;
            let via_i = problem.dist_servers(k, i) as f64;
            if via_i < cur {
                r += quantize_remote_term(
                    (cur - via_i) * (1.0 - hits[k][j]) * problem.requests(k, j) as f64,
                );
            }
        }
        r
    });
    (b + remote_q as f64 / REMOTE_SCALE, remote_q)
}

/// Fixed-point scale of the remote-gain accumulator: 2^20 ≈ 10^-6
/// absolute granularity per term, invisible next to benefit magnitudes
/// while keeping 2000-contributor sums far inside `i64` range.
const REMOTE_SCALE: f64 = (1u64 << 20) as f64;

/// One remote-gain term in fixed point. Deterministic rounding makes
/// integer addition exactly reversible: `sum + q(new) - q(old)` lands on
/// precisely the value a fresh summation with the new term produces,
/// which is what lets the lazy planner delta-update cached sums without
/// breaking bit-identity with the dense rescan.
fn quantize_remote_term(x: f64) -> i64 {
    (x * REMOTE_SCALE).round() as i64
}

/// Monotone map from (positive-or-negative, finite, non-NaN) `f64` to `u64`
/// so benefits can live in an integer max-heap with the same order the
/// dense scan's `(benefit, Reverse(flat))` comparison induces.
fn benefit_key(b: f64) -> u64 {
    let bits = b.to_bits();
    if bits >> 63 == 0 {
        bits | (1 << 63)
    } else {
        !bits
    }
}

/// Mutable state of the incremental lazy-greedy planner.
struct LazyPlanner {
    /// Last evaluated benefit per flat candidate (`NEG_INFINITY` when the
    /// candidate is infeasible or below `min_benefit`).
    benefit: Vec<f64>,
    /// Per-candidate staleness epoch: bumped every re-evaluation. Heap
    /// entries carry the epoch they were pushed under and entries whose
    /// epoch no longer matches are discarded on pop (lazy deletion).
    epoch: Vec<u32>,
    /// Max-heap of `(benefit key, Reverse(flat), epoch)` — larger benefit
    /// first, ties to the smaller flat index, exactly the dense reduce.
    heap: BinaryHeap<(u64, Reverse<u32>, u32)>,
    /// Inverted distance index: per server, all other servers sorted by
    /// `(dist_servers, index)` ascending. Used to enumerate the candidates
    /// whose remote-gain term routes traffic of a perturbed hits row.
    neighbors: Vec<Vec<u32>>,
    /// Flat candidate indices to (re-)evaluate next iteration.
    stale: Vec<u32>,
    /// Cached fixed-point remote-gain sum per flat candidate (`i64::MIN` =
    /// must recompute). The remote gain of `(i, j)` depends only on site
    /// `j`'s column state (its contributor set, their nearest distances,
    /// and their hit ratios at `j`), so a candidate staled for row-side
    /// reasons — replicator and improved-server rows, the bulk of every
    /// stale set — reuses the sum and re-evaluates in O(1) instead of
    /// O(|contrib[j]|). The two column-side events are handled without a
    /// full re-walk wherever possible: a placed replica voids exactly its
    /// own site's column, and a hits-row change delta-updates the affected
    /// sums in place (exact integer telescoping — the accumulator is
    /// quantised precisely so this reversal is lossless).
    remote: Vec<i64>,
    /// Oracle fingerprint backing each current `hits` row (see
    /// [`HitRatioOracle::buffer_signature`]).
    row_sig: Vec<Option<u64>>,
}

impl LazyPlanner {
    fn new(problem: &PlacementProblem, n: usize, m: usize) -> Self {
        let neighbors = (0..n)
            .map(|i| {
                let mut v: Vec<u32> = (0..n as u32).filter(|&k| k as usize != i).collect();
                v.sort_unstable_by_key(|&k| (problem.dist_servers(i, k as usize), k));
                v
            })
            .collect();
        Self {
            benefit: vec![f64::NEG_INFINITY; n * m],
            epoch: vec![0; n * m],
            heap: BinaryHeap::new(),
            neighbors,
            // First iteration: every candidate is unscored.
            stale: (0..(n * m) as u32).collect(),
            remote: vec![i64::MIN; n * m],
            row_sig: Vec::new(),
        }
    }

    /// Discard superseded heap entries once the backlog exceeds ~2 full
    /// candidate sets, bounding the heap at O(N·M) regardless of how many
    /// re-evaluations the run performs.
    fn compact(&mut self, nm: usize) {
        if self.heap.len() > 2 * nm + 1024 {
            let epoch = &self.epoch;
            let live: Vec<_> = std::mem::take(&mut self.heap)
                .into_iter()
                .filter(|&(_, Reverse(flat), e)| epoch[flat as usize] == e)
                .collect();
            self.heap = BinaryHeap::from(live);
        }
    }

    /// Best current-epoch candidate, discarding stale entries from the top.
    /// The returned candidate is removed from the heap (its row is about to
    /// be invalidated anyway).
    fn pop_best(&mut self) -> Option<Candidate> {
        while let Some(&(_, Reverse(flat), e)) = self.heap.peek() {
            if self.epoch[flat as usize] == e {
                self.heap.pop();
                return Some(Candidate {
                    benefit: self.benefit[flat as usize],
                    flat: flat as usize,
                });
            }
            self.heap.pop();
        }
        None
    }
}

/// Run the hybrid algorithm with an explicit oracle.
pub fn hybrid_greedy(
    problem: &PlacementProblem,
    oracle: &dyn HitRatioOracle,
    config: &HybridConfig,
) -> HybridOutcome {
    let n = problem.n_servers();
    let m = problem.m_sites();
    let mut placement = Placement::primaries_only(problem);

    // Opt-in heartbeat for internet-scale plans (they can run for many
    // minutes with no output): set `CDN_PLAN_PROGRESS=<n>` to log every
    // n-th greedy iteration to stderr. Reads the wall clock, so it stays
    // strictly outside every deterministic output and counter.
    let progress_every: usize = std::env::var("CDN_PLAN_PROGRESS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let started = std::time::Instant::now();

    // Lines 1–5 of Figure 2: all storage is cache; initial hit ratios and
    // initial cost.
    let mut hits: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let b = problem.buffer_objects(placement.free_bytes(i));
            hit_row(problem, &placement, oracle, i, b)
        })
        .collect();
    let initial_cost = predicted_cost(problem, &placement, |i, j| hits[i][j]);
    let mut cost = initial_cost;
    let mut benefits = Vec::new();
    let mut replicas: Vec<(usize, usize)> = Vec::new();
    let mut memo = ShrinkMemo::new(n);

    // Remote-gain contributor lists (shared by both planners); only the
    // placed site's column ever changes, so columns are rebuilt one at a
    // time. `contrib_column` assumes distinct servers are ≥ 1 hop apart.
    debug_assert!((0..n).all(|a| (0..n).all(|b| a == b || problem.dist_servers(a, b) >= 1)));
    let mut contrib: Vec<Vec<u32>> = (0..m)
        .map(|j| contrib_column(problem, &placement, j))
        .collect();

    let mut lazy = (!config.dense_scan).then(|| {
        let mut l = LazyPlanner::new(problem, n, m);
        l.row_sig = (0..n)
            .map(|i| oracle.buffer_signature(i, problem.buffer_objects(placement.free_bytes(i))))
            .collect();
        l
    });

    // How many candidates the dense scan would evaluate right now;
    // maintained incrementally (only the replicator's row ever changes).
    let mut feasible_now: u64 = (0..n * m)
        .filter(|&flat| placement.fits(problem, flat / m, flat % m))
        .count() as u64;

    // Telemetry: the candidate scan runs on the pool, but the evaluated
    // set (and hence every counter) is decided sequentially, keeping the
    // stream independent of the thread schedule.
    let obs = telemetry::enabled();
    let span = if obs {
        telemetry::with_trace(|t| t.enter("placement.hybrid"))
    } else {
        None
    };
    if obs {
        telemetry::registry()
            .gauge("placement.initial_cost")
            .set(initial_cost);
        telemetry::with_trace(|t| {
            t.event(
                "placement.start",
                vec![
                    ("servers", Value::from(n)),
                    ("sites", Value::from(m)),
                    ("initial_cost", Value::from(initial_cost)),
                ],
            );
        });
    }

    let mut total_evaluated: u64 = 0;
    if progress_every > 0 {
        eprintln!(
            "  [plan {:>8.1}s] initial state ready ({n} x {m} candidates); entering greedy loop",
            started.elapsed().as_secs_f64(),
        );
    }

    while placement.replica_count() < config.max_replicas {
        memo.refresh_w(problem, &placement, &hits);

        let (best, evaluated) = if let Some(l) = &mut lazy {
            // Re-evaluate exactly the candidates whose inputs changed since
            // their cached score was computed. Evaluation runs on the pool;
            // the ordered collect + sequential merge keep the heap contents
            // (and all counters) bit-identical at any thread count.
            l.stale.sort_unstable();
            l.stale.dedup();
            let remote_cache: &[i64] = &l.remote;
            let scores: Vec<(u32, Option<(f64, i64)>)> = l
                .stale
                .par_iter()
                .map(|&flat| {
                    let (i, j) = (flat as usize / m, flat as usize % m);
                    if !placement.fits(problem, i, j) {
                        return (flat, None);
                    }
                    let cached = remote_cache[flat as usize];
                    let scored = evaluate_candidate(
                        problem,
                        &placement,
                        oracle,
                        &hits,
                        &memo,
                        &contrib,
                        config.exact_shrink_scan,
                        (cached != i64::MIN).then_some(cached),
                        i,
                        j,
                    );
                    (flat, Some(scored))
                })
                .collect();
            l.stale.clear();
            let mut evaluated = 0u64;
            let mut remote_reused = 0u64;
            for (flat, score) in scores {
                let f = flat as usize;
                l.epoch[f] = l.epoch[f].wrapping_add(1);
                l.benefit[f] = f64::NEG_INFINITY;
                if let Some((b, remote)) = score {
                    evaluated += 1;
                    if l.remote[f] != i64::MIN {
                        remote_reused += 1;
                    }
                    l.remote[f] = remote;
                    if b > config.min_benefit {
                        l.benefit[f] = b;
                        l.heap.push((benefit_key(b), Reverse(flat), l.epoch[f]));
                    }
                }
            }
            if obs && remote_reused > 0 {
                telemetry::registry()
                    .counter("placement.remote_gain_reused")
                    .add(remote_reused);
            }
            l.compact(n * m);
            (l.pop_best(), evaluated)
        } else {
            let best = (0..n * m)
                .into_par_iter()
                .filter_map(|flat| {
                    let (i, j) = (flat / m, flat % m);
                    if !placement.fits(problem, i, j) {
                        return None;
                    }
                    let (benefit, _) = evaluate_candidate(
                        problem,
                        &placement,
                        oracle,
                        &hits,
                        &memo,
                        &contrib,
                        config.exact_shrink_scan,
                        None,
                        i,
                        j,
                    );
                    (benefit > config.min_benefit).then_some(Candidate { benefit, flat })
                })
                .reduce_with(|a, b| {
                    // Deterministic: larger benefit wins, ties to smaller index.
                    if (b.benefit, Reverse(b.flat)) > (a.benefit, Reverse(a.flat)) {
                        b
                    } else {
                        a
                    }
                });
            (best, feasible_now)
        };

        if obs {
            let reg = telemetry::registry();
            reg.counter("placement.candidates_evaluated").add(evaluated);
            if lazy.is_some() {
                reg.counter("placement.candidates_skipped_lazy")
                    .add(feasible_now - evaluated);
            }
            reg.counter("placement.iterations").inc();
        }
        let Some(Candidate { benefit, flat }) = best else {
            break;
        };
        let (i, j) = (flat / m, flat % m);
        let row_feasible = |placement: &Placement| -> u64 {
            (0..m).filter(|&k| placement.fits(problem, i, k)).count() as u64
        };
        feasible_now -= row_feasible(&placement);
        // Site j's nearest distances before the replica lands — the memo
        // update below needs the old terms it is replacing.
        let old_col: Vec<Hops> = (0..n)
            .map(|k| placement.nearest_dist(problem, k, j))
            .collect();
        let improved = placement.add_replica(problem, i, j);
        feasible_now += row_feasible(&placement);
        cost -= benefit;
        benefits.push(benefit);
        replicas.push((i, j));
        total_evaluated += evaluated;
        if progress_every > 0 && benefits.len() % progress_every == 0 {
            eprintln!(
                "  [plan {:>8.1}s] iter {:>6}: {} replicas, {} evaluated this iter \
                 ({} total), benefit {:.3}",
                started.elapsed().as_secs_f64(),
                benefits.len(),
                placement.replica_count(),
                evaluated,
                total_evaluated,
                benefit,
            );
        }
        if obs {
            telemetry::registry()
                .counter("placement.replicas_placed")
                .inc();
            let capacity_remaining: u64 = (0..n).map(|s| placement.free_bytes(s)).sum();
            telemetry::with_trace(|t| {
                t.event(
                    "placement.iter",
                    vec![
                        ("iter", Value::from(benefits.len())),
                        ("candidates", Value::U64(evaluated)),
                        ("server", Value::from(i)),
                        ("site", Value::from(j)),
                        ("benefit", Value::from(benefit)),
                        ("capacity_remaining", Value::U64(capacity_remaining)),
                    ],
                );
            });
        }
        // Lines 22–23: refresh server i's hit ratios for its smaller cache,
        // and shift every memoised sum by the one term this placement
        // changed (replicator i and every server whose nearest distance to
        // site j improved). The lazy planner reuses the whole row when the
        // oracle fingerprints the shrunken buffer into the same
        // quantisation cell, and records which entries actually changed —
        // that set drives the hits-row part of the stale set below.
        let b = problem.buffer_objects(placement.free_bytes(i));
        let changed_sites: Vec<(usize, f64, f64)> = if let Some(l) = &mut lazy {
            let sig = oracle.buffer_signature(i, b);
            let reused = sig.is_some() && sig == l.row_sig[i];
            l.row_sig[i] = sig;
            if reused {
                if obs {
                    telemetry::registry()
                        .counter("placement.hit_rows_reused")
                        .inc();
                }
                hits[i][j] = 0.0;
                Vec::new()
            } else {
                let row = hit_row(problem, &placement, oracle, i, b);
                // (site, old hit, new hit) — the delta pair the remote-gain
                // cache update below needs to reverse the stale term exactly.
                let changed = (0..m)
                    .filter(|&k| k != j && row[k].to_bits() != hits[i][k].to_bits())
                    .map(|k| (k, hits[i][k], row[k]))
                    .collect();
                hits[i] = row;
                changed
            }
        } else {
            hits[i] = hit_row(problem, &placement, oracle, i, b);
            Vec::new()
        };
        memo.apply_replica(
            problem, &placement, oracle, &hits, i, j, &old_col, &improved,
        );
        contrib[j] = contrib_column(problem, &placement, j);

        if let Some(l) = &mut lazy {
            // Stale set of this placement — everything whose evaluation
            // inputs changed (and nothing else; see DESIGN.md §9.2 for the
            // case analysis):
            //  1. whole rows of the replicator and every improved server
            //     (buffer, W/S memo, or a nearest distance changed);
            //  2. the placed site's whole column (its nearest map and
            //     remote-gain contributor set changed);
            //  3. for each site whose hits[i][·] entry changed, the
            //     candidates whose remote gain routes that traffic: servers
            //     strictly closer to i than i's nearest copy of the site.
            // Row-side staleness (cases 1): the remote-gain cache stays
            // valid — nothing about those sites' columns changed.
            for &r in improved.iter().chain(std::iter::once(&i)) {
                let base = (r * m) as u32;
                l.stale.extend(base..base + m as u32);
            }
            // Case 2, the placed site's column: its contributor set and
            // nearest distances changed wholesale — void the remote-gain
            // cache, the next scan re-walks the rebuilt contributor list.
            for k in 0..n {
                l.remote[k * m + j] = i64::MIN;
                l.stale.push((k * m + j) as u32);
            }
            // Case 3, the hits-row fanout: exactly one contributor's hit
            // ratio moved, so shift each still-cached sum by the exact
            // fixed-point delta of that one term (same float expression as
            // the scan's walk, so the quantised values cancel losslessly)
            // instead of re-walking O(|contrib|) per candidate.
            for &(jc, h_old, h_new) in &changed_sites {
                let lim = placement.nearest_dist(problem, i, jc);
                let cur = lim as f64;
                let r_ijc = problem.requests(i, jc) as f64;
                for &k in &l.neighbors[i] {
                    let via = problem.dist_servers(i, k as usize);
                    if via >= lim {
                        break;
                    }
                    let f = k as usize * m + jc;
                    if l.remote[f] != i64::MIN {
                        let via = via as f64;
                        l.remote[f] += quantize_remote_term((cur - via) * (1.0 - h_new) * r_ijc)
                            - quantize_remote_term((cur - via) * (1.0 - h_old) * r_ijc);
                    }
                    l.stale.push(f as u32);
                }
            }
        }
    }

    // The tracked cost drifts from the exact recomputation by at most the
    // oracle's quantisation error; report the exactly recomputed value
    // (read cost plus any update-propagation cost of the placed replicas)
    // and fail loudly if the planner's bookkeeping ever diverges beyond
    // the documented bound.
    let final_cost = crate::cost::total_cost(problem, &placement, |i, j| hits[i][j]);
    if obs {
        telemetry::registry()
            .gauge("placement.final_cost")
            .set(final_cost);
        telemetry::with_trace(|t| {
            t.event(
                "placement.done",
                vec![
                    ("replicas", Value::from(placement.replica_count())),
                    ("final_cost", Value::from(final_cost)),
                ],
            );
        });
        if let Some(id) = span {
            telemetry::with_trace(|t| t.exit(id));
        }
    }
    assert!(
        (final_cost - cost).abs() <= COST_DRIFT_TOLERANCE * initial_cost.max(1.0),
        "tracked cost {cost} drifted from exact {final_cost} beyond \
         {COST_DRIFT_TOLERANCE} * {initial_cost}"
    );

    HybridOutcome {
        placement,
        hit_ratios: hits,
        initial_cost,
        final_cost,
        benefits,
        replicas,
    }
}

/// Build the paper's oracle for `problem` (per-server popularities and
/// full-capacity initial buffers) and run the hybrid algorithm.
pub fn hybrid_greedy_paper(problem: &PlacementProblem, config: &HybridConfig) -> HybridOutcome {
    let oracle = paper_oracle_for(problem);
    hybrid_greedy(problem, &oracle, config)
}

/// The paper oracle corresponding to `problem`'s workload parameters.
pub fn paper_oracle_for(problem: &PlacementProblem) -> PaperOracle {
    let model = LruModel::new(problem.objects_per_site, problem.theta);
    let pops: Vec<Vec<f64>> = (0..problem.n_servers())
        .map(|i| problem.popularity_row(i))
        .collect();
    let buffers: Vec<usize> = problem
        .capacities
        .iter()
        .map(|&c| problem.buffer_objects(c))
        .collect();
    PaperOracle::new(model, &pops, &buffers)
}

/// Che's-approximation oracle for `problem`'s workload parameters (the
/// model ablation's second backend).
pub fn che_oracle_for(problem: &PlacementProblem) -> CheOracle {
    let model = CheModel::new(problem.objects_per_site, problem.theta);
    let pops: Vec<Vec<f64>> = (0..problem.n_servers())
        .map(|i| problem.popularity_row(i))
        .collect();
    CheOracle::new(model, pops)
}

/// The closed-form characteristic-rank oracle for `problem`'s workload
/// parameters (the model ablation's third backend).
pub fn closed_form_oracle_for(problem: &PlacementProblem) -> ClosedFormOracle {
    let model = ClosedFormLru::new(problem.objects_per_site, problem.theta);
    let pops: Vec<Vec<f64>> = (0..problem.n_servers())
        .map(|i| problem.popularity_row(i))
        .collect();
    ClosedFormOracle::new(model, &pops)
}

/// Pure caching: no replicas at all, every byte is cache. Included for the
/// paper's three-way comparison.
pub fn pure_caching(problem: &PlacementProblem, oracle: &dyn HitRatioOracle) -> HybridOutcome {
    let placement = Placement::primaries_only(problem);
    let hits: Vec<Vec<f64>> = (0..problem.n_servers())
        .map(|i| {
            let b = problem.buffer_objects(placement.free_bytes(i));
            hit_row(problem, &placement, oracle, i, b)
        })
        .collect();
    let cost = predicted_cost(problem, &placement, |i, j| hits[i][j]);
    HybridOutcome {
        placement,
        hit_ratios: hits,
        initial_cost: cost,
        final_cost: cost,
        benefits: Vec::new(),
        replicas: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::replication_only_cost;
    use crate::greedy_global::greedy_global;
    use crate::problem::testkit::*;

    fn run(problem: &PlacementProblem) -> HybridOutcome {
        hybrid_greedy_paper(problem, &HybridConfig::default())
    }

    fn run_dense(problem: &PlacementProblem) -> HybridOutcome {
        hybrid_greedy_paper(
            problem,
            &HybridConfig {
                dense_scan: true,
                ..Default::default()
            },
        )
    }

    #[test]
    fn outcome_invariants() {
        let p = line_problem(4, 6, 5000, 12_000, uniform_demand(4, 6, 50));
        let out = run(&p);
        out.placement.validate(&p);
        assert!(out.final_cost <= out.initial_cost + 1e-9);
        assert!(out.benefits.iter().all(|&b| b > 0.0));
        assert_eq!(out.benefits.len(), out.replicas.len());
        for &(i, j) in &out.replicas {
            assert!(out.placement.is_replicated(i, j));
        }
        for i in 0..4 {
            for j in 0..6 {
                let h = out.hit(i, j);
                assert!((0.0..=1.0).contains(&h));
                if out.placement.is_replicated(i, j) {
                    assert_eq!(h, 0.0);
                }
            }
        }
    }

    #[test]
    fn hybrid_beats_or_matches_pure_replication_and_pure_caching() {
        let p = line_problem(4, 6, 5000, 12_000, uniform_demand(4, 6, 50));
        let hybrid = run(&p);
        let oracle = paper_oracle_for(&p);
        let caching = pure_caching(&p, &oracle);
        let replication = greedy_global(&p);
        let repl_cost = replication_only_cost(&p, &replication.placement);
        assert!(
            hybrid.final_cost <= caching.final_cost + 1e-9,
            "hybrid {} > caching {}",
            hybrid.final_cost,
            caching.final_cost
        );
        assert!(
            hybrid.final_cost <= repl_cost + 1e-9,
            "hybrid {} > replication {}",
            hybrid.final_cost,
            repl_cost
        );
    }

    #[test]
    fn no_space_means_pure_caching() {
        let p = line_problem(3, 3, 10_000, 5_000, uniform_demand(3, 3, 10));
        let out = run(&p);
        assert_eq!(out.placement.replica_count(), 0);
        assert_eq!(out.initial_cost, out.final_cost);
    }

    #[test]
    fn max_replicas_cap_respected() {
        let p = line_problem(4, 6, 1000, 6000, uniform_demand(4, 6, 50));
        let cfg = HybridConfig {
            max_replicas: 3,
            ..Default::default()
        };
        let out = hybrid_greedy_paper(&p, &cfg);
        assert!(out.placement.replica_count() <= 3);
    }

    #[test]
    fn benefits_counted_against_cost() {
        let p = line_problem(3, 4, 2000, 6000, uniform_demand(3, 4, 25));
        let out = run(&p);
        let claimed: f64 = out.benefits.iter().sum();
        let achieved = out.initial_cost - out.final_cost;
        // Tracked benefits match the exact recomputation up to the oracle's
        // quantisation error.
        assert!(
            (claimed - achieved).abs() <= 0.02 * out.initial_cost.max(1.0),
            "claimed {claimed} vs achieved {achieved}"
        );
    }

    #[test]
    fn cost_drift_stays_within_documented_tolerance() {
        // Regression for the cost-drift contract: the incrementally tracked
        // cost must stay within COST_DRIFT_TOLERANCE of the recomputation
        // on every instance, in both planner modes, including update-heavy
        // problems where benefits carry a consistency charge.
        for seed in 0..4u64 {
            let mut demand = uniform_demand(4, 7, 30 + seed);
            for (idx, d) in demand.iter_mut().enumerate() {
                *d += (idx as u64 * 5 + seed) % 11;
            }
            let mut p = line_problem(4, 7, 3000 + 500 * seed, 13_000, demand);
            if seed % 2 == 1 {
                p.set_update_rates(vec![3 + seed; 7]);
            }
            for dense in [false, true] {
                let out = hybrid_greedy_paper(
                    &p,
                    &HybridConfig {
                        dense_scan: dense,
                        ..Default::default()
                    },
                );
                let bound = COST_DRIFT_TOLERANCE * out.initial_cost.max(1.0);
                assert!(
                    out.cost_drift() <= bound,
                    "seed {seed} dense {dense}: drift {} > {bound}",
                    out.cost_drift()
                );
            }
        }
    }

    #[test]
    fn deterministic() {
        let p = line_problem(4, 5, 3000, 9000, uniform_demand(4, 5, 20));
        let a = run(&p);
        let b = run(&p);
        assert_eq!(a.benefits, b.benefits);
        for i in 0..4 {
            assert_eq!(a.placement.sites_at(i), b.placement.sites_at(i));
        }
        // Thread-count invariance: the candidate scan and the ShrinkMemo
        // fills must yield bit-identical outcomes at 1 and 4 threads.
        let pool = |n| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .unwrap()
        };
        let one = pool(1).install(|| run(&p));
        let four = pool(4).install(|| run(&p));
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&one.benefits), bits(&four.benefits));
        assert_eq!(bits(&a.benefits), bits(&one.benefits));
        assert_eq!(one.final_cost.to_bits(), four.final_cost.to_bits());
        assert_eq!(one.initial_cost.to_bits(), four.initial_cost.to_bits());
        assert_eq!(one.replicas, four.replicas);
        for i in 0..4 {
            assert_eq!(one.placement.sites_at(i), four.placement.sites_at(i));
            assert_eq!(bits(&one.hit_ratios[i]), bits(&four.hit_ratios[i]));
        }
    }

    #[test]
    fn lazy_planner_matches_dense_scan_bit_for_bit() {
        // The correctness contract of the incremental planner: identical
        // (server, site, benefit) trace to the dense rescan, at 1 and 4
        // threads. (tests/differential.rs drives this on random problems.)
        let pool = |n: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .unwrap()
        };
        for seed in 0..3u64 {
            let mut demand = uniform_demand(5, 7, 35 + seed);
            for (idx, d) in demand.iter_mut().enumerate() {
                *d += (idx as u64 * 3 + seed) % 9;
            }
            let p = line_problem(5, 7, 2500 + 400 * seed, 12_000, demand);
            let dense = run_dense(&p);
            let lazy1 = pool(1).install(|| run(&p));
            let lazy4 = pool(4).install(|| run(&p));
            let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            for lazy in [&lazy1, &lazy4] {
                assert_eq!(dense.replicas, lazy.replicas, "seed {seed}");
                assert_eq!(bits(&dense.benefits), bits(&lazy.benefits), "seed {seed}");
                assert_eq!(dense.final_cost.to_bits(), lazy.final_cost.to_bits());
                for i in 0..5 {
                    assert_eq!(bits(&dense.hit_ratios[i]), bits(&lazy.hit_ratios[i]));
                }
            }
        }
    }

    #[test]
    fn replicates_less_than_pure_greedy_when_caching_is_strong() {
        // Tiny objects (mean request size 100 B) and highly skewed Zipf make
        // the cache very effective, so the hybrid should hold back replicas
        // relative to cache-blind greedy on at least some instances. At
        // minimum it must never replicate more than greedy fills.
        let p = line_problem(4, 8, 4000, 16_000, uniform_demand(4, 8, 10));
        let hybrid = run(&p);
        let greedy = greedy_global(&p);
        assert!(hybrid.placement.replica_count() <= greedy.placement.replica_count());
    }

    #[test]
    fn memoised_scan_matches_exact_scan() {
        // The ShrinkMemo decomposition is algebraically identical up to
        // the 0.5% buffer bucketing and floating-point associativity, so
        // on tie-free instances the two paths choose the same placement.
        // Demand is perturbed per (server, site) to break ties.
        for seed in 0..3u64 {
            let mut demand = uniform_demand(4, 6, 40 + seed);
            for (idx, d) in demand.iter_mut().enumerate() {
                *d += (idx as u64 * 7 + seed) % 13;
            }
            let p = line_problem(4, 6, 4000 + 300 * seed, 11_000, demand);
            let fast = hybrid_greedy_paper(&p, &HybridConfig::default());
            let exact = hybrid_greedy_paper(
                &p,
                &HybridConfig {
                    exact_shrink_scan: true,
                    ..Default::default()
                },
            );
            assert_eq!(
                fast.placement.replica_count(),
                exact.placement.replica_count(),
                "seed {seed}"
            );
            for i in 0..4 {
                assert_eq!(
                    fast.placement.sites_at(i),
                    exact.placement.sites_at(i),
                    "seed {seed}, server {i}"
                );
            }
            let rel = (fast.final_cost - exact.final_cost).abs() / exact.final_cost.max(1.0);
            assert!(
                rel < 1e-9,
                "seed {seed}: {} vs {}",
                fast.final_cost,
                exact.final_cost
            );
        }
    }

    #[test]
    fn update_rates_shift_hybrid_toward_caching() {
        let p = line_problem(4, 6, 5000, 12_000, uniform_demand(4, 6, 50));
        let baseline = run(&p);
        let mut hot = p.clone();
        hot.set_update_rates(vec![100; 6]);
        let shifted = hybrid_greedy_paper(&hot, &HybridConfig::default());
        assert!(shifted.placement.replica_count() <= baseline.placement.replica_count());
        shifted.placement.validate(&hot);
        // Final cost accounting still consistent: benefits were charged for
        // updates, and the exact recomputation includes them.
        let claimed: f64 = shifted.benefits.iter().sum();
        let achieved = shifted.initial_cost - shifted.final_cost;
        assert!((claimed - achieved).abs() <= 0.02 * shifted.initial_cost.max(1.0));
    }

    #[test]
    fn pure_caching_outcome_consistent() {
        let p = line_problem(2, 3, 1000, 4000, uniform_demand(2, 3, 10));
        let oracle = paper_oracle_for(&p);
        let out = pure_caching(&p, &oracle);
        assert_eq!(out.placement.replica_count(), 0);
        let recomputed = predicted_cost(&p, &out.placement, |i, j| out.hit(i, j));
        assert_eq!(out.final_cost, recomputed);
        // Caching must beat a cache-less primaries-only system.
        let no_cache = replication_only_cost(&p, &out.placement);
        assert!(out.final_cost < no_cache);
    }

    #[test]
    fn benefit_key_is_monotone() {
        let xs = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -1e-300,
            0.0,
            1e-300,
            1.0,
            2.5,
            1e300,
            f64::INFINITY,
        ];
        for w in xs.windows(2) {
            assert!(
                benefit_key(w[0]) < benefit_key(w[1]),
                "{} !< {}",
                w[0],
                w[1]
            );
        }
    }
}
