//! The paper's hybrid replica-placement + storage-allocation algorithm
//! (its Figure 2).
//!
//! Start from a network holding only primary copies — every byte of every
//! server is cache. Each iteration scores all feasible (server, site)
//! replica candidates:
//!
//! ```text
//! benefit(i, j) =   (1 − h_j^(i)) · r_j^(i) · C(i, SN_j^(i))     // local gain
//!                 + Σ_{k≠i, X_kj=0} max(0, C(k,SN) − C(k,i))
//!                         · (1 − h_j^(k)) · r_j^(k)              // remote gain
//!                 − Σ_{k≠j, X_ik=0} (h_k^(i) − h'_k^(i))
//!                         · r_k^(i) · C(i, SN_k^(i))             // cache shrink
//! ```
//!
//! where `h'` is the predicted hit ratio after the candidate replica steals
//! `o_j` bytes from server `i`'s cache. The best positive candidate is
//! materialised; the algorithm stops when none remains.

use crate::cost::predicted_cost;
use crate::oracle::{HitRatioOracle, PaperOracle};
use crate::problem::PlacementProblem;
use crate::solution::Placement;
use cdn_lru_model::LruModel;
use cdn_telemetry::{self as telemetry, Value};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Tunables of the hybrid run.
#[derive(Debug, Clone, Copy)]
pub struct HybridConfig {
    /// Accept a candidate only if its benefit exceeds this (the paper uses
    /// "positive benefit", i.e. 0).
    pub min_benefit: f64,
    /// Safety valve on iterations.
    pub max_replicas: usize,
    /// Evaluate the cache-shrink penalty exactly per candidate (the
    /// literal Figure 2 inner loop, O(M) oracle queries per candidate)
    /// instead of the memoised decomposition. Slower by ~2 orders of
    /// magnitude at paper scale; kept as the reference implementation the
    /// fast path is tested against.
    pub exact_shrink_scan: bool,
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self {
            min_benefit: 0.0,
            max_replicas: usize::MAX,
            exact_shrink_scan: false,
        }
    }
}

/// Result of a hybrid (or pure-caching) run.
#[derive(Debug, Clone)]
pub struct HybridOutcome {
    pub placement: Placement,
    /// Predicted per-(server, site) hit ratio of the final configuration
    /// (λ-adjusted; 0 for locally replicated sites). Indexed `[i][j]`.
    pub hit_ratios: Vec<Vec<f64>>,
    /// Predicted cost before any replica was placed (pure caching).
    pub initial_cost: f64,
    /// Predicted cost of the final configuration.
    pub final_cost: f64,
    /// Benefit of each accepted replica, in order.
    pub benefits: Vec<f64>,
}

impl HybridOutcome {
    /// Predicted hit ratio lookup usable with [`predicted_cost`].
    pub fn hit(&self, i: usize, j: usize) -> f64 {
        self.hit_ratios[i][j]
    }
}

/// λ-adjusted hit ratio of site `j` at server `i` for buffer size `b`.
fn adjusted_hit(
    problem: &PlacementProblem,
    oracle: &dyn HitRatioOracle,
    i: usize,
    j: usize,
    b: usize,
) -> f64 {
    oracle.site_hit_ratio(i, problem.site_popularity(i, j), b) * (1.0 - problem.lambda[j])
}

/// Recompute server `i`'s full hit-ratio row for buffer size `b`
/// (0 for sites replicated at `i` — those never touch the cache).
fn hit_row(
    problem: &PlacementProblem,
    placement: &Placement,
    oracle: &dyn HitRatioOracle,
    i: usize,
    b: usize,
) -> Vec<f64> {
    (0..problem.m_sites())
        .map(|j| {
            if placement.is_replicated(i, j) {
                0.0
            } else {
                adjusted_hit(problem, oracle, i, j, b)
            }
        })
        .collect()
}

struct Candidate {
    benefit: f64,
    flat: usize,
}

/// Memoised cache-shrink bookkeeping for one server.
///
/// The naive evaluation of a candidate's shrink penalty is O(M) hit-ratio
/// queries; with N·M candidates per iteration that dominates paper-scale
/// planning. The penalty decomposes as
///
/// ```text
/// Σ_{k≠j} (h_k(B) − h_k(B'))·r_k·C_k
///   = [W(B) − S(B')] − (h_j(B) − h_j(B'))·r_j·C_j
/// ```
///
/// where `W(B) = Σ_k h_k(B)·r_k·C_k` is fixed until the server's state
/// changes and `S(B') = Σ_k h_k(B')·r_k·C_k` depends only on the shrunken
/// buffer size. `S` is memoised per 0.5%-relative buffer bucket (the hit
/// ratio varies smoothly in B, and the oracle already quantises K at 1%),
/// so each candidate costs O(1) amortised. Entries are invalidated whenever
/// the server's replica set, buffer, or any nearest-copy distance changes.
struct ShrinkMemo {
    /// `W` per server; `None` = needs recomputation.
    cur_w: Vec<Option<f64>>,
    /// `S(bucket)` per server, behind a lock for the parallel scan.
    s: Vec<parking_lot::Mutex<std::collections::HashMap<u32, f64>>>,
}

impl ShrinkMemo {
    fn new(n: usize) -> Self {
        Self {
            cur_w: vec![None; n],
            s: (0..n)
                .map(|_| parking_lot::Mutex::new(std::collections::HashMap::new()))
                .collect(),
        }
    }

    /// Geometric bucket of a buffer size (0.5% relative).
    fn bucket(b: usize) -> u32 {
        if b == 0 {
            0
        } else {
            ((b as f64).ln() / 0.005f64.ln_1p()).round() as u32 + 1
        }
    }

    /// Canonical buffer size of a bucket: the geometric grid point the
    /// bucket rounds around. `S` is always evaluated here rather than at
    /// whichever candidate's exact buffer size reaches the bucket first,
    /// making the cached value a pure function of its key — without this
    /// the memo's contents (and hence placements) would depend on scan
    /// scheduling once the scan runs on several threads.
    fn representative(bucket: u32) -> usize {
        if bucket == 0 {
            0
        } else {
            (f64::from(bucket - 1) * 0.005f64.ln_1p()).exp().round() as usize
        }
    }

    fn invalidate(&mut self, server: usize) {
        self.cur_w[server] = None;
        self.s[server].get_mut().clear();
    }

    /// Recompute every stale `W` (sequential phase, between scans).
    #[allow(clippy::needless_range_loop)] // i indexes three parallel arrays
    fn refresh_w(&mut self, problem: &PlacementProblem, placement: &Placement, hits: &[Vec<f64>]) {
        for i in 0..problem.n_servers() {
            if self.cur_w[i].is_some() {
                continue;
            }
            self.cur_w[i] = Some(weighted_hit_sum(problem, placement, i, |k| hits[i][k]));
        }
    }

    /// `S_i(B')`, filling the bucket on first use.
    fn shrunken_sum(
        &self,
        problem: &PlacementProblem,
        placement: &Placement,
        oracle: &dyn HitRatioOracle,
        i: usize,
        new_buf: usize,
    ) -> f64 {
        let bucket = Self::bucket(new_buf);
        // Compute-once: hold the per-server lock across the evaluation so
        // racing workers never both fill the same bucket. The value would
        // be identical either way (the representative is canonical), but
        // the *amount* of oracle work must be schedule-independent for the
        // telemetry work counters to be bit-identical across thread counts.
        let mut cells = self.s[i].lock();
        if let Some(&s) = cells.get(&bucket) {
            return s;
        }
        let rep = Self::representative(bucket);
        let s = weighted_hit_sum(problem, placement, i, |k| {
            adjusted_hit(problem, oracle, i, k, rep)
        });
        cells.insert(bucket, s);
        s
    }
}

/// `Σ_{k: !x_ik} h(k)·r_ik·C(i, SN_ik)` for an arbitrary hit function.
fn weighted_hit_sum(
    problem: &PlacementProblem,
    placement: &Placement,
    i: usize,
    hit: impl Fn(usize) -> f64,
) -> f64 {
    let mut w = 0.0;
    for k in 0..problem.m_sites() {
        if placement.is_replicated(i, k) {
            continue;
        }
        let r = problem.requests(i, k) as f64;
        if r == 0.0 {
            continue;
        }
        let c = placement.nearest_dist(problem, i, k) as f64;
        if c == 0.0 {
            continue;
        }
        w += hit(k) * r * c;
    }
    w
}

#[allow(clippy::needless_range_loop)] // k indexes hits alongside problem lookups
#[allow(clippy::too_many_arguments)] // internal scan helper; grouping would obscure the formula
fn evaluate_candidate(
    problem: &PlacementProblem,
    placement: &Placement,
    oracle: &dyn HitRatioOracle,
    hits: &[Vec<f64>],
    memo: &ShrinkMemo,
    exact: bool,
    i: usize,
    j: usize,
) -> f64 {
    let c_ij = placement.nearest_dist(problem, i, j) as f64;
    let r_ij = problem.requests(i, j) as f64;
    // Local gain: site j's remote traffic from server i becomes free —
    // minus the consistency cost if the site receives updates.
    let mut b = (1.0 - hits[i][j]) * r_ij * c_ij - problem.replica_update_cost(i, j);

    // Cache-shrink penalty at server i.
    let new_buf = problem.buffer_objects(placement.free_bytes(i) - problem.site_bytes[j]);
    if exact {
        // Literal Figure 2, lines 10–13: recompute every remaining site's
        // hit ratio at the shrunken buffer.
        for k in 0..problem.m_sites() {
            if k == j || placement.is_replicated(i, k) {
                continue;
            }
            let c = placement.nearest_dist(problem, i, k) as f64;
            if c == 0.0 {
                continue;
            }
            let r = problem.requests(i, k) as f64;
            if r == 0.0 {
                continue;
            }
            let h_new = adjusted_hit(problem, oracle, i, k, new_buf);
            b -= (hits[i][k] - h_new) * r * c;
        }
    } else {
        // Memoised decomposition (see ShrinkMemo).
        let w_cur = memo.cur_w[i].expect("refresh_w ran before the scan");
        let s_new = memo.shrunken_sum(problem, placement, oracle, i, new_buf);
        let h_j_new = adjusted_hit(problem, oracle, i, j, new_buf);
        let j_term = (hits[i][j] - h_j_new) * r_ij * c_ij;
        b -= (w_cur - s_new) - j_term;
    }

    // Remote gain: servers that would reroute site j to i.
    for k in 0..problem.n_servers() {
        if k == i || placement.is_replicated(k, j) {
            continue;
        }
        let cur = placement.nearest_dist(problem, k, j) as f64;
        let via_i = problem.dist_servers(k, i) as f64;
        if via_i < cur {
            b += (cur - via_i) * (1.0 - hits[k][j]) * problem.requests(k, j) as f64;
        }
    }
    b
}

/// Run the hybrid algorithm with an explicit oracle.
pub fn hybrid_greedy(
    problem: &PlacementProblem,
    oracle: &dyn HitRatioOracle,
    config: &HybridConfig,
) -> HybridOutcome {
    let n = problem.n_servers();
    let m = problem.m_sites();
    let mut placement = Placement::primaries_only(problem);

    // Lines 1–5 of Figure 2: all storage is cache; initial hit ratios and
    // initial cost.
    let mut hits: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let b = problem.buffer_objects(placement.free_bytes(i));
            hit_row(problem, &placement, oracle, i, b)
        })
        .collect();
    let initial_cost = predicted_cost(problem, &placement, |i, j| hits[i][j]);
    let mut cost = initial_cost;
    let mut benefits = Vec::new();
    let mut memo = ShrinkMemo::new(n);

    // Telemetry: the candidate scan runs on the pool, so the per-scan
    // tally is a commutative atomic add; everything trace-visible is
    // emitted from this (sequential) loop, keeping the stream independent
    // of the thread schedule.
    let obs = telemetry::enabled();
    let span = if obs {
        telemetry::with_trace(|t| t.enter("placement.hybrid"))
    } else {
        None
    };
    if obs {
        telemetry::registry()
            .gauge("placement.initial_cost")
            .set(initial_cost);
        telemetry::with_trace(|t| {
            t.event(
                "placement.start",
                vec![
                    ("servers", Value::from(n)),
                    ("sites", Value::from(m)),
                    ("initial_cost", Value::from(initial_cost)),
                ],
            );
        });
    }

    while placement.replica_count() < config.max_replicas {
        memo.refresh_w(problem, &placement, &hits);
        let scanned = AtomicU64::new(0);
        let best = (0..n * m)
            .into_par_iter()
            .filter_map(|flat| {
                let (i, j) = (flat / m, flat % m);
                if !placement.fits(problem, i, j) {
                    return None;
                }
                if obs {
                    scanned.fetch_add(1, Ordering::Relaxed);
                }
                let benefit = evaluate_candidate(
                    problem,
                    &placement,
                    oracle,
                    &hits,
                    &memo,
                    config.exact_shrink_scan,
                    i,
                    j,
                );
                (benefit > config.min_benefit).then_some(Candidate { benefit, flat })
            })
            .reduce_with(|a, b| {
                // Deterministic: larger benefit wins, ties to smaller index.
                if (b.benefit, std::cmp::Reverse(b.flat)) > (a.benefit, std::cmp::Reverse(a.flat)) {
                    b
                } else {
                    a
                }
            });

        if obs {
            telemetry::registry()
                .counter("placement.candidates_evaluated")
                .add(scanned.load(Ordering::Relaxed));
            telemetry::registry().counter("placement.iterations").inc();
        }
        let Some(Candidate { benefit, flat }) = best else {
            break;
        };
        let (i, j) = (flat / m, flat % m);
        let improved = placement.add_replica(problem, i, j);
        cost -= benefit;
        benefits.push(benefit);
        if obs {
            telemetry::registry()
                .counter("placement.replicas_placed")
                .inc();
            let capacity_remaining: u64 = (0..n).map(|s| placement.free_bytes(s)).sum();
            telemetry::with_trace(|t| {
                t.event(
                    "placement.iter",
                    vec![
                        ("iter", Value::from(benefits.len())),
                        ("candidates", Value::U64(scanned.load(Ordering::Relaxed))),
                        ("server", Value::from(i)),
                        ("site", Value::from(j)),
                        ("benefit", Value::from(benefit)),
                        ("capacity_remaining", Value::U64(capacity_remaining)),
                    ],
                );
            });
        }
        // Lines 22–23: refresh server i's hit ratios for its smaller cache,
        // and drop every memo whose inputs changed: the replicator (new
        // buffer + replica set) and every server whose nearest distance to
        // site j improved.
        let b = problem.buffer_objects(placement.free_bytes(i));
        hits[i] = hit_row(problem, &placement, oracle, i, b);
        memo.invalidate(i);
        for k in improved {
            memo.invalidate(k);
        }
    }

    // The tracked cost drifts by at most the oracle's quantisation error;
    // report the exactly recomputed value (read cost plus any update-
    // propagation cost of the placed replicas).
    let final_cost = crate::cost::total_cost(problem, &placement, |i, j| hits[i][j]);
    if obs {
        telemetry::registry()
            .gauge("placement.final_cost")
            .set(final_cost);
        telemetry::with_trace(|t| {
            t.event(
                "placement.done",
                vec![
                    ("replicas", Value::from(placement.replica_count())),
                    ("final_cost", Value::from(final_cost)),
                ],
            );
        });
        if let Some(id) = span {
            telemetry::with_trace(|t| t.exit(id));
        }
    }
    debug_assert!(
        (final_cost - cost).abs() <= 0.05 * initial_cost.max(1.0),
        "tracked cost {cost} drifted from exact {final_cost}"
    );

    HybridOutcome {
        placement,
        hit_ratios: hits,
        initial_cost,
        final_cost,
        benefits,
    }
}

/// Build the paper's oracle for `problem` (per-server popularities and
/// full-capacity initial buffers) and run the hybrid algorithm.
pub fn hybrid_greedy_paper(problem: &PlacementProblem, config: &HybridConfig) -> HybridOutcome {
    let oracle = paper_oracle_for(problem);
    hybrid_greedy(problem, &oracle, config)
}

/// The paper oracle corresponding to `problem`'s workload parameters.
pub fn paper_oracle_for(problem: &PlacementProblem) -> PaperOracle {
    let model = LruModel::new(problem.objects_per_site, problem.theta);
    let pops: Vec<Vec<f64>> = (0..problem.n_servers())
        .map(|i| problem.popularity_row(i))
        .collect();
    let buffers: Vec<usize> = problem
        .capacities
        .iter()
        .map(|&c| problem.buffer_objects(c))
        .collect();
    PaperOracle::new(model, &pops, &buffers)
}

/// Pure caching: no replicas at all, every byte is cache. Included for the
/// paper's three-way comparison.
pub fn pure_caching(problem: &PlacementProblem, oracle: &dyn HitRatioOracle) -> HybridOutcome {
    let placement = Placement::primaries_only(problem);
    let hits: Vec<Vec<f64>> = (0..problem.n_servers())
        .map(|i| {
            let b = problem.buffer_objects(placement.free_bytes(i));
            hit_row(problem, &placement, oracle, i, b)
        })
        .collect();
    let cost = predicted_cost(problem, &placement, |i, j| hits[i][j]);
    HybridOutcome {
        placement,
        hit_ratios: hits,
        initial_cost: cost,
        final_cost: cost,
        benefits: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::replication_only_cost;
    use crate::greedy_global::greedy_global;
    use crate::problem::testkit::*;

    fn run(problem: &PlacementProblem) -> HybridOutcome {
        hybrid_greedy_paper(problem, &HybridConfig::default())
    }

    #[test]
    fn outcome_invariants() {
        let p = line_problem(4, 6, 5000, 12_000, uniform_demand(4, 6, 50));
        let out = run(&p);
        out.placement.validate(&p);
        assert!(out.final_cost <= out.initial_cost + 1e-9);
        assert!(out.benefits.iter().all(|&b| b > 0.0));
        for i in 0..4 {
            for j in 0..6 {
                let h = out.hit(i, j);
                assert!((0.0..=1.0).contains(&h));
                if out.placement.is_replicated(i, j) {
                    assert_eq!(h, 0.0);
                }
            }
        }
    }

    #[test]
    fn hybrid_beats_or_matches_pure_replication_and_pure_caching() {
        let p = line_problem(4, 6, 5000, 12_000, uniform_demand(4, 6, 50));
        let hybrid = run(&p);
        let oracle = paper_oracle_for(&p);
        let caching = pure_caching(&p, &oracle);
        let replication = greedy_global(&p);
        let repl_cost = replication_only_cost(&p, &replication.placement);
        assert!(
            hybrid.final_cost <= caching.final_cost + 1e-9,
            "hybrid {} > caching {}",
            hybrid.final_cost,
            caching.final_cost
        );
        assert!(
            hybrid.final_cost <= repl_cost + 1e-9,
            "hybrid {} > replication {}",
            hybrid.final_cost,
            repl_cost
        );
    }

    #[test]
    fn no_space_means_pure_caching() {
        let p = line_problem(3, 3, 10_000, 5_000, uniform_demand(3, 3, 10));
        let out = run(&p);
        assert_eq!(out.placement.replica_count(), 0);
        assert_eq!(out.initial_cost, out.final_cost);
    }

    #[test]
    fn max_replicas_cap_respected() {
        let p = line_problem(4, 6, 1000, 6000, uniform_demand(4, 6, 50));
        let cfg = HybridConfig {
            max_replicas: 3,
            ..Default::default()
        };
        let out = hybrid_greedy_paper(&p, &cfg);
        assert!(out.placement.replica_count() <= 3);
    }

    #[test]
    fn benefits_counted_against_cost() {
        let p = line_problem(3, 4, 2000, 6000, uniform_demand(3, 4, 25));
        let out = run(&p);
        let claimed: f64 = out.benefits.iter().sum();
        let achieved = out.initial_cost - out.final_cost;
        // Tracked benefits match the exact recomputation up to the oracle's
        // quantisation error.
        assert!(
            (claimed - achieved).abs() <= 0.02 * out.initial_cost.max(1.0),
            "claimed {claimed} vs achieved {achieved}"
        );
    }

    #[test]
    fn deterministic() {
        let p = line_problem(4, 5, 3000, 9000, uniform_demand(4, 5, 20));
        let a = run(&p);
        let b = run(&p);
        assert_eq!(a.benefits, b.benefits);
        for i in 0..4 {
            assert_eq!(a.placement.sites_at(i), b.placement.sites_at(i));
        }
        // Thread-count invariance: the candidate scan and the ShrinkMemo
        // fills must yield bit-identical outcomes at 1 and 4 threads.
        let pool = |n| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .unwrap()
        };
        let one = pool(1).install(|| run(&p));
        let four = pool(4).install(|| run(&p));
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&one.benefits), bits(&four.benefits));
        assert_eq!(bits(&a.benefits), bits(&one.benefits));
        assert_eq!(one.final_cost.to_bits(), four.final_cost.to_bits());
        assert_eq!(one.initial_cost.to_bits(), four.initial_cost.to_bits());
        for i in 0..4 {
            assert_eq!(one.placement.sites_at(i), four.placement.sites_at(i));
            assert_eq!(bits(&one.hit_ratios[i]), bits(&four.hit_ratios[i]));
        }
    }

    #[test]
    fn replicates_less_than_pure_greedy_when_caching_is_strong() {
        // Tiny objects (mean request size 100 B) and highly skewed Zipf make
        // the cache very effective, so the hybrid should hold back replicas
        // relative to cache-blind greedy on at least some instances. At
        // minimum it must never replicate more than greedy fills.
        let p = line_problem(4, 8, 4000, 16_000, uniform_demand(4, 8, 10));
        let hybrid = run(&p);
        let greedy = greedy_global(&p);
        assert!(hybrid.placement.replica_count() <= greedy.placement.replica_count());
    }

    #[test]
    fn memoised_scan_matches_exact_scan() {
        // The ShrinkMemo decomposition is algebraically identical up to
        // the 0.5% buffer bucketing and floating-point associativity, so
        // on tie-free instances the two paths choose the same placement.
        // Demand is perturbed per (server, site) to break ties.
        for seed in 0..3u64 {
            let mut demand = uniform_demand(4, 6, 40 + seed);
            for (idx, d) in demand.iter_mut().enumerate() {
                *d += (idx as u64 * 7 + seed) % 13;
            }
            let p = line_problem(4, 6, 4000 + 300 * seed, 11_000, demand);
            let fast = hybrid_greedy_paper(&p, &HybridConfig::default());
            let exact = hybrid_greedy_paper(
                &p,
                &HybridConfig {
                    exact_shrink_scan: true,
                    ..Default::default()
                },
            );
            assert_eq!(
                fast.placement.replica_count(),
                exact.placement.replica_count(),
                "seed {seed}"
            );
            for i in 0..4 {
                assert_eq!(
                    fast.placement.sites_at(i),
                    exact.placement.sites_at(i),
                    "seed {seed}, server {i}"
                );
            }
            let rel = (fast.final_cost - exact.final_cost).abs() / exact.final_cost.max(1.0);
            assert!(
                rel < 1e-9,
                "seed {seed}: {} vs {}",
                fast.final_cost,
                exact.final_cost
            );
        }
    }

    #[test]
    fn update_rates_shift_hybrid_toward_caching() {
        let p = line_problem(4, 6, 5000, 12_000, uniform_demand(4, 6, 50));
        let baseline = run(&p);
        let mut hot = p.clone();
        hot.set_update_rates(vec![100; 6]);
        let shifted = hybrid_greedy_paper(&hot, &HybridConfig::default());
        assert!(shifted.placement.replica_count() <= baseline.placement.replica_count());
        shifted.placement.validate(&hot);
        // Final cost accounting still consistent: benefits were charged for
        // updates, and the exact recomputation includes them.
        let claimed: f64 = shifted.benefits.iter().sum();
        let achieved = shifted.initial_cost - shifted.final_cost;
        assert!((claimed - achieved).abs() <= 0.02 * shifted.initial_cost.max(1.0));
    }

    #[test]
    fn pure_caching_outcome_consistent() {
        let p = line_problem(2, 3, 1000, 4000, uniform_demand(2, 3, 10));
        let oracle = paper_oracle_for(&p);
        let out = pure_caching(&p, &oracle);
        assert_eq!(out.placement.replica_count(), 0);
        let recomputed = predicted_cost(&p, &out.placement, |i, j| out.hit(i, j));
        assert_eq!(out.final_cost, recomputed);
        // Caching must beat a cache-less primaries-only system.
        let no_cache = replication_only_cost(&p, &out.placement);
        assert!(out.final_cost < no_cache);
    }
}
