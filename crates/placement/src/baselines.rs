//! Context baselines: random and popularity-ranked placement.
//!
//! Neither appears in the paper's figures, but both are standard reference
//! points in the replica-placement literature it builds on and they anchor
//! the extension benchmarks (a placement algorithm should comfortably beat
//! random).

use crate::problem::PlacementProblem;
use crate::solution::Placement;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Fill servers with replicas chosen uniformly at random (without
/// replacement per server) until nothing more fits anywhere.
pub fn random_placement(problem: &PlacementProblem, seed: u64) -> Placement {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut placement = Placement::primaries_only(problem);
    let n = problem.n_servers();
    let m = problem.m_sites();
    let mut candidates: Vec<(usize, usize)> =
        (0..n).flat_map(|i| (0..m).map(move |j| (i, j))).collect();
    candidates.shuffle(&mut rng);
    for (i, j) in candidates {
        if placement.fits(problem, i, j) {
            placement.add_replica(problem, i, j);
        }
    }
    placement
}

/// Replicate sites in order of total demand, each at every server where it
/// fits, until capacity runs out — the "push the hottest sites everywhere"
/// heuristic.
pub fn popularity_placement(problem: &PlacementProblem) -> Placement {
    let mut placement = Placement::primaries_only(problem);
    let m = problem.m_sites();
    let n = problem.n_servers();
    let mut sites: Vec<usize> = (0..m).collect();
    let demand_of = |j: usize| -> u64 { (0..n).map(|i| problem.requests(i, j)).sum() };
    sites.sort_by_key(|&j| std::cmp::Reverse(demand_of(j)));
    for j in sites {
        for i in 0..n {
            if placement.fits(problem, i, j) {
                placement.add_replica(problem, i, j);
            }
        }
    }
    placement
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::replication_only_cost;
    use crate::greedy_global::greedy_global;
    use crate::problem::testkit::*;

    #[test]
    fn random_placement_fills_until_nothing_fits() {
        let p = line_problem(3, 4, 1000, 2500, uniform_demand(3, 4, 10));
        let pl = random_placement(&p, 1);
        pl.validate(&p);
        for i in 0..3 {
            assert!(pl.free_bytes(i) < 1000, "server {i} left space unused");
        }
    }

    #[test]
    fn random_placement_deterministic_per_seed() {
        let p = line_problem(3, 4, 1000, 2500, uniform_demand(3, 4, 10));
        let a = random_placement(&p, 7);
        let b = random_placement(&p, 7);
        for i in 0..3 {
            assert_eq!(a.sites_at(i), b.sites_at(i));
        }
        let c = random_placement(&p, 8);
        let differs = (0..3).any(|i| a.sites_at(i) != c.sites_at(i));
        assert!(differs);
    }

    #[test]
    fn popularity_placement_prefers_hot_sites() {
        let mut demand = uniform_demand(2, 3, 1);
        demand[2] = 100; // (server 0, site 2)
        demand[5] = 100; // (server 1, site 2)
        let p = line_problem(2, 3, 1000, 1000, demand);
        let pl = popularity_placement(&p);
        // Only one site fits per server; it must be the hot one.
        assert_eq!(pl.sites_at(0), vec![2]);
        assert_eq!(pl.sites_at(1), vec![2]);
    }

    #[test]
    fn greedy_beats_random() {
        let p = line_problem(5, 8, 1000, 3000, uniform_demand(5, 8, 10));
        let greedy_cost = replication_only_cost(&p, &greedy_global(&p).placement);
        let random_cost = replication_only_cost(&p, &random_placement(&p, 3));
        assert!(
            greedy_cost <= random_cost,
            "greedy {greedy_cost} worse than random {random_cost}"
        );
    }

    #[test]
    fn popularity_placement_validates() {
        let p = line_problem(4, 5, 700, 2000, uniform_demand(4, 5, 3));
        popularity_placement(&p).validate(&p);
    }
}
