//! Greedy-local ("greedy-single") replica placement: each server fills its
//! own storage independently, ranking sites by the transfer cost *its own*
//! clients would save per byte stored.
//!
//! This is the classic decentralised baseline from the replica-placement
//! literature the paper builds on (Kangasharju/Roberts/Ross call it
//! "greedy-single"): no coordination, so popular sites end up replicated
//! everywhere and the long tail nowhere. Greedy-global dominates it
//! precisely because it accounts for servers covering each other — which is
//! what our extension benchmark demonstrates.

use crate::problem::PlacementProblem;
use crate::solution::Placement;

/// Density-ordered local knapsack fill at every server.
///
/// Each server ranks sites by `r_j^(i) · C(i, SP_j) / o_j` (cost saved per
/// byte, against the primary — servers do not know about each other's
/// replicas) and replicates greedily until nothing more fits.
pub fn greedy_local(problem: &PlacementProblem) -> Placement {
    let n = problem.n_servers();
    let m = problem.m_sites();
    let mut placement = Placement::primaries_only(problem);
    for i in 0..n {
        let mut order: Vec<usize> = (0..m).collect();
        let density = |j: usize| {
            problem.requests(i, j) as f64 * problem.dist_primary(i, j) as f64
                / problem.site_bytes[j].max(1) as f64
        };
        order.sort_by(|&a, &b| {
            density(b)
                .partial_cmp(&density(a))
                .expect("densities are finite")
                .then(a.cmp(&b))
        });
        for j in order {
            if problem.requests(i, j) == 0 {
                continue; // zero benefit; leave the space to the tail/cache
            }
            if placement.fits(problem, i, j) {
                placement.add_replica(problem, i, j);
            }
        }
    }
    placement
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::replication_only_cost;
    use crate::greedy_global::greedy_global;
    use crate::problem::testkit::*;

    #[test]
    fn fills_by_local_density() {
        // Site 1 is tiny and hot for server 0: it must be picked first.
        let mut demand = uniform_demand(1, 3, 10);
        demand[1] = 100;
        let mut p = line_problem(1, 3, 1000, 1500, demand);
        p.site_bytes[1] = 500;
        let pl = greedy_local(&p);
        assert!(pl.is_replicated(0, 1));
        // 1000 bytes left fits exactly one more site.
        assert_eq!(pl.sites_at(0).len(), 2);
        pl.validate(&p);
    }

    #[test]
    fn ignores_zero_demand_sites() {
        let mut demand = uniform_demand(2, 2, 10);
        demand[1] = 0;
        demand[3] = 0;
        let p = line_problem(2, 2, 1000, 5000, demand);
        let pl = greedy_local(&p);
        assert!(pl.replicators_of(1).is_empty());
        assert_eq!(pl.replicators_of(0).len(), 2);
    }

    #[test]
    fn servers_duplicate_popular_sites() {
        // With uniform demand every server independently picks the same
        // best sites — the pathology greedy-global avoids.
        let p = line_problem(3, 6, 1000, 2000, uniform_demand(3, 6, 10));
        let pl = greedy_local(&p);
        for i in 0..3 {
            assert_eq!(pl.sites_at(i).len(), 2);
        }
        // Primary distance is lowest for server 0's ordering tie-break;
        // all servers share the same top picks up to their own distances.
        pl.validate(&p);
    }

    #[test]
    fn greedy_global_never_worse() {
        let p = line_problem(5, 8, 1000, 3000, uniform_demand(5, 8, 7));
        let local = replication_only_cost(&p, &greedy_local(&p));
        let global = replication_only_cost(&p, &greedy_global(&p).placement);
        assert!(
            global <= local + 1e-9,
            "global {global} worse than local {local}"
        );
    }

    #[test]
    fn deterministic() {
        let p = line_problem(4, 5, 900, 2700, uniform_demand(4, 5, 3));
        let a = greedy_local(&p);
        let b = greedy_local(&p);
        for i in 0..4 {
            assert_eq!(a.sites_at(i), b.sites_at(i));
        }
    }
}
