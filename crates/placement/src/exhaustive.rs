//! Exhaustive optimal replica placement for *small* instances.
//!
//! The stand-alone replication problem is NP-complete, so this solver is a
//! test oracle, not an algorithm: it enumerates every joint assignment of
//! capacity-feasible site subsets to servers and returns the cheapest one
//! under the replication-only objective (`h ≡ 0`, update costs included).
//! The differential harness checks the heuristics against it — greedy can
//! never beat the optimum, and the lower bound in [`crate::bounds`] can
//! never exceed it.
//!
//! Search space: `Π_i |feasible subsets of server i|`, at most `2^(n·m)`.
//! [`exhaustive_optimal`] refuses instances beyond [`MAX_COMBINATIONS`]
//! joint assignments rather than silently running for hours.

use crate::cost::{replication_only_cost, update_cost};
use crate::problem::PlacementProblem;
use crate::solution::Placement;

/// Hard cap on the number of joint assignments the solver will examine.
pub const MAX_COMBINATIONS: u64 = 1 << 20;

/// The optimal placement found by brute force.
#[derive(Debug, Clone)]
pub struct ExhaustiveOutcome {
    pub placement: Placement,
    /// Replication-only read cost plus update cost of `placement`.
    pub cost: f64,
    /// Joint assignments examined (diagnostics / test budgets).
    pub combinations: u64,
}

/// Site-subset bitmasks of server `i` that fit its capacity, in ascending
/// mask order (mask 0 — no replicas — is always feasible).
fn feasible_masks(problem: &PlacementProblem, i: usize) -> Vec<u32> {
    let m = problem.m_sites();
    let cap = problem.capacities[i];
    (0u32..1 << m)
        .filter(|mask| {
            let bytes: u64 = (0..m)
                .filter(|j| mask & (1 << j) != 0)
                .map(|j| problem.site_bytes[j])
                .sum();
            bytes <= cap
        })
        .collect()
}

/// Materialise one joint assignment (`masks[i]` = sites replicated at
/// server `i`) and price it.
fn cost_of(problem: &PlacementProblem, masks: &[u32]) -> (Placement, f64) {
    let mut placement = Placement::primaries_only(problem);
    for (i, &mask) in masks.iter().enumerate() {
        for j in 0..problem.m_sites() {
            if mask & (1 << j) != 0 {
                placement.add_replica(problem, i, j);
            }
        }
    }
    let cost = replication_only_cost(problem, &placement) + update_cost(problem, &placement);
    (placement, cost)
}

/// Find the globally optimal replication-only placement by enumerating all
/// joint assignments. Deterministic: among equal-cost optima the first in
/// odometer order (server 0's mask most significant) wins.
///
/// # Panics
/// Panics if the instance needs more than [`MAX_COMBINATIONS`] joint
/// assignments, or if `m_sites > 20` (mask width).
pub fn exhaustive_optimal(problem: &PlacementProblem) -> ExhaustiveOutcome {
    let n = problem.n_servers();
    let m = problem.m_sites();
    assert!(
        m <= 20,
        "exhaustive_optimal: {m} sites is beyond mask width"
    );
    let per_server: Vec<Vec<u32>> = (0..n).map(|i| feasible_masks(problem, i)).collect();
    // Overflow means the count is astronomically over the cap anyway.
    let total: u64 = per_server
        .iter()
        .map(|f| f.len() as u64)
        .try_fold(1u64, |acc, len| acc.checked_mul(len))
        .unwrap_or(u64::MAX);
    assert!(
        total <= MAX_COMBINATIONS,
        "exhaustive_optimal: {total} joint assignments exceeds the {MAX_COMBINATIONS} cap"
    );

    let mut indices = vec![0usize; n];
    let mut masks = vec![0u32; n];
    let mut best: Option<(Placement, f64)> = None;
    let mut combinations = 0u64;
    loop {
        for i in 0..n {
            masks[i] = per_server[i][indices[i]];
        }
        let (placement, cost) = cost_of(problem, &masks);
        combinations += 1;
        if best.as_ref().is_none_or(|(_, c)| cost < *c) {
            best = Some((placement, cost));
        }

        // Odometer: advance the last server first.
        let mut pos = n;
        loop {
            if pos == 0 {
                let (placement, cost) = best.expect("mask 0 always feasible");
                return ExhaustiveOutcome {
                    placement,
                    cost,
                    combinations,
                };
            }
            pos -= 1;
            indices[pos] += 1;
            if indices[pos] < per_server[pos].len() {
                break;
            }
            indices[pos] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::replication_cost_lower_bound;
    use crate::greedy_global::greedy_global;
    use crate::problem::testkit::*;

    #[test]
    fn single_server_optimum_is_a_knapsack_solution() {
        // One server, capacity for exactly one 1000-byte site: the optimum
        // replicates the single most valuable site.
        let p = line_problem(1, 3, 1000, 1000, vec![1, 50, 3]);
        let out = exhaustive_optimal(&p);
        assert_eq!(out.placement.sites_at(0), vec![1]);
        out.placement.validate(&p);
        // 2^3 masks, 4 feasible (≤ 1 site each).
        assert_eq!(out.combinations, 4);
    }

    #[test]
    fn optimum_never_above_greedy_and_never_below_lower_bound() {
        for (cap, demand) in [(0u64, 7u64), (1000, 7), (2000, 3), (4000, 11)] {
            let p = line_problem(3, 4, 1000, cap, uniform_demand(3, 4, demand));
            let out = exhaustive_optimal(&p);
            out.placement.validate(&p);
            let greedy = replication_only_cost(&p, &greedy_global(&p).placement);
            let lb = replication_cost_lower_bound(&p);
            assert!(
                out.cost <= greedy + 1e-9,
                "cap {cap}: optimal {} above greedy {greedy}",
                out.cost
            );
            assert!(
                lb <= out.cost + 1e-9,
                "cap {cap}: lower bound {lb} above optimal {}",
                out.cost
            );
        }
    }

    #[test]
    fn zero_capacity_optimum_is_primaries_only() {
        let p = line_problem(2, 3, 1000, 0, uniform_demand(2, 3, 5));
        let out = exhaustive_optimal(&p);
        assert_eq!(out.placement.replica_count(), 0);
        assert_eq!(
            out.cost,
            replication_only_cost(&p, &Placement::primaries_only(&p))
        );
        assert_eq!(out.combinations, 1);
    }

    #[test]
    fn update_rates_are_priced_in() {
        let p = line_problem(2, 2, 1000, 2000, uniform_demand(2, 2, 10));
        let free = exhaustive_optimal(&p);
        let mut hot = p.clone();
        hot.set_update_rates(vec![1_000_000; 2]);
        let priced = exhaustive_optimal(&hot);
        // Updates this hot make every replica a net loss.
        assert_eq!(priced.placement.replica_count(), 0);
        assert!(free.placement.replica_count() > 0);
    }

    #[test]
    #[should_panic(expected = "joint assignments exceeds")]
    fn oversized_instances_are_refused() {
        // 8 servers × 2^10 masks each = 2^80 ≫ the cap.
        let p = line_problem(8, 10, 1, 100, uniform_demand(8, 10, 1));
        exhaustive_optimal(&p);
    }
}
