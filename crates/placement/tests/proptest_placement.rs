//! Property tests over random placement-problem instances.

use cdn_placement::{
    adhoc_split, greedy_global, hybrid::hybrid_greedy_paper, hybrid::paper_oracle_for,
    hybrid::pure_caching, predicted_cost, random_placement, replication_only_cost, HybridConfig,
    Placement, PlacementProblem,
};
use proptest::prelude::*;

/// Random but well-formed instance: symmetric server metric from random
/// coordinates on a line (guaranteeing the triangle inequality), random
/// primary distances beyond the servers, random demand/sizes/capacities.
fn arb_problem() -> impl Strategy<Value = PlacementProblem> {
    (2usize..6, 2usize..8, any::<u64>()).prop_map(|(n, m, seed)| {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let coords: Vec<i64> = (0..n).map(|_| rng.gen_range(0..30)).collect();
        let mut dist_ss = vec![0u32; n * n];
        for i in 0..n {
            for k in 0..n {
                if i != k {
                    // +1: servers are distinct nodes, so they are at least
                    // one hop apart (the metric stays triangle-respecting:
                    // both sides of the inequality gain at least as much).
                    dist_ss[i * n + k] = (coords[i] - coords[k]).unsigned_abs() as u32 + 1;
                }
            }
        }
        let mut dist_sp = vec![0u32; n * m];
        for i in 0..n {
            for j in 0..m {
                // Primaries at least as far as the whole server span.
                dist_sp[i * m + j] = 31 + rng.gen_range(0..20u32) + (coords[i] % 7) as u32;
            }
        }
        let site_bytes: Vec<u64> = (0..m).map(|_| rng.gen_range(500..3000)).collect();
        let capacities: Vec<u64> = (0..n).map(|_| rng.gen_range(0..8000)).collect();
        let demand: Vec<u64> = (0..n * m).map(|_| rng.gen_range(0..100)).collect();
        PlacementProblem::new(
            n,
            m,
            dist_ss,
            dist_sp,
            site_bytes,
            capacities,
            demand,
            vec![0.0; m],
            100.0,
            50,
            1.0,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn greedy_placement_upholds_invariants(p in arb_problem()) {
        let out = greedy_global(&p);
        out.placement.validate(&p);
        prop_assert!(out.benefits.iter().all(|&b| b > 0.0));
        // Benefits are found greedily, so the trace is non-increasing.
        for w in out.benefits.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9, "benefit increased: {:?}", w);
        }
    }

    #[test]
    fn greedy_cost_never_worse_than_primaries_only(p in arb_problem()) {
        let base = replication_only_cost(&p, &Placement::primaries_only(&p));
        let out = greedy_global(&p);
        prop_assert!(replication_only_cost(&p, &out.placement) <= base + 1e-9);
    }

    #[test]
    fn hybrid_upholds_invariants_and_beats_stand_alone(p in arb_problem()) {
        let hybrid = hybrid_greedy_paper(&p, &HybridConfig::default());
        hybrid.placement.validate(&p);
        prop_assert!(hybrid.final_cost <= hybrid.initial_cost + 1e-9);

        // Hybrid's predicted cost must not exceed pure caching (its start
        // state) nor pure replication evaluated under the same model
        // (greedy replicas, remaining space cached).
        let oracle = paper_oracle_for(&p);
        let caching = pure_caching(&p, &oracle);
        prop_assert!(hybrid.final_cost <= caching.final_cost + 1e-9,
            "hybrid {} > caching {}", hybrid.final_cost, caching.final_cost);
    }

    #[test]
    fn hybrid_hit_ratios_well_formed(p in arb_problem()) {
        let out = hybrid_greedy_paper(&p, &HybridConfig::default());
        for i in 0..p.n_servers() {
            for j in 0..p.m_sites() {
                let h = out.hit(i, j);
                prop_assert!((0.0..=1.0).contains(&h));
                if out.placement.is_replicated(i, j) {
                    prop_assert_eq!(h, 0.0);
                }
            }
        }
        let recomputed = predicted_cost(&p, &out.placement, |i, j| out.hit(i, j));
        prop_assert!((recomputed - out.final_cost).abs() < 1e-9);
    }

    #[test]
    fn adhoc_reserved_fraction_respected(p in arb_problem(), f in 0.0f64..1.0) {
        let pl = adhoc_split(&p, f);
        pl.validate(&p);
        for i in 0..p.n_servers() {
            let reserved = (p.capacities[i] as f64 * f).floor() as u64;
            prop_assert!(pl.free_bytes(i) >= reserved);
        }
    }

    #[test]
    fn random_placement_valid(p in arb_problem(), seed in any::<u64>()) {
        random_placement(&p, seed).validate(&p);
    }
}
