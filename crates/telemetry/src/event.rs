//! Structured field values attached to trace events.

use crate::json::escape_into;
use std::fmt::Write as _;

/// A field value on a trace event.
///
/// `F64` values are rendered with Rust's shortest-round-trip `Display`
/// formatting, which is deterministic for a given bit pattern. Non-finite
/// floats are rendered as quoted strings (`"NaN"`, `"inf"`, `"-inf"`) so the
/// output stays valid JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl Value {
    pub(crate) fn render_into(&self, out: &mut String) {
        match self {
            Value::U64(x) => {
                let _ = write!(out, "{x}");
            }
            Value::I64(x) => {
                let _ = write!(out, "{x}");
            }
            Value::F64(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    let _ = write!(out, "\"{x}\"");
                }
            }
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Str(s) => escape_into(out, s),
        }
    }
}

impl From<u64> for Value {
    fn from(x: u64) -> Self {
        Value::U64(x)
    }
}

impl From<usize> for Value {
    fn from(x: usize) -> Self {
        Value::U64(x as u64)
    }
}

impl From<i64> for Value {
    fn from(x: i64) -> Self {
        Value::I64(x)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::F64(x)
    }
}

impl From<bool> for Value {
    fn from(x: bool) -> Self {
        Value::Bool(x)
    }
}

impl From<&str> for Value {
    fn from(x: &str) -> Self {
        Value::Str(x.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render(v: Value) -> String {
        let mut s = String::new();
        v.render_into(&mut s);
        s
    }

    #[test]
    fn renders_scalars() {
        assert_eq!(render(Value::U64(42)), "42");
        assert_eq!(render(Value::I64(-7)), "-7");
        assert_eq!(render(Value::Bool(true)), "true");
        assert_eq!(render(Value::F64(0.25)), "0.25");
        assert_eq!(render(Value::Str("a\"b".into())), "\"a\\\"b\"");
    }

    #[test]
    fn non_finite_floats_are_quoted() {
        assert_eq!(render(Value::F64(f64::NAN)), "\"NaN\"");
        assert_eq!(render(Value::F64(f64::INFINITY)), "\"inf\"");
        assert_eq!(render(Value::F64(f64::NEG_INFINITY)), "\"-inf\"");
    }
}
