//! Hierarchical spans and structured events, rendered as JSONL.
//!
//! Records carry only deterministic data: a sequence number, span ids
//! assigned in emission order, and a per-span count of direct child records
//! reported on exit. There are **no timestamps** — wall-clock belongs in the
//! separately-marked timing sections of bench output, never here.
//!
//! Parallel tasks must not write to the shared [`Trace`] directly (emission
//! order would depend on scheduling). Instead each task records into its own
//! [`TraceBuffer`]; the coordinator merges the buffers in a fixed order
//! (e.g. ascending server index), which renumbers buffer-local span ids into
//! the global sequence. The merged stream is therefore a pure function of
//! the work, not of the thread schedule.

use crate::Value;
use std::fmt::Write as _;

/// Identifier of an open span, returned by `enter` and consumed by `exit`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u64);

#[derive(Debug, Clone)]
enum Record {
    Enter {
        span: u64,
        parent: u64,
        name: &'static str,
    },
    Event {
        span: u64,
        name: &'static str,
        fields: Vec<(&'static str, Value)>,
    },
    Exit {
        span: u64,
        /// Number of direct child records (events + child spans).
        records: u64,
    },
}

fn remap(id: u64, offset: u64, attach_parent: u64) -> u64 {
    // Buffer-local ids are 1-based; 0 means "the buffer root", which
    // attaches to the span open at merge time.
    if id == 0 {
        attach_parent
    } else {
        id + offset
    }
}

/// Core span/event recorder shared by [`Trace`] and [`TraceBuffer`].
#[derive(Debug, Default)]
struct Recorder {
    records: Vec<Record>,
    /// Open spans: (span id, count of direct child records so far).
    stack: Vec<(u64, u64)>,
    next_span: u64,
}

impl Recorder {
    fn new() -> Self {
        Recorder {
            records: Vec::new(),
            stack: Vec::new(),
            next_span: 1,
        }
    }

    fn bump_parent(&mut self) {
        if let Some(top) = self.stack.last_mut() {
            top.1 += 1;
        }
    }

    fn enter(&mut self, name: &'static str) -> SpanId {
        let span = self.next_span;
        self.next_span += 1;
        let parent = self.stack.last().map_or(0, |&(id, _)| id);
        self.bump_parent();
        self.records.push(Record::Enter { span, parent, name });
        self.stack.push((span, 0));
        SpanId(span)
    }

    fn event(&mut self, name: &'static str, fields: Vec<(&'static str, Value)>) {
        let span = self.stack.last().map_or(0, |&(id, _)| id);
        self.bump_parent();
        self.records.push(Record::Event { span, name, fields });
    }

    fn exit(&mut self, id: SpanId) {
        let (span, records) = self.stack.pop().expect("span exit without matching enter");
        assert_eq!(span, id.0, "span exits must nest (LIFO)");
        self.records.push(Record::Exit { span, records });
    }
}

/// The process-wide trace sink. Use from sequential code only; parallel
/// sections record into a [`TraceBuffer`] and merge.
#[derive(Debug, Default)]
pub struct Trace {
    inner: Recorder,
    seq: u64,
}

impl Trace {
    pub fn new() -> Self {
        Trace {
            inner: Recorder::new(),
            seq: 0,
        }
    }

    /// Open a span; subsequent records nest under it until `exit`.
    pub fn enter(&mut self, name: &'static str) -> SpanId {
        self.inner.enter(name)
    }

    /// Close a span. Spans must close in LIFO order.
    pub fn exit(&mut self, id: SpanId) {
        self.inner.exit(id)
    }

    /// Record a structured event under the currently-open span.
    pub fn event(&mut self, name: &'static str, fields: Vec<(&'static str, Value)>) {
        self.inner.event(name, fields)
    }

    /// Splice a detached buffer's records under the currently-open span,
    /// renumbering its local span ids into this trace's id space.
    ///
    /// Merging buffers in a fixed order (server index, not completion
    /// order) is what keeps the stream thread-schedule independent.
    pub fn merge(&mut self, buf: TraceBuffer) {
        let buf = buf.finish();
        let offset = self.inner.next_span - 1;
        let attach = self.inner.stack.last().map_or(0, |&(id, _)| id);
        if let Some(top) = self.inner.stack.last_mut() {
            top.1 += buf.root_records;
        }
        for rec in buf.records {
            self.inner.records.push(match rec {
                Record::Enter { span, parent, name } => Record::Enter {
                    span: remap(span, offset, attach),
                    parent: remap(parent, offset, attach),
                    name,
                },
                Record::Event { span, name, fields } => Record::Event {
                    span: remap(span, offset, attach),
                    name,
                    fields,
                },
                Record::Exit { span, records } => Record::Exit {
                    span: remap(span, offset, attach),
                    records,
                },
            });
        }
        self.inner.next_span += buf.next_span - 1;
    }

    /// Render all buffered records as JSONL and clear them. Sequence
    /// numbers continue across drains within one trace.
    pub fn drain_jsonl(&mut self) -> String {
        let mut out = String::new();
        for rec in self.inner.records.drain(..) {
            let seq = self.seq;
            self.seq += 1;
            match rec {
                Record::Enter { span, parent, name } => {
                    let _ = write!(
                        out,
                        "{{\"seq\":{seq},\"type\":\"enter\",\"span\":{span},\"parent\":{parent},\"name\":\"{name}\"}}"
                    );
                }
                Record::Event { span, name, fields } => {
                    let _ = write!(
                        out,
                        "{{\"seq\":{seq},\"type\":\"event\",\"span\":{span},\"name\":\"{name}\""
                    );
                    if !fields.is_empty() {
                        out.push_str(",\"fields\":{");
                        for (i, (k, v)) in fields.iter().enumerate() {
                            if i > 0 {
                                out.push(',');
                            }
                            let _ = write!(out, "\"{k}\":");
                            v.render_into(&mut out);
                        }
                        out.push('}');
                    }
                    out.push('}');
                }
                Record::Exit { span, records } => {
                    let _ = write!(
                        out,
                        "{{\"seq\":{seq},\"type\":\"exit\",\"span\":{span},\"records\":{records}}}"
                    );
                }
            }
            out.push('\n');
        }
        out
    }

    /// Number of buffered (undrained) records.
    pub fn len(&self) -> usize {
        self.inner.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.records.is_empty()
    }
}

/// A detached recorder for use inside one parallel task.
///
/// Span ids are buffer-local; [`Trace::merge`] renumbers them. All spans
/// must be closed before the buffer is merged.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    inner: Recorder,
    /// Records emitted at buffer depth 0 (attach to the merge-point span).
    root_records: u64,
}

struct FinishedBuffer {
    records: Vec<Record>,
    next_span: u64,
    root_records: u64,
}

impl TraceBuffer {
    pub fn new() -> Self {
        TraceBuffer {
            inner: Recorder::new(),
            root_records: 0,
        }
    }

    pub fn enter(&mut self, name: &'static str) -> SpanId {
        if self.inner.stack.is_empty() {
            self.root_records += 1;
        }
        self.inner.enter(name)
    }

    pub fn exit(&mut self, id: SpanId) {
        self.inner.exit(id)
    }

    pub fn event(&mut self, name: &'static str, fields: Vec<(&'static str, Value)>) {
        if self.inner.stack.is_empty() {
            self.root_records += 1;
        }
        self.inner.event(name, fields)
    }

    /// Splice another buffer's records into this one, renumbering its local
    /// span ids — the shard-lane merge. Workers fold per-task buffers into a
    /// per-shard lane; the coordinator then merges lanes in shard order.
    /// Merging children into a lane and the lane into a [`Trace`] produces
    /// exactly the records of merging each child into the trace directly,
    /// in the same order.
    pub fn merge_child(&mut self, child: TraceBuffer) {
        let child = child.finish();
        let offset = self.inner.next_span - 1;
        let attach = self.inner.stack.last().map_or(0, |&(id, _)| id);
        match self.inner.stack.last_mut() {
            Some(top) => top.1 += child.root_records,
            None => self.root_records += child.root_records,
        }
        for rec in child.records {
            self.inner.records.push(match rec {
                Record::Enter { span, parent, name } => Record::Enter {
                    span: remap(span, offset, attach),
                    parent: remap(parent, offset, attach),
                    name,
                },
                Record::Event { span, name, fields } => Record::Event {
                    span: remap(span, offset, attach),
                    name,
                    fields,
                },
                Record::Exit { span, records } => Record::Exit {
                    span: remap(span, offset, attach),
                    records,
                },
            });
        }
        self.inner.next_span += child.next_span - 1;
    }

    fn finish(self) -> FinishedBuffer {
        assert!(
            self.inner.stack.is_empty(),
            "TraceBuffer merged with {} span(s) still open",
            self.inner.stack.len()
        );
        FinishedBuffer {
            records: self.inner.records,
            next_span: self.inner.next_span,
            root_records: self.root_records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_count_direct_records() {
        let mut t = Trace::new();
        let root = t.enter("root");
        t.event("a", vec![]);
        let child = t.enter("child");
        t.event("b", vec![("k", Value::U64(1))]);
        t.event("c", vec![]);
        t.exit(child);
        t.exit(root);
        let out = t.drain_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 7);
        assert!(lines[0].contains("\"type\":\"enter\",\"span\":1,\"parent\":0,\"name\":\"root\""));
        assert!(lines[2].contains("\"span\":2,\"parent\":1"));
        // child has 2 direct records, root has 2 (event a + child span)
        assert!(lines[5].contains("\"type\":\"exit\",\"span\":2,\"records\":2"));
        assert!(lines[6].contains("\"type\":\"exit\",\"span\":1,\"records\":2"));
    }

    #[test]
    fn seq_numbers_are_contiguous_across_drains() {
        let mut t = Trace::new();
        let s = t.enter("one");
        t.exit(s);
        let first = t.drain_jsonl();
        let s = t.enter("two");
        t.exit(s);
        let second = t.drain_jsonl();
        assert!(first.starts_with("{\"seq\":0,"));
        assert!(second.starts_with("{\"seq\":2,"));
    }

    #[test]
    fn merge_renumbers_and_reparents() {
        let mut t = Trace::new();
        let root = t.enter("root"); // global span 1
        let mut buf = TraceBuffer::new();
        let s = buf.enter("task"); // local span 1
        buf.event("work", vec![]);
        buf.exit(s);
        t.merge(buf);
        t.exit(root);
        let out = t.drain_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        // task became global span 2, parented to root (span 1)
        assert!(lines[1].contains("\"span\":2,\"parent\":1,\"name\":\"task\""));
        assert!(lines[2].contains("\"span\":2,\"name\":\"work\""));
        // root counted the merged span as one direct record
        assert!(lines[4].contains("\"type\":\"exit\",\"span\":1,\"records\":1"));
    }

    #[test]
    fn fixed_merge_order_is_schedule_independent() {
        // Simulate two tasks finishing in opposite orders; merging in fixed
        // (index) order must produce identical bytes.
        let render = |order_swapped: bool| {
            let mut bufs: Vec<TraceBuffer> = (0..2)
                .map(|i| {
                    let mut b = TraceBuffer::new();
                    let s = b.enter(if i == 0 { "task0" } else { "task1" });
                    b.event("work", vec![("task", Value::U64(i))]);
                    b.exit(s);
                    b
                })
                .collect();
            if order_swapped {
                // "completion order" differs...
                bufs.swap(0, 1);
                // ...but the coordinator merges by index regardless.
                bufs.sort_by_key(|b| match b.inner.records.first() {
                    Some(Record::Enter { name, .. }) => *name,
                    _ => "",
                });
            }
            let mut t = Trace::new();
            let root = t.enter("root");
            for b in bufs {
                t.merge(b);
            }
            t.exit(root);
            t.drain_jsonl()
        };
        assert_eq!(render(false), render(true));
    }

    #[test]
    fn lane_merge_equals_flat_merge() {
        // Folding child buffers into a lane and merging the lane must render
        // byte-identically to merging every child into the trace directly.
        let make_children = || {
            (0..3u64)
                .map(|i| {
                    let mut b = TraceBuffer::new();
                    let s = b.enter("task");
                    b.event("work", vec![("task", Value::U64(i))]);
                    let inner = b.enter("inner");
                    b.event("deep", vec![]);
                    b.exit(inner);
                    b.exit(s);
                    b.event("root_note", vec![("task", Value::U64(i))]);
                    b
                })
                .collect::<Vec<_>>()
        };
        let flat = {
            let mut t = Trace::new();
            let root = t.enter("root");
            for b in make_children() {
                t.merge(b);
            }
            t.exit(root);
            t.drain_jsonl()
        };
        let laned = {
            let mut t = Trace::new();
            let root = t.enter("root");
            // Two lanes: children 0..2 and child 2, merged in order.
            let mut children = make_children().into_iter();
            let mut lane_a = TraceBuffer::new();
            lane_a.merge_child(children.next().unwrap());
            lane_a.merge_child(children.next().unwrap());
            let mut lane_b = TraceBuffer::new();
            lane_b.merge_child(children.next().unwrap());
            t.merge(lane_a);
            t.merge(lane_b);
            t.exit(root);
            t.drain_jsonl()
        };
        assert_eq!(flat, laned);
    }

    #[test]
    fn merge_child_under_open_span_attaches_to_it() {
        let mut lane = TraceBuffer::new();
        let wrap = lane.enter("wrap");
        let mut child = TraceBuffer::new();
        child.event("leaf", vec![]);
        lane.merge_child(child);
        lane.exit(wrap);
        let mut t = Trace::new();
        let root = t.enter("root");
        t.merge(lane);
        t.exit(root);
        let out = t.drain_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        // wrap = global span 2; leaf attaches to it and counts as its child.
        assert!(lines[1].contains("\"span\":2,\"parent\":1,\"name\":\"wrap\""));
        assert!(lines[2].contains("\"span\":2,\"name\":\"leaf\""));
        assert!(lines[3].contains("\"type\":\"exit\",\"span\":2,\"records\":1"));
    }

    #[test]
    #[should_panic(expected = "still open")]
    fn merging_unbalanced_buffer_panics() {
        let mut t = Trace::new();
        let mut buf = TraceBuffer::new();
        let _open = buf.enter("leaky");
        t.merge(buf);
    }
}
