//! Minimal JSON utilities: string escaping for the writers and a small
//! recursive-descent parser for the CI perf gate (the workspace has no
//! serde; this keeps the gate dependency-free).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Append `s` to `out` as a quoted JSON string with standard escapes.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value.
///
/// Numbers are kept as `f64`; every counter in the workspace fits in the
/// 2^53 exactly-representable range, and the perf gate compares integral
/// counters after an exactness check.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse a JSON document. Returns a readable error on malformed input.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| format!("invalid utf-8 in string: {e}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|c| c as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_roundtrips_through_parser() {
        let raw = "line\none\t\"quoted\" \\ back\u{1}";
        let mut enc = String::new();
        escape_into(&mut enc, raw);
        assert_eq!(parse(&enc).unwrap(), Json::Str(raw.to_string()));
    }

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "s": "x"}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{\"a\":").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("{'a': 1}").is_err());
    }

    #[test]
    fn u64_exactness_guard() {
        assert_eq!(parse("9007199254740992").unwrap().as_u64(), Some(1 << 53));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }
}
