//! Opt-in wall-clock profiling: nested timed spans exported as Chrome
//! Trace Event Format JSON.
//!
//! This is the deliberately *non*-deterministic half of observability. The
//! JSONL trace ([`crate::Trace`]) carries no timestamps so it can be
//! byte-diffed in CI; this module carries nothing but timestamps and lives
//! strictly in its own output file (`--profile-out`). The two compose: a
//! run may produce both, and enabling the profiler must never change a
//! byte of the deterministic artifacts.
//!
//! Design:
//! * [`span`] returns an RAII guard; dropping it records the span. Guards
//!   nest per thread (LIFO), and each completed span knows its wall-clock
//!   duration plus its **self time** — duration minus the time spent in
//!   directly nested child spans.
//! * Each thread gets a small sequential lane id (assigned at first use),
//!   which becomes the Chrome trace `tid`, so parallel phases render as
//!   parallel tracks in Perfetto.
//! * When no profiler is installed a span costs one relaxed atomic load
//!   and nothing else — instrumentation can stay in place permanently.

use crate::json::escape_into;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// One completed span, in nanoseconds relative to the profiler's origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    pub name: String,
    /// Per-thread lane (Chrome trace `tid`), assigned in first-use order.
    pub lane: u32,
    /// Nesting depth at which the span ran (0 = top level on its thread).
    pub depth: u32,
    pub start_ns: u64,
    pub dur_ns: u64,
    /// Duration minus the summed durations of directly nested child spans.
    pub self_ns: u64,
}

/// Aggregated wall-clock statistics for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    pub name: String,
    pub count: u64,
    pub total_ns: u64,
    pub self_ns: u64,
    pub max_ns: u64,
}

#[derive(Debug)]
struct Profiler {
    origin: Instant,
    epoch: u64,
    records: Vec<SpanRecord>,
    next_lane: u32,
}

/// Fast-path gate: is a profiler currently installed?
static INSTALLED: AtomicBool = AtomicBool::new(false);
/// Distinguishes successive profiler installations so that thread-local
/// span stacks from an earlier session are discarded, not misattributed.
static EPOCH: AtomicU64 = AtomicU64::new(0);

fn profiler_slot() -> &'static Mutex<Option<Profiler>> {
    static SLOT: OnceLock<Mutex<Option<Profiler>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

fn lock_profiler() -> MutexGuard<'static, Option<Profiler>> {
    profiler_slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Install a fresh process-wide profiler. Any records buffered by a
/// previous profiler are discarded.
pub fn install() {
    let epoch = EPOCH.fetch_add(1, Ordering::Relaxed) + 1;
    *lock_profiler() = Some(Profiler {
        origin: Instant::now(),
        epoch,
        records: Vec::new(),
        next_lane: 0,
    });
    INSTALLED.store(true, Ordering::Relaxed);
}

/// Remove the profiler, discarding buffered records.
pub fn uninstall() {
    INSTALLED.store(false, Ordering::Relaxed);
    *lock_profiler() = None;
}

/// Is a profiler currently installed?
#[inline]
pub fn installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

struct Frame {
    name: String,
    start: Instant,
    /// Summed durations of directly nested (already closed) child spans.
    child_ns: u64,
}

struct ThreadState {
    /// The profiler epoch this state belongs to; a stale stack from a
    /// previous profiler session is cleared on first use.
    epoch: u64,
    lane: Option<u32>,
    stack: Vec<Frame>,
}

thread_local! {
    static THREAD: RefCell<ThreadState> = const {
        RefCell::new(ThreadState {
            epoch: 0,
            lane: None,
            stack: Vec::new(),
        })
    };
}

/// RAII guard for a timed span; the span is recorded when it drops.
#[must_use = "the span is timed until this guard drops"]
pub struct SpanGuard {
    /// Epoch the span was opened under; 0 = inert (profiler off).
    epoch: u64,
}

/// Open a timed span. Returns an inert guard (no work on drop) when no
/// profiler is installed.
pub fn span(name: &str) -> SpanGuard {
    if !installed() {
        return SpanGuard { epoch: 0 };
    }
    let Some(p) = &*lock_profiler() else {
        return SpanGuard { epoch: 0 };
    };
    let epoch = p.epoch;
    drop_guard_setup(name, epoch);
    SpanGuard { epoch }
}

fn drop_guard_setup(name: &str, epoch: u64) {
    THREAD.with(|t| {
        let mut t = t.borrow_mut();
        if t.epoch != epoch {
            t.epoch = epoch;
            t.lane = None;
            t.stack.clear();
        }
        t.stack.push(Frame {
            name: name.to_string(),
            start: Instant::now(),
            child_ns: 0,
        });
    });
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.epoch == 0 {
            return;
        }
        let end = Instant::now();
        let finished = THREAD.with(|t| {
            let mut t = t.borrow_mut();
            if t.epoch != self.epoch {
                return None; // profiler was swapped mid-span
            }
            let frame = t.stack.pop()?;
            let dur_ns = end.duration_since(frame.start).as_nanos() as u64;
            if let Some(parent) = t.stack.last_mut() {
                parent.child_ns += dur_ns;
            }
            let depth = t.stack.len() as u32;
            Some((frame, dur_ns, depth, t.lane))
        });
        let Some((frame, dur_ns, depth, cached_lane)) = finished else {
            return;
        };
        let mut slot = lock_profiler();
        let Some(p) = slot.as_mut() else { return };
        if p.epoch != self.epoch {
            return;
        }
        let lane = match cached_lane {
            Some(l) => l,
            None => {
                let l = p.next_lane;
                p.next_lane += 1;
                THREAD.with(|t| t.borrow_mut().lane = Some(l));
                l
            }
        };
        let start_ns = frame.start.saturating_duration_since(p.origin).as_nanos() as u64;
        p.records.push(SpanRecord {
            name: frame.name,
            lane,
            depth,
            start_ns,
            dur_ns,
            self_ns: dur_ns.saturating_sub(frame.child_ns),
        });
    }
}

/// Take every buffered record out of the installed profiler. Returns
/// `None` when no profiler is installed.
pub fn drain_records() -> Option<Vec<SpanRecord>> {
    lock_profiler()
        .as_mut()
        .map(|p| std::mem::take(&mut p.records))
}

/// Aggregate records into per-name statistics, ordered by descending self
/// time (ties broken by name, so equal inputs render identically).
pub fn aggregate(records: &[SpanRecord]) -> Vec<PhaseStat> {
    use std::collections::BTreeMap;
    let mut by_name: BTreeMap<&str, PhaseStat> = BTreeMap::new();
    for r in records {
        let stat = by_name.entry(&r.name).or_insert_with(|| PhaseStat {
            name: r.name.clone(),
            count: 0,
            total_ns: 0,
            self_ns: 0,
            max_ns: 0,
        });
        stat.count += 1;
        stat.total_ns += r.dur_ns;
        stat.self_ns += r.self_ns;
        stat.max_ns = stat.max_ns.max(r.dur_ns);
    }
    let mut out: Vec<PhaseStat> = by_name.into_values().collect();
    out.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.name.cmp(&b.name)));
    out
}

fn write_us(out: &mut String, ns: u64) {
    // Microseconds with nanosecond precision — Chrome's `ts`/`dur` unit.
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

/// Render records as Chrome Trace Event Format JSON (object form), with an
/// extra `phaseSummary` key that `chrome://tracing` and Perfetto ignore but
/// `cdn report` reads.
pub fn chrome_trace_json(records: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 96 + 256);
    out.push_str("{\"traceEvents\": [");
    for (i, r) in records.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("  {\"name\": ");
        escape_into(&mut out, &r.name);
        out.push_str(", \"cat\": \"cdn\", \"ph\": \"X\", \"pid\": 1, \"tid\": ");
        let _ = write!(out, "{}, \"ts\": ", r.lane);
        write_us(&mut out, r.start_ns);
        out.push_str(", \"dur\": ");
        write_us(&mut out, r.dur_ns);
        let _ = write!(out, ", \"args\": {{\"depth\": {}, \"self_us\": ", r.depth);
        write_us(&mut out, r.self_ns);
        out.push_str("}}");
    }
    if !records.is_empty() {
        out.push('\n');
    }
    out.push_str("],\n\"displayTimeUnit\": \"ms\",\n\"phaseSummary\": [");
    let stats = aggregate(records);
    for (i, s) in stats.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("  {\"name\": ");
        escape_into(&mut out, &s.name);
        let _ = write!(out, ", \"count\": {}, \"total_us\": ", s.count);
        write_us(&mut out, s.total_ns);
        out.push_str(", \"self_us\": ");
        write_us(&mut out, s.self_ns);
        out.push_str(", \"max_us\": ");
        write_us(&mut out, s.max_ns);
        out.push('}');
    }
    if !stats.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n}\n");
    out
}

/// Drain the installed profiler and render its records as Chrome trace
/// JSON. Returns `None` when no profiler is installed.
pub fn drain_chrome_trace() -> Option<String> {
    drain_records().map(|r| chrome_trace_json(&r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    // Profiler state is process-global; serialize the tests that touch it.
    fn with_profiler<R>(f: impl FnOnce() -> R) -> R {
        static GUARD: Mutex<()> = Mutex::new(());
        let _g = GUARD.lock().unwrap_or_else(PoisonError::into_inner);
        install();
        let r = f();
        uninstall();
        r
    }

    fn rec(name: &str, lane: u32, start_ns: u64, dur_ns: u64, self_ns: u64) -> SpanRecord {
        SpanRecord {
            name: name.to_string(),
            lane,
            depth: 0,
            start_ns,
            dur_ns,
            self_ns,
        }
    }

    #[test]
    fn disabled_span_is_inert() {
        // No install: the guard must do nothing, not panic, not record.
        uninstall();
        let g = span("ghost");
        drop(g);
        assert!(drain_records().is_none());
    }

    #[test]
    fn nesting_attributes_child_time_to_parent() {
        let records = with_profiler(|| {
            {
                let _outer = span("outer");
                {
                    let _inner = span("inner");
                    std::hint::black_box(());
                }
                {
                    let _inner = span("inner");
                    std::hint::black_box(());
                }
            }
            drain_records().unwrap()
        });
        assert_eq!(records.len(), 3);
        // Children close before the parent, so they appear first.
        let inner_total: u64 = records[..2].iter().map(|r| r.dur_ns).sum();
        let outer = &records[2];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.depth, 0);
        assert_eq!(records[0].depth, 1);
        // Self time is exactly duration minus directly-nested child time.
        assert_eq!(outer.self_ns, outer.dur_ns - inner_total);
        assert!(outer.dur_ns >= inner_total);
        // Children carry their full duration as self time (no grandchildren).
        for r in &records[..2] {
            assert_eq!(r.self_ns, r.dur_ns);
        }
    }

    #[test]
    fn zero_duration_spans_are_well_formed() {
        // A span that opens and closes immediately may legitimately round
        // to 0 ns; aggregation and rendering must stay consistent.
        let records = vec![rec("instant", 0, 5, 0, 0), rec("instant", 0, 9, 0, 0)];
        let stats = aggregate(&records);
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].count, 2);
        assert_eq!(stats[0].total_ns, 0);
        assert_eq!(stats[0].self_ns, 0);
        assert_eq!(stats[0].max_ns, 0);
        let doc = json::parse(&chrome_trace_json(&records)).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("dur").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn reentrant_names_aggregate_without_double_counting() {
        // "work" calls itself: the outer instance's self time excludes the
        // inner instance, so summed self time never exceeds wall time.
        let records = with_profiler(|| {
            {
                let _a = span("work");
                let _b = span("work");
                std::hint::black_box(());
            }
            drain_records().unwrap()
        });
        assert_eq!(records.len(), 2);
        let inner = &records[0];
        let outer = &records[1];
        assert_eq!(outer.self_ns, outer.dur_ns - inner.dur_ns);
        let stats = aggregate(&records);
        assert_eq!(stats.len(), 1, "same name aggregates to one row");
        assert_eq!(stats[0].count, 2);
        assert_eq!(stats[0].self_ns, inner.self_ns + outer.self_ns);
        assert!(stats[0].self_ns <= outer.dur_ns);
        assert_eq!(stats[0].max_ns, outer.dur_ns.max(inner.dur_ns));
    }

    #[test]
    fn chrome_trace_escapes_span_names() {
        let awkward = "plan:\"greedy\"\\n\twith\u{1}ctrl";
        let records = vec![rec(awkward, 3, 1_500, 2_500, 2_500)];
        let text = chrome_trace_json(&records);
        let doc = json::parse(&text).expect("escaped output must parse");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events[0].get("name").unwrap().as_str(), Some(awkward));
        assert_eq!(events[0].get("tid").unwrap().as_u64(), Some(3));
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("X"));
        // ts/dur are microseconds with fractional nanosecond digits.
        assert_eq!(events[0].get("ts").unwrap().as_f64(), Some(1.5));
        assert_eq!(events[0].get("dur").unwrap().as_f64(), Some(2.5));
        let summary = doc.get("phaseSummary").unwrap().as_arr().unwrap();
        assert_eq!(summary[0].get("name").unwrap().as_str(), Some(awkward));
    }

    #[test]
    fn aggregate_orders_by_self_time_then_name() {
        let records = vec![
            rec("b.small", 0, 0, 10, 10),
            rec("a.small", 0, 20, 10, 10),
            rec("big", 0, 40, 500, 500),
        ];
        let stats = aggregate(&records);
        assert_eq!(stats[0].name, "big");
        // Equal self time: alphabetical, so output is deterministic.
        assert_eq!(stats[1].name, "a.small");
        assert_eq!(stats[2].name, "b.small");
    }

    #[test]
    fn empty_profile_renders_valid_json() {
        let doc = json::parse(&chrome_trace_json(&[])).expect("valid JSON");
        assert_eq!(doc.get("traceEvents").unwrap().as_arr().unwrap().len(), 0);
        assert_eq!(doc.get("phaseSummary").unwrap().as_arr().unwrap().len(), 0);
    }

    #[test]
    fn lanes_are_assigned_per_thread() {
        let records = with_profiler(|| {
            std::thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| {
                        let _g = span("worker");
                        std::hint::black_box(());
                    });
                }
            });
            {
                let _g = span("main");
                std::hint::black_box(());
            }
            drain_records().unwrap()
        });
        assert_eq!(records.len(), 3);
        let mut lanes: Vec<u32> = records.iter().map(|r| r.lane).collect();
        lanes.sort_unstable();
        lanes.dedup();
        assert_eq!(lanes.len(), 3, "each thread gets its own lane");
    }

    #[test]
    fn install_clears_stale_thread_state() {
        with_profiler(|| {
            let leaked = span("leaked");
            install(); // new epoch mid-span
            drop(leaked); // must not record into the new profiler
            {
                let _g = span("fresh");
                std::hint::black_box(());
            }
            let records = drain_records().unwrap();
            assert_eq!(records.len(), 1);
            assert_eq!(records[0].name, "fresh");
            assert_eq!(records[0].depth, 0, "stale frame must not nest it");
        });
    }
}
