//! Process-wide metrics registry: counters, gauges, histograms.
//!
//! Counters are add-only `AtomicU64`s — parallel increments commute, so
//! totals are exact for any thread schedule. Gauges hold an `f64` (bit-cast
//! into an `AtomicU64`) and must only be set from sequential code. Histogram
//! fills are atomic per-bin adds, also commutative.
//!
//! `Registry::reset` zeroes metrics **in place**: instrument handles
//! (`Arc<Counter>` etc.) cached by instrumentation sites stay wired to the
//! registry across resets, which the bench harness relies on when comparing
//! work counters between back-to-back runs.

use crate::json::escape_into;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Monotonic add-only counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Last-write-wins `f64` gauge. Set only from sequential code; an unset
/// gauge (NaN sentinel) is omitted from snapshots.
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Gauge {
    fn new() -> Self {
        Gauge(AtomicU64::new(f64::NAN.to_bits()))
    }

    /// Record a value. NaN is treated as "unset" and ignored.
    pub fn set(&self, v: f64) {
        if !v.is_nan() {
            self.0.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> Option<f64> {
        let v = f64::from_bits(self.0.load(Ordering::Relaxed));
        if v.is_nan() {
            None
        } else {
            Some(v)
        }
    }

    fn reset(&self) {
        self.0.store(f64::NAN.to_bits(), Ordering::Relaxed);
    }
}

/// Fixed-shape histogram with uniform bins and an overflow bucket.
///
/// The shape (bin width, bin count) is fixed at registration so that
/// parallel fills are plain commutative atomic adds.
#[derive(Debug)]
pub struct Histogram {
    bin_width: f64,
    bins: Vec<AtomicU64>,
    overflow: AtomicU64,
}

impl Histogram {
    fn new(bin_width: f64, n_bins: usize) -> Self {
        assert!(bin_width > 0.0, "histogram bin width must be positive");
        assert!(n_bins > 0, "histogram must have at least one bin");
        Histogram {
            bin_width,
            bins: (0..n_bins).map(|_| AtomicU64::new(0)).collect(),
            overflow: AtomicU64::new(0),
        }
    }

    pub fn record(&self, v: f64) {
        self.record_n(v, 1);
    }

    /// Record `n` samples of value `v` in one atomic add — the bulk path
    /// for folding a pre-binned histogram into the registry.
    pub fn record_n(&self, v: f64, n: u64) {
        let idx = (v / self.bin_width) as usize;
        match self.bins.get(idx) {
            Some(bin) => bin.fetch_add(n, Ordering::Relaxed),
            None => self.overflow.fetch_add(n, Ordering::Relaxed),
        };
    }

    pub fn count(&self) -> u64 {
        self.bins
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum::<u64>()
            + self.overflow.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        for b in &self.bins {
            b.store(0, Ordering::Relaxed);
        }
        self.overflow.store(0, Ordering::Relaxed);
    }

    fn render_into(&self, out: &mut String) {
        let counts: Vec<u64> = self
            .bins
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // Trim trailing empty bins to keep snapshots small; the shape is
        // recoverable from registration, and trimming is deterministic.
        let last = counts.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
        let _ = write!(out, "{{\"bin_width\": {}, \"counts\": [", self.bin_width);
        for (i, c) in counts[..last].iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{c}");
        }
        let _ = write!(
            out,
            "], \"overflow\": {}, \"count\": {}}}",
            self.overflow.load(Ordering::Relaxed),
            self.count()
        );
    }
}

type Shelf<T> = Mutex<BTreeMap<String, Arc<T>>>;

fn lock<T>(shelf: &Shelf<T>) -> MutexGuard<'_, BTreeMap<String, Arc<T>>> {
    shelf.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The metrics registry. Usually accessed through `telemetry::registry()`.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Shelf<Counter>,
    gauges: Shelf<Gauge>,
    histograms: Shelf<Histogram>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or register the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        lock(&self.counters)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or register the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        lock(&self.gauges)
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Gauge::new()))
            .clone()
    }

    /// Get or register a histogram. The shape is fixed by the first
    /// registration; later callers receive the existing instrument.
    pub fn histogram(&self, name: &str, bin_width: f64, n_bins: usize) -> Arc<Histogram> {
        lock(&self.histograms)
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new(bin_width, n_bins)))
            .clone()
    }

    /// Zero every instrument in place (handles stay valid).
    pub fn reset(&self) {
        for c in lock(&self.counters).values() {
            c.reset();
        }
        for g in lock(&self.gauges).values() {
            g.reset();
        }
        for h in lock(&self.histograms).values() {
            h.reset();
        }
    }

    /// Sorted `(name, value)` pairs for every registered counter.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        lock(&self.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Deterministic pretty-printed JSON snapshot of the whole registry.
    ///
    /// Keys are BTreeMap-ordered, floats use shortest-round-trip
    /// formatting, and nothing time- or thread-derived is included, so two
    /// runs doing the same work produce byte-identical snapshots.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"counters\": {");
        {
            let counters = lock(&self.counters);
            for (i, (name, c)) in counters.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                out.push_str("    ");
                escape_into(&mut out, name);
                let _ = write!(out, ": {}", c.get());
            }
            if !counters.is_empty() {
                out.push_str("\n  ");
            }
        }
        out.push_str("},\n  \"gauges\": {");
        {
            let gauges = lock(&self.gauges);
            let set: Vec<(&String, f64)> = gauges
                .iter()
                .filter_map(|(k, g)| g.get().map(|v| (k, v)))
                .collect();
            for (i, (name, v)) in set.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                out.push_str("    ");
                escape_into(&mut out, name);
                let _ = write!(out, ": {v}");
            }
            if !set.is_empty() {
                out.push_str("\n  ");
            }
        }
        out.push_str("},\n  \"histograms\": {");
        {
            let histograms = lock(&self.histograms);
            for (i, (name, h)) in histograms.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                out.push_str("    ");
                escape_into(&mut out, name);
                out.push_str(": ");
                h.render_into(&mut out);
            }
            if !histograms.is_empty() {
                out.push_str("\n  ");
            }
        }
        out.push_str("}\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn counter_is_shared_by_name() {
        let reg = Registry::new();
        reg.counter("a").add(2);
        reg.counter("a").add(3);
        assert_eq!(reg.counter("a").get(), 5);
        assert_eq!(reg.counter_values(), vec![("a".to_string(), 5)]);
    }

    #[test]
    fn gauge_unset_until_first_set_and_ignores_nan() {
        let reg = Registry::new();
        let g = reg.gauge("g");
        assert_eq!(g.get(), None);
        g.set(f64::NAN);
        assert_eq!(g.get(), None);
        g.set(1.5);
        assert_eq!(g.get(), Some(1.5));
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let reg = Registry::new();
        let h = reg.histogram("h", 10.0, 3);
        h.record(0.0);
        h.record(9.9);
        h.record(15.0);
        h.record(500.0); // overflow
        assert_eq!(h.count(), 4);
        let snap = reg.snapshot_json();
        let doc = json::parse(&snap).expect("snapshot parses");
        let hist = doc.get("histograms").unwrap().get("h").unwrap();
        assert_eq!(hist.get("overflow").unwrap().as_u64(), Some(1));
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(4));
    }

    #[test]
    fn snapshot_is_sorted_and_parseable() {
        let reg = Registry::new();
        reg.counter("z.last").add(1);
        reg.counter("a.first").add(2);
        reg.gauge("mid").set(0.5);
        let snap = reg.snapshot_json();
        assert!(snap.find("a.first").unwrap() < snap.find("z.last").unwrap());
        let doc = json::parse(&snap).expect("snapshot parses");
        assert_eq!(
            doc.get("counters")
                .unwrap()
                .get("a.first")
                .unwrap()
                .as_u64(),
            Some(2)
        );
        assert_eq!(
            doc.get("gauges").unwrap().get("mid").unwrap().as_f64(),
            Some(0.5)
        );
    }

    #[test]
    fn reset_zeroes_everything_in_place() {
        let reg = Registry::new();
        let c = reg.counter("c");
        let g = reg.gauge("g");
        let h = reg.histogram("h", 1.0, 2);
        c.add(4);
        g.set(2.0);
        h.record(0.5);
        reg.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), None);
        assert_eq!(h.count(), 0);
    }
}
