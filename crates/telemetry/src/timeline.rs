//! Windowed (virtual-time) telemetry primitives.
//!
//! This module supplies the building blocks for deterministic time-series
//! metrics: a [`WindowGrid`] that buckets arbitrary per-window state by
//! virtual-time window id, and a [`QuantileSketch`] — a bounded-relative-
//! error streaming quantile sketch with a *deterministic* bucket layout.
//!
//! ## Determinism contract (extends the crate-level contract)
//!
//! * Window ids are pure functions of virtual time (`tick / width`), never
//!   of wall-clock time or scheduling.
//! * The sketch maps values to buckets with **pure bit manipulation** on
//!   the IEEE-754 representation — no `ln`/`log2`/`powf`, whose libm
//!   implementations are not guaranteed to round identically across
//!   platforms. Two sketches fed the same multiset of values are equal as
//!   data structures, and merging is integer addition, so sketch state is
//!   identical at any thread count, shard count, or platform.
//!
//! ## Sketch bucket layout
//!
//! Buckets are log-linear base-2: each power-of-two octave is split into
//! `2^SUBBUCKET_BITS = 128` equal-width linear sub-buckets. For a normal
//! positive `f64`, the bucket index is simply the top bits of its IEEE-754
//! representation (`to_bits() >> 45`): the exponent selects the octave and
//! the leading 7 mantissa bits select the sub-bucket. Bucket bounds are
//! exact dyadic floats recovered by the inverse shift, and the reported
//! estimate is the bucket midpoint, giving a guaranteed relative error of
//! at most `2^-8 = 1/256` ([`RELATIVE_ERROR`]). Zero, negative, and
//! subnormal values collapse into a dedicated zero bucket (estimate 0.0).

use std::collections::BTreeMap;

use crate::json::Json;

/// Number of leading mantissa bits used for linear sub-buckets per octave.
const SUBBUCKET_BITS: u32 = 7;
/// Right-shift turning an IEEE-754 bit pattern into a bucket index.
const INDEX_SHIFT: u32 = 52 - SUBBUCKET_BITS;

/// Guaranteed worst-case relative error of [`QuantileSketch::percentile`]:
/// the bucket midpoint is within `value / 256` of every value in the bucket.
pub const RELATIVE_ERROR: f64 = 1.0 / 256.0;

/// Streaming quantile sketch with deterministic log-linear base-2 buckets.
///
/// Records are `O(1)`, merges are integer additions over sparse buckets,
/// and quantile estimates carry a guaranteed relative error bound of
/// [`RELATIVE_ERROR`]. See the module docs for the bucket layout.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    /// Sparse bucket counts keyed by index; ascending key order is
    /// ascending value order because positive IEEE-754 bit patterns are
    /// monotone in the represented value.
    buckets: BTreeMap<i64, u64>,
    /// Count of values below [`f64::MIN_POSITIVE`] (zero/negative/subnormal).
    zero_count: u64,
    /// Total number of recorded values.
    count: u64,
    /// Exact maximum (`f64::max` folds are order-insensitive).
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self {
            buckets: BTreeMap::new(),
            zero_count: 0,
            count: 0,
            max: f64::NEG_INFINITY,
        }
    }
}

impl QuantileSketch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a normal positive value, `None` for the zero bucket.
    #[inline]
    fn index_of(v: f64) -> Option<i64> {
        debug_assert!(v.is_finite(), "sketch values must be finite, got {v}");
        if v < f64::MIN_POSITIVE {
            None
        } else {
            Some((v.to_bits() >> INDEX_SHIFT) as i64)
        }
    }

    /// Midpoint of bucket `index` — an exact dyadic float, so formatting it
    /// is platform-independent.
    #[inline]
    fn estimate_of(index: i64) -> f64 {
        let lo = f64::from_bits((index as u64) << INDEX_SHIFT);
        let hi = f64::from_bits(((index + 1) as u64) << INDEX_SHIFT);
        (lo + hi) / 2.0
    }

    /// Record one value.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        if v > self.max {
            self.max = v;
        }
        match Self::index_of(v) {
            None => self.zero_count += 1,
            Some(i) => *self.buckets.entry(i).or_insert(0) += 1,
        }
    }

    /// Merge another sketch into this one (pure integer addition).
    pub fn merge(&mut self, other: &Self) {
        self.count += other.count;
        self.zero_count += other.zero_count;
        if other.max > self.max {
            self.max = other.max;
        }
        for (i, n) in &other.buckets {
            *self.buckets.entry(*i).or_insert(0) += n;
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact maximum recorded value, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`) with relative error at
    /// most [`RELATIVE_ERROR`]. Uses the same upper-edge rank convention as
    /// `LatencyHistogram::percentile`: rank `ceil(q·n)` clamped to `[1, n]`.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank <= self.zero_count {
            return Some(0.0);
        }
        let mut seen = self.zero_count;
        for (i, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(Self::estimate_of(*i));
            }
        }
        // Unreachable when counts are consistent; fall back to the max.
        Some(self.max)
    }
}

/// Per-window state bucketed by virtual-time window id.
///
/// The grid is sparse and append-only: window ids must be presented in
/// non-decreasing order (virtual time only moves forward within a stream),
/// and empty windows occupy no space. Merging grids from different streams
/// is the caller's job — fold them in a fixed global order so any
/// order-sensitive state inside `T` stays deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowGrid<T> {
    width: u64,
    windows: Vec<(u64, T)>,
}

impl<T: Default> WindowGrid<T> {
    /// Create a grid with the given window width (> 0) in virtual ticks.
    pub fn new(width: u64) -> Self {
        assert!(width > 0, "window width must be positive");
        Self {
            width,
            windows: Vec::new(),
        }
    }

    pub fn width(&self) -> u64 {
        self.width
    }

    /// Window id containing virtual tick `tick`.
    #[inline]
    pub fn window_of(&self, tick: u64) -> u64 {
        tick / self.width
    }

    /// Mutable access to window `window`, appending a fresh `T::default()`
    /// if it is not the current last window. Panics if `window` is older
    /// than the last one — virtual time never rewinds.
    pub fn slot(&mut self, window: u64) -> &mut T {
        match self.windows.last() {
            Some((id, _)) if *id == window => {}
            Some((id, _)) => {
                assert!(*id < window, "window ids must be non-decreasing");
                self.windows.push((window, T::default()));
            }
            None => self.windows.push((window, T::default())),
        }
        &mut self.windows.last_mut().expect("just ensured").1
    }

    /// The most recent window, if any.
    pub fn last_mut(&mut self) -> Option<&mut (u64, T)> {
        self.windows.last_mut()
    }

    pub fn last_id(&self) -> Option<u64> {
        self.windows.last().map(|(id, _)| *id)
    }

    pub fn windows(&self) -> &[(u64, T)] {
        &self.windows
    }

    pub fn into_windows(self) -> Vec<(u64, T)> {
        self.windows
    }

    pub fn len(&self) -> usize {
        self.windows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }
}

/// Render a slice of values as a unicode sparkline (`▁▂▃▄▅▆▇█`).
///
/// Values are scaled against the slice maximum; non-finite or negative
/// values render as the lowest bar. Returns an empty string for an empty
/// slice.
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(0.0f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if v.is_nan() || v <= 0.0 || max <= 0.0 {
                BARS[0]
            } else {
                let level = ((v / max) * 7.0).round() as usize;
                BARS[level.min(7)]
            }
        })
        .collect()
}

/// Render a parsed metrics-registry snapshot
/// (`{"counters":…,"gauges":…,"histograms":…}`) as OpenMetrics text.
///
/// Metric names are sanitised to `[a-zA-Z0-9_:]` (dots become
/// underscores), counters gain the mandated `_total` suffix, and histogram
/// buckets are cumulative with `le` labels. Empty fixed bins are elided —
/// cumulative buckets stay correct at every emitted edge — and the
/// exposition ends with `# EOF` per the OpenMetrics spec.
pub fn render_openmetrics(snapshot: &Json) -> Result<String, String> {
    use std::fmt::Write as _;

    fn sanitize(name: &str) -> String {
        name.chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                    c
                } else {
                    '_'
                }
            })
            .collect()
    }

    let mut out = String::new();
    for (kind, section) in [("counter", "counters"), ("gauge", "gauges")] {
        let Some(map) = snapshot.get(section).and_then(Json::as_obj) else {
            continue;
        };
        for (name, value) in map {
            let v = value
                .as_f64()
                .ok_or_else(|| format!("{section}.{name}: expected a number"))?;
            let metric = sanitize(name);
            let _ = writeln!(out, "# TYPE {metric} {kind}");
            if kind == "counter" {
                let _ = writeln!(out, "{metric}_total {v}");
            } else {
                let _ = writeln!(out, "{metric} {v}");
            }
        }
    }
    if let Some(map) = snapshot.get("histograms").and_then(Json::as_obj) {
        for (name, h) in map {
            let metric = sanitize(name);
            let bin_width = h
                .get("bin_width")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("histograms.{name}: missing bin_width"))?;
            let counts = h
                .get("counts")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("histograms.{name}: missing counts"))?;
            let overflow = h.get("overflow").and_then(Json::as_u64).unwrap_or(0);
            let total = h
                .get("count")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("histograms.{name}: missing count"))?;
            let _ = writeln!(out, "# TYPE {metric} histogram");
            let mut cumulative = 0u64;
            for (i, c) in counts.iter().enumerate() {
                let n = c
                    .as_u64()
                    .ok_or_else(|| format!("histograms.{name}: non-integer bin"))?;
                if n == 0 {
                    continue;
                }
                cumulative += n;
                let le = bin_width * (i as f64 + 1.0);
                let _ = writeln!(out, "{metric}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(
                out,
                "{metric}_bucket{{le=\"+Inf\"}} {}",
                cumulative + overflow
            );
            let _ = writeln!(out, "{metric}_count {total}");
        }
    }
    out.push_str("# EOF\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random stream (splitmix64) — no `rand` dep.
    struct Mix(u64);
    impl Mix {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
        fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn exact_percentile(sorted: &[f64], q: f64) -> f64 {
        let n = sorted.len() as u64;
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        sorted[(rank - 1) as usize]
    }

    #[test]
    fn sketch_respects_relative_error_bound() {
        let mut rng = Mix(7);
        let mut sketch = QuantileSketch::new();
        let mut values = Vec::new();
        for _ in 0..5000 {
            // Latency-shaped values spanning several octaves: 0.1..~2000 ms.
            let v = 0.1 + rng.next_f64() * rng.next_f64() * 2000.0;
            sketch.record(v);
            values.push(v);
        }
        values.sort_by(f64::total_cmp);
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let exact = exact_percentile(&values, q);
            let est = sketch.percentile(q).unwrap();
            assert!(
                (est - exact).abs() <= exact * RELATIVE_ERROR,
                "q={q}: estimate {est} vs exact {exact}"
            );
        }
        assert_eq!(sketch.max(), Some(*values.last().unwrap()));
    }

    #[test]
    fn sketch_handles_zero_and_negative_values() {
        let mut s = QuantileSketch::new();
        for v in [0.0, -1.0, 0.0, 5.0] {
            s.record(v);
        }
        assert_eq!(s.percentile(0.5), Some(0.0));
        assert_eq!(
            s.percentile(1.0),
            Some(QuantileSketch::estimate_of(
                QuantileSketch::index_of(5.0).unwrap()
            ))
        );
        assert_eq!(s.max(), Some(5.0));
    }

    #[test]
    fn sketch_merge_equals_sequential_feed() {
        let mut rng = Mix(11);
        let mut all = QuantileSketch::new();
        let mut parts = vec![QuantileSketch::new(); 4];
        for i in 0..400 {
            let v = rng.next_f64() * 300.0;
            all.record(v);
            parts[i % 4].record(v);
        }
        // Merge in two different orders; both must equal the sequential feed.
        let mut fwd = QuantileSketch::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = QuantileSketch::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, all);
        assert_eq!(rev, all);
    }

    #[test]
    fn sketch_empty_has_no_percentiles() {
        let s = QuantileSketch::new();
        assert_eq!(s.percentile(0.5), None);
        assert_eq!(s.max(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn grid_slots_are_sparse_and_ordered() {
        let mut g: WindowGrid<u64> = WindowGrid::new(10);
        assert_eq!(g.window_of(0), 0);
        assert_eq!(g.window_of(19), 1);
        *g.slot(0) += 1;
        *g.slot(0) += 1;
        *g.slot(3) += 5;
        assert_eq!(g.windows(), &[(0, 2), (3, 5)]);
        assert_eq!(g.last_id(), Some(3));
        assert_eq!(g.len(), 2);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn grid_rejects_rewinding_windows() {
        let mut g: WindowGrid<u64> = WindowGrid::new(10);
        g.slot(5);
        g.slot(4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn grid_rejects_zero_width() {
        let _ = WindowGrid::<u64>::new(0);
    }

    #[test]
    fn sparkline_scales_to_max() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
        assert_eq!(sparkline(&[1.0, 4.0, 8.0]), "▂▅█");
    }

    #[test]
    fn openmetrics_renders_snapshot() {
        let doc = crate::json::parse(
            r#"{"counters":{"sim.requests":42},
                "gauges":{"pool.size":3},
                "histograms":{"sim.latency_ms":
                  {"bin_width":1.0,"counts":[0,2,0,3],"overflow":1,"count":6}}}"#,
        )
        .unwrap();
        let out = render_openmetrics(&doc).unwrap();
        assert!(out.contains("# TYPE sim_requests counter"));
        assert!(out.contains("sim_requests_total 42"));
        assert!(out.contains("pool_size 3"));
        assert!(out.contains("sim_latency_ms_bucket{le=\"2\"} 2"));
        assert!(out.contains("sim_latency_ms_bucket{le=\"4\"} 5"));
        assert!(out.contains("sim_latency_ms_bucket{le=\"+Inf\"} 6"));
        assert!(out.contains("sim_latency_ms_count 6"));
        assert!(out.ends_with("# EOF\n"));
    }
}
