//! Deterministic observability for the CDN reproduction.
//!
//! This crate is a lightweight, vendored-`tracing`-style layer with **zero
//! external dependencies**. It provides three pieces:
//!
//! * [`Trace`] — hierarchical spans plus structured events, rendered as a
//!   JSONL stream. Records carry *deterministic* sequence numbers and
//!   per-span record counters, never timestamps: the byte stream is a pure
//!   function of the work performed, so two runs with the same seed are
//!   byte-identical regardless of `RAYON_NUM_THREADS`.
//! * [`Registry`] — a process-wide metrics registry (counters, gauges,
//!   histograms). Counters are add-only atomics, so parallel updates are
//!   commutative and totals are thread-schedule independent. Gauges and
//!   histogram fills from *parallel* sections must either be commutative
//!   (atomic adds) or performed sequentially after a deterministic merge.
//! * [`json`] — a minimal JSON writer/parser used for metrics snapshots and
//!   the CI perf gate (no serde in the workspace).
//! * [`profile`] — the opt-in **wall-clock** counterpart: nested timed
//!   spans exported as Chrome Trace Event Format JSON. Deliberately
//!   non-deterministic, so its output lives strictly in its own file
//!   (`--profile-out`) and never in anything byte-diffed.
//! * [`timeline`] — virtual-time windowed telemetry primitives: a
//!   [`WindowGrid`] bucketing per-window state by virtual tick, a
//!   [`QuantileSketch`] with deterministic bit-manipulation bucket layout,
//!   and an OpenMetrics snapshot exporter.
//!
//! ## Determinism contract
//!
//! 1. Nothing in the trace stream or metrics snapshot derives from
//!    wall-clock time, thread ids, or pointer values. Wall-clock timings
//!    live in a separate, clearly-marked section of bench output
//!    (`BENCH_parallel.json` → `"wall_clock"`), never in byte-diffed files.
//! 2. Trace records are emitted either from sequential code, or gathered in
//!    detached [`TraceBuffer`]s inside parallel tasks and merged into the
//!    global trace in a **fixed order** (e.g. server index), so the final
//!    stream does not depend on task interleaving.
//! 3. Counter totals are sums of per-task contributions; addition is
//!    commutative, so totals are exact across thread counts — provided the
//!    *amount of work* is deterministic. Memoisation layers upstream use
//!    compute-once semantics for exactly this reason.
//!
//! Telemetry is disabled by default ([`enabled`] returns `false`) and all
//! instrumentation call sites are gated on it, so an uninstrumented run
//! pays one relaxed atomic load per site and nothing else.

mod event;
pub mod json;
pub mod profile;
mod registry;
pub mod timeline;
mod trace;

pub use event::Value;
pub use registry::{Counter, Gauge, Histogram, Registry};
pub use timeline::{QuantileSketch, WindowGrid, RELATIVE_ERROR};
pub use trace::{SpanId, Trace, TraceBuffer};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is telemetry collection enabled for this process?
///
/// All instrumentation sites check this first; when `false` they do no
/// other work (no allocation, no locking).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enable or disable telemetry collection.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

fn trace_slot() -> &'static Mutex<Option<Trace>> {
    static SLOT: OnceLock<Mutex<Option<Trace>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

fn lock_trace() -> MutexGuard<'static, Option<Trace>> {
    trace_slot().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Install a fresh process-wide trace sink and enable telemetry.
///
/// Any previously-buffered trace records are discarded.
pub fn install_trace() {
    set_enabled(true);
    *lock_trace() = Some(Trace::new());
}

/// Remove the process-wide trace sink, discarding buffered records.
pub fn uninstall_trace() {
    *lock_trace() = None;
}

/// Is a trace sink currently installed?
pub fn trace_installed() -> bool {
    lock_trace().is_some()
}

/// Run `f` against the installed trace, if any.
///
/// Callers in parallel sections must NOT use this directly (the emission
/// order would depend on scheduling); gather records in a [`TraceBuffer`]
/// and merge sequentially instead.
pub fn with_trace<R>(f: impl FnOnce(&mut Trace) -> R) -> Option<R> {
    lock_trace().as_mut().map(f)
}

/// Render the installed trace as JSONL and clear its records.
///
/// Returns `None` when no trace sink is installed.
pub fn drain_trace() -> Option<String> {
    lock_trace().as_mut().map(Trace::drain_jsonl)
}

/// The process-wide metrics registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// Zero every counter/gauge/histogram in the global registry.
///
/// Instrument handles (`Arc<Counter>` etc.) stay valid: values are reset in
/// place, never replaced, so cached handles keep pointing at live metrics.
pub fn reset_metrics() {
    registry().reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global-state tests share one process; serialize them.
    fn with_global<R>(f: impl FnOnce() -> R) -> R {
        static GUARD: Mutex<()> = Mutex::new(());
        let _g = GUARD.lock().unwrap_or_else(PoisonError::into_inner);
        uninstall_trace();
        reset_metrics();
        set_enabled(false);
        let r = f();
        uninstall_trace();
        reset_metrics();
        set_enabled(false);
        r
    }

    #[test]
    fn disabled_by_default_and_toggles() {
        with_global(|| {
            assert!(!enabled());
            set_enabled(true);
            assert!(enabled());
        });
    }

    #[test]
    fn install_drain_roundtrip() {
        with_global(|| {
            assert!(drain_trace().is_none());
            install_trace();
            assert!(trace_installed());
            with_trace(|t| {
                let s = t.enter("root");
                t.event("ping", vec![("n", Value::U64(1))]);
                t.exit(s);
            });
            let out = drain_trace().unwrap();
            assert!(out.contains("\"name\":\"root\""));
            assert!(out.contains("\"name\":\"ping\""));
            // drain clears
            assert_eq!(drain_trace().unwrap(), "");
        });
    }

    #[test]
    fn reset_keeps_handles_live() {
        with_global(|| {
            let c = registry().counter("t.reset_keeps_handles");
            c.add(7);
            reset_metrics();
            assert_eq!(c.get(), 0);
            c.add(3);
            assert_eq!(registry().counter("t.reset_keeps_handles").get(), 3);
        });
    }
}
