//! Virtual-time windowed timeline of a simulation run.
//!
//! The engine buckets its measured-request accounting by virtual-time
//! window (window id = `tick / width`, where `tick` is the request's
//! deterministic per-server stream index, warm-up included — the same key
//! the sampler uses). Every run-level counter in [`crate::SimReport`] has
//! a per-window twin here, updated on exactly the same code path, so the
//! windowed counters summed across all windows equal the run-level
//! counters *exactly* (property-tested in `tests/differential.rs`).
//!
//! Determinism follows the §9.1 contract: per-server window series are
//! accumulated inside the (embarrassingly parallel) per-server loops and
//! folded into the global timeline at the final merge in ascending server
//! order — integer counts and sketch buckets are order-insensitive, and
//! the one order-sensitive f64 fold (`latency_sum_ms`) happens in that
//! fixed global order, so timelines are byte-identical at any thread and
//! shard count.

use cdn_cache::Cache;
use cdn_telemetry::json::escape_into;
use cdn_telemetry::{QuantileSketch, WindowGrid};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// One virtual-time window's accounting. Per-server during simulation;
/// the global timeline holds per-window sums across servers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowStats {
    /// Measured requests in this window (failed ones included).
    pub requests: u64,
    pub local_requests: u64,
    pub cache_hits: u64,
    pub replica_hits: u64,
    /// Requests coalesced onto an in-flight fetch (delayed hits).
    pub delayed_hits: u64,
    pub origin_fetches: u64,
    pub peer_fetches: u64,
    pub failover_fetches: u64,
    pub failed_requests: u64,
    pub cost_hops: u64,
    pub total_bytes: u64,
    pub origin_bytes: u64,
    /// Latency sum over served (non-failed) requests — the only
    /// order-sensitive float here; folded per server in global order.
    pub latency_sum_ms: f64,
    /// Per-window latency quantiles with a guaranteed relative error of
    /// [`cdn_telemetry::RELATIVE_ERROR`].
    pub sketch: QuantileSketch,
    /// Cache occupancy snapshotted when the window closed.
    pub cache_used_bytes: u64,
    /// Evictions that happened during this window (close − open snapshot).
    pub evictions: u64,
    /// Hottest site of the window: `(site, requests)`, ties broken toward
    /// the lower site id — a total order, so the result is deterministic.
    pub top_site: Option<(u32, u64)>,
}

impl WindowStats {
    /// Served (non-failed) requests — the latency population.
    pub fn served(&self) -> u64 {
        self.requests - self.failed_requests
    }

    /// Mean latency over served requests (0 when none).
    pub fn mean_ms(&self) -> f64 {
        if self.served() == 0 {
            0.0
        } else {
            self.latency_sum_ms / self.served() as f64
        }
    }

    /// Sketch quantile, 0 when the window served nothing.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.sketch.percentile(q).unwrap_or(0.0)
    }

    /// Largest served latency, 0 when the window served nothing.
    pub fn max_ms(&self) -> f64 {
        self.sketch.max().unwrap_or(0.0)
    }

    /// Fold `other` into `self`. Integer adds plus one f64 add — call in a
    /// fixed order (ascending server id) to keep the float fold exact.
    pub fn merge(&mut self, other: &Self) {
        self.requests += other.requests;
        self.local_requests += other.local_requests;
        self.cache_hits += other.cache_hits;
        self.replica_hits += other.replica_hits;
        self.delayed_hits += other.delayed_hits;
        self.origin_fetches += other.origin_fetches;
        self.peer_fetches += other.peer_fetches;
        self.failover_fetches += other.failover_fetches;
        self.failed_requests += other.failed_requests;
        self.cost_hops += other.cost_hops;
        self.total_bytes += other.total_bytes;
        self.origin_bytes += other.origin_bytes;
        self.latency_sum_ms += other.latency_sum_ms;
        self.sketch.merge(&other.sketch);
        self.cache_used_bytes += other.cache_used_bytes;
        self.evictions += other.evictions;
        self.top_site = match (self.top_site, other.top_site) {
            (None, b) => b,
            (a, None) => a,
            (Some(a), Some(b)) => Some(if b.1 > a.1 || (b.1 == a.1 && b.0 < a.0) {
                b
            } else {
                a
            }),
        };
    }
}

/// One server's window series, sparse and ascending by window id.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServerTimeline {
    pub server: usize,
    pub windows: Vec<(u64, WindowStats)>,
}

/// The whole-run timeline: global per-window sums plus the per-server
/// series they were folded from.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// Window width in per-server stream ticks.
    pub width: u64,
    /// Global windows, ascending by id; each is the sum of every server's
    /// matching window (occupancy/eviction gauges sum across servers too).
    pub windows: Vec<(u64, WindowStats)>,
    /// Per-server series in ascending server order.
    pub per_server: Vec<ServerTimeline>,
}

impl Timeline {
    /// Fold per-server series (ascending server order — the caller's
    /// responsibility, upheld by the runner's shard-order merge) into the
    /// global timeline. The only order-sensitive operation is the
    /// `latency_sum_ms` f64 add inside [`WindowStats::merge`], performed
    /// here per window in that fixed server order.
    pub fn from_per_server(width: u64, per_server: Vec<ServerTimeline>) -> Self {
        let mut merged: BTreeMap<u64, WindowStats> = BTreeMap::new();
        for st in &per_server {
            for (id, w) in &st.windows {
                merged.entry(*id).or_default().merge(w);
            }
        }
        Self {
            width,
            windows: merged.into_iter().collect(),
            per_server,
        }
    }
}

/// The engine's per-server window accumulator. Owns the boundary logic:
/// [`Self::roll`] runs at the top of the request loop *before* the request
/// touches the cache, so the occupancy/eviction snapshots of a closing
/// window exclude the first request of the next one.
pub(crate) struct TimelineAcc {
    grid: WindowGrid<WindowStats>,
    /// Transient per-window site tallies; only their deterministic maximum
    /// survives into [`WindowStats::top_site`].
    site_counts: HashMap<u32, u64>,
    /// Cumulative cache evictions when the current window opened.
    evictions_at_open: u64,
}

impl TimelineAcc {
    pub(crate) fn new(width: u64) -> Self {
        Self {
            grid: WindowGrid::new(width),
            site_counts: HashMap::new(),
            evictions_at_open: 0,
        }
    }

    /// Ensure the window containing `tick` is open, closing the previous
    /// one against the current cache state. Call only for measured ticks,
    /// before the request is resolved.
    pub(crate) fn roll(&mut self, tick: u64, cache: &dyn Cache) {
        let window = self.grid.window_of(tick);
        if self.grid.last_id() == Some(window) {
            return;
        }
        self.close(cache);
        self.evictions_at_open = cache.stats().evictions;
        self.grid.slot(window);
    }

    fn close(&mut self, cache: &dyn Cache) {
        if let Some((_, w)) = self.grid.last_mut() {
            w.cache_used_bytes = cache.used_bytes();
            w.evictions = cache.stats().evictions - self.evictions_at_open;
            let mut top: Option<(u32, u64)> = None;
            for (&site, &n) in &self.site_counts {
                top = match top {
                    None => Some((site, n)),
                    Some(t) if n > t.1 || (n == t.1 && site < t.0) => Some((site, n)),
                    t => t,
                };
            }
            w.top_site = top;
            self.site_counts.clear();
        }
    }

    pub(crate) fn tally_site(&mut self, site: u32) {
        *self.site_counts.entry(site).or_insert(0) += 1;
    }

    /// The open window. Panics if [`Self::roll`] was never called — the
    /// engine rolls before recording by construction.
    pub(crate) fn current(&mut self) -> &mut WindowStats {
        &mut self.grid.last_mut().expect("roll() opens a window first").1
    }

    /// Close the trailing partial window and hand the series over.
    pub(crate) fn finish(mut self, server: usize, cache: &dyn Cache) -> ServerTimeline {
        self.close(cache);
        ServerTimeline {
            server,
            windows: self.grid.into_windows(),
        }
    }
}

fn push_u64_col(out: &mut String, name: &str, vals: impl Iterator<Item = u64>) {
    let _ = write!(out, "\"{name}\":[");
    for (i, v) in vals.enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

fn push_f64_col(out: &mut String, name: &str, vals: impl Iterator<Item = f64>) {
    let _ = write!(out, "\"{name}\":[");
    for (i, v) in vals.enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v:.3}");
    }
    out.push(']');
}

/// Columns shared by the global and per-server sections. `windows` must be
/// ascending by id.
fn push_counter_cols(out: &mut String, windows: &[(u64, WindowStats)]) {
    push_u64_col(out, "windows", windows.iter().map(|(id, _)| *id));
    out.push(',');
    for (name, get) in [
        (
            "requests",
            (|w: &WindowStats| w.requests) as fn(&WindowStats) -> u64,
        ),
        ("local_requests", |w| w.local_requests),
        ("cache_hits", |w| w.cache_hits),
        ("replica_hits", |w| w.replica_hits),
        ("delayed_hits", |w| w.delayed_hits),
        ("origin_fetches", |w| w.origin_fetches),
        ("peer_fetches", |w| w.peer_fetches),
        ("failover_fetches", |w| w.failover_fetches),
        ("failed_requests", |w| w.failed_requests),
        ("cost_hops", |w| w.cost_hops),
        ("total_bytes", |w| w.total_bytes),
        ("origin_bytes", |w| w.origin_bytes),
        ("cache_used_bytes", |w| w.cache_used_bytes),
        ("evictions", |w| w.evictions),
    ] {
        push_u64_col(out, name, windows.iter().map(|(_, w)| get(w)));
        out.push(',');
    }
    push_f64_col(out, "mean_ms", windows.iter().map(|(_, w)| w.mean_ms()));
    out.push(',');
    for (name, q) in [("p50_ms", 0.50), ("p90_ms", 0.90), ("p99_ms", 0.99)] {
        push_f64_col(out, name, windows.iter().map(|(_, w)| w.quantile_ms(q)));
        out.push(',');
    }
    push_f64_col(out, "max_ms", windows.iter().map(|(_, w)| w.max_ms()));
}

/// Columnar JSON export of one or more runs' timelines — the
/// `<bin>_timeline.json` artifact. Every value is deterministic: integers,
/// or fixed-precision formats of exactly reproducible floats.
pub fn render_timeline_json(runs: &[(String, Timeline)]) -> String {
    let mut out = String::from("{\n\"runs\": [");
    for (r, (run, tl)) in runs.iter().enumerate() {
        if r > 0 {
            out.push(',');
        }
        out.push_str("\n{\n\"run\": ");
        escape_into(&mut out, run);
        let _ = write!(out, ",\n\"window_width\": {},\n", tl.width);
        push_counter_cols(&mut out, &tl.windows);
        out.push_str(",\n");
        push_u64_col(
            &mut out,
            "top_site",
            // Every recorded window saw at least one request, so a top site
            // always exists; `top_site_requests == 0` marks the degenerate
            // case should one ever appear.
            tl.windows
                .iter()
                .map(|(_, w)| w.top_site.map(|(s, _)| s as u64).unwrap_or(0)),
        );
        out.push_str(",\n");
        push_u64_col(
            &mut out,
            "top_site_requests",
            tl.windows
                .iter()
                .map(|(_, w)| w.top_site.map(|(_, n)| n).unwrap_or(0)),
        );
        out.push_str(",\n\"servers\": [");
        for (i, st) in tl.per_server.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n{{\"server\":{},", st.server);
            push_counter_cols(&mut out, &st.windows);
            out.push('}');
        }
        out.push_str("\n]\n}");
    }
    out.push_str("\n]\n}\n");
    out
}

/// CSV twin of the global section of [`render_timeline_json`]: one row per
/// `(run, window)`.
pub fn render_timeline_csv(runs: &[(String, Timeline)]) -> String {
    let mut out = String::from(
        "run,window,requests,local_requests,cache_hits,replica_hits,delayed_hits,\
         origin_fetches,peer_fetches,failover_fetches,failed_requests,cost_hops,total_bytes,\
         origin_bytes,mean_ms,p50_ms,p90_ms,p99_ms,max_ms,cache_used_bytes,evictions,top_site,\
         top_site_requests\n",
    );
    for (run, tl) in runs {
        for (id, w) in &tl.windows {
            let (top_site, top_n) = match w.top_site {
                Some((s, n)) => (s.to_string(), n),
                None => (String::new(), 0),
            };
            let _ = writeln!(
                out,
                "{run},{id},{},{},{},{},{},{},{},{},{},{},{},{},{:.3},{:.3},{:.3},{:.3},{:.3},{},{},{top_site},{top_n}",
                w.requests,
                w.local_requests,
                w.cache_hits,
                w.replica_hits,
                w.delayed_hits,
                w.origin_fetches,
                w.peer_fetches,
                w.failover_fetches,
                w.failed_requests,
                w.cost_hops,
                w.total_bytes,
                w.origin_bytes,
                w.mean_ms(),
                w.quantile_ms(0.50),
                w.quantile_ms(0.90),
                w.quantile_ms(0.99),
                w.max_ms(),
                w.cache_used_bytes,
                w.evictions,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(requests: u64, failed: u64, latency_each: f64) -> WindowStats {
        let mut w = WindowStats {
            requests,
            failed_requests: failed,
            ..Default::default()
        };
        for _ in 0..(requests - failed) {
            w.latency_sum_ms += latency_each;
            w.sketch.record(latency_each);
        }
        w
    }

    #[test]
    fn merge_sums_counters_and_picks_deterministic_top_site() {
        let mut a = window(10, 2, 20.0);
        a.top_site = Some((3, 7));
        a.cache_used_bytes = 100;
        a.evictions = 4;
        let mut b = window(5, 0, 40.0);
        b.top_site = Some((1, 7));
        b.cache_used_bytes = 50;
        b.evictions = 1;
        a.merge(&b);
        assert_eq!(a.requests, 15);
        assert_eq!(a.failed_requests, 2);
        assert_eq!(a.served(), 13);
        assert_eq!(a.cache_used_bytes, 150);
        assert_eq!(a.evictions, 5);
        // Equal counts: the lower site id wins, regardless of merge side.
        assert_eq!(a.top_site, Some((1, 7)));
        assert!((a.mean_ms() - (8.0 * 20.0 + 5.0 * 40.0) / 13.0).abs() < 1e-12);
    }

    #[test]
    fn from_per_server_folds_in_server_order() {
        let s0 = ServerTimeline {
            server: 0,
            windows: vec![(0, window(4, 0, 20.0)), (2, window(2, 0, 40.0))],
        };
        let s1 = ServerTimeline {
            server: 1,
            windows: vec![(1, window(3, 1, 60.0)), (2, window(1, 0, 80.0))],
        };
        let tl = Timeline::from_per_server(8, vec![s0, s1]);
        assert_eq!(tl.width, 8);
        let ids: Vec<u64> = tl.windows.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(tl.windows[2].1.requests, 3);
        assert_eq!(tl.per_server.len(), 2);
        // Window totals cover every per-server request exactly once.
        let global: u64 = tl.windows.iter().map(|(_, w)| w.requests).sum();
        let per: u64 = tl
            .per_server
            .iter()
            .flat_map(|s| s.windows.iter().map(|(_, w)| w.requests))
            .sum();
        assert_eq!(global, per);
    }

    #[test]
    fn json_export_parses_and_carries_columns() {
        let tl = Timeline::from_per_server(
            16,
            vec![ServerTimeline {
                server: 0,
                windows: vec![(0, window(4, 1, 20.0)), (3, window(2, 0, 40.0))],
            }],
        );
        let rendered = render_timeline_json(&[("hybrid".to_string(), tl)]);
        let doc = cdn_telemetry::json::parse(&rendered).expect("timeline JSON parses");
        let runs = doc.get("runs").unwrap().as_arr().unwrap();
        assert_eq!(runs.len(), 1);
        let run = &runs[0];
        assert_eq!(run.get("run").unwrap().as_str(), Some("hybrid"));
        assert_eq!(run.get("window_width").unwrap().as_u64(), Some(16));
        let windows = run.get("windows").unwrap().as_arr().unwrap();
        assert_eq!(windows.len(), 2);
        assert_eq!(run.get("requests").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(run.get("p99_ms").unwrap().as_arr().unwrap().len(), 2);
        let servers = run.get("servers").unwrap().as_arr().unwrap();
        assert_eq!(servers.len(), 1);
        assert_eq!(servers[0].get("server").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn csv_export_has_one_row_per_window() {
        let tl = Timeline::from_per_server(
            16,
            vec![ServerTimeline {
                server: 0,
                windows: vec![(0, window(4, 1, 20.0)), (3, window(2, 0, 40.0))],
            }],
        );
        let csv = render_timeline_csv(&[("r1:hybrid".to_string(), tl)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("run,window,requests"));
        assert!(lines[1].starts_with("r1:hybrid,0,4,"));
        assert!(lines[2].starts_with("r1:hybrid,3,2,"));
        // Fixed column count in every row.
        let cols = lines[0].split(',').count();
        assert!(lines.iter().all(|l| l.split(',').count() == cols));
    }
}
