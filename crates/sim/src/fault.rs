//! Deterministic fault injection: per-server crash/recovery windows and
//! origin outages, precomputed before the simulation loop so parallel runs
//! stay reproducible.
//!
//! Time is *virtual*: one tick per request in each server's stream. A
//! server with MTTF `f` and MTTR `r` alternates exponentially distributed
//! up-windows (mean `f` ticks) and down-windows (mean `r` ticks), giving a
//! long-run availability of `f / (f + r)`. Origin outages are a single
//! shared alternating process tuned to spend a target fraction of ticks
//! down. Every window is derived from [`FaultParams::seed`] via per-process
//! sub-seeds, so the schedule depends only on the parameters — never on
//! thread scheduling or wall-clock time.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fault-model parameters. All times are in ticks (requests into the
/// server's own stream).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultParams {
    /// Mean ticks between failures for each CDN server. `f64::INFINITY`
    /// (the default) disables server crashes.
    pub mttf: f64,
    /// Mean ticks to repair a crashed server.
    pub mttr: f64,
    /// Long-run fraction of ticks the primary (origin) sites are
    /// unreachable, in `[0, 1)`. 0 disables origin outages.
    pub origin_outage: f64,
    /// Latency penalty per dead holder skipped during failover, ms — the
    /// cost of a timed-out connection attempt before retrying the next
    /// copy.
    pub retry_penalty_ms: f64,
    /// Seed for the schedule; independent of the workload seed.
    pub seed: u64,
}

impl Default for FaultParams {
    fn default() -> Self {
        Self {
            mttf: f64::INFINITY,
            mttr: 500.0,
            origin_outage: 0.0,
            retry_penalty_ms: 200.0,
            seed: 0,
        }
    }
}

impl FaultParams {
    /// # Panics
    /// Panics on non-positive MTTF/MTTR, an outage fraction outside
    /// `[0, 1)`, or a negative/non-finite retry penalty.
    pub fn validate(&self) {
        assert!(self.mttf > 0.0, "MTTF must be positive");
        assert!(
            self.mttr > 0.0 && self.mttr.is_finite(),
            "MTTR must be positive and finite"
        );
        assert!(
            (0.0..1.0).contains(&self.origin_outage),
            "origin outage fraction must be in [0, 1)"
        );
        assert!(
            self.retry_penalty_ms >= 0.0 && self.retry_penalty_ms.is_finite(),
            "retry penalty must be non-negative"
        );
    }

    /// True when these parameters can never take anything down — the
    /// simulation must then be bit-identical to a run without fault
    /// injection at all.
    pub fn is_zero_fault(&self) -> bool {
        self.mttf.is_infinite() && self.origin_outage == 0.0
    }
}

/// Precomputed down-windows for every server plus the origins. Windows are
/// half-open `[start, end)` tick intervals, sorted and disjoint.
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    down: Vec<Vec<(u64, u64)>>,
    origin_down: Vec<(u64, u64)>,
}

/// Exponential draw with the given mean; returns infinity for an infinite
/// mean (the "never fails" case).
fn sample_exp(rng: &mut StdRng, mean: f64) -> f64 {
    if mean.is_infinite() {
        return f64::INFINITY;
    }
    let u: f64 = rng.gen();
    -mean * (1.0 - u).ln()
}

/// Alternating up/down renewal process truncated to `[0, horizon)`. Every
/// window is at least one tick long so a scheduled fault is never rounded
/// away.
fn alternating_windows(
    rng: &mut StdRng,
    mean_up: f64,
    mean_down: f64,
    horizon: u64,
) -> Vec<(u64, u64)> {
    let mut windows = Vec::new();
    let mut t = 0u64;
    loop {
        let up = sample_exp(rng, mean_up);
        if !up.is_finite() || up >= (horizon - t) as f64 {
            break;
        }
        t += (up.ceil() as u64).max(1);
        if t >= horizon {
            break;
        }
        let down = (sample_exp(rng, mean_down).ceil() as u64).max(1);
        let end = t.saturating_add(down).min(horizon);
        windows.push((t, end));
        t = end;
        if t >= horizon {
            break;
        }
    }
    windows
}

fn in_windows(windows: &[(u64, u64)], tick: u64) -> bool {
    let idx = windows.partition_point(|&(start, _)| start <= tick);
    idx > 0 && tick < windows[idx - 1].1
}

impl FaultSchedule {
    /// A schedule where nothing ever goes down.
    pub fn none(n_servers: usize) -> Self {
        Self {
            down: vec![Vec::new(); n_servers],
            origin_down: Vec::new(),
        }
    }

    /// Build a schedule from explicit down-windows — scripted outages for
    /// what-if runs and fine-grained tests. Windows must be half-open
    /// `[start, end)`, sorted, and disjoint.
    ///
    /// # Panics
    /// Panics on empty, unsorted, or overlapping windows.
    pub fn from_windows(down: Vec<Vec<(u64, u64)>>, origin_down: Vec<(u64, u64)>) -> Self {
        for windows in down.iter().chain(std::iter::once(&origin_down)) {
            for &(start, end) in windows {
                assert!(start < end, "empty down-window ({start}, {end})");
            }
            for w in windows.windows(2) {
                assert!(w[0].1 <= w[1].0, "windows unsorted or overlapping: {w:?}");
            }
        }
        Self { down, origin_down }
    }

    /// Generate the full schedule for `n_servers` streams of up to
    /// `horizon` ticks each.
    pub fn generate(params: &FaultParams, n_servers: usize, horizon: u64) -> Self {
        params.validate();
        let down = (0..n_servers)
            .map(|i| {
                // Per-server sub-seed: `seed_from_u64` runs SplitMix64, so
                // a simple odd-multiplier mix keeps streams independent.
                let sub = params
                    .seed
                    .wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let mut rng = StdRng::seed_from_u64(sub);
                alternating_windows(&mut rng, params.mttf, params.mttr, horizon)
            })
            .collect();
        let origin_down = if params.origin_outage > 0.0 {
            let mut rng = StdRng::seed_from_u64(params.seed.wrapping_add(0x0D1F_0A11_u64));
            // Pick the outage length scale from the repair time, then set
            // the up-time so the long-run down fraction matches.
            let mean_down = params.mttr;
            let mean_up = mean_down * (1.0 - params.origin_outage) / params.origin_outage;
            alternating_windows(&mut rng, mean_up, mean_down, horizon)
        } else {
            Vec::new()
        };
        Self { down, origin_down }
    }

    /// Is CDN server `server` down at `tick` (of its own stream)?
    #[inline]
    pub fn is_server_down(&self, server: usize, tick: u64) -> bool {
        in_windows(&self.down[server], tick)
    }

    /// Are the primary (origin) sites unreachable at `tick`?
    #[inline]
    pub fn is_origin_down(&self, tick: u64) -> bool {
        in_windows(&self.origin_down, tick)
    }

    /// Down-windows of CDN server `server`, as sorted half-open
    /// `[start, end)` tick intervals — the crash/recovery events the
    /// telemetry layer reports.
    pub fn server_windows(&self, server: usize) -> &[(u64, u64)] {
        &self.down[server]
    }

    /// Origin outage windows (same format as [`Self::server_windows`]).
    pub fn origin_windows(&self) -> &[(u64, u64)] {
        &self.origin_down
    }

    /// Number of servers this schedule covers.
    pub fn n_servers(&self) -> usize {
        self.down.len()
    }

    /// Ticks server `server` spends down within `[0, horizon)` — the
    /// schedule-side availability ground truth for tests and reports.
    pub fn down_ticks(&self, server: usize, horizon: u64) -> u64 {
        self.down[server]
            .iter()
            .map(|&(s, e)| e.min(horizon).saturating_sub(s.min(horizon)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn faulty() -> FaultParams {
        FaultParams {
            mttf: 400.0,
            mttr: 100.0,
            origin_outage: 0.2,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn zero_fault_params_generate_empty_schedule() {
        let s = FaultSchedule::generate(&FaultParams::default(), 4, 100_000);
        for i in 0..4 {
            assert_eq!(s.down_ticks(i, 100_000), 0);
            assert!(!s.is_server_down(i, 0));
        }
        assert!(!s.is_origin_down(12_345));
        assert!(FaultParams::default().is_zero_fault());
        assert!(!faulty().is_zero_fault());
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultSchedule::generate(&faulty(), 3, 50_000);
        let b = FaultSchedule::generate(&faulty(), 3, 50_000);
        for i in 0..3 {
            assert_eq!(a.down[i], b.down[i]);
        }
        assert_eq!(a.origin_down, b.origin_down);
        let c = FaultSchedule::generate(
            &FaultParams {
                seed: 8,
                ..faulty()
            },
            3,
            50_000,
        );
        assert_ne!(a.down, c.down, "seed must matter");
    }

    #[test]
    fn windows_sorted_disjoint_and_within_horizon() {
        let horizon = 80_000;
        let s = FaultSchedule::generate(&faulty(), 5, horizon);
        for windows in s.down.iter().chain(std::iter::once(&s.origin_down)) {
            for &(start, end) in windows {
                assert!(start < end, "empty window");
                assert!(end <= horizon, "window past horizon");
            }
            for w in windows.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlapping windows: {w:?}");
            }
        }
    }

    #[test]
    fn liveness_queries_match_windows() {
        let s = FaultSchedule::generate(&faulty(), 2, 10_000);
        let windows = &s.down[0];
        assert!(!windows.is_empty(), "expected at least one fault");
        let naive = |tick: u64| windows.iter().any(|&(a, b)| tick >= a && tick < b);
        for tick in 0..10_000 {
            assert_eq!(s.is_server_down(0, tick), naive(tick), "tick {tick}");
        }
        let &(start, end) = &windows[0];
        assert!(!s.is_server_down(0, start.saturating_sub(1)));
        assert!(s.is_server_down(0, start));
        assert!(s.is_server_down(0, end - 1));
        assert!(!s.is_server_down(0, end) || naive(end));
    }

    #[test]
    fn long_run_down_fraction_tracks_parameters() {
        let horizon = 2_000_000;
        let p = FaultParams {
            mttf: 900.0,
            mttr: 100.0,
            origin_outage: 0.15,
            seed: 21,
            ..Default::default()
        };
        let s = FaultSchedule::generate(&p, 8, horizon);
        // Expected server availability: mttf / (mttf + mttr) = 0.9. The
        // ceil-quantization biases down-windows slightly long, so allow a
        // loose band.
        for i in 0..8 {
            let frac = s.down_ticks(i, horizon) as f64 / horizon as f64;
            assert!((0.05..0.20).contains(&frac), "server {i}: {frac}");
        }
        let origin: u64 = s.origin_down.iter().map(|&(a, b)| b - a).sum();
        let frac = origin as f64 / horizon as f64;
        assert!((0.08..0.25).contains(&frac), "origin down fraction {frac}");
    }

    #[test]
    fn per_server_streams_are_independent() {
        let s = FaultSchedule::generate(&faulty(), 2, 50_000);
        assert_ne!(s.down[0], s.down[1]);
    }

    #[test]
    #[should_panic]
    fn invalid_outage_fraction_rejected() {
        FaultParams {
            origin_outage: 1.0,
            ..Default::default()
        }
        .validate();
    }
}
