//! Sharding of the per-server fan-out.
//!
//! At internet scale (thousands of servers, 10^8+ requests) the runner no
//! longer retains one full [`crate::engine::ServerReport`] per server —
//! two 4096-bin histograms each would pin ~130 MB at N = 2000. Instead the
//! fleet is split into contiguous *shards* of servers; each shard runs its
//! servers sequentially (in server order), folding everything associative
//! (integer bin counts, u64 counters, samples, trace lanes) into one
//! accumulator per shard and keeping only a small per-server
//! [`crate::runner::ServerStats`] for the order-sensitive float folds.
//!
//! Determinism contract:
//! * The shard count comes from [`crate::SimConfig::shards`] (defaulting to
//!   `min(n_servers, MAX_DEFAULT_SHARDS)`) — never from the thread count.
//! * Shards are contiguous, balanced server ranges, so concatenating shard
//!   outputs in shard order recovers exact global server order.
//! * All f64 folds (histogram sums, cause latency) happen per server in
//!   global server order at the final merge, reproducing the exact
//!   floating-point addition sequence of the unsharded runner. Results are
//!   therefore bit-identical at any thread count *and* any shard count.

/// Default upper bound on the shard count: enough slices to keep any
/// realistic thread pool busy with good balance, while keeping per-shard
/// accumulator memory (two histograms each) negligible.
pub const MAX_DEFAULT_SHARDS: usize = 64;

/// Split `n_servers` into contiguous, balanced shard ranges.
///
/// `requested = None` uses `min(n_servers, MAX_DEFAULT_SHARDS)`; an explicit
/// request is clamped to `[1, n_servers]`. Every shard is non-empty, sizes
/// differ by at most one, and concatenating the ranges yields `0..n_servers`.
pub fn shard_ranges(n_servers: usize, requested: Option<usize>) -> Vec<std::ops::Range<usize>> {
    if n_servers == 0 {
        return Vec::new();
    }
    let shards = requested
        .unwrap_or(MAX_DEFAULT_SHARDS)
        .clamp(1, n_servers)
        .min(n_servers);
    let base = n_servers / shards;
    let extra = n_servers % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        ranges.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n_servers);
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_partition(n: usize, requested: Option<usize>) {
        let ranges = shard_ranges(n, requested);
        // Non-empty, contiguous, covering 0..n exactly.
        let mut next = 0;
        for r in &ranges {
            assert_eq!(r.start, next, "gap before {r:?}");
            assert!(!r.is_empty(), "empty shard {r:?}");
            next = r.end;
        }
        assert_eq!(next, n);
        // Balanced: sizes differ by at most one.
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "unbalanced: {sizes:?}");
    }

    #[test]
    fn default_shard_count_caps_at_fleet_and_max() {
        assert_eq!(shard_ranges(3, None).len(), 3);
        assert_eq!(shard_ranges(64, None).len(), 64);
        assert_eq!(shard_ranges(2000, None).len(), MAX_DEFAULT_SHARDS);
        assert_partition(3, None);
        assert_partition(2000, None);
    }

    #[test]
    fn explicit_request_clamped() {
        assert_eq!(shard_ranges(5, Some(1)).len(), 1);
        assert_eq!(shard_ranges(5, Some(8)).len(), 5);
        assert_eq!(shard_ranges(100, Some(7)).len(), 7);
        assert_partition(5, Some(8));
        assert_partition(100, Some(7));
    }

    #[test]
    fn empty_fleet_has_no_shards() {
        assert!(shard_ranges(0, None).is_empty());
        assert!(shard_ranges(0, Some(4)).is_empty());
    }

    #[test]
    fn ranges_are_independent_of_request_only_in_count() {
        // Same n, different shard counts: each is still a partition.
        for k in 1..=10 {
            assert_partition(23, Some(k));
        }
    }
}
