//! Latency and cost accounting.

/// Histogram of response times with fixed-width bins plus an overflow bin.
/// The paper's CDF plots are exactly `cdf()` of this structure.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    bin_ms: f64,
    counts: Vec<u64>,
    overflow: u64,
    sum_ms: f64,
    n: u64,
    max_ms: f64,
}

impl LatencyHistogram {
    /// `bin_ms`-wide bins covering `[0, bin_ms * n_bins)`.
    ///
    /// # Panics
    /// Panics unless `bin_ms > 0` and `n_bins > 0`.
    pub fn new(bin_ms: f64, n_bins: usize) -> Self {
        assert!(bin_ms > 0.0 && bin_ms.is_finite(), "invalid bin width");
        assert!(n_bins > 0, "need at least one bin");
        Self {
            bin_ms,
            counts: vec![0; n_bins],
            overflow: 0,
            sum_ms: 0.0,
            n: 0,
            max_ms: 0.0,
        }
    }

    /// Default sizing for the paper's scale: 1 ms bins up to 4 s.
    pub fn default_paper() -> Self {
        Self::new(1.0, 4096)
    }

    /// Record one response time.
    pub fn record(&mut self, ms: f64) {
        debug_assert!(ms >= 0.0);
        let idx = (ms / self.bin_ms).floor() as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.sum_ms += ms;
        self.n += 1;
        if ms > self.max_ms {
            self.max_ms = ms;
        }
    }

    /// Merge another histogram (must have identical shape).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.bin_ms, other.bin_ms, "bin width mismatch");
        assert_eq!(self.counts.len(), other.counts.len(), "bin count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.sum_ms += other.sum_ms;
        self.n += other.n;
        self.max_ms = self.max_ms.max(other.max_ms);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean latency in ms (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum_ms / self.n as f64
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> f64 {
        self.max_ms
    }

    /// The q-quantile (`0 <= q <= 1`) via the histogram (upper bin edge).
    pub fn percentile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.n == 0 {
            return 0.0;
        }
        let target = (q * self.n as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return (i as f64 + 1.0) * self.bin_ms;
            }
        }
        self.max_ms
    }

    /// CDF points `(upper bin edge ms, cumulative fraction)` for every
    /// non-empty prefix bin — the series plotted in the paper's figures.
    pub fn cdf(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        if self.n == 0 {
            return out;
        }
        let mut acc = 0u64;
        let last_used = self.counts.iter().rposition(|&c| c > 0).unwrap_or(0);
        for (i, &c) in self.counts.iter().enumerate().take(last_used + 1) {
            acc += c;
            out.push(((i as f64 + 1.0) * self.bin_ms, acc as f64 / self.n as f64));
        }
        if self.overflow > 0 {
            out.push((self.max_ms, 1.0));
        }
        out
    }

    /// Fraction of samples at or below `ms`.
    pub fn fraction_at_or_below(&self, ms: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let idx = (ms / self.bin_ms).floor() as usize;
        let mut acc: u64 = self.counts.iter().take(idx + 1).sum();
        // Overflow samples lie somewhere in [bin range end, max]; they are
        // certainly at-or-below `ms` once `ms` reaches the recorded max.
        if idx >= self.counts.len() && ms >= self.max_ms {
            acc += self.overflow;
        }
        acc as f64 / self.n as f64
    }
}

/// Per-server digest within a [`SimReport`] — the operator's per-POP view.
#[derive(Debug, Clone, Copy)]
pub struct ServerSummary {
    pub server: usize,
    pub measured_requests: u64,
    pub mean_latency_ms: f64,
    pub local_ratio: f64,
    pub cache_hit_ratio: f64,
    pub origin_fetches: u64,
    /// Measured requests this server's clients lost to faults.
    pub failed_requests: u64,
    /// Fraction of measured requests that completed (1.0 when nothing was
    /// measured — an idle server is not an unavailable one).
    pub availability: f64,
}

/// Whole-system simulation result.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Response-time distribution over measured (post-warm-up) requests.
    pub histogram: LatencyHistogram,
    /// Mean response time over measured requests, ms.
    pub mean_latency_ms: f64,
    /// Average network cost (hops travelled beyond the first-hop server)
    /// per measured request — the paper's Figure 6 metric.
    pub mean_cost_hops: f64,
    /// All requests processed, including warm-up.
    pub total_requests: u64,
    /// Requests measured (post-warm-up).
    pub measured_requests: u64,
    /// Measured requests answered entirely at the first-hop server
    /// (replica or fresh cache hit).
    pub local_requests: u64,
    /// Measured cache hits (fresh; excludes refresh-on-expired hits).
    pub cache_hits: u64,
    /// Measured requests served by a site replica at the first hop.
    pub replica_hits: u64,
    /// Measured requests that had to travel to a primary (origin) site —
    /// the traffic a CDN exists to absorb.
    pub origin_fetches: u64,
    /// Measured requests served by another CDN server's replica.
    pub peer_fetches: u64,
    /// Measured remote fetches that skipped at least one dead holder before
    /// completing (disjoint from `origin_fetches`/`peer_fetches`), and the
    /// latency distribution of just those degraded requests.
    pub failover_fetches: u64,
    pub failover_histogram: LatencyHistogram,
    /// Measured requests with no live copy anywhere — dropped entirely.
    pub failed_requests: u64,
    /// Bytes of measured responses (total) and the share fetched from the
    /// origin sites.
    pub total_bytes: u64,
    pub origin_bytes: u64,
    /// Per-server digests, ordered by server id.
    pub per_server: Vec<ServerSummary>,
}

impl SimReport {
    /// Load imbalance across servers: max/mean of measured requests
    /// handled at the first hop. 1.0 = perfectly even.
    pub fn load_imbalance(&self) -> f64 {
        if self.per_server.is_empty() {
            return 1.0;
        }
        let max = self
            .per_server
            .iter()
            .map(|s| s.measured_requests)
            .max()
            .unwrap_or(0) as f64;
        let mean = self.measured_requests as f64 / self.per_server.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Fraction of measured requests answered locally.
    pub fn local_ratio(&self) -> f64 {
        if self.measured_requests == 0 {
            0.0
        } else {
            self.local_requests as f64 / self.measured_requests as f64
        }
    }

    /// Cache hit ratio over measured requests.
    pub fn cache_hit_ratio(&self) -> f64 {
        if self.measured_requests == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.measured_requests as f64
        }
    }

    /// Origin offload: the fraction of measured requests the CDN kept away
    /// from the primary sites.
    pub fn origin_offload(&self) -> f64 {
        if self.measured_requests == 0 {
            0.0
        } else {
            1.0 - self.origin_fetches as f64 / self.measured_requests as f64
        }
    }

    /// Byte-weighted origin offload: the fraction of response *bytes* the
    /// CDN kept off the origins (what egress billing sees).
    pub fn origin_offload_bytes(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            1.0 - self.origin_bytes as f64 / self.total_bytes as f64
        }
    }

    /// Fraction of measured requests that completed (were not dropped by
    /// faults). 1.0 for an empty run and for any fault-free run.
    pub fn availability(&self) -> f64 {
        if self.measured_requests == 0 {
            1.0
        } else {
            1.0 - self.failed_requests as f64 / self.measured_requests as f64
        }
    }

    /// Fraction of measured requests that completed only by failing over
    /// past at least one dead holder.
    pub fn failover_ratio(&self) -> f64 {
        if self.measured_requests == 0 {
            0.0
        } else {
            self.failover_fetches as f64 / self.measured_requests as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_mean() {
        let mut h = LatencyHistogram::new(1.0, 100);
        h.record(10.0);
        h.record(20.0);
        h.record(30.0);
        assert_eq!(h.count(), 3);
        assert!((h.mean() - 20.0).abs() < 1e-12);
        assert_eq!(h.max(), 30.0);
    }

    #[test]
    fn overflow_counted() {
        let mut h = LatencyHistogram::new(1.0, 10);
        h.record(5.0);
        h.record(500.0);
        assert_eq!(h.count(), 2);
        let cdf = h.cdf();
        assert_eq!(cdf.last().unwrap().1, 1.0);
        assert_eq!(cdf.last().unwrap().0, 500.0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut h = LatencyHistogram::new(2.0, 50);
        for v in [1.0, 3.0, 3.5, 7.0, 20.0, 20.0] {
            h.record(v);
        }
        let cdf = h.cdf();
        for w in cdf.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_bounds() {
        let mut h = LatencyHistogram::new(1.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        assert!((h.percentile(0.5) - 50.0).abs() <= 1.0);
        assert!((h.percentile(0.99) - 99.0).abs() <= 1.0);
        assert!(h.percentile(0.0) >= 1.0);
    }

    #[test]
    fn fraction_at_or_below_matches_cdf() {
        let mut h = LatencyHistogram::new(1.0, 100);
        h.record(10.0);
        h.record(20.0);
        assert!((h.fraction_at_or_below(10.0) - 0.5).abs() < 1e-12);
        assert!((h.fraction_at_or_below(9.0) - 0.0).abs() < 1e-12);
        assert!((h.fraction_at_or_below(25.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overflow_bin_accounting() {
        // 10 one-ms bins cover [0, 10); half the samples land past the end.
        let mut h = LatencyHistogram::new(1.0, 10);
        for v in [2.0, 4.0, 50.0, 500.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 500.0);
        // Below the bin range end, only binned samples count.
        assert!((h.fraction_at_or_below(9.0) - 0.5).abs() < 1e-12);
        // Between the range end and the max the overflow location is
        // unknown — the conservative answer still excludes it.
        assert!((h.fraction_at_or_below(100.0) - 0.5).abs() < 1e-12);
        // At or past the recorded max, every sample is accounted for.
        assert!((h.fraction_at_or_below(500.0) - 1.0).abs() < 1e-12);
        assert!((h.fraction_at_or_below(1e9) - 1.0).abs() < 1e-12);
        // The top quantile comes from the overflow's recorded max.
        assert_eq!(h.percentile(1.0), 500.0);
        assert!((h.mean() - (2.0 + 4.0 + 50.0 + 500.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_with_overflow_is_monotone_and_ends_at_one() {
        let mut h = LatencyHistogram::new(2.0, 8);
        for v in [1.0, 3.0, 5.0, 15.9, 40.0, 77.0] {
            h.record(v);
        }
        let cdf = h.cdf();
        for w in cdf.windows(2) {
            assert!(w[0].0 < w[1].0, "x must be strictly increasing: {cdf:?}");
            assert!(w[0].1 <= w[1].1, "y must be non-decreasing: {cdf:?}");
        }
        let &(last_x, last_y) = cdf.last().unwrap();
        assert_eq!(last_y, 1.0, "CDF must end at exactly 1.0");
        assert_eq!(last_x, 77.0, "final point sits at the recorded max");
        // The pre-overflow prefix accounts for the four binned samples.
        assert!(cdf
            .iter()
            .any(|&(x, y)| x == 16.0 && (y - 4.0 / 6.0).abs() < 1e-12));
    }

    #[test]
    fn zero_request_histogram_is_well_defined() {
        let h = LatencyHistogram::new(1.0, 16);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert!(h.cdf().is_empty());
        assert_eq!(h.percentile(0.0), 0.0);
        assert_eq!(h.percentile(0.5), 0.0);
        assert_eq!(h.percentile(1.0), 0.0);
        assert_eq!(h.fraction_at_or_below(0.0), 0.0);
        assert_eq!(h.fraction_at_or_below(1e6), 0.0);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = LatencyHistogram::new(1.0, 10);
        let mut b = LatencyHistogram::new(1.0, 10);
        a.record(1.0);
        b.record(2.0);
        b.record(100.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 100.0);
        assert!((a.mean() - (1.0 + 2.0 + 100.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn merge_shape_mismatch_panics() {
        let mut a = LatencyHistogram::new(1.0, 10);
        let b = LatencyHistogram::new(2.0, 10);
        a.merge(&b);
    }

    #[test]
    fn empty_report_ratios_are_zero() {
        let r = SimReport {
            histogram: LatencyHistogram::new(1.0, 1),
            mean_latency_ms: 0.0,
            mean_cost_hops: 0.0,
            total_requests: 0,
            measured_requests: 0,
            local_requests: 0,
            cache_hits: 0,
            replica_hits: 0,
            origin_fetches: 0,
            peer_fetches: 0,
            failover_fetches: 0,
            failover_histogram: LatencyHistogram::new(1.0, 1),
            failed_requests: 0,
            total_bytes: 0,
            origin_bytes: 0,
            per_server: Vec::new(),
        };
        assert_eq!(r.local_ratio(), 0.0);
        assert_eq!(r.cache_hit_ratio(), 0.0);
        assert_eq!(r.origin_offload(), 0.0);
        assert_eq!(r.load_imbalance(), 1.0);
        assert_eq!(r.availability(), 1.0);
        assert_eq!(r.failover_ratio(), 0.0);
    }
}
