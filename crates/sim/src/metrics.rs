//! Latency and cost accounting.

use crate::engine::Resolution;
use cdn_workload::Flavor;
use std::fmt::Write as _;

/// Histogram of response times with fixed-width bins plus an overflow bin.
/// The paper's CDF plots are exactly `cdf()` of this structure.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    bin_ms: f64,
    counts: Vec<u64>,
    overflow: u64,
    sum_ms: f64,
    n: u64,
    max_ms: f64,
}

impl LatencyHistogram {
    /// `bin_ms`-wide bins covering `[0, bin_ms * n_bins)`.
    ///
    /// # Panics
    /// Panics unless `bin_ms > 0` and `n_bins > 0`.
    pub fn new(bin_ms: f64, n_bins: usize) -> Self {
        assert!(bin_ms > 0.0 && bin_ms.is_finite(), "invalid bin width");
        assert!(n_bins > 0, "need at least one bin");
        Self {
            bin_ms,
            counts: vec![0; n_bins],
            overflow: 0,
            sum_ms: 0.0,
            n: 0,
            max_ms: 0.0,
        }
    }

    /// Default sizing for the paper's scale: 1 ms bins up to 4 s.
    pub fn default_paper() -> Self {
        Self::new(1.0, 4096)
    }

    /// Record one response time.
    pub fn record(&mut self, ms: f64) {
        debug_assert!(ms >= 0.0);
        let idx = (ms / self.bin_ms).floor() as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.sum_ms += ms;
        self.n += 1;
        if ms > self.max_ms {
            self.max_ms = ms;
        }
    }

    /// Merge another histogram (must have identical shape).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.bin_ms, other.bin_ms, "bin width mismatch");
        assert_eq!(self.counts.len(), other.counts.len(), "bin count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.sum_ms += other.sum_ms;
        self.n += other.n;
        self.max_ms = self.max_ms.max(other.max_ms);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean latency in ms (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum_ms / self.n as f64
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> f64 {
        self.max_ms
    }

    /// The q-quantile (`0 <= q <= 1`) via the histogram (upper bin edge).
    pub fn percentile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.n == 0 {
            return 0.0;
        }
        let target = (q * self.n as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return (i as f64 + 1.0) * self.bin_ms;
            }
        }
        self.max_ms
    }

    /// CDF points `(upper bin edge ms, cumulative fraction)` for every
    /// non-empty prefix bin — the series plotted in the paper's figures.
    pub fn cdf(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        if self.n == 0 {
            return out;
        }
        let mut acc = 0u64;
        let last_used = self.counts.iter().rposition(|&c| c > 0).unwrap_or(0);
        for (i, &c) in self.counts.iter().enumerate().take(last_used + 1) {
            acc += c;
            out.push(((i as f64 + 1.0) * self.bin_ms, acc as f64 / self.n as f64));
        }
        if self.overflow > 0 {
            out.push((self.max_ms, 1.0));
        }
        out
    }

    /// Bin width in ms.
    pub fn bin_ms(&self) -> f64 {
        self.bin_ms
    }

    /// Per-bin sample counts (bin `i` covers `[i*bin_ms, (i+1)*bin_ms)`).
    pub fn bin_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples past the last bin.
    pub fn overflow_count(&self) -> u64 {
        self.overflow
    }

    /// Exact running sum of every recorded value (ms). Exposed so the
    /// sharded runner can defer the order-sensitive float fold to the final
    /// per-server merge while folding the integer bins eagerly.
    pub(crate) fn sum_ms(&self) -> f64 {
        self.sum_ms
    }

    /// Reassemble a histogram from separately folded parts — the inverse of
    /// (`bin_counts`, `overflow_count`, `sum_ms`, `count`, `max`). The
    /// sharded runner folds `counts`/`overflow`/`n` eagerly (integer adds
    /// are associative) and `sum_ms` per server in server order, then
    /// rebuilds the system histogram here.
    pub(crate) fn from_parts(
        bin_ms: f64,
        counts: Vec<u64>,
        overflow: u64,
        sum_ms: f64,
        n: u64,
        max_ms: f64,
    ) -> Self {
        assert!(bin_ms > 0.0 && bin_ms.is_finite(), "invalid bin width");
        assert!(!counts.is_empty(), "need at least one bin");
        Self {
            bin_ms,
            counts,
            overflow,
            sum_ms,
            n,
            max_ms,
        }
    }

    /// Fraction of samples at or below `ms`.
    pub fn fraction_at_or_below(&self, ms: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let idx = (ms / self.bin_ms).floor() as usize;
        let mut acc: u64 = self.counts.iter().take(idx + 1).sum();
        // Overflow samples lie somewhere in [bin range end, max]; they are
        // certainly at-or-below `ms` once `ms` reaches the recorded max.
        if idx >= self.counts.len() && ms >= self.max_ms {
            acc += self.overflow;
        }
        acc as f64 / self.n as f64
    }
}

/// Why a measured request cost what it did. Exactly one cause per
/// request, mirroring the disjoint [`SimReport`] buckets: the per-cause
/// request counts always sum to `measured_requests`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cause {
    /// Served by a replica at the first-hop server (hop latency only).
    ReplicaHit,
    /// Served by the first-hop server's cache.
    CacheHit,
    /// Coalesced onto an in-flight fetch of the same object (the "delayed
    /// hit" of Atre et al.); pays the remaining fetch latency but adds no
    /// network traffic of its own. Only occurs with a positive
    /// [`crate::SimConfig::fetch_latency`].
    DelayedHit,
    /// Fetched from another CDN server's replica.
    RemoteReplica,
    /// Fetched from the primary (origin) site.
    OriginFetch,
    /// Completed only after skipping at least one dead holder; pays a
    /// retry surcharge per skip on top of hop latency.
    Failover,
    /// No live copy anywhere — dropped, delivering nothing.
    Failed,
}

impl Cause {
    /// Every cause, in reporting order.
    pub const ALL: [Cause; 7] = [
        Cause::ReplicaHit,
        Cause::CacheHit,
        Cause::DelayedHit,
        Cause::RemoteReplica,
        Cause::OriginFetch,
        Cause::Failover,
        Cause::Failed,
    ];

    /// Stable snake_case label used in metrics counters and sample JSONL.
    pub fn label(self) -> &'static str {
        match self {
            Cause::ReplicaHit => "replica_hit",
            Cause::CacheHit => "cache_hit",
            Cause::DelayedHit => "delayed_hit",
            Cause::RemoteReplica => "remote_replica",
            Cause::OriginFetch => "origin_fetch",
            Cause::Failover => "failover",
            Cause::Failed => "failed",
        }
    }
}

/// Requests attributed to one cause, with the total latency they paid.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CauseLatency {
    pub requests: u64,
    pub latency_ms: f64,
}

/// Per-cause latency attribution over every measured request — the
/// "where is latency paid" rollup the sampled traces drill into.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CauseBreakdown {
    pub replica_hit: CauseLatency,
    pub cache_hit: CauseLatency,
    pub delayed_hit: CauseLatency,
    pub remote_replica: CauseLatency,
    pub origin_fetch: CauseLatency,
    pub failover: CauseLatency,
    pub failed: CauseLatency,
    /// Retry-penalty ms paid by failover requests on top of hop latency
    /// (already included in `failover.latency_ms`).
    pub failover_surcharge_ms: f64,
}

impl CauseBreakdown {
    pub fn get(&self, cause: Cause) -> CauseLatency {
        match cause {
            Cause::ReplicaHit => self.replica_hit,
            Cause::CacheHit => self.cache_hit,
            Cause::DelayedHit => self.delayed_hit,
            Cause::RemoteReplica => self.remote_replica,
            Cause::OriginFetch => self.origin_fetch,
            Cause::Failover => self.failover,
            Cause::Failed => self.failed,
        }
    }

    fn slot(&mut self, cause: Cause) -> &mut CauseLatency {
        match cause {
            Cause::ReplicaHit => &mut self.replica_hit,
            Cause::CacheHit => &mut self.cache_hit,
            Cause::DelayedHit => &mut self.delayed_hit,
            Cause::RemoteReplica => &mut self.remote_replica,
            Cause::OriginFetch => &mut self.origin_fetch,
            Cause::Failover => &mut self.failover,
            Cause::Failed => &mut self.failed,
        }
    }

    /// Attribute one request's latency to `cause`.
    pub fn record(&mut self, cause: Cause, latency_ms: f64) {
        let slot = self.slot(cause);
        slot.requests += 1;
        slot.latency_ms += latency_ms;
    }

    /// Fold another breakdown in (field-wise sums; order-sensitive only in
    /// float rounding, so merge in a fixed order).
    pub fn merge(&mut self, other: &Self) {
        for cause in Cause::ALL {
            let o = other.get(cause);
            let slot = self.slot(cause);
            slot.requests += o.requests;
            slot.latency_ms += o.latency_ms;
        }
        self.failover_surcharge_ms += other.failover_surcharge_ms;
    }

    /// Requests across every cause — equals `measured_requests`.
    pub fn total_requests(&self) -> u64 {
        Cause::ALL.iter().map(|&c| self.get(c).requests).sum()
    }

    /// Latency across every cause — equals the histogram's sum.
    pub fn total_latency_ms(&self) -> f64 {
        Cause::ALL.iter().map(|&c| self.get(c).latency_ms).sum()
    }
}

/// Full path of one sampled request: what it asked for, how routing
/// resolved it, and what each leg of the resolution cost.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestSample {
    pub server: usize,
    /// Request index in the server's stream (warm-up included) — the
    /// sampler key, so samples are reproducible at any thread count.
    pub index: u64,
    pub site: u32,
    pub object: u32,
    pub flavor: Flavor,
    pub resolution: Resolution,
    pub cause: Cause,
    /// Hops beyond the first-hop server to whoever served the request.
    pub hops: u32,
    /// Dead holders skipped before completion (each one cost a retry).
    pub dead_skipped: u32,
    /// The serving holder was the primary (origin) site.
    pub from_origin: bool,
    /// Total latency paid (0 for failed requests — nothing delivered).
    pub latency_ms: f64,
    /// Retry-penalty share of `latency_ms`.
    pub penalty_ms: f64,
}

fn flavor_label(f: Flavor) -> &'static str {
    match f {
        Flavor::Normal => "normal",
        Flavor::Expired => "expired",
        Flavor::Uncacheable => "uncacheable",
    }
}

fn resolution_label(r: Resolution) -> &'static str {
    match r {
        Resolution::Replica => "replica",
        Resolution::CacheHit => "cache_hit",
        Resolution::CacheRefresh => "cache_refresh",
        Resolution::CacheMiss => "cache_miss",
        Resolution::Bypass => "bypass",
        Resolution::Failed => "failed",
    }
}

impl RequestSample {
    /// Append this sample as one JSONL line tagged with `run` (the figure
    /// panel / strategy that produced it). Every field is deterministic.
    pub fn render_jsonl_into(&self, out: &mut String, run: &str) {
        out.push_str("{\"run\":");
        cdn_telemetry::json::escape_into(out, run);
        let _ = write!(
            out,
            ",\"server\":{},\"index\":{},\"site\":{},\"object\":{},\"flavor\":\"{}\",\
             \"resolution\":\"{}\",\"cause\":\"{}\",\"hops\":{},\"dead_skipped\":{},\
             \"from_origin\":{},\"latency_ms\":{},\"penalty_ms\":{}}}",
            self.server,
            self.index,
            self.site,
            self.object,
            flavor_label(self.flavor),
            resolution_label(self.resolution),
            self.cause.label(),
            self.hops,
            self.dead_skipped,
            self.from_origin,
            self.latency_ms,
            self.penalty_ms,
        );
        out.push('\n');
    }
}

/// Render every sample in `report` as JSONL tagged with `run`.
pub fn render_samples_jsonl(run: &str, report: &SimReport, out: &mut String) {
    for s in &report.samples {
        s.render_jsonl_into(out, run);
    }
}

/// Per-server digest within a [`SimReport`] — the operator's per-POP view.
#[derive(Debug, Clone, Copy)]
pub struct ServerSummary {
    pub server: usize,
    pub measured_requests: u64,
    pub mean_latency_ms: f64,
    pub local_ratio: f64,
    pub cache_hit_ratio: f64,
    pub origin_fetches: u64,
    /// Measured requests this server's clients lost to faults.
    pub failed_requests: u64,
    /// Fraction of measured requests that completed (1.0 when nothing was
    /// measured — an idle server is not an unavailable one).
    pub availability: f64,
}

/// Whole-system simulation result.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Response-time distribution over measured (post-warm-up) requests.
    pub histogram: LatencyHistogram,
    /// Mean response time over measured requests, ms.
    pub mean_latency_ms: f64,
    /// Average network cost (hops travelled beyond the first-hop server)
    /// per measured request — the paper's Figure 6 metric.
    pub mean_cost_hops: f64,
    /// All requests processed, including warm-up.
    pub total_requests: u64,
    /// Requests measured (post-warm-up).
    pub measured_requests: u64,
    /// Measured requests answered entirely at the first-hop server
    /// (replica or fresh cache hit).
    pub local_requests: u64,
    /// Measured cache hits (fresh; excludes refresh-on-expired hits).
    pub cache_hits: u64,
    /// Measured requests served by a site replica at the first hop.
    pub replica_hits: u64,
    /// Measured requests coalesced onto an in-flight fetch of the same
    /// object (delayed hits). Disjoint from every other bucket: excluded
    /// from `local_requests`/`cache_hits`, and zero unless
    /// [`crate::SimConfig::fetch_latency`] is positive.
    pub delayed_hits: u64,
    /// Measured requests that had to travel to a primary (origin) site —
    /// the traffic a CDN exists to absorb.
    pub origin_fetches: u64,
    /// Measured requests served by another CDN server's replica.
    pub peer_fetches: u64,
    /// Measured remote fetches that skipped at least one dead holder before
    /// completing (disjoint from `origin_fetches`/`peer_fetches`), and the
    /// latency distribution of just those degraded requests.
    pub failover_fetches: u64,
    pub failover_histogram: LatencyHistogram,
    /// Measured requests with no live copy anywhere — dropped entirely.
    pub failed_requests: u64,
    /// Bytes of measured responses (total) and the share fetched from the
    /// origin sites.
    pub total_bytes: u64,
    pub origin_bytes: u64,
    /// Per-server digests, ordered by server id.
    pub per_server: Vec<ServerSummary>,
    /// Per-cause latency attribution over every measured request; the
    /// per-cause request counts sum to `measured_requests`.
    pub cause: CauseBreakdown,
    /// 1-in-N sampled request paths (empty unless
    /// [`crate::SimConfig::sample_every`] is set), in server order.
    pub samples: Vec<RequestSample>,
    /// Virtual-time windowed timeline (`None` unless
    /// [`crate::SimConfig::window`] is a positive width). Observational
    /// only — enabling it perturbs no other field.
    pub timeline: Option<crate::timeline::Timeline>,
}

impl SimReport {
    /// Load imbalance across servers: max/mean of measured requests
    /// handled at the first hop. 1.0 = perfectly even.
    pub fn load_imbalance(&self) -> f64 {
        if self.per_server.is_empty() {
            return 1.0;
        }
        let max = self
            .per_server
            .iter()
            .map(|s| s.measured_requests)
            .max()
            .unwrap_or(0) as f64;
        let mean = self.measured_requests as f64 / self.per_server.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Fraction of measured requests answered locally.
    pub fn local_ratio(&self) -> f64 {
        if self.measured_requests == 0 {
            0.0
        } else {
            self.local_requests as f64 / self.measured_requests as f64
        }
    }

    /// Cache hit ratio over measured requests.
    pub fn cache_hit_ratio(&self) -> f64 {
        if self.measured_requests == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.measured_requests as f64
        }
    }

    /// Origin offload: the fraction of measured requests the CDN kept away
    /// from the primary sites.
    pub fn origin_offload(&self) -> f64 {
        if self.measured_requests == 0 {
            0.0
        } else {
            1.0 - self.origin_fetches as f64 / self.measured_requests as f64
        }
    }

    /// Byte-weighted origin offload: the fraction of response *bytes* the
    /// CDN kept off the origins (what egress billing sees).
    pub fn origin_offload_bytes(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            1.0 - self.origin_bytes as f64 / self.total_bytes as f64
        }
    }

    /// Fraction of measured requests that completed (were not dropped by
    /// faults). 1.0 for an empty run and for any fault-free run.
    pub fn availability(&self) -> f64 {
        if self.measured_requests == 0 {
            1.0
        } else {
            1.0 - self.failed_requests as f64 / self.measured_requests as f64
        }
    }

    /// Fraction of measured requests that completed only by failing over
    /// past at least one dead holder.
    pub fn failover_ratio(&self) -> f64 {
        if self.measured_requests == 0 {
            0.0
        } else {
            self.failover_fetches as f64 / self.measured_requests as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_mean() {
        let mut h = LatencyHistogram::new(1.0, 100);
        h.record(10.0);
        h.record(20.0);
        h.record(30.0);
        assert_eq!(h.count(), 3);
        assert!((h.mean() - 20.0).abs() < 1e-12);
        assert_eq!(h.max(), 30.0);
    }

    #[test]
    fn overflow_counted() {
        let mut h = LatencyHistogram::new(1.0, 10);
        h.record(5.0);
        h.record(500.0);
        assert_eq!(h.count(), 2);
        let cdf = h.cdf();
        assert_eq!(cdf.last().unwrap().1, 1.0);
        assert_eq!(cdf.last().unwrap().0, 500.0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut h = LatencyHistogram::new(2.0, 50);
        for v in [1.0, 3.0, 3.5, 7.0, 20.0, 20.0] {
            h.record(v);
        }
        let cdf = h.cdf();
        for w in cdf.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_bounds() {
        let mut h = LatencyHistogram::new(1.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        assert!((h.percentile(0.5) - 50.0).abs() <= 1.0);
        assert!((h.percentile(0.99) - 99.0).abs() <= 1.0);
        assert!(h.percentile(0.0) >= 1.0);
    }

    #[test]
    fn fraction_at_or_below_matches_cdf() {
        let mut h = LatencyHistogram::new(1.0, 100);
        h.record(10.0);
        h.record(20.0);
        assert!((h.fraction_at_or_below(10.0) - 0.5).abs() < 1e-12);
        assert!((h.fraction_at_or_below(9.0) - 0.0).abs() < 1e-12);
        assert!((h.fraction_at_or_below(25.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overflow_bin_accounting() {
        // 10 one-ms bins cover [0, 10); half the samples land past the end.
        let mut h = LatencyHistogram::new(1.0, 10);
        for v in [2.0, 4.0, 50.0, 500.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 500.0);
        // Below the bin range end, only binned samples count.
        assert!((h.fraction_at_or_below(9.0) - 0.5).abs() < 1e-12);
        // Between the range end and the max the overflow location is
        // unknown — the conservative answer still excludes it.
        assert!((h.fraction_at_or_below(100.0) - 0.5).abs() < 1e-12);
        // At or past the recorded max, every sample is accounted for.
        assert!((h.fraction_at_or_below(500.0) - 1.0).abs() < 1e-12);
        assert!((h.fraction_at_or_below(1e9) - 1.0).abs() < 1e-12);
        // The top quantile comes from the overflow's recorded max.
        assert_eq!(h.percentile(1.0), 500.0);
        assert!((h.mean() - (2.0 + 4.0 + 50.0 + 500.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_with_overflow_is_monotone_and_ends_at_one() {
        let mut h = LatencyHistogram::new(2.0, 8);
        for v in [1.0, 3.0, 5.0, 15.9, 40.0, 77.0] {
            h.record(v);
        }
        let cdf = h.cdf();
        for w in cdf.windows(2) {
            assert!(w[0].0 < w[1].0, "x must be strictly increasing: {cdf:?}");
            assert!(w[0].1 <= w[1].1, "y must be non-decreasing: {cdf:?}");
        }
        let &(last_x, last_y) = cdf.last().unwrap();
        assert_eq!(last_y, 1.0, "CDF must end at exactly 1.0");
        assert_eq!(last_x, 77.0, "final point sits at the recorded max");
        // The pre-overflow prefix accounts for the four binned samples.
        assert!(cdf
            .iter()
            .any(|&(x, y)| x == 16.0 && (y - 4.0 / 6.0).abs() < 1e-12));
    }

    #[test]
    fn zero_request_histogram_is_well_defined() {
        let h = LatencyHistogram::new(1.0, 16);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert!(h.cdf().is_empty());
        assert_eq!(h.percentile(0.0), 0.0);
        assert_eq!(h.percentile(0.5), 0.0);
        assert_eq!(h.percentile(1.0), 0.0);
        assert_eq!(h.fraction_at_or_below(0.0), 0.0);
        assert_eq!(h.fraction_at_or_below(1e6), 0.0);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = LatencyHistogram::new(1.0, 10);
        let mut b = LatencyHistogram::new(1.0, 10);
        a.record(1.0);
        b.record(2.0);
        b.record(100.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 100.0);
        assert!((a.mean() - (1.0 + 2.0 + 100.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn merge_shape_mismatch_panics() {
        let mut a = LatencyHistogram::new(1.0, 10);
        let b = LatencyHistogram::new(2.0, 10);
        a.merge(&b);
    }

    #[test]
    fn cause_breakdown_records_and_merges() {
        let mut a = CauseBreakdown::default();
        a.record(Cause::CacheHit, 20.0);
        a.record(Cause::Failover, 220.0);
        a.failover_surcharge_ms += 100.0;
        let mut b = CauseBreakdown::default();
        b.record(Cause::CacheHit, 20.0);
        b.record(Cause::Failed, 0.0);
        a.merge(&b);
        assert_eq!(a.cache_hit.requests, 2);
        assert_eq!(a.get(Cause::CacheHit).latency_ms, 40.0);
        assert_eq!(a.failed.requests, 1);
        assert_eq!(a.total_requests(), 4);
        assert_eq!(a.total_latency_ms(), 260.0);
        assert_eq!(a.failover_surcharge_ms, 100.0);
        // Labels are stable — counters and JSONL key off them.
        let labels: Vec<&str> = Cause::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            [
                "replica_hit",
                "cache_hit",
                "delayed_hit",
                "remote_replica",
                "origin_fetch",
                "failover",
                "failed"
            ]
        );
    }

    #[test]
    fn request_sample_renders_parseable_jsonl() {
        let sample = RequestSample {
            server: 3,
            index: 42,
            site: 7,
            object: 19,
            flavor: Flavor::Expired,
            resolution: Resolution::CacheRefresh,
            cause: Cause::Failover,
            hops: 5,
            dead_skipped: 1,
            from_origin: false,
            latency_ms: 270.0,
            penalty_ms: 150.0,
        };
        let mut out = String::new();
        sample.render_jsonl_into(&mut out, "fig3:\"hybrid\"");
        assert!(out.ends_with('\n'));
        let doc = cdn_telemetry::json::parse(out.trim_end()).expect("sample line parses");
        assert_eq!(doc.get("run").unwrap().as_str(), Some("fig3:\"hybrid\""));
        assert_eq!(doc.get("server").unwrap().as_u64(), Some(3));
        assert_eq!(doc.get("index").unwrap().as_u64(), Some(42));
        assert_eq!(doc.get("flavor").unwrap().as_str(), Some("expired"));
        assert_eq!(
            doc.get("resolution").unwrap().as_str(),
            Some("cache_refresh")
        );
        assert_eq!(doc.get("cause").unwrap().as_str(), Some("failover"));
        assert_eq!(doc.get("latency_ms").unwrap().as_f64(), Some(270.0));
        assert_eq!(doc.get("penalty_ms").unwrap().as_f64(), Some(150.0));
    }

    #[test]
    fn empty_report_ratios_are_zero() {
        let r = SimReport {
            histogram: LatencyHistogram::new(1.0, 1),
            mean_latency_ms: 0.0,
            mean_cost_hops: 0.0,
            total_requests: 0,
            measured_requests: 0,
            local_requests: 0,
            cache_hits: 0,
            replica_hits: 0,
            delayed_hits: 0,
            origin_fetches: 0,
            peer_fetches: 0,
            failover_fetches: 0,
            failover_histogram: LatencyHistogram::new(1.0, 1),
            failed_requests: 0,
            total_bytes: 0,
            origin_bytes: 0,
            per_server: Vec::new(),
            cause: CauseBreakdown::default(),
            samples: Vec::new(),
            timeline: None,
        };
        assert_eq!(r.local_ratio(), 0.0);
        assert_eq!(r.cache_hit_ratio(), 0.0);
        assert_eq!(r.origin_offload(), 0.0);
        assert_eq!(r.load_imbalance(), 1.0);
        assert_eq!(r.availability(), 1.0);
        assert_eq!(r.failover_ratio(), 0.0);
    }
}
