//! The per-server request loop.

use crate::metrics::LatencyHistogram;
use crate::plan::{ConsistencyMode, ServerPlan, SimConfig};
use cdn_cache::{Cache, ObjectKey};
use cdn_workload::{Flavor, Request};

/// Per-server simulation outcome.
#[derive(Debug)]
pub struct ServerReport {
    pub server: usize,
    pub histogram: LatencyHistogram,
    /// Hops travelled beyond the first hop, summed over measured requests.
    pub cost_hops: u64,
    pub total_requests: u64,
    pub measured_requests: u64,
    pub local_requests: u64,
    pub cache_hits: u64,
    pub replica_hits: u64,
    /// Measured requests that travelled to a primary (origin) site.
    pub origin_fetches: u64,
    /// Measured requests served by another CDN server's replica.
    pub peer_fetches: u64,
    /// Bytes of measured responses, total and the share fetched from
    /// origin — CDNs bill on egress, so byte-weighted offload matters as
    /// much as request-weighted.
    pub total_bytes: u64,
    pub origin_bytes: u64,
}

/// How a single request was resolved (exposed for fine-grained tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Site replicated at the first-hop server.
    Replica,
    /// Fresh cache hit at the first-hop server.
    CacheHit,
    /// Cache hit on an expired object: refresh from the nearest copy.
    CacheRefresh,
    /// Cache miss: fetch from the nearest copy (and admit).
    CacheMiss,
    /// Uncacheable: fetch from the nearest copy, bypassing the cache.
    Bypass,
}

/// Resolve one request against a server's plan and cache; returns the
/// resolution and the hops travelled beyond the first-hop server.
#[inline]
pub fn resolve(
    plan: &ServerPlan,
    cache: &mut dyn Cache,
    req: Request,
    object_bytes: u64,
    consistency: ConsistencyMode,
) -> (Resolution, u32) {
    let site = req.site as usize;
    if plan.replicated[site] {
        // Replicas are kept consistent by the CDN; even expired-flagged
        // requests are served locally.
        return (Resolution::Replica, 0);
    }
    let hops = plan.nearest_hops[site];
    match req.flavor {
        Flavor::Uncacheable => (Resolution::Bypass, hops),
        Flavor::Normal => {
            let key = ObjectKey::new(req.site, req.object);
            if cache.access(key, object_bytes) {
                (Resolution::CacheHit, 0)
            } else {
                (Resolution::CacheMiss, hops)
            }
        }
        Flavor::Expired => {
            let key = ObjectKey::new(req.site, req.object);
            if cache.access(key, object_bytes) {
                match consistency {
                    // Strong: the stale copy must be refreshed from the
                    // nearest replica before being served.
                    ConsistencyMode::Strong => (Resolution::CacheRefresh, hops),
                    // Weak: serve the (possibly stale) copy locally.
                    ConsistencyMode::Weak => (Resolution::CacheHit, 0),
                }
            } else {
                (Resolution::CacheMiss, hops)
            }
        }
    }
}

/// Run one server's full stream. `object_bytes(site, object)` supplies
/// sizes; `warmup` requests are processed but not measured. The cache is
/// used exactly as given — size it from `plan.cache_bytes` (as
/// [`crate::runner::simulate_system`] does) unless deliberately diverging,
/// e.g. to model a cache-less server.
pub fn simulate_server<I>(
    plan: &ServerPlan,
    config: &SimConfig,
    requests: I,
    warmup: u64,
    object_bytes: impl Fn(u32, u32) -> u64,
    mut cache: Box<dyn Cache>,
) -> ServerReport
where
    I: Iterator<Item = Request>,
{
    config.validate();
    let mut histogram = LatencyHistogram::new(config.bin_ms, config.n_bins);
    let mut report = ServerReport {
        server: plan.server,
        histogram: LatencyHistogram::new(config.bin_ms, config.n_bins),
        cost_hops: 0,
        total_requests: 0,
        measured_requests: 0,
        local_requests: 0,
        cache_hits: 0,
        replica_hits: 0,
        origin_fetches: 0,
        peer_fetches: 0,
        total_bytes: 0,
        origin_bytes: 0,
    };

    for req in requests {
        let bytes = object_bytes(req.site, req.object);
        let (resolution, hops) = resolve(plan, cache.as_mut(), req, bytes, config.consistency);
        report.total_requests += 1;
        if report.total_requests <= warmup {
            continue;
        }
        report.measured_requests += 1;
        report.cost_hops += hops as u64;
        report.total_bytes += bytes;
        let latency = config.hop_delay_ms * (1.0 + hops as f64);
        histogram.record(latency);
        match resolution {
            Resolution::Replica => {
                report.replica_hits += 1;
                report.local_requests += 1;
            }
            Resolution::CacheHit => {
                report.cache_hits += 1;
                report.local_requests += 1;
            }
            Resolution::CacheRefresh | Resolution::CacheMiss | Resolution::Bypass => {
                // The request travelled to the nearest holder: origin if the
                // primary is still the closest copy, a peer replica server
                // otherwise.
                if plan.nearest_is_primary[req.site as usize] {
                    report.origin_fetches += 1;
                    report.origin_bytes += bytes;
                } else {
                    report.peer_fetches += 1;
                }
            }
        }
    }
    report.histogram = histogram;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_cache::LruCache as Lru;
    use crate::plan::ConsistencyMode as CM;

    fn plan(replicated: Vec<bool>, nearest: Vec<u32>, cache_bytes: u64) -> ServerPlan {
        let nearest_is_primary = nearest.iter().map(|&h| h > 0).collect();
        ServerPlan {
            server: 0,
            replicated,
            nearest_hops: nearest,
            nearest_is_primary,
            cache_bytes,
        }
    }

    fn req(site: u32, object: u32, flavor: Flavor) -> Request {
        Request {
            site,
            object,
            flavor,
        }
    }

    #[test]
    fn replica_requests_are_free() {
        let p = plan(vec![true], vec![0], 100);
        let mut cache = Lru::new(100);
        let (res, hops) = resolve(&p, &mut cache, req(0, 5, Flavor::Normal), 10, CM::Strong);
        assert_eq!(res, Resolution::Replica);
        assert_eq!(hops, 0);
        // Even expired requests are local on replicas.
        let (res, hops) = resolve(&p, &mut cache, req(0, 5, Flavor::Expired), 10, CM::Strong);
        assert_eq!(res, Resolution::Replica);
        assert_eq!(hops, 0);
    }

    #[test]
    fn miss_then_hit_sequence() {
        let p = plan(vec![false], vec![7], 100);
        let mut cache = Lru::new(100);
        let (res, hops) = resolve(&p, &mut cache, req(0, 1, Flavor::Normal), 10, CM::Strong);
        assert_eq!((res, hops), (Resolution::CacheMiss, 7));
        let (res, hops) = resolve(&p, &mut cache, req(0, 1, Flavor::Normal), 10, CM::Strong);
        assert_eq!((res, hops), (Resolution::CacheHit, 0));
    }

    #[test]
    fn expired_hit_pays_refresh() {
        let p = plan(vec![false], vec![4], 100);
        let mut cache = Lru::new(100);
        resolve(&p, &mut cache, req(0, 1, Flavor::Normal), 10, CM::Strong);
        let (res, hops) = resolve(&p, &mut cache, req(0, 1, Flavor::Expired), 10, CM::Strong);
        assert_eq!((res, hops), (Resolution::CacheRefresh, 4));
        // Refresh keeps the object cached: the next normal access hits.
        let (res, _) = resolve(&p, &mut cache, req(0, 1, Flavor::Normal), 10, CM::Strong);
        assert_eq!(res, Resolution::CacheHit);
    }

    #[test]
    fn weak_consistency_serves_stale_locally() {
        let p = plan(vec![false], vec![4], 100);
        let mut cache = Lru::new(100);
        resolve(&p, &mut cache, req(0, 1, Flavor::Normal), 10, CM::Weak);
        let (res, hops) = resolve(&p, &mut cache, req(0, 1, Flavor::Expired), 10, CM::Weak);
        assert_eq!((res, hops), (Resolution::CacheHit, 0));
    }

    #[test]
    fn uncacheable_bypasses_cache() {
        let p = plan(vec![false], vec![5], 100);
        let mut cache = Lru::new(100);
        let (res, hops) = resolve(&p, &mut cache, req(0, 1, Flavor::Uncacheable), 10, CM::Strong);
        assert_eq!((res, hops), (Resolution::Bypass, 5));
        // Not admitted: a subsequent normal request misses.
        let (res, _) = resolve(&p, &mut cache, req(0, 1, Flavor::Normal), 10, CM::Strong);
        assert_eq!(res, Resolution::CacheMiss);
    }

    #[test]
    fn simulate_server_counts_and_latencies() {
        let p = plan(vec![true, false], vec![0, 3], 1000);
        let cfg = SimConfig::default();
        let stream = vec![
            req(0, 1, Flavor::Normal),  // replica: 20 ms
            req(1, 1, Flavor::Normal),  // miss: 80 ms
            req(1, 1, Flavor::Normal),  // hit: 20 ms
            req(1, 2, Flavor::Uncacheable), // bypass: 80 ms
        ];
        let report = simulate_server(
            &p,
            &cfg,
            stream.into_iter(),
            0,
            |_, _| 10,
            Box::new(Lru::new(p.cache_bytes)),
        );
        assert_eq!(report.total_requests, 4);
        assert_eq!(report.measured_requests, 4);
        assert_eq!(report.replica_hits, 1);
        assert_eq!(report.cache_hits, 1);
        assert_eq!(report.local_requests, 2);
        assert_eq!(report.cost_hops, 6);
        assert!((report.histogram.mean() - (20.0 + 80.0 + 20.0 + 80.0) / 4.0).abs() < 1e-9);
    }

    #[test]
    fn warmup_excluded_from_measurement() {
        let p = plan(vec![false], vec![3], 1000);
        let cfg = SimConfig::default();
        let stream = vec![req(0, 1, Flavor::Normal), req(0, 1, Flavor::Normal)];
        let report = simulate_server(
            &p,
            &cfg,
            stream.into_iter(),
            1,
            |_, _| 10,
            Box::new(Lru::new(p.cache_bytes)),
        );
        assert_eq!(report.total_requests, 2);
        assert_eq!(report.measured_requests, 1);
        // The warm-up miss populated the cache; the measured request hits.
        assert_eq!(report.cache_hits, 1);
        assert_eq!(report.cost_hops, 0);
    }

    #[test]
    fn zero_capacity_cache_never_hits() {
        let p = plan(vec![false], vec![2], 0);
        let cfg = SimConfig::default();
        let stream = vec![req(0, 1, Flavor::Normal), req(0, 1, Flavor::Normal)];
        let report = simulate_server(
            &p,
            &cfg,
            stream.into_iter(),
            0,
            |_, _| 10,
            Box::new(Lru::new(p.cache_bytes)),
        );
        assert_eq!(report.cache_hits, 0);
        assert_eq!(report.cost_hops, 4);
    }
}
