//! The per-server request loop.

use crate::fault::FaultSchedule;
use crate::metrics::{Cause, CauseBreakdown, LatencyHistogram, RequestSample};
use crate::plan::{ConsistencyMode, ServerPlan, SimConfig};
use crate::timeline::{ServerTimeline, TimelineAcc};
use cdn_cache::{Cache, CacheStats, ObjectKey};
use cdn_telemetry as telemetry;
use cdn_workload::{Flavor, Request};
use std::collections::HashMap;

/// In-flight fetch state for delayed-hit coalescing: the configured fetch
/// latency plus a map of object -> (tick the fetch completes, fetch hops).
type InflightTable = (u64, HashMap<ObjectKey, (u64, u32)>);

/// Per-site tallies over one server's *measured* requests, gathered only
/// when telemetry is enabled. Everything here is deterministic: the
/// request stream, routing, and fault schedule are all seed-derived.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SiteObs {
    /// Served locally (replica hit, fresh cache hit, or a delayed hit
    /// riding a pending fetch that lands at this server).
    pub local_hits: u64,
    /// Travelled to a holder with no dead copies skipped.
    pub remote_fetches: u64,
    /// Travelled to a holder after skipping at least one dead copy.
    pub failovers: u64,
    /// No live copy existed anywhere.
    pub failed: u64,
}

/// Deterministic per-server observability: per-site tallies plus a
/// whole-stream (warm-up included) snapshot of the cache's own counters —
/// the eviction/insertion/rejection totals the trace reports.
#[derive(Debug, Clone)]
pub struct EngineObs {
    pub per_site: Vec<SiteObs>,
    pub cache: CacheStats,
}

/// Per-server simulation outcome.
#[derive(Debug)]
pub struct ServerReport {
    pub server: usize,
    pub histogram: LatencyHistogram,
    /// Hops travelled beyond the first hop, summed over measured requests.
    pub cost_hops: u64,
    pub total_requests: u64,
    pub measured_requests: u64,
    pub local_requests: u64,
    pub cache_hits: u64,
    pub replica_hits: u64,
    /// Measured requests coalesced onto an in-flight fetch of the same
    /// object (delayed hits; zero unless [`SimConfig::fetch_latency`] is
    /// positive). Disjoint from every other bucket.
    pub delayed_hits: u64,
    /// Measured requests that travelled to a primary (origin) site.
    pub origin_fetches: u64,
    /// Measured requests served by another CDN server's replica.
    pub peer_fetches: u64,
    /// Measured remote fetches that skipped at least one dead holder
    /// before finding a live copy (disjoint from `origin_fetches` and
    /// `peer_fetches`).
    pub failover_fetches: u64,
    /// Measured requests for which no live copy existed anywhere.
    pub failed_requests: u64,
    /// Latency distribution of the failover fetches alone — the degraded
    /// tail that fault injection creates.
    pub failover_histogram: LatencyHistogram,
    /// Bytes of measured responses, total and the share fetched from
    /// origin — CDNs bill on egress, so byte-weighted offload matters as
    /// much as request-weighted.
    pub total_bytes: u64,
    pub origin_bytes: u64,
    /// Telemetry tallies; `None` when telemetry is disabled.
    pub obs: Option<EngineObs>,
    /// Per-cause latency attribution over this server's measured requests
    /// (always collected — a handful of adds per request).
    pub cause: CauseBreakdown,
    /// 1-in-N sampled request paths (empty unless
    /// [`SimConfig::sample_every`] is set), in stream order.
    pub samples: Vec<RequestSample>,
    /// Windowed timeline of this server's measured requests (`None` unless
    /// [`SimConfig::window`] is a positive width). Purely observational:
    /// enabling it never perturbs any other report field.
    pub timeline: Option<ServerTimeline>,
}

/// Attribution label for a routed request — mirrors exactly the disjoint
/// bucket accounting below, so per-cause counts sum to report totals.
#[inline]
fn cause_of(routed: &Routed) -> Cause {
    match routed.resolution {
        Resolution::Failed => Cause::Failed,
        Resolution::Replica => Cause::ReplicaHit,
        Resolution::CacheHit => Cause::CacheHit,
        _ if routed.dead_skipped > 0 => Cause::Failover,
        _ if routed.from_origin => Cause::OriginFetch,
        _ => Cause::RemoteReplica,
    }
}

/// How a single request was resolved (exposed for fine-grained tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Site replicated at the first-hop server.
    Replica,
    /// Fresh cache hit at the first-hop server.
    CacheHit,
    /// Cache hit on an expired object: refresh from the nearest copy.
    CacheRefresh,
    /// Cache miss: fetch from the nearest copy (and admit).
    CacheMiss,
    /// Uncacheable: fetch from the nearest copy, bypassing the cache.
    Bypass,
    /// No live copy anywhere: the request was dropped.
    Failed,
}

/// Outcome of fault-aware resolution (see [`resolve_faulted`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Routed {
    pub resolution: Resolution,
    /// Hops to the holder that served the request (0 for local service or
    /// failure).
    pub hops: u32,
    /// Dead holders (and/or a dead first-hop server) skipped before the
    /// request completed — each one costs a retry penalty.
    pub dead_skipped: u32,
    /// The serving holder was the primary (origin) site. Only meaningful
    /// for remote resolutions.
    pub from_origin: bool,
}

/// Resolve one request against a server's plan and cache; returns the
/// resolution and the hops travelled beyond the first-hop server.
#[inline]
pub fn resolve(
    plan: &ServerPlan,
    cache: &mut dyn Cache,
    req: Request,
    object_bytes: u64,
    consistency: ConsistencyMode,
) -> (Resolution, u32) {
    let site = req.site as usize;
    if plan.replicated[site] {
        // Replicas are kept consistent by the CDN; even expired-flagged
        // requests are served locally.
        return (Resolution::Replica, 0);
    }
    let hops = plan.nearest_hops[site];
    match req.flavor {
        Flavor::Uncacheable => (Resolution::Bypass, hops),
        Flavor::Normal => {
            let key = ObjectKey::new(req.site, req.object);
            if cache.access(key, object_bytes) {
                (Resolution::CacheHit, 0)
            } else {
                (Resolution::CacheMiss, hops)
            }
        }
        Flavor::Expired => {
            let key = ObjectKey::new(req.site, req.object);
            if cache.access(key, object_bytes) {
                match consistency {
                    // Strong: the stale copy must be refreshed from the
                    // nearest replica before being served.
                    ConsistencyMode::Strong => (Resolution::CacheRefresh, hops),
                    // Weak: serve the (possibly stale) copy locally.
                    ConsistencyMode::Weak => (Resolution::CacheHit, 0),
                }
            } else {
                (Resolution::CacheMiss, hops)
            }
        }
    }
}

/// Walk `plan.holders[site]` from `start_rank`, skipping dead holders.
/// Returns `(hops, from_origin, dead_skipped)` of the first live copy, or
/// `None` when every holder is down.
#[inline]
fn first_live_holder(
    plan: &ServerPlan,
    site: usize,
    schedule: &FaultSchedule,
    tick: u64,
    start_rank: usize,
    mut dead: u32,
) -> Option<(u32, bool, u32)> {
    for h in &plan.holders[site][start_rank..] {
        let alive = match h.server {
            None => !schedule.is_origin_down(tick),
            Some(k) => !schedule.is_server_down(k as usize, tick),
        };
        if alive {
            return Some((h.hops, h.server.is_none(), dead));
        }
        dead += 1;
    }
    None
}

/// Fault-aware [`resolve`]: requests fail over along the distance-ranked
/// holder list to the next-nearest *live* copy, skipping crashed servers
/// (and, possibly, an unreachable origin).
///
/// Semantics:
/// * A down first-hop server serves nothing locally and its cache is not
///   touched (the contents survive the crash); the client retries against
///   the holder list directly, paying one skip for the dead first hop.
/// * A cache miss admits the object only if some live copy supplied it —
///   a [`Resolution::Failed`] request leaves the cache unchanged.
/// * Under [`ConsistencyMode::Strong`] an expired cache hit whose refresh
///   finds no live copy fails; under weak consistency the stale copy is
///   served locally without needing any holder.
///
/// With an all-alive schedule this is behaviourally identical to
/// [`resolve`]: `holders[site][0]` mirrors the scalar nearest-copy fields.
pub fn resolve_faulted(
    plan: &ServerPlan,
    cache: &mut dyn Cache,
    req: Request,
    object_bytes: u64,
    consistency: ConsistencyMode,
    schedule: &FaultSchedule,
    tick: u64,
) -> Routed {
    let site = req.site as usize;
    let local = |resolution| Routed {
        resolution,
        hops: 0,
        dead_skipped: 0,
        from_origin: false,
    };
    let remote = |resolution, (hops, from_origin, dead_skipped)| Routed {
        resolution,
        hops,
        dead_skipped,
        from_origin,
    };
    let failed = |dead_skipped| Routed {
        resolution: Resolution::Failed,
        hops: 0,
        dead_skipped,
        from_origin: false,
    };

    if schedule.is_server_down(plan.server, tick) {
        // First-hop down: no replica, no cache. If this server replicates
        // the site it heads its own holder list — skip that dead entry;
        // otherwise the failed first-hop attempt itself costs one skip.
        let start_rank = usize::from(plan.replicated[site]);
        return match first_live_holder(plan, site, schedule, tick, start_rank, 1) {
            Some(found) => remote(Resolution::Bypass, found),
            None => failed(1 + (plan.holders[site].len() - start_rank) as u32),
        };
    }
    if plan.replicated[site] {
        return local(Resolution::Replica);
    }
    let fetch = |dead0| first_live_holder(plan, site, schedule, tick, 0, dead0);
    let all_dead = plan.holders[site].len() as u32;
    match req.flavor {
        Flavor::Uncacheable => match fetch(0) {
            Some(found) => remote(Resolution::Bypass, found),
            None => failed(all_dead),
        },
        Flavor::Normal => {
            let key = ObjectKey::new(req.site, req.object);
            if cache.lookup(key) {
                local(Resolution::CacheHit)
            } else {
                match fetch(0) {
                    Some(found) => {
                        cache.insert(key, object_bytes);
                        remote(Resolution::CacheMiss, found)
                    }
                    None => failed(all_dead),
                }
            }
        }
        Flavor::Expired => {
            let key = ObjectKey::new(req.site, req.object);
            if cache.lookup(key) {
                match consistency {
                    ConsistencyMode::Strong => match fetch(0) {
                        Some(found) => remote(Resolution::CacheRefresh, found),
                        None => failed(all_dead),
                    },
                    ConsistencyMode::Weak => local(Resolution::CacheHit),
                }
            } else {
                match fetch(0) {
                    Some(found) => {
                        cache.insert(key, object_bytes);
                        remote(Resolution::CacheMiss, found)
                    }
                    None => failed(all_dead),
                }
            }
        }
    }
}

/// Run one server's full stream. `object_bytes(site, object)` supplies
/// sizes; `warmup` requests are processed but not measured. The cache is
/// used exactly as given — size it from `plan.cache_bytes` (as
/// [`crate::runner::simulate_system`] does) unless deliberately diverging,
/// e.g. to model a cache-less server.
pub fn simulate_server<I>(
    plan: &ServerPlan,
    config: &SimConfig,
    requests: I,
    warmup: u64,
    object_bytes: impl Fn(u32, u32) -> u64,
    cache: Box<dyn Cache>,
) -> ServerReport
where
    I: Iterator<Item = Request>,
{
    simulate_server_faulted(plan, config, requests, warmup, object_bytes, cache, None)
}

/// [`simulate_server`] with an optional fault schedule. `None` takes the
/// exact fault-free code path; a schedule with no down-windows produces
/// bit-identical reports to `None` (regression-guarded in the runner
/// tests). The tick passed to the schedule is the request's index in this
/// server's stream, counted from the stream start (warm-up included).
pub fn simulate_server_faulted<I>(
    plan: &ServerPlan,
    config: &SimConfig,
    requests: I,
    warmup: u64,
    object_bytes: impl Fn(u32, u32) -> u64,
    mut cache: Box<dyn Cache>,
    schedule: Option<&FaultSchedule>,
) -> ServerReport
where
    I: Iterator<Item = Request>,
{
    config.validate();
    let retry_penalty_ms = config
        .faults
        .map(|f| f.retry_penalty_ms)
        .unwrap_or_default();
    // The histograms live directly in the report: the two bin vectors are
    // the only heap state this loop needs, allocated once per server.
    let mut report = ServerReport {
        server: plan.server,
        histogram: LatencyHistogram::new(config.bin_ms, config.n_bins),
        cost_hops: 0,
        total_requests: 0,
        measured_requests: 0,
        local_requests: 0,
        cache_hits: 0,
        replica_hits: 0,
        delayed_hits: 0,
        origin_fetches: 0,
        peer_fetches: 0,
        failover_fetches: 0,
        failed_requests: 0,
        failover_histogram: LatencyHistogram::new(config.bin_ms, config.n_bins),
        total_bytes: 0,
        origin_bytes: 0,
        obs: None,
        cause: CauseBreakdown::default(),
        samples: Vec::new(),
        timeline: None,
    };
    let sample_every = config.sample_every.unwrap_or(0);
    // `None` and `Some(0)` both disable the timeline (`--window 0` is the
    // CLI's off switch); the disabled path is bit-identical to a build
    // without the feature.
    let window_width = config.window.unwrap_or(0);
    let mut timeline: Option<TimelineAcc> =
        (window_width > 0).then(|| TimelineAcc::new(window_width));
    // Per-site tallies: local to this server's loop, so plain (non-atomic)
    // counts; gated once per run on the global telemetry flag.
    let mut site_obs: Option<Vec<SiteObs>> =
        telemetry::enabled().then(|| vec![SiteObs::default(); plan.replicated.len()]);
    // In-flight fetch table for delayed-hit coalescing: object -> (tick
    // the pending fetch completes, hops that fetch travels). Allocated
    // only for a positive fetch latency; `None` and `Some(0)` take the
    // exact instant-fetch code path, bit for bit. The table is keyed on
    // the deterministic per-server stream tick, so it is byte-identical
    // at any thread or shard count, and entries are retired lazily when
    // the object is next touched.
    let mut inflight: Option<InflightTable> = config
        .fetch_latency
        .filter(|&l| l > 0)
        .map(|l| (l, HashMap::new()));

    for req in requests {
        let tick = report.total_requests;
        if let Some(tl) = timeline.as_mut() {
            // Roll windows *before* resolution mutates the cache, so a
            // closing window's occupancy/eviction snapshots exclude this
            // request. Only measured ticks open windows: they form a
            // contiguous suffix of the stream, so the lazy close is exact.
            if tick >= warmup {
                tl.roll(tick, cache.as_ref());
            }
        }
        let bytes = object_bytes(req.site, req.object);
        let routed = match schedule {
            None => {
                let (resolution, hops) =
                    resolve(plan, cache.as_mut(), req, bytes, config.consistency);
                Routed {
                    resolution,
                    hops,
                    dead_skipped: 0,
                    from_origin: plan.nearest_is_primary[req.site as usize],
                }
            }
            Some(schedule) => resolve_faulted(
                plan,
                cache.as_mut(),
                req,
                bytes,
                config.consistency,
                schedule,
                tick,
            ),
        };
        // Delayed-hit coalescing: any request for an object whose fetch is
        // still in flight rides that fetch — whether the cache already
        // admitted the object (a hit before the fetch landed) or declined
        // or evicted it (a miss re-requesting a pending object). A miss on
        // a non-pending object starts a new fetch; touching an object whose
        // fetch completed retires the table entry.
        let delayed_fetch = match inflight.as_mut() {
            Some((fetch_ticks, table))
                if matches!(
                    routed.resolution,
                    Resolution::CacheHit | Resolution::CacheMiss
                ) =>
            {
                let key = ObjectKey::new(req.site, req.object);
                match table.get(&key) {
                    Some(&(ready, fetch_hops)) if tick < ready => Some(fetch_hops),
                    _ => {
                        if routed.resolution == Resolution::CacheMiss {
                            table.insert(key, (tick + *fetch_ticks, routed.hops));
                        } else {
                            table.remove(&key);
                        }
                        None
                    }
                }
            }
            _ => None,
        };
        report.total_requests += 1;
        if report.total_requests <= warmup {
            continue;
        }
        report.measured_requests += 1;
        if let Some(obs) = site_obs.as_mut() {
            let o = &mut obs[req.site as usize];
            match routed.resolution {
                Resolution::Failed => o.failed += 1,
                _ if delayed_fetch.is_some() => o.local_hits += 1,
                Resolution::Replica | Resolution::CacheHit => o.local_hits += 1,
                _ if routed.dead_skipped > 0 => o.failovers += 1,
                _ => o.remote_fetches += 1,
            }
        }
        let failed = routed.resolution == Resolution::Failed;
        // With zero faults `dead_skipped` is 0 and the penalty term adds an
        // exact +0.0, keeping fault-free latencies bit-identical. A failed
        // request delivers nothing, so it is attributed zero latency.
        let penalty_ms = if failed || delayed_fetch.is_some() {
            0.0
        } else {
            retry_penalty_ms * routed.dead_skipped as f64
        };
        let latency = if failed {
            0.0
        } else if let Some(fetch_hops) = delayed_fetch {
            // The coalesced request rides the pending fetch: it pays that
            // fetch's transfer delay and no retry penalty of its own.
            config.hop_delay_ms * (1.0 + fetch_hops as f64)
        } else {
            config.hop_delay_ms * (1.0 + routed.hops as f64)
                + retry_penalty_ms * routed.dead_skipped as f64
        };
        let cause = if delayed_fetch.is_some() {
            Cause::DelayedHit
        } else {
            cause_of(&routed)
        };
        report.cause.record(cause, latency);
        if cause == Cause::Failover {
            report.cause.failover_surcharge_ms += penalty_ms;
        }
        if sample_every > 0 && tick % sample_every == 0 {
            report.samples.push(RequestSample {
                server: plan.server,
                index: tick,
                site: req.site,
                object: req.object,
                flavor: req.flavor,
                resolution: routed.resolution,
                cause,
                hops: routed.hops,
                dead_skipped: routed.dead_skipped,
                // `Routed::from_origin` is only meaningful for remote
                // resolutions; mask it for local/coalesced/failed ones.
                from_origin: routed.from_origin
                    && !matches!(
                        cause,
                        Cause::ReplicaHit | Cause::CacheHit | Cause::DelayedHit | Cause::Failed
                    ),
                latency_ms: latency,
                penalty_ms,
            });
        }
        if let Some(tl) = timeline.as_mut() {
            // Mirror the run-level accounting below, bucket by window, on
            // the identical code path — windowed counters summed over all
            // windows therefore equal the run-level counters exactly.
            tl.tally_site(req.site);
            let win = tl.current();
            win.requests += 1;
            if failed {
                win.failed_requests += 1;
            } else if delayed_fetch.is_some() {
                // Coalesced: bytes reach the client, but no hops or origin
                // traffic of this request's own.
                win.latency_sum_ms += latency;
                win.sketch.record(latency);
                win.total_bytes += bytes;
                win.delayed_hits += 1;
            } else {
                win.latency_sum_ms += latency;
                win.sketch.record(latency);
                win.cost_hops += routed.hops as u64;
                win.total_bytes += bytes;
                match routed.resolution {
                    Resolution::Replica => {
                        win.replica_hits += 1;
                        win.local_requests += 1;
                    }
                    Resolution::CacheHit => {
                        win.cache_hits += 1;
                        win.local_requests += 1;
                    }
                    _ => {
                        if routed.dead_skipped > 0 {
                            win.failover_fetches += 1;
                        } else if routed.from_origin {
                            win.origin_fetches += 1;
                        } else {
                            win.peer_fetches += 1;
                        }
                        if routed.from_origin {
                            win.origin_bytes += bytes;
                        }
                    }
                }
            }
        }
        if failed {
            // Nothing was delivered: no bytes, no hops, no latency sample.
            report.failed_requests += 1;
            continue;
        }
        if delayed_fetch.is_some() {
            // Coalesced onto the pending fetch: the bytes are delivered to
            // the client, but the request adds no network traffic (hops)
            // and no origin bytes of its own — that is the whole point of
            // delayed hits.
            report.total_bytes += bytes;
            report.histogram.record(latency);
            report.delayed_hits += 1;
            continue;
        }
        report.cost_hops += routed.hops as u64;
        report.total_bytes += bytes;
        report.histogram.record(latency);
        if routed.dead_skipped > 0 {
            report.failover_histogram.record(latency);
        }
        match routed.resolution {
            Resolution::Replica => {
                report.replica_hits += 1;
                report.local_requests += 1;
            }
            Resolution::CacheHit => {
                report.cache_hits += 1;
                report.local_requests += 1;
            }
            Resolution::CacheRefresh | Resolution::CacheMiss | Resolution::Bypass => {
                // The request travelled to a holder: a failover fetch if it
                // had to skip dead copies, otherwise origin or peer by who
                // answered. Byte accounting tracks the actual source either
                // way.
                if routed.dead_skipped > 0 {
                    report.failover_fetches += 1;
                } else if routed.from_origin {
                    report.origin_fetches += 1;
                } else {
                    report.peer_fetches += 1;
                }
                if routed.from_origin {
                    report.origin_bytes += bytes;
                }
            }
            Resolution::Failed => unreachable!("failed requests handled above"),
        }
    }
    report.timeline = timeline.map(|tl| tl.finish(plan.server, cache.as_ref()));
    report.obs = site_obs.map(|per_site| EngineObs {
        per_site,
        cache: *cache.stats(),
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultParams;
    use crate::plan::{ConsistencyMode as CM, Holder};
    use cdn_cache::LruCache as Lru;

    fn plan(replicated: Vec<bool>, nearest: Vec<u32>, cache_bytes: u64) -> ServerPlan {
        let nearest_is_primary: Vec<bool> = nearest.iter().map(|&h| h > 0).collect();
        // Minimal holder lists consistent with the scalar fields: the local
        // replica when replicated, the primary otherwise.
        let holders = replicated
            .iter()
            .zip(&nearest)
            .map(|(&r, &h)| {
                if r {
                    vec![Holder {
                        server: Some(0),
                        hops: 0,
                    }]
                } else {
                    vec![Holder {
                        server: None,
                        hops: h,
                    }]
                }
            })
            .collect();
        ServerPlan {
            server: 0,
            replicated,
            nearest_hops: nearest,
            nearest_is_primary,
            holders,
            cache_bytes,
        }
    }

    fn req(site: u32, object: u32, flavor: Flavor) -> Request {
        Request {
            site,
            object,
            flavor,
        }
    }

    #[test]
    fn replica_requests_are_free() {
        let p = plan(vec![true], vec![0], 100);
        let mut cache = Lru::new(100);
        let (res, hops) = resolve(&p, &mut cache, req(0, 5, Flavor::Normal), 10, CM::Strong);
        assert_eq!(res, Resolution::Replica);
        assert_eq!(hops, 0);
        // Even expired requests are local on replicas.
        let (res, hops) = resolve(&p, &mut cache, req(0, 5, Flavor::Expired), 10, CM::Strong);
        assert_eq!(res, Resolution::Replica);
        assert_eq!(hops, 0);
    }

    #[test]
    fn miss_then_hit_sequence() {
        let p = plan(vec![false], vec![7], 100);
        let mut cache = Lru::new(100);
        let (res, hops) = resolve(&p, &mut cache, req(0, 1, Flavor::Normal), 10, CM::Strong);
        assert_eq!((res, hops), (Resolution::CacheMiss, 7));
        let (res, hops) = resolve(&p, &mut cache, req(0, 1, Flavor::Normal), 10, CM::Strong);
        assert_eq!((res, hops), (Resolution::CacheHit, 0));
    }

    #[test]
    fn expired_hit_pays_refresh() {
        let p = plan(vec![false], vec![4], 100);
        let mut cache = Lru::new(100);
        resolve(&p, &mut cache, req(0, 1, Flavor::Normal), 10, CM::Strong);
        let (res, hops) = resolve(&p, &mut cache, req(0, 1, Flavor::Expired), 10, CM::Strong);
        assert_eq!((res, hops), (Resolution::CacheRefresh, 4));
        // Refresh keeps the object cached: the next normal access hits.
        let (res, _) = resolve(&p, &mut cache, req(0, 1, Flavor::Normal), 10, CM::Strong);
        assert_eq!(res, Resolution::CacheHit);
    }

    #[test]
    fn weak_consistency_serves_stale_locally() {
        let p = plan(vec![false], vec![4], 100);
        let mut cache = Lru::new(100);
        resolve(&p, &mut cache, req(0, 1, Flavor::Normal), 10, CM::Weak);
        let (res, hops) = resolve(&p, &mut cache, req(0, 1, Flavor::Expired), 10, CM::Weak);
        assert_eq!((res, hops), (Resolution::CacheHit, 0));
    }

    #[test]
    fn uncacheable_bypasses_cache() {
        let p = plan(vec![false], vec![5], 100);
        let mut cache = Lru::new(100);
        let (res, hops) = resolve(
            &p,
            &mut cache,
            req(0, 1, Flavor::Uncacheable),
            10,
            CM::Strong,
        );
        assert_eq!((res, hops), (Resolution::Bypass, 5));
        // Not admitted: a subsequent normal request misses.
        let (res, _) = resolve(&p, &mut cache, req(0, 1, Flavor::Normal), 10, CM::Strong);
        assert_eq!(res, Resolution::CacheMiss);
    }

    #[test]
    fn simulate_server_counts_and_latencies() {
        let p = plan(vec![true, false], vec![0, 3], 1000);
        let cfg = SimConfig::default();
        let stream = vec![
            req(0, 1, Flavor::Normal),      // replica: 20 ms
            req(1, 1, Flavor::Normal),      // miss: 80 ms
            req(1, 1, Flavor::Normal),      // hit: 20 ms
            req(1, 2, Flavor::Uncacheable), // bypass: 80 ms
        ];
        let report = simulate_server(
            &p,
            &cfg,
            stream.into_iter(),
            0,
            |_, _| 10,
            Box::new(Lru::new(p.cache_bytes)),
        );
        assert_eq!(report.total_requests, 4);
        assert_eq!(report.measured_requests, 4);
        assert_eq!(report.replica_hits, 1);
        assert_eq!(report.cache_hits, 1);
        assert_eq!(report.local_requests, 2);
        assert_eq!(report.cost_hops, 6);
        assert!((report.histogram.mean() - (20.0 + 80.0 + 20.0 + 80.0) / 4.0).abs() < 1e-9);
    }

    #[test]
    fn warmup_excluded_from_measurement() {
        let p = plan(vec![false], vec![3], 1000);
        let cfg = SimConfig::default();
        let stream = vec![req(0, 1, Flavor::Normal), req(0, 1, Flavor::Normal)];
        let report = simulate_server(
            &p,
            &cfg,
            stream.into_iter(),
            1,
            |_, _| 10,
            Box::new(Lru::new(p.cache_bytes)),
        );
        assert_eq!(report.total_requests, 2);
        assert_eq!(report.measured_requests, 1);
        // The warm-up miss populated the cache; the measured request hits.
        assert_eq!(report.cache_hits, 1);
        assert_eq!(report.cost_hops, 0);
    }

    #[test]
    fn windowed_timeline_mirrors_run_level_accounting() {
        let p = plan(vec![true, false], vec![0, 3], 1000);
        let cfg = SimConfig {
            window: Some(2),
            ..Default::default()
        };
        let stream = vec![
            req(0, 1, Flavor::Normal),      // tick 0: replica
            req(1, 1, Flavor::Normal),      // tick 1: miss
            req(1, 1, Flavor::Normal),      // tick 2: hit
            req(1, 2, Flavor::Uncacheable), // tick 3: bypass
            req(0, 2, Flavor::Normal),      // tick 4: replica
        ];
        let report = simulate_server(
            &p,
            &cfg,
            stream.into_iter(),
            0,
            |_, _| 10,
            Box::new(Lru::new(p.cache_bytes)),
        );
        let tl = report
            .timeline
            .as_ref()
            .expect("window>0 builds a timeline");
        assert_eq!(tl.server, 0);
        let ids: Vec<u64> = tl.windows.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        // Windowed counters sum to the run-level ones exactly.
        let sum = |f: fn(&crate::timeline::WindowStats) -> u64| {
            tl.windows.iter().map(|(_, w)| f(w)).sum::<u64>()
        };
        assert_eq!(sum(|w| w.requests), report.measured_requests);
        assert_eq!(sum(|w| w.cache_hits), report.cache_hits);
        assert_eq!(sum(|w| w.replica_hits), report.replica_hits);
        assert_eq!(sum(|w| w.cost_hops), report.cost_hops);
        assert_eq!(sum(|w| w.total_bytes), report.total_bytes);
        // Hot-site attribution: ties break toward the lower site id.
        assert_eq!(tl.windows[0].1.top_site, Some((0, 1)));
        assert_eq!(tl.windows[1].1.top_site, Some((1, 2)));
        assert_eq!(tl.windows[2].1.top_site, Some((0, 1)));
        // The cached object (10 bytes) is resident at every window close.
        assert!(tl.windows.iter().all(|(_, w)| w.cache_used_bytes == 10));
        // Disabled (None and Some(0) alike) leaves the field empty.
        for window in [None, Some(0)] {
            let cfg = SimConfig {
                window,
                ..Default::default()
            };
            let stream = vec![req(0, 1, Flavor::Normal)];
            let r = simulate_server(
                &p,
                &cfg,
                stream.into_iter(),
                0,
                |_, _| 10,
                Box::new(Lru::new(p.cache_bytes)),
            );
            assert!(r.timeline.is_none());
        }
    }

    #[test]
    fn timeline_windows_are_keyed_on_stream_ticks_not_measured_index() {
        // Warm-up ticks advance the window clock without recording: with
        // warmup 3 and width 2, the first measured tick (3) lands in
        // window 1, and window 0 never materialises.
        let p = plan(vec![false], vec![3], 1000);
        let cfg = SimConfig {
            window: Some(2),
            ..Default::default()
        };
        let stream: Vec<_> = (0..6).map(|o| req(0, o, Flavor::Normal)).collect();
        let report = simulate_server(
            &p,
            &cfg,
            stream.into_iter(),
            3,
            |_, _| 10,
            Box::new(Lru::new(p.cache_bytes)),
        );
        let tl = report.timeline.as_ref().unwrap();
        let ids: Vec<u64> = tl.windows.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(tl.windows[0].1.requests, 1); // tick 3
        assert_eq!(tl.windows[1].1.requests, 2); // ticks 4, 5
        assert_eq!(report.measured_requests, 3);
    }

    /// One server (0), one site with three holders: peer 1 at 2 hops, peer
    /// 2 at 5 hops, the primary at 9 hops.
    fn failover_plan() -> ServerPlan {
        ServerPlan {
            server: 0,
            replicated: vec![false],
            nearest_hops: vec![2],
            nearest_is_primary: vec![false],
            holders: vec![vec![
                Holder {
                    server: Some(1),
                    hops: 2,
                },
                Holder {
                    server: Some(2),
                    hops: 5,
                },
                Holder {
                    server: None,
                    hops: 9,
                },
            ]],
            cache_bytes: 100,
        }
    }

    /// Schedule where server `s` is down for ticks `[0, 100)`.
    fn down(servers: &[usize], origin: bool) -> crate::fault::FaultSchedule {
        let mut windows = vec![Vec::new(); 3];
        for &s in servers {
            windows[s] = vec![(0, 100)];
        }
        let origin_down = if origin { vec![(0, 100)] } else { Vec::new() };
        crate::fault::FaultSchedule::from_windows(windows, origin_down)
    }

    #[test]
    fn all_alive_matches_plain_resolve() {
        let p = failover_plan();
        let schedule = down(&[], false);
        let mut c1 = Lru::new(100);
        let mut c2 = Lru::new(100);
        for flavor in [
            Flavor::Normal,
            Flavor::Normal,
            Flavor::Expired,
            Flavor::Uncacheable,
        ] {
            let (res, hops) = resolve(&p, &mut c1, req(0, 1, flavor), 10, CM::Strong);
            let routed =
                resolve_faulted(&p, &mut c2, req(0, 1, flavor), 10, CM::Strong, &schedule, 0);
            assert_eq!((res, hops), (routed.resolution, routed.hops));
            assert_eq!(routed.dead_skipped, 0);
            assert!(!routed.from_origin);
        }
    }

    #[test]
    fn dead_nearest_holder_fails_over_to_next() {
        let p = failover_plan();
        let mut cache = Lru::new(100);
        let schedule = down(&[1], false);
        let routed = resolve_faulted(
            &p,
            &mut cache,
            req(0, 1, Flavor::Normal),
            10,
            CM::Strong,
            &schedule,
            5,
        );
        assert_eq!(routed.resolution, Resolution::CacheMiss);
        assert_eq!(routed.hops, 5, "should reach the second-nearest copy");
        assert_eq!(routed.dead_skipped, 1);
        assert!(!routed.from_origin);
        // Past the recovery window the nearest holder serves again.
        let routed = resolve_faulted(
            &p,
            &mut cache,
            req(0, 2, Flavor::Normal),
            10,
            CM::Strong,
            &schedule,
            100,
        );
        assert_eq!((routed.hops, routed.dead_skipped), (2, 0));
    }

    #[test]
    fn both_peers_dead_falls_back_to_origin() {
        let p = failover_plan();
        let mut cache = Lru::new(100);
        let schedule = down(&[1, 2], false);
        let routed = resolve_faulted(
            &p,
            &mut cache,
            req(0, 1, Flavor::Normal),
            10,
            CM::Strong,
            &schedule,
            0,
        );
        assert_eq!(routed.resolution, Resolution::CacheMiss);
        assert_eq!(routed.hops, 9);
        assert_eq!(routed.dead_skipped, 2);
        assert!(routed.from_origin);
    }

    #[test]
    fn no_live_copy_fails_without_polluting_cache() {
        let p = failover_plan();
        let mut cache = Lru::new(100);
        let schedule = down(&[1, 2], true);
        let routed = resolve_faulted(
            &p,
            &mut cache,
            req(0, 1, Flavor::Normal),
            10,
            CM::Strong,
            &schedule,
            0,
        );
        assert_eq!(routed.resolution, Resolution::Failed);
        assert_eq!(routed.dead_skipped, 3);
        assert!(cache.is_empty(), "failed fetch must not admit the object");
        // A cached copy still serves locally during the blackout.
        cache.insert(cdn_cache::ObjectKey::new(0, 1), 10);
        let routed = resolve_faulted(
            &p,
            &mut cache,
            req(0, 1, Flavor::Normal),
            10,
            CM::Strong,
            &schedule,
            1,
        );
        assert_eq!(routed.resolution, Resolution::CacheHit);
    }

    #[test]
    fn strong_refresh_fails_but_weak_serves_stale_during_blackout() {
        let p = failover_plan();
        let schedule = down(&[1, 2], true);
        let mut cache = Lru::new(100);
        cache.insert(cdn_cache::ObjectKey::new(0, 1), 10);
        let strong = resolve_faulted(
            &p,
            &mut cache,
            req(0, 1, Flavor::Expired),
            10,
            CM::Strong,
            &schedule,
            0,
        );
        assert_eq!(strong.resolution, Resolution::Failed);
        let weak = resolve_faulted(
            &p,
            &mut cache,
            req(0, 1, Flavor::Expired),
            10,
            CM::Weak,
            &schedule,
            0,
        );
        assert_eq!(weak.resolution, Resolution::CacheHit);
        assert_eq!(weak.dead_skipped, 0);
    }

    #[test]
    fn down_first_hop_skips_local_service_and_cache() {
        let p = failover_plan();
        let mut cache = Lru::new(100);
        cache.insert(cdn_cache::ObjectKey::new(0, 1), 10);
        let schedule = down(&[0], false);
        let routed = resolve_faulted(
            &p,
            &mut cache,
            req(0, 1, Flavor::Normal),
            10,
            CM::Strong,
            &schedule,
            0,
        );
        // The cached copy is unreachable: the client retries to the nearest
        // live holder, paying one skip for the dead first hop.
        assert_eq!(routed.resolution, Resolution::Bypass);
        assert_eq!(routed.hops, 2);
        assert_eq!(routed.dead_skipped, 1);
        assert_eq!(cache.len(), 1, "crashed server's cache must not change");
    }

    #[test]
    fn down_replicator_fails_over_off_its_own_replica() {
        // Server 0 replicates the site (it heads its own holder list) but
        // is down: the request must reach the next holder.
        let p = ServerPlan {
            server: 0,
            replicated: vec![true],
            nearest_hops: vec![0],
            nearest_is_primary: vec![false],
            holders: vec![vec![
                Holder {
                    server: Some(0),
                    hops: 0,
                },
                Holder {
                    server: None,
                    hops: 9,
                },
            ]],
            cache_bytes: 0,
        };
        let mut cache = Lru::new(0);
        let schedule = down(&[0], false);
        let routed = resolve_faulted(
            &p,
            &mut cache,
            req(0, 1, Flavor::Normal),
            10,
            CM::Strong,
            &schedule,
            0,
        );
        assert_eq!(routed.resolution, Resolution::Bypass);
        assert_eq!(routed.hops, 9);
        assert_eq!(routed.dead_skipped, 1);
        assert!(routed.from_origin);
        // Up again: served from the local replica.
        let routed = resolve_faulted(
            &p,
            &mut cache,
            req(0, 1, Flavor::Normal),
            10,
            CM::Strong,
            &schedule,
            200,
        );
        assert_eq!(routed.resolution, Resolution::Replica);
    }

    #[test]
    fn simulate_server_faulted_accounts_failures_and_failovers() {
        let p = failover_plan();
        let cfg = SimConfig {
            faults: Some(FaultParams {
                retry_penalty_ms: 100.0,
                ..Default::default()
            }),
            ..Default::default()
        };
        // Holder 1 down for ticks [0,2); everything down at tick 3.
        let schedule = crate::fault::FaultSchedule::from_windows(
            vec![Vec::new(), vec![(0, 2), (3, 4)], vec![(3, 4)]],
            vec![(3, 4)],
        );
        let stream = vec![
            req(0, 1, Flavor::Normal), // tick 0: failover to holder 2 (5 hops + 1 retry)
            req(0, 1, Flavor::Normal), // tick 1: cache hit
            req(0, 2, Flavor::Normal), // tick 2: miss to holder 1 (2 hops)
            req(0, 3, Flavor::Normal), // tick 3: everything down -> failed
        ];
        let report = simulate_server_faulted(
            &p,
            &cfg,
            stream.into_iter(),
            0,
            |_, _| 10,
            Box::new(Lru::new(p.cache_bytes)),
            Some(&schedule),
        );
        assert_eq!(report.measured_requests, 4);
        assert_eq!(report.failed_requests, 1);
        assert_eq!(report.failover_fetches, 1);
        assert_eq!(report.peer_fetches, 1);
        assert_eq!(report.cache_hits, 1);
        assert_eq!(
            report.histogram.count(),
            3,
            "failed requests record no latency"
        );
        assert_eq!(report.failover_histogram.count(), 1);
        // Failover latency: 20 * (1 + 5) + 100 * 1 = 220 ms.
        assert!((report.failover_histogram.mean() - 220.0).abs() < 1e-9);
        // Failed request delivered nothing.
        assert_eq!(report.total_bytes, 30);
        assert_eq!(report.cost_hops, 5 + 2);
    }

    #[test]
    fn delayed_hits_coalesce_onto_pending_fetch() {
        // Non-replicated site 3 hops away, fetch takes 2 ticks: the miss at
        // tick 0 puts the fetch in flight until tick 2, so the hit at
        // tick 1 is a delayed hit and the hit at tick 2 is a plain one.
        let p = plan(vec![false], vec![3], 1000);
        let cfg = SimConfig {
            fetch_latency: Some(2),
            ..Default::default()
        };
        let stream = vec![
            req(0, 1, Flavor::Normal), // tick 0: miss, fetch ready at 2
            req(0, 1, Flavor::Normal), // tick 1: delayed hit (rides fetch)
            req(0, 1, Flavor::Normal), // tick 2: fetch landed -> cache hit
        ];
        let report = simulate_server(
            &p,
            &cfg,
            stream.into_iter(),
            0,
            |_, _| 10,
            Box::new(Lru::new(p.cache_bytes)),
        );
        assert_eq!(report.origin_fetches, 1);
        assert_eq!(report.delayed_hits, 1);
        assert_eq!(report.cache_hits, 1);
        assert_eq!(report.local_requests, 1, "delayed hits are not local");
        // The delayed hit pays the pending fetch's transfer delay but adds
        // no hops of its own.
        assert_eq!(report.cost_hops, 3);
        assert_eq!(report.total_bytes, 30, "all three requests deliver");
        assert!((report.cause.delayed_hit.latency_ms - 80.0).abs() < 1e-9);
        // Causes stay disjoint and sum to measured.
        assert_eq!(report.cause.total_requests(), report.measured_requests);
        assert_eq!(
            report.delayed_hits + report.local_requests + report.origin_fetches,
            report.measured_requests
        );
    }

    #[test]
    fn zero_capacity_cache_still_coalesces_pending_fetches() {
        // With no cache at all, back-to-back requests for the same object
        // are all misses under instant fetch — but with a fetch in flight
        // the later ones coalesce, which is exactly the miss-reduction
        // delayed hits exist to model.
        let p = plan(vec![false], vec![2], 0);
        let cfg = SimConfig {
            fetch_latency: Some(3),
            ..Default::default()
        };
        let stream = vec![
            req(0, 1, Flavor::Normal), // tick 0: miss, ready at 3
            req(0, 1, Flavor::Normal), // tick 1: miss, but pending -> delayed
            req(0, 1, Flavor::Normal), // tick 2: delayed again
            req(0, 1, Flavor::Normal), // tick 3: fetch done -> fresh miss
        ];
        let report = simulate_server(
            &p,
            &cfg,
            stream.into_iter(),
            0,
            |_, _| 10,
            Box::new(Lru::new(p.cache_bytes)),
        );
        assert_eq!(report.origin_fetches, 2);
        assert_eq!(report.delayed_hits, 2);
        assert_eq!(report.cache_hits, 0);
        assert_eq!(report.cost_hops, 4, "only the two real fetches travel");
        assert_eq!(report.origin_bytes, 20, "coalesced bytes skip the origin");
    }

    #[test]
    fn fetch_latency_off_switches_are_equivalent() {
        // `None` and `Some(0)` must both run the instant-fetch path.
        let p = plan(vec![false], vec![3], 1000);
        let stream: Vec<_> = (0..20).map(|i| req(0, i % 4, Flavor::Normal)).collect();
        let run = |fetch_latency| {
            let cfg = SimConfig {
                fetch_latency,
                ..Default::default()
            };
            simulate_server(
                &p,
                &cfg,
                stream.clone().into_iter(),
                4,
                |_, _| 10,
                Box::new(Lru::new(p.cache_bytes)),
            )
        };
        let off = run(None);
        let zero = run(Some(0));
        assert_eq!(off.delayed_hits, 0);
        assert_eq!(zero.delayed_hits, 0);
        assert_eq!(off.cache_hits, zero.cache_hits);
        assert_eq!(off.cost_hops, zero.cost_hops);
        assert_eq!(off.histogram.bin_counts(), zero.histogram.bin_counts());
        assert_eq!(off.cause, zero.cause);
    }

    #[test]
    fn delayed_hits_appear_in_timeline_windows() {
        let p = plan(vec![false], vec![3], 1000);
        let cfg = SimConfig {
            fetch_latency: Some(2),
            window: Some(2),
            ..Default::default()
        };
        let stream = vec![
            req(0, 1, Flavor::Normal), // tick 0: miss
            req(0, 1, Flavor::Normal), // tick 1: delayed hit
            req(0, 1, Flavor::Normal), // tick 2: cache hit
            req(0, 2, Flavor::Normal), // tick 3: miss
        ];
        let report = simulate_server(
            &p,
            &cfg,
            stream.into_iter(),
            0,
            |_, _| 10,
            Box::new(Lru::new(p.cache_bytes)),
        );
        let tl = report.timeline.as_ref().unwrap();
        let sum: u64 = tl.windows.iter().map(|(_, w)| w.delayed_hits).sum();
        assert_eq!(sum, report.delayed_hits);
        assert_eq!(tl.windows[0].1.delayed_hits, 1);
        assert_eq!(tl.windows[1].1.delayed_hits, 0);
    }

    #[test]
    fn zero_capacity_cache_never_hits() {
        let p = plan(vec![false], vec![2], 0);
        let cfg = SimConfig::default();
        let stream = vec![req(0, 1, Flavor::Normal), req(0, 1, Flavor::Normal)];
        let report = simulate_server(
            &p,
            &cfg,
            stream.into_iter(),
            0,
            |_, _| 10,
            Box::new(Lru::new(p.cache_bytes)),
        );
        assert_eq!(report.cache_hits, 0);
        assert_eq!(report.cost_hops, 4);
    }
}
