//! Trace-driven simulation of the hybrid CDN.
//!
//! Reproduces the paper's evaluation loop: every client request arrives at
//! its *first-hop* CDN server; if the site is replicated there (or the
//! object is cached) the request is served locally, otherwise it is
//! redirected to the nearest holder `SN_j^(i)` and the response is cached
//! on the way back. Latency is `hop_delay × (1 + hops to the serving
//! node)` — one access hop to the first-hop server plus the redirect — with
//! "propagation, queueing and processing delay inside the core network ...
//! 20 ms/hop".
//!
//! Consistency follows the paper's second experiment: replicas are always
//! consistent (the CDN pushes invalidations), while a cache hit on an
//! *expired* object pays a refresh round to the nearest replica.
//!
//! * [`metrics`] — latency histogram / CDF / mean, cost counters.
//! * [`plan`] — the per-server view of a placement (what is replicated,
//!   how far the nearest copy is, how much space the cache gets).
//! * [`engine`] — the per-server request loop.
//! * [`runner`] — whole-system simulation, parallel across servers.

pub mod engine;
pub mod metrics;
pub mod plan;
pub mod runner;

pub use engine::{simulate_server, ServerReport};
pub use metrics::{LatencyHistogram, SimReport};
pub use plan::{ConsistencyMode, ServerPlan, SimConfig};
pub use runner::{simulate_system, simulate_system_streams};
