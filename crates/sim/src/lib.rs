//! Trace-driven simulation of the hybrid CDN.
//!
//! Reproduces the paper's evaluation loop: every client request arrives at
//! its *first-hop* CDN server; if the site is replicated there (or the
//! object is cached) the request is served locally, otherwise it is
//! redirected to the nearest holder `SN_j^(i)` and the response is cached
//! on the way back. Latency is `hop_delay × (1 + hops to the serving
//! node)` — one access hop to the first-hop server plus the redirect — with
//! "propagation, queueing and processing delay inside the core network ...
//! 20 ms/hop".
//!
//! Consistency follows the paper's second experiment: replicas are always
//! consistent (the CDN pushes invalidations), while a cache hit on an
//! *expired* object pays a refresh round to the nearest replica.
//!
//! Fault injection (see [`fault`]) layers crash/recovery windows and
//! origin outages on top: requests fail over along each server's
//! distance-ranked holder list to the next-nearest *live* copy, paying a
//! retry penalty per dead holder skipped, and are dropped
//! ([`engine::Resolution::Failed`]) when no live copy exists. Fault-free
//! configurations take the exact legacy code path and stay bit-identical.
//!
//! * [`metrics`] — latency histogram / CDF / mean, cost counters.
//! * [`plan`] — the per-server view of a placement (what is replicated,
//!   how far the nearest copy is, how much space the cache gets).
//! * [`engine`] — the per-server request loop.
//! * [`fault`] — deterministic crash/recovery and origin-outage schedules.
//! * [`shard`] — contiguous server shards and the determinism contract
//!   that keeps sharded runs bit-identical at any thread or shard count.
//! * [`runner`] — whole-system simulation, parallel across server shards.
//! * [`timeline`] — virtual-time windowed telemetry: per-window counters,
//!   latency quantile sketches, and per-server hotspot attribution, merged
//!   across shards in global server order so timelines are byte-identical
//!   at any thread or shard count.

pub mod engine;
pub mod fault;
pub mod metrics;
pub mod plan;
pub mod runner;
pub mod shard;
pub mod timeline;

pub use engine::{resolve_faulted, simulate_server, simulate_server_faulted, Routed, ServerReport};
pub use fault::{FaultParams, FaultSchedule};
pub use metrics::{
    render_samples_jsonl, Cause, CauseBreakdown, CauseLatency, LatencyHistogram, RequestSample,
    SimReport,
};
pub use plan::{ConsistencyMode, Holder, ServerPlan, SimConfig};
pub use runner::{simulate_system, simulate_system_streams};
pub use shard::{shard_ranges, MAX_DEFAULT_SHARDS};
pub use timeline::{
    render_timeline_csv, render_timeline_json, ServerTimeline, Timeline, WindowStats,
};
