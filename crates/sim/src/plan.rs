//! The per-server operational view of a placement, plus simulation
//! configuration.

use crate::fault::FaultParams;
use cdn_placement::{Nearest, Placement, PlacementProblem};

/// One copy holder of a site as seen from a plan's server — the failover
/// targets of [`crate::engine::resolve_faulted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Holder {
    /// The CDN server holding the copy, or `None` for the primary (origin)
    /// site.
    pub server: Option<u32>,
    /// Hops from the plan's server to this holder.
    pub hops: u32,
}

/// What one CDN server needs to serve requests: which sites it replicates,
/// how many hops away the nearest copy of every site is, and how many bytes
/// its cache gets (the capacity left over after replicas).
#[derive(Debug, Clone)]
pub struct ServerPlan {
    pub server: usize,
    /// `replicated[j]` — site j is fully replicated here.
    pub replicated: Vec<bool>,
    /// `nearest_hops[j]` — hops to the nearest copy of site j (0 when
    /// replicated locally).
    pub nearest_hops: Vec<u32>,
    /// `nearest_is_primary[j]` — the nearest copy of site j is the primary
    /// (origin) site rather than a CDN replica.
    pub nearest_is_primary: Vec<bool>,
    /// `holders[j]` — every copy holder of site j (replicators plus the
    /// primary) ranked by distance. `holders[j][0]` always matches
    /// `nearest_hops[j]`/`nearest_is_primary[j]`; later entries are the
    /// failover order when holders are down.
    pub holders: Vec<Vec<Holder>>,
    /// Bytes available to the LRU cache.
    pub cache_bytes: u64,
}

impl ServerPlan {
    /// Extract server `i`'s plan from a placement.
    pub fn from_placement(problem: &PlacementProblem, placement: &Placement, i: usize) -> Self {
        let m = problem.m_sites();
        let replicated = (0..m).map(|j| placement.is_replicated(i, j)).collect();
        let nearest_hops = (0..m)
            .map(|j| placement.nearest_dist(problem, i, j))
            .collect();
        let nearest_is_primary = (0..m)
            .map(|j| matches!(placement.nearest(i, j), Nearest::Primary))
            .collect();
        let holders = (0..m)
            .map(|j| {
                placement
                    .ranked_holders(problem, i, j)
                    .into_iter()
                    .map(|h| Holder {
                        server: match h.holder {
                            Nearest::Primary => None,
                            Nearest::Server(k) => Some(k),
                        },
                        hops: h.dist,
                    })
                    .collect()
            })
            .collect();
        Self {
            server: i,
            replicated,
            nearest_hops,
            nearest_is_primary,
            holders,
            cache_bytes: placement.free_bytes(i),
        }
    }

    /// Plans for every server.
    pub fn all_from_placement(problem: &PlacementProblem, placement: &Placement) -> Vec<Self> {
        (0..problem.n_servers())
            .map(|i| Self::from_placement(problem, placement, i))
            .collect()
    }
}

/// How stale cached copies are handled (paper §3.3). Replicas are always
/// push-invalidated by the CDN; this governs the *cache*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConsistencyMode {
    /// Accessed copies are always up to date: a cache hit on an expired
    /// object pays a refresh round to the nearest replica (the paper's
    /// second experiment).
    #[default]
    Strong,
    /// Accessed copies might be stale: expired objects are served from the
    /// cache at local latency (the client may see old content).
    Weak,
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Per-hop network delay, ms. The paper sets 20 ms/hop (propagation +
    /// queueing + processing).
    pub hop_delay_ms: f64,
    /// Fraction of each server's stream used to warm the cache before
    /// measurement starts ("we allowed an appropriate warm-up period").
    pub warmup_fraction: f64,
    /// Latency-histogram bin width (ms) and bin count.
    pub bin_ms: f64,
    pub n_bins: usize,
    /// Cache-consistency regime for expired objects.
    pub consistency: ConsistencyMode,
    /// Fault injection: `None` runs the exact fault-free code path (and is
    /// guaranteed bit-identical to `Some` of zero-fault parameters).
    pub faults: Option<FaultParams>,
    /// Sample every Nth request of each server's stream into
    /// [`crate::RequestSample`]s (`None` disables sampling). Keyed on the
    /// request's deterministic per-stream index, so the sampled set is
    /// identical at any thread count. Sampling never perturbs the
    /// simulation or its deterministic outputs.
    pub sample_every: Option<u64>,
    /// Virtual-time window width, in per-server stream ticks, for the
    /// windowed timeline ([`crate::timeline::Timeline`]). `None` *and*
    /// `Some(0)` both disable the timeline entirely — `--window 0` on the
    /// CLI is the documented off switch, and the disabled path is
    /// bit-identical to a build without the feature. Windows are keyed by
    /// `tick / width` on the same deterministic per-stream index the
    /// sampler uses, so timelines are byte-identical at any thread or
    /// shard count.
    pub window: Option<u64>,
    /// Remote-fetch completion latency, in per-server stream ticks, for
    /// delayed-hit coalescing. With a positive value, a cache miss puts the
    /// object's fetch *in flight* for that many ticks; requests for the
    /// same object arriving before it completes coalesce onto the pending
    /// fetch as [`crate::Cause::DelayedHit`]s instead of counting as
    /// independent hits/misses. `None` *and* `Some(0)` both run the exact
    /// instant-fetch code path (bit-identical to a build without the
    /// feature) — `--fetch-latency 0` is the documented off switch. The
    /// table is per server and keyed on the deterministic stream tick, so
    /// results stay byte-identical at any thread or shard count.
    pub fetch_latency: Option<u64>,
    /// Number of engine shards (contiguous server ranges run as parallel
    /// units). `None` picks `min(n_servers, 64)`. The shard count is part
    /// of the configuration, never derived from the thread count, so
    /// results are bit-identical at any parallelism — and, because all
    /// order-sensitive float folds happen per server at the final merge,
    /// at any shard count too.
    pub shards: Option<usize>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            hop_delay_ms: 20.0,
            warmup_fraction: 0.2,
            bin_ms: 1.0,
            n_bins: 4096,
            consistency: ConsistencyMode::Strong,
            faults: None,
            sample_every: None,
            window: None,
            fetch_latency: None,
            shards: None,
        }
    }
}

impl SimConfig {
    pub(crate) fn validate(&self) {
        assert!(
            self.hop_delay_ms > 0.0 && self.hop_delay_ms.is_finite(),
            "hop delay must be positive"
        );
        assert!(
            (0.0..1.0).contains(&self.warmup_fraction),
            "warm-up fraction must be in [0, 1)"
        );
        assert!(
            self.sample_every != Some(0),
            "sample_every must be at least 1 (or None to disable)"
        );
        assert!(
            self.shards != Some(0),
            "shards must be at least 1 (or None for the default)"
        );
        if let Some(faults) = &self.faults {
            faults.validate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_placement::PlacementProblem;

    fn tiny_problem() -> PlacementProblem {
        // 2 servers 3 hops apart, 2 sites with primaries 10/12 hops away.
        PlacementProblem::new(
            2,
            2,
            vec![0, 3, 3, 0],
            vec![10, 12, 11, 13],
            vec![1000, 1000],
            vec![1500, 1500],
            vec![5, 5, 5, 5],
            vec![0.0, 0.0],
            100.0,
            10,
            1.0,
        )
    }

    #[test]
    fn plan_reflects_placement() {
        let p = tiny_problem();
        let mut pl = Placement::primaries_only(&p);
        pl.add_replica(&p, 0, 1);
        let plans = ServerPlan::all_from_placement(&p, &pl);
        assert_eq!(plans.len(), 2);
        assert!(plans[0].replicated[1]);
        assert_eq!(plans[0].nearest_hops[1], 0);
        assert_eq!(plans[0].cache_bytes, 500);
        assert!(!plans[0].nearest_is_primary[1]);
        assert!(!plans[1].replicated[1]);
        assert_eq!(plans[1].nearest_hops[1], 3); // via server 0, closer than primary (13)
        assert!(!plans[1].nearest_is_primary[1]);
        assert_eq!(plans[1].nearest_hops[0], 11); // primary
        assert!(plans[1].nearest_is_primary[0]);
        assert_eq!(plans[1].cache_bytes, 1500);

        // Holder lists: rank 0 mirrors the scalar nearest fields, and every
        // copy (replicas + primary) appears in distance order.
        for plan in &plans {
            for j in 0..2 {
                let h = &plan.holders[j];
                assert_eq!(h[0].hops, plan.nearest_hops[j]);
                assert_eq!(h[0].server.is_none(), plan.nearest_is_primary[j]);
                for w in h.windows(2) {
                    assert!(w[0].hops <= w[1].hops);
                }
            }
        }
        // Site 1 is replicated at server 0: server 1 can fail over from the
        // replica (3 hops) to the primary (13 hops).
        assert_eq!(
            plans[1].holders[1],
            vec![
                Holder {
                    server: Some(0),
                    hops: 3
                },
                Holder {
                    server: None,
                    hops: 13
                },
            ]
        );
        // Site 0 has no replicas: the primary is the only holder.
        assert_eq!(
            plans[1].holders[0],
            vec![Holder {
                server: None,
                hops: 11
            }]
        );
    }

    #[test]
    fn default_config_is_papers() {
        let c = SimConfig::default();
        assert_eq!(c.hop_delay_ms, 20.0);
        c.validate();
    }

    #[test]
    fn zero_window_is_a_valid_off_switch() {
        // Unlike sample_every/shards, `window: Some(0)` is the documented
        // way to force the timeline off and must validate cleanly.
        let c = SimConfig {
            window: Some(0),
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    fn zero_fetch_latency_is_a_valid_off_switch() {
        // `fetch_latency: Some(0)` disables delayed-hit coalescing exactly
        // like `None` — `--fetch-latency 0` must validate cleanly.
        let c = SimConfig {
            fetch_latency: Some(0),
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "sample_every")]
    fn zero_sample_every_rejected() {
        let c = SimConfig {
            sample_every: Some(0),
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic]
    fn full_warmup_rejected() {
        let c = SimConfig {
            warmup_fraction: 1.0,
            ..Default::default()
        };
        c.validate();
    }
}
