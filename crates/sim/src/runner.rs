//! Whole-system simulation: the fleet is split into contiguous server
//! shards that run in parallel (servers are fully independent — separate
//! caches, separate streams); each shard folds its servers' results as it
//! goes, and the shard accumulators merge in fixed shard order into a
//! single [`SimReport`]. See the [`crate::shard`] module for the
//! determinism contract.

use crate::engine::{simulate_server_faulted, ServerReport, SiteObs};
use crate::fault::FaultSchedule;
use crate::metrics::{Cause, CauseBreakdown, LatencyHistogram, SimReport};
use crate::plan::{ServerPlan, SimConfig};
use crate::shard::shard_ranges;
use cdn_cache::{Cache, LruCache};
use cdn_placement::{Placement, PlacementProblem};
use cdn_telemetry::{self as telemetry, TraceBuffer, Value};
use cdn_workload::{Request, SiteCatalog, TraceSpec};
use rayon::prelude::*;

/// Simulate `placement` under the request streams of `trace`.
///
/// `make_cache` builds the replacement policy per server; it receives the
/// plan's cache size in bytes and its result is used as-is (so a factory
/// that ignores its argument models a cache-less CDN). Pass `None` for the
/// paper's plain LRU sized to the plan.
pub fn simulate_system(
    problem: &PlacementProblem,
    placement: &Placement,
    catalog: &SiteCatalog,
    trace: &TraceSpec,
    config: &SimConfig,
    make_cache: Option<&(dyn Fn(u64) -> Box<dyn Cache> + Sync)>,
) -> SimReport {
    assert_eq!(
        trace.n_servers(),
        problem.n_servers(),
        "trace/problem server count mismatch"
    );
    let lengths: Vec<u64> = (0..trace.n_servers())
        .map(|i| trace.len_for_server(i))
        .collect();
    simulate_system_streams(
        problem,
        placement,
        catalog,
        config,
        make_cache,
        &lengths,
        |server| trace.stream_for_server(server),
    )
}

/// Generalisation of [`simulate_system`] over arbitrary request streams —
/// the entry point for non-stationary workloads (e.g. popularity drift via
/// `cdn_workload::Drifted`). `lengths[i]` must be stream `i`'s length (used
/// to size the warm-up window).
pub fn simulate_system_streams<F, I>(
    problem: &PlacementProblem,
    placement: &Placement,
    catalog: &SiteCatalog,
    config: &SimConfig,
    make_cache: Option<&(dyn Fn(u64) -> Box<dyn Cache> + Sync)>,
    lengths: &[u64],
    streams: F,
) -> SimReport
where
    F: Fn(usize) -> I + Sync,
    I: Iterator<Item = Request>,
{
    config.validate();
    assert_eq!(
        catalog.m(),
        problem.m_sites(),
        "catalog/problem site count mismatch"
    );
    assert_eq!(
        lengths.len(),
        problem.n_servers(),
        "lengths/problem server count mismatch"
    );

    // The fault schedule is fully precomputed before the parallel loop, so
    // runs stay deterministic regardless of thread scheduling.
    let schedule: Option<FaultSchedule> = config.faults.map(|f| {
        let horizon = lengths.iter().copied().max().unwrap_or(0);
        FaultSchedule::generate(&f, problem.n_servers(), horizon)
    });

    // Mean (unweighted) object size, for pre-sizing the default caches to
    // their expected resident count instead of growing through warm-up.
    let total_objects: usize = catalog.sites.iter().map(|s| s.object_sizes.len()).sum();
    let mean_object_bytes = if total_objects == 0 {
        0.0
    } else {
        catalog.total_bytes() as f64 / total_objects as f64
    };

    // Sharded fan-out: contiguous server ranges run as parallel units.
    // Each shard walks its servers sequentially in ascending server order,
    // building every plan lazily, folding associative state (integer
    // histogram bins, u64 counters, samples, trace lanes) eagerly, and
    // keeping only a small per-server [`ServerStats`] for the
    // order-sensitive float folds — so nothing per-server of histogram
    // size outlives its shard. The ordered collect plus the fixed
    // shard-order concatenation keep every output bit-identical at any
    // thread count; deferring the float folds to the per-server final
    // merge makes them bit-identical at any *shard* count too (see the
    // `shard` module for the full contract).
    let ranges = shard_ranges(problem.n_servers(), config.shards);
    let _prof = telemetry::profile::span("sim.system");
    let trace_on = telemetry::trace_installed();
    let shards: Vec<ShardAccum> = ranges
        .par_iter()
        .map(|range| {
            let mut acc = ShardAccum::new(config, trace_on);
            for server in range.clone() {
                let _prof = telemetry::profile::span("sim.server");
                let plan = ServerPlan::from_placement(problem, placement, server);
                let warmup = (lengths[server] as f64 * config.warmup_fraction) as u64;
                let cache: Box<dyn Cache> = match make_cache {
                    Some(f) => f(plan.cache_bytes),
                    None => {
                        let expected = if mean_object_bytes > 0.0 {
                            (plan.cache_bytes as f64 / mean_object_bytes).ceil() as usize
                        } else {
                            0
                        };
                        Box::new(LruCache::with_expected_objects(plan.cache_bytes, expected))
                    }
                };
                let report = simulate_server_faulted(
                    &plan,
                    config,
                    streams(server),
                    warmup,
                    |site, object| catalog.sites[site as usize].object_sizes[object as usize],
                    cache,
                    schedule.as_ref(),
                );
                acc.fold(report);
            }
            acc
        })
        .collect();

    let mut merged = merge_shards(shards, config);
    let lanes = std::mem::take(&mut merged.lanes);
    emit_observability(&merged, lanes, schedule.as_ref());
    assemble_report(merged, config)
}

/// Per-server scalars retained after the full [`ServerReport`] is folded
/// into its shard accumulator. The f64 fields are folded in global server
/// order at the final merge, reproducing the unsharded runner's exact
/// floating-point addition sequence.
pub(crate) struct ServerStats {
    server: usize,
    total_requests: u64,
    measured_requests: u64,
    local_requests: u64,
    cache_hits: u64,
    replica_hits: u64,
    delayed_hits: u64,
    origin_fetches: u64,
    peer_fetches: u64,
    failover_fetches: u64,
    failed_requests: u64,
    total_bytes: u64,
    origin_bytes: u64,
    cost_hops: u64,
    hist_sum_ms: f64,
    hist_n: u64,
    fail_sum_ms: f64,
    fail_n: u64,
    cause: CauseBreakdown,
    cache: Option<cdn_cache::CacheStats>,
    timeline: Option<crate::timeline::ServerTimeline>,
}

impl ServerStats {
    /// Identical to the per-server histogram's `mean()`.
    fn mean_latency_ms(&self) -> f64 {
        if self.hist_n == 0 {
            0.0
        } else {
            self.hist_sum_ms / self.hist_n as f64
        }
    }
}

/// One shard's accumulated state: eagerly folded associative quantities
/// plus the per-server scalars whose float folds wait for the final merge.
struct ShardAccum {
    stats: Vec<ServerStats>,
    hist_counts: Vec<u64>,
    hist_overflow: u64,
    hist_max_ms: f64,
    fail_counts: Vec<u64>,
    fail_overflow: u64,
    fail_max_ms: f64,
    samples: Vec<crate::metrics::RequestSample>,
    /// Per-shard trace lane: per-server buffers splice in as they finish,
    /// in server order; lanes then merge into the trace in shard order,
    /// which reproduces the flat per-server merge exactly.
    lane: Option<TraceBuffer>,
}

impl ShardAccum {
    fn new(config: &SimConfig, trace_on: bool) -> Self {
        Self {
            stats: Vec::new(),
            hist_counts: vec![0; config.n_bins],
            hist_overflow: 0,
            hist_max_ms: 0.0,
            fail_counts: vec![0; config.n_bins],
            fail_overflow: 0,
            fail_max_ms: 0.0,
            samples: Vec::new(),
            lane: trace_on.then(TraceBuffer::new),
        }
    }

    /// Fold one server's report in and drop it — the report's histograms
    /// and per-site observability do not outlive this call.
    fn fold(&mut self, mut report: ServerReport) {
        if let Some(lane) = &mut self.lane {
            lane.merge_child(server_trace_buffer(&report));
        }
        for (a, &b) in self
            .hist_counts
            .iter_mut()
            .zip(report.histogram.bin_counts())
        {
            *a += b;
        }
        self.hist_overflow += report.histogram.overflow_count();
        self.hist_max_ms = self.hist_max_ms.max(report.histogram.max());
        for (a, &b) in self
            .fail_counts
            .iter_mut()
            .zip(report.failover_histogram.bin_counts())
        {
            *a += b;
        }
        self.fail_overflow += report.failover_histogram.overflow_count();
        self.fail_max_ms = self.fail_max_ms.max(report.failover_histogram.max());
        self.samples.append(&mut report.samples);
        self.stats.push(ServerStats {
            server: report.server,
            total_requests: report.total_requests,
            measured_requests: report.measured_requests,
            local_requests: report.local_requests,
            cache_hits: report.cache_hits,
            replica_hits: report.replica_hits,
            delayed_hits: report.delayed_hits,
            origin_fetches: report.origin_fetches,
            peer_fetches: report.peer_fetches,
            failover_fetches: report.failover_fetches,
            failed_requests: report.failed_requests,
            total_bytes: report.total_bytes,
            origin_bytes: report.origin_bytes,
            cost_hops: report.cost_hops,
            hist_sum_ms: report.histogram.sum_ms(),
            hist_n: report.histogram.count(),
            fail_sum_ms: report.failover_histogram.sum_ms(),
            fail_n: report.failover_histogram.count(),
            cause: report.cause,
            cache: report.obs.as_ref().map(|o| o.cache),
            timeline: report.timeline,
        });
    }
}

/// Everything the observability emission and the final report need, merged
/// across shards in shard order (= global server order).
struct SystemAccum {
    /// Per-server stats in global server order.
    stats: Vec<ServerStats>,
    histogram: LatencyHistogram,
    failover_histogram: LatencyHistogram,
    samples: Vec<crate::metrics::RequestSample>,
    /// Folded per server in server order — shared by the registry counters
    /// and the report so both see the identical float fold.
    cause: CauseBreakdown,
    /// Global windowed timeline, folded from the per-server series in
    /// server order (so its one float fold is shard-count independent).
    timeline: Option<crate::timeline::Timeline>,
    lanes: Vec<TraceBuffer>,
}

fn merge_shards(shards: Vec<ShardAccum>, config: &SimConfig) -> SystemAccum {
    let mut hist_counts = vec![0u64; config.n_bins];
    let mut hist_overflow = 0u64;
    let mut hist_max = 0.0f64;
    let mut fail_counts = vec![0u64; config.n_bins];
    let mut fail_overflow = 0u64;
    let mut fail_max = 0.0f64;
    let mut stats = Vec::new();
    let mut samples = Vec::new();
    let mut lanes = Vec::new();
    for sh in shards {
        for (a, b) in hist_counts.iter_mut().zip(sh.hist_counts) {
            *a += b;
        }
        hist_overflow += sh.hist_overflow;
        hist_max = hist_max.max(sh.hist_max_ms);
        for (a, b) in fail_counts.iter_mut().zip(sh.fail_counts) {
            *a += b;
        }
        fail_overflow += sh.fail_overflow;
        fail_max = fail_max.max(sh.fail_max_ms);
        stats.extend(sh.stats);
        samples.extend(sh.samples);
        if let Some(lane) = sh.lane {
            lanes.push(lane);
        }
    }
    // The order-sensitive float folds: per server, in global server order,
    // exactly as the unsharded merge performed them.
    let mut cause = CauseBreakdown::default();
    let mut hist_sum = 0.0f64;
    let mut fail_sum = 0.0f64;
    let mut hist_n = 0u64;
    let mut fail_n = 0u64;
    for s in &stats {
        cause.merge(&s.cause);
        hist_sum += s.hist_sum_ms;
        fail_sum += s.fail_sum_ms;
        hist_n += s.hist_n;
        fail_n += s.fail_n;
    }
    // The timeline fold is per server in the same global order: `stats` is
    // shard-concatenated and shards are contiguous ascending ranges.
    let timeline = match config.window.unwrap_or(0) {
        0 => None,
        width => Some(crate::timeline::Timeline::from_per_server(
            width,
            stats.iter_mut().filter_map(|s| s.timeline.take()).collect(),
        )),
    };
    SystemAccum {
        stats,
        histogram: LatencyHistogram::from_parts(
            config.bin_ms,
            hist_counts,
            hist_overflow,
            hist_sum,
            hist_n,
            hist_max,
        ),
        failover_histogram: LatencyHistogram::from_parts(
            config.bin_ms,
            fail_counts,
            fail_overflow,
            fail_sum,
            fail_n,
            fail_max,
        ),
        samples,
        cause,
        timeline,
        lanes,
    }
}

/// Build one server's trace contribution (runs inside the parallel map).
fn server_trace_buffer(report: &ServerReport) -> TraceBuffer {
    let mut buf = TraceBuffer::new();
    let span = buf.enter("sim.server");
    let mut fields = vec![
        ("server", Value::from(report.server)),
        ("total", Value::U64(report.total_requests)),
        ("measured", Value::U64(report.measured_requests)),
        ("local", Value::U64(report.local_requests)),
        ("cache_hits", Value::U64(report.cache_hits)),
        ("replica_hits", Value::U64(report.replica_hits)),
        ("delayed_hits", Value::U64(report.delayed_hits)),
        ("origin_fetches", Value::U64(report.origin_fetches)),
        ("peer_fetches", Value::U64(report.peer_fetches)),
        ("failover_fetches", Value::U64(report.failover_fetches)),
        ("failed", Value::U64(report.failed_requests)),
        ("histogram_fills", Value::U64(report.histogram.count())),
    ];
    if let Some(obs) = &report.obs {
        fields.push(("cache_evictions", Value::U64(obs.cache.evictions)));
        fields.push(("cache_insertions", Value::U64(obs.cache.insertions)));
        fields.push(("cache_rejections", Value::U64(obs.cache.rejections)));
    }
    buf.event("sim.server", fields);
    if let Some(obs) = &report.obs {
        let quiet = SiteObs::default();
        for (site, o) in obs.per_site.iter().enumerate() {
            if *o == quiet {
                continue;
            }
            buf.event(
                "sim.site",
                vec![
                    ("site", Value::from(site)),
                    ("local_hits", Value::U64(o.local_hits)),
                    ("remote_fetches", Value::U64(o.remote_fetches)),
                    ("failovers", Value::U64(o.failovers)),
                    ("failed", Value::U64(o.failed)),
                ],
            );
        }
    }
    buf.exit(span);
    buf
}

/// Flush counters and the (fixed-order) trace after the parallel fan-out.
fn emit_observability(
    merged: &SystemAccum,
    lanes: Vec<TraceBuffer>,
    schedule: Option<&FaultSchedule>,
) {
    if !telemetry::enabled() {
        return;
    }
    let reg = telemetry::registry();
    let stats = &merged.stats;
    let sum = |f: fn(&ServerStats) -> u64| stats.iter().map(f).sum::<u64>();
    reg.counter("sim.requests_total")
        .add(sum(|s| s.total_requests));
    reg.counter("sim.requests_measured")
        .add(sum(|s| s.measured_requests));
    reg.counter("sim.local_requests")
        .add(sum(|s| s.local_requests));
    reg.counter("sim.cache_hits").add(sum(|s| s.cache_hits));
    reg.counter("sim.replica_hits").add(sum(|s| s.replica_hits));
    reg.counter("sim.origin_fetches")
        .add(sum(|s| s.origin_fetches));
    reg.counter("sim.peer_fetches").add(sum(|s| s.peer_fetches));
    reg.counter("sim.failover_fetches")
        .add(sum(|s| s.failover_fetches));
    reg.counter("sim.failed_requests")
        .add(sum(|s| s.failed_requests));
    reg.counter("sim.histogram_fills")
        .add(sum(|s| s.hist_n + s.fail_n));
    let cache_sum = |f: fn(&cdn_cache::CacheStats) -> u64| {
        stats
            .iter()
            .filter_map(|s| s.cache.as_ref().map(f))
            .sum::<u64>()
    };
    reg.counter("sim.cache_evictions")
        .add(cache_sum(|c| c.evictions));
    reg.counter("sim.cache_insertions")
        .add(cache_sum(|c| c.insertions));
    reg.counter("sim.cache_rejections")
        .add(cache_sum(|c| c.rejections));
    // Per-server mean latency distribution — filled sequentially here, so
    // the fixed-shape bins accumulate in a deterministic order too.
    let latency_hist = reg.histogram("sim.server_mean_latency_ms", 5.0, 400);
    for s in stats {
        latency_hist.record(s.mean_latency_ms());
    }
    // Cause attribution: request counts plus latency totals (in integer
    // microseconds, rounded once per run, so accumulation across several
    // sim runs stays exact and deterministic). Per-cause counts sum to
    // `sim.requests_measured`; `cdn report` renders the table from these.
    // `merged.cause` was folded per server in server order, so the float
    // totals match the unsharded emission bit for bit.
    for c in Cause::ALL {
        let lat = merged.cause.get(c);
        reg.counter(&format!("sim.cause.{}", c.label()))
            .add(lat.requests);
        reg.counter(&format!("sim.cause.{}_latency_us", c.label()))
            .add((lat.latency_ms * 1000.0).round() as u64);
    }
    reg.counter("sim.cause.failover_surcharge_us")
        .add((merged.cause.failover_surcharge_ms * 1000.0).round() as u64);
    // Whole-run per-request latency distribution (1 ms bins, 4 s range +
    // overflow). The registry histogram's bins are pure integer counts, so
    // recording the globally merged bins yields the same snapshot as the
    // old per-server fold.
    let request_hist = reg.histogram("sim.latency_ms", 1.0, 4096);
    let bin_ms = merged.histogram.bin_ms();
    for (i, &n) in merged.histogram.bin_counts().iter().enumerate() {
        if n > 0 {
            request_hist.record_n((i as f64 + 0.5) * bin_ms, n);
        }
    }
    let overflow = merged.histogram.overflow_count();
    if overflow > 0 {
        request_hist.record_n(f64::MAX, overflow);
    }
    if let Some(s) = schedule {
        let server_windows: usize = (0..s.n_servers()).map(|i| s.server_windows(i).len()).sum();
        reg.counter("fault.server_down_windows")
            .add(server_windows as u64);
        reg.counter("fault.origin_down_windows")
            .add(s.origin_windows().len() as u64);
    }

    telemetry::with_trace(|t| {
        let span = t.enter("sim.system");
        if let Some(s) = schedule {
            for server in 0..s.n_servers() {
                for &(start, end) in s.server_windows(server) {
                    t.event(
                        "fault.server_down",
                        vec![
                            ("server", Value::from(server)),
                            ("start", Value::U64(start)),
                            ("end", Value::U64(end)),
                        ],
                    );
                }
            }
            for &(start, end) in s.origin_windows() {
                t.event(
                    "fault.origin_down",
                    vec![("start", Value::U64(start)), ("end", Value::U64(end))],
                );
            }
        }
        // Lanes arrive in shard order; merging a lane that spliced in its
        // servers' buffers in server order is record-identical to merging
        // each server's buffer here directly.
        for lane in lanes {
            t.merge(lane);
        }
        t.exit(span);
    });
}

fn assemble_report(merged: SystemAccum, _config: &SimConfig) -> SimReport {
    let SystemAccum {
        stats,
        histogram,
        failover_histogram,
        samples,
        cause,
        timeline,
        ..
    } = merged;
    let per_server: Vec<crate::metrics::ServerSummary> = stats
        .iter()
        .map(|s| crate::metrics::ServerSummary {
            server: s.server,
            measured_requests: s.measured_requests,
            mean_latency_ms: s.mean_latency_ms(),
            local_ratio: if s.measured_requests == 0 {
                0.0
            } else {
                s.local_requests as f64 / s.measured_requests as f64
            },
            cache_hit_ratio: if s.measured_requests == 0 {
                0.0
            } else {
                s.cache_hits as f64 / s.measured_requests as f64
            },
            origin_fetches: s.origin_fetches,
            failed_requests: s.failed_requests,
            availability: if s.measured_requests == 0 {
                1.0
            } else {
                1.0 - s.failed_requests as f64 / s.measured_requests as f64
            },
        })
        .collect();
    let sum = |f: fn(&ServerStats) -> u64| stats.iter().map(f).sum::<u64>();
    let measured_requests = sum(|s| s.measured_requests);
    let cost_hops = sum(|s| s.cost_hops);
    SimReport {
        mean_latency_ms: histogram.mean(),
        mean_cost_hops: if measured_requests == 0 {
            0.0
        } else {
            cost_hops as f64 / measured_requests as f64
        },
        histogram,
        total_requests: sum(|s| s.total_requests),
        measured_requests,
        local_requests: sum(|s| s.local_requests),
        cache_hits: sum(|s| s.cache_hits),
        replica_hits: sum(|s| s.replica_hits),
        delayed_hits: sum(|s| s.delayed_hits),
        origin_fetches: sum(|s| s.origin_fetches),
        peer_fetches: sum(|s| s.peer_fetches),
        failover_fetches: sum(|s| s.failover_fetches),
        failover_histogram,
        failed_requests: sum(|s| s.failed_requests),
        total_bytes: sum(|s| s.total_bytes),
        origin_bytes: sum(|s| s.origin_bytes),
        per_server,
        cause,
        samples,
        timeline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_workload::{DemandMatrix, LambdaMode, WorkloadConfig};

    /// A small but fully wired scenario: real catalog/demand/trace over a
    /// hand-made metric.
    fn scenario(lambda: f64, mode: LambdaMode) -> (PlacementProblem, SiteCatalog, TraceSpec) {
        let mut cfg = WorkloadConfig::small();
        cfg.m_sites = 6;
        cfg.objects_per_site = 40;
        cfg.base_requests = 3_000;
        let catalog = SiteCatalog::generate(&cfg, 42);
        let n = 3;
        let demand = DemandMatrix::generate(&catalog, n, 43);
        let dist_ss = vec![0, 2, 4, 2, 0, 2, 4, 2, 0];
        let mut dist_sp = vec![0u32; n * cfg.m_sites];
        for i in 0..n {
            for j in 0..cfg.m_sites {
                dist_sp[i * cfg.m_sites + j] = 8 + (i as u32) + (j as u32 % 2);
            }
        }
        let site_bytes: Vec<u64> = catalog.sites.iter().map(|s| s.total_bytes).collect();
        // A third of the corpus per server: with 6 roughly equal sites this
        // fits ~2 replicas per server while leaving cache head-room.
        let capacity = catalog.total_bytes() / 3;
        let raw: Vec<u64> = (0..n)
            .flat_map(|i| (0..cfg.m_sites).map(move |j| (i, j)))
            .map(|(i, j)| demand.requests(i, j))
            .collect();
        let problem = PlacementProblem::new(
            n,
            cfg.m_sites,
            dist_ss,
            dist_sp,
            site_bytes,
            vec![capacity; n],
            raw,
            vec![lambda; cfg.m_sites],
            catalog.mean_request_bytes(),
            cfg.objects_per_site,
            cfg.theta,
        );
        let trace = TraceSpec::new(&demand, catalog.object_zipf.clone(), lambda, mode, 44);
        (problem, catalog, trace)
    }

    #[test]
    fn caching_beats_no_storage_at_all() {
        let (problem, catalog, trace) = scenario(0.0, LambdaMode::Uncacheable);
        let cfg = SimConfig::default();
        let caching = Placement::primaries_only(&problem);
        let report = simulate_system(&problem, &caching, &catalog, &trace, &cfg, None);
        assert!(report.cache_hits > 0);
        assert!(report.local_ratio() > 0.1, "local {}", report.local_ratio());
        // Mean latency must be below the worst case (primary fetch always).
        let worst = cfg.hop_delay_ms * (1.0 + 10.0);
        assert!(report.mean_latency_ms < worst);
    }

    #[test]
    fn replicas_reduce_latency_versus_nothing() {
        let (problem, catalog, trace) = scenario(0.0, LambdaMode::Uncacheable);
        let cfg = SimConfig::default();
        // Zero cache: compare primaries-only vs greedy replication.
        let no_cache: Option<&(dyn Fn(u64) -> Box<dyn Cache> + Sync)> =
            Some(&|_cap| Box::new(LruCache::new(0)) as Box<dyn Cache>);
        let base = simulate_system(
            &problem,
            &Placement::primaries_only(&problem),
            &catalog,
            &trace,
            &cfg,
            no_cache,
        );
        let greedy = cdn_placement::greedy_global(&problem).placement;
        let repl = simulate_system(&problem, &greedy, &catalog, &trace, &cfg, no_cache);
        assert!(repl.mean_latency_ms < base.mean_latency_ms);
        assert!(repl.replica_hits > 0);
        assert_eq!(repl.cache_hits, 0);
    }

    #[test]
    fn lambda_expired_increases_latency_of_pure_caching() {
        let (problem, catalog, trace0) = scenario(0.0, LambdaMode::Expired);
        let (_, _, trace10) = scenario(0.10, LambdaMode::Expired);
        let cfg = SimConfig::default();
        let pl = Placement::primaries_only(&problem);
        let clean = simulate_system(&problem, &pl, &catalog, &trace0, &cfg, None);
        let stale = simulate_system(&problem, &pl, &catalog, &trace10, &cfg, None);
        assert!(
            stale.mean_latency_ms > clean.mean_latency_ms,
            "stale {} <= clean {}",
            stale.mean_latency_ms,
            clean.mean_latency_ms
        );
    }

    #[test]
    fn report_identities() {
        let (problem, catalog, trace) = scenario(0.05, LambdaMode::Uncacheable);
        let cfg = SimConfig::default();
        let pl = Placement::primaries_only(&problem);
        let report = simulate_system(&problem, &pl, &catalog, &trace, &cfg, None);
        assert_eq!(report.total_requests, trace_len(&trace));
        assert!(report.measured_requests <= report.total_requests);
        assert_eq!(
            report.local_requests,
            report.cache_hits + report.replica_hits
        );
        assert_eq!(report.histogram.count(), report.measured_requests);
        // No replicas: replica hits impossible.
        assert_eq!(report.replica_hits, 0);
    }

    fn trace_len(trace: &TraceSpec) -> u64 {
        (0..trace.n_servers())
            .map(|i| trace.len_for_server(i))
            .sum()
    }

    #[test]
    fn byte_accounting_consistent() {
        let (problem, catalog, trace) = scenario(0.0, LambdaMode::Uncacheable);
        let cfg = SimConfig::default();
        let pl = Placement::primaries_only(&problem);
        let report = simulate_system(&problem, &pl, &catalog, &trace, &cfg, None);
        assert!(report.total_bytes > 0);
        assert!(report.origin_bytes <= report.total_bytes);
        let off = report.origin_offload_bytes();
        assert!((0.0..=1.0).contains(&off));
        // With no replicas every remote fetch is an origin fetch, so byte
        // offload equals the cache's byte hit share.
        assert!(report.origin_bytes > 0);
    }

    #[test]
    fn weak_consistency_outperforms_strong_under_staleness() {
        let (problem, catalog, trace) = scenario(0.15, LambdaMode::Expired);
        let strong_cfg = SimConfig::default();
        let weak_cfg = SimConfig {
            consistency: crate::plan::ConsistencyMode::Weak,
            ..Default::default()
        };
        let pl = Placement::primaries_only(&problem);
        let strong = simulate_system(&problem, &pl, &catalog, &trace, &strong_cfg, None);
        let weak = simulate_system(&problem, &pl, &catalog, &trace, &weak_cfg, None);
        assert!(
            weak.mean_latency_ms < strong.mean_latency_ms,
            "weak {} >= strong {}",
            weak.mean_latency_ms,
            strong.mean_latency_ms
        );
        // Weak consistency turns refreshes into local hits.
        assert!(weak.cache_hits > strong.cache_hits);
    }

    #[test]
    fn per_server_summaries_sum_to_totals() {
        let (problem, catalog, trace) = scenario(0.0, LambdaMode::Uncacheable);
        let cfg = SimConfig::default();
        let pl = Placement::primaries_only(&problem);
        let report = simulate_system(&problem, &pl, &catalog, &trace, &cfg, None);
        assert_eq!(report.per_server.len(), problem.n_servers());
        let sum: u64 = report.per_server.iter().map(|s| s.measured_requests).sum();
        assert_eq!(sum, report.measured_requests);
        let origin: u64 = report.per_server.iter().map(|s| s.origin_fetches).sum();
        assert_eq!(origin, report.origin_fetches);
        assert!(report.load_imbalance() >= 1.0);
        // Servers are ordered by id.
        for (i, s) in report.per_server.iter().enumerate() {
            assert_eq!(s.server, i);
        }
    }

    #[test]
    fn drifting_stream_degrades_pure_caching() {
        use cdn_workload::{DriftConfig, Drifted};
        let (problem, catalog, trace) = scenario(0.0, LambdaMode::Uncacheable);
        let cfg = SimConfig::default();
        let pl = Placement::primaries_only(&problem);
        let lengths: Vec<u64> = (0..trace.n_servers())
            .map(|i| trace.len_for_server(i))
            .collect();
        let l = catalog.object_zipf.n() as u32;
        let stationary = simulate_system(&problem, &pl, &catalog, &trace, &cfg, None);
        let fast_drift =
            simulate_system_streams(&problem, &pl, &catalog, &cfg, None, &lengths, |server| {
                Drifted::new(
                    trace.stream_for_server(server),
                    DriftConfig {
                        rotation_period: 50,
                        objects_per_site: l,
                    },
                )
            });
        assert!(
            fast_drift.cache_hits < stationary.cache_hits,
            "drift {} >= stationary {}",
            fast_drift.cache_hits,
            stationary.cache_hits
        );
        assert!(fast_drift.mean_latency_ms > stationary.mean_latency_ms);
    }

    #[test]
    fn deterministic_end_to_end() {
        let (problem, catalog, trace) = scenario(0.1, LambdaMode::Expired);
        let cfg = SimConfig::default();
        let pl = cdn_placement::greedy_global(&problem).placement;
        let a = simulate_system(&problem, &pl, &catalog, &trace, &cfg, None);
        let b = simulate_system(&problem, &pl, &catalog, &trace, &cfg, None);
        assert_eq!(a.mean_latency_ms, b.mean_latency_ms);
        assert_eq!(a.cache_hits, b.cache_hits);
        assert_eq!(a.cost_hops_identity(), b.cost_hops_identity());
        // Thread-count invariance: the per-server fan-out must produce
        // bit-identical reports on one thread and on several.
        let pool = |n| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .unwrap()
        };
        let one = pool(1).install(|| simulate_system(&problem, &pl, &catalog, &trace, &cfg, None));
        let four = pool(4).install(|| simulate_system(&problem, &pl, &catalog, &trace, &cfg, None));
        assert_reports_identical(&a, &one);
        assert_reports_identical(&one, &four);
    }

    impl SimReport {
        fn cost_hops_identity(&self) -> u64 {
            (self.mean_cost_hops * self.measured_requests as f64).round() as u64
        }
    }

    use crate::fault::FaultParams;

    fn faulty_params() -> FaultParams {
        FaultParams {
            mttf: 400.0,
            mttr: 150.0,
            origin_outage: 0.25,
            retry_penalty_ms: 150.0,
            seed: 5,
        }
    }

    fn assert_reports_identical(a: &SimReport, b: &SimReport) {
        assert_eq!(a.mean_latency_ms.to_bits(), b.mean_latency_ms.to_bits());
        assert_eq!(a.mean_cost_hops.to_bits(), b.mean_cost_hops.to_bits());
        assert_eq!(a.total_requests, b.total_requests);
        assert_eq!(a.measured_requests, b.measured_requests);
        assert_eq!(a.local_requests, b.local_requests);
        assert_eq!(a.cache_hits, b.cache_hits);
        assert_eq!(a.replica_hits, b.replica_hits);
        assert_eq!(a.delayed_hits, b.delayed_hits);
        assert_eq!(a.origin_fetches, b.origin_fetches);
        assert_eq!(a.peer_fetches, b.peer_fetches);
        assert_eq!(a.failover_fetches, b.failover_fetches);
        assert_eq!(a.failed_requests, b.failed_requests);
        assert_eq!(a.total_bytes, b.total_bytes);
        assert_eq!(a.origin_bytes, b.origin_bytes);
        assert_eq!(a.histogram.count(), b.histogram.count());
        assert_eq!(a.histogram.mean().to_bits(), b.histogram.mean().to_bits());
        assert_eq!(a.histogram.cdf(), b.histogram.cdf());
        assert_eq!(a.failover_histogram.count(), b.failover_histogram.count());
        assert_eq!(a.cause, b.cause);
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.timeline, b.timeline);
        for (x, y) in a.per_server.iter().zip(&b.per_server) {
            assert_eq!(x.measured_requests, y.measured_requests);
            assert_eq!(x.mean_latency_ms.to_bits(), y.mean_latency_ms.to_bits());
            assert_eq!(x.failed_requests, y.failed_requests);
            assert_eq!(x.availability.to_bits(), y.availability.to_bits());
        }
    }

    #[test]
    fn shard_count_does_not_change_a_single_bit() {
        // The core contract of the sharded runner: explicit shard counts of
        // 1/2/4/8 (and the default) all produce byte-identical reports —
        // histograms, float means, cause breakdown, samples, per-server
        // summaries — with faults and sampling active.
        let (problem, catalog, trace) = scenario(0.1, LambdaMode::Expired);
        let pl = cdn_placement::greedy_global(&problem).placement;
        let run = |shards: Option<usize>| {
            let cfg = SimConfig {
                faults: Some(faulty_params()),
                sample_every: Some(7),
                window: Some(64),
                shards,
                ..Default::default()
            };
            simulate_system(&problem, &pl, &catalog, &trace, &cfg, None)
        };
        let default = run(None);
        assert!(default.failover_fetches > 0, "faults never fired");
        assert!(!default.samples.is_empty());
        for shards in [1, 2, 4, 8] {
            let sharded = run(Some(shards));
            assert_reports_identical(&default, &sharded);
        }
        // And across thread counts at a fixed shard count.
        let pool = |n: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .unwrap()
        };
        let one = pool(1).install(|| run(Some(2)));
        let four = pool(4).install(|| run(Some(2)));
        assert_reports_identical(&one, &four);
        assert_reports_identical(&default, &one);
    }

    #[test]
    fn chunked_streams_do_not_change_results() {
        // Feeding the engine through the bounded-buffer stream adapter
        // (the large-tier memory ceiling) must not change a bit; the
        // adapter's own tests pin the peak-residency bound.
        use cdn_workload::ChunkedStream;
        let (problem, catalog, trace) = scenario(0.1, LambdaMode::Expired);
        let pl = cdn_placement::greedy_global(&problem).placement;
        let cfg = SimConfig {
            faults: Some(faulty_params()),
            ..Default::default()
        };
        let lengths: Vec<u64> = (0..trace.n_servers())
            .map(|i| trace.len_for_server(i))
            .collect();
        let plain = simulate_system(&problem, &pl, &catalog, &trace, &cfg, None);
        let chunked =
            simulate_system_streams(&problem, &pl, &catalog, &cfg, None, &lengths, |server| {
                ChunkedStream::new(trace.stream_for_server(server), 128)
            });
        assert_reports_identical(&plain, &chunked);
    }

    #[test]
    fn zero_fault_config_is_bit_identical_to_fault_free() {
        // The regression guard for the fault layer: enabling fault
        // injection with parameters that can never fire must not perturb a
        // single bit of the report.
        let (problem, catalog, trace) = scenario(0.1, LambdaMode::Expired);
        let pl = cdn_placement::greedy_global(&problem).placement;
        let plain = SimConfig::default();
        let zero_fault = SimConfig {
            faults: Some(FaultParams {
                seed: 123,
                retry_penalty_ms: 500.0, // multiplied by 0 skips: no effect
                ..Default::default()
            }),
            ..Default::default()
        };
        assert!(zero_fault.faults.unwrap().is_zero_fault());
        let a = simulate_system(&problem, &pl, &catalog, &trace, &plain, None);
        let b = simulate_system(&problem, &pl, &catalog, &trace, &zero_fault, None);
        assert_reports_identical(&a, &b);
    }

    #[test]
    fn deterministic_under_faults() {
        let (problem, catalog, trace) = scenario(0.1, LambdaMode::Expired);
        let cfg = SimConfig {
            faults: Some(faulty_params()),
            ..Default::default()
        };
        let pl = cdn_placement::greedy_global(&problem).placement;
        let a = simulate_system(&problem, &pl, &catalog, &trace, &cfg, None);
        let b = simulate_system(&problem, &pl, &catalog, &trace, &cfg, None);
        assert!(
            a.failed_requests > 0 || a.failover_fetches > 0,
            "faults never fired"
        );
        assert_reports_identical(&a, &b);
        // The precomputed fault schedule keeps multi-threaded runs
        // bit-identical too.
        let four = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
            .install(|| simulate_system(&problem, &pl, &catalog, &trace, &cfg, None));
        assert_reports_identical(&a, &four);
    }

    #[test]
    fn fault_accounting_identities() {
        let (problem, catalog, trace) = scenario(0.05, LambdaMode::Uncacheable);
        let cfg = SimConfig {
            faults: Some(faulty_params()),
            ..Default::default()
        };
        let pl = cdn_placement::greedy_global(&problem).placement;
        let report = simulate_system(&problem, &pl, &catalog, &trace, &cfg, None);
        // Every measured request lands in exactly one bucket.
        assert_eq!(
            report.local_requests
                + report.delayed_hits
                + report.failover_fetches
                + report.origin_fetches
                + report.peer_fetches
                + report.failed_requests,
            report.measured_requests,
        );
        // Failed requests record no latency; failover fetches all do.
        assert_eq!(
            report.histogram.count(),
            report.measured_requests - report.failed_requests
        );
        assert_eq!(report.failover_histogram.count(), report.failover_fetches);
        assert!(
            report.failover_fetches > 0,
            "server faults never forced a failover"
        );
        let avail = report.availability();
        assert!((0.0..=1.0).contains(&avail));
        let failed: u64 = report.per_server.iter().map(|s| s.failed_requests).sum();
        assert_eq!(failed, report.failed_requests);
    }

    #[test]
    fn replication_survives_faults_better_than_pure_caching() {
        // Under origin outages plus server crashes, replicated copies keep
        // serving while pure caching must reach unreachable origins on
        // every miss — availability separates them strictly.
        let (problem, catalog, trace) = scenario(0.0, LambdaMode::Uncacheable);
        let cfg = SimConfig {
            faults: Some(faulty_params()),
            ..Default::default()
        };
        let caching = simulate_system(
            &problem,
            &Placement::primaries_only(&problem),
            &catalog,
            &trace,
            &cfg,
            None,
        );
        let greedy = cdn_placement::greedy_global(&problem).placement;
        let replicated = simulate_system(&problem, &greedy, &catalog, &trace, &cfg, None);
        assert!(
            caching.failed_requests > 0,
            "origin outages must drop requests"
        );
        assert!(
            replicated.availability() > caching.availability(),
            "replication {} <= caching {}",
            replicated.availability(),
            caching.availability()
        );
    }

    #[test]
    fn cause_attribution_matches_report_buckets() {
        let (problem, catalog, trace) = scenario(0.1, LambdaMode::Expired);
        let cfg = SimConfig {
            faults: Some(faulty_params()),
            ..Default::default()
        };
        let pl = cdn_placement::greedy_global(&problem).placement;
        let report = simulate_system(&problem, &pl, &catalog, &trace, &cfg, None);
        // Every per-cause request count equals its SimReport bucket...
        assert_eq!(report.cause.replica_hit.requests, report.replica_hits);
        assert_eq!(report.cause.cache_hit.requests, report.cache_hits);
        assert_eq!(report.cause.delayed_hit.requests, report.delayed_hits);
        assert_eq!(report.cause.remote_replica.requests, report.peer_fetches);
        assert_eq!(report.cause.origin_fetch.requests, report.origin_fetches);
        assert_eq!(report.cause.failover.requests, report.failover_fetches);
        assert_eq!(report.cause.failed.requests, report.failed_requests);
        // ...and together they cover every measured request exactly once.
        assert_eq!(report.cause.total_requests(), report.measured_requests);
        // Attributed latency reconciles with the histogram (failed
        // requests contribute zero to both).
        let hist_total = report.mean_latency_ms * report.histogram.count() as f64;
        assert!(
            (report.cause.total_latency_ms() - hist_total).abs() < 1e-6 * hist_total.max(1.0),
            "cause latency {} != histogram total {hist_total}",
            report.cause.total_latency_ms()
        );
        // The failover surcharge is a strict part of failover latency.
        assert!(report.cause.failover_surcharge_ms > 0.0);
        assert!(report.cause.failover_surcharge_ms < report.cause.failover.latency_ms);
        // Local hits pay exactly one hop each.
        assert!(
            (report.cause.replica_hit.latency_ms - cfg.hop_delay_ms * report.replica_hits as f64)
                .abs()
                < 1e-6
        );
    }

    #[test]
    fn sampler_is_deterministic_and_non_perturbing() {
        let (problem, catalog, trace) = scenario(0.1, LambdaMode::Expired);
        let pl = cdn_placement::greedy_global(&problem).placement;
        let plain = SimConfig {
            faults: Some(faulty_params()),
            ..Default::default()
        };
        let sampled_cfg = SimConfig {
            sample_every: Some(7),
            ..plain
        };
        let base = simulate_system(&problem, &pl, &catalog, &trace, &plain, None);
        let sampled = simulate_system(&problem, &pl, &catalog, &trace, &sampled_cfg, None);
        // Sampling observes; it must not change any measured quantity.
        assert!(base.samples.is_empty());
        assert_eq!(
            base.mean_latency_ms.to_bits(),
            sampled.mean_latency_ms.to_bits()
        );
        assert_eq!(base.cache_hits, sampled.cache_hits);
        assert_eq!(base.failed_requests, sampled.failed_requests);
        assert_eq!(base.cause, sampled.cause);
        // 1-in-7 of measured requests per server, keyed on stream index.
        assert!(!sampled.samples.is_empty());
        let expected: usize = (0..trace.n_servers())
            .map(|i| {
                let len = trace.len_for_server(i);
                let warmup = (len as f64 * sampled_cfg.warmup_fraction) as u64;
                (warmup..len).filter(|t| t % 7 == 0).count()
            })
            .sum();
        assert_eq!(sampled.samples.len(), expected);
        for s in &sampled.samples {
            assert_eq!(s.index % 7, 0);
        }
        // Samples arrive in (server, stream index) order.
        for w in sampled.samples.windows(2) {
            assert!(
                (w[0].server, w[0].index) < (w[1].server, w[1].index),
                "samples out of order"
            );
        }
        // Reproducible across thread counts, faults and all.
        let pool = |n: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .unwrap()
        };
        let one = pool(1)
            .install(|| simulate_system(&problem, &pl, &catalog, &trace, &sampled_cfg, None));
        let four = pool(4)
            .install(|| simulate_system(&problem, &pl, &catalog, &trace, &sampled_cfg, None));
        assert_eq!(one.samples, sampled.samples);
        assert_eq!(four.samples, sampled.samples);
        assert_reports_identical(&one, &four);
    }

    #[test]
    fn timeline_is_observational_and_sums_to_run_level() {
        use crate::timeline::WindowStats;
        let (problem, catalog, trace) = scenario(0.1, LambdaMode::Expired);
        let pl = cdn_placement::greedy_global(&problem).placement;
        let plain = SimConfig {
            faults: Some(faulty_params()),
            ..Default::default()
        };
        let windowed_cfg = SimConfig {
            window: Some(128),
            ..plain
        };
        let base = simulate_system(&problem, &pl, &catalog, &trace, &plain, None);
        let windowed = simulate_system(&problem, &pl, &catalog, &trace, &windowed_cfg, None);
        // Observational: enabling the timeline changes no measured bit.
        assert!(base.timeline.is_none());
        assert_eq!(
            base.mean_latency_ms.to_bits(),
            windowed.mean_latency_ms.to_bits()
        );
        assert_eq!(base.cache_hits, windowed.cache_hits);
        assert_eq!(base.failed_requests, windowed.failed_requests);
        assert_eq!(base.cause, windowed.cause);
        // `Some(0)` is the off switch and matches `None` bit for bit.
        let zero_cfg = SimConfig {
            window: Some(0),
            ..plain
        };
        let zero = simulate_system(&problem, &pl, &catalog, &trace, &zero_cfg, None);
        assert!(zero.timeline.is_none());
        assert_reports_identical(&base, &zero);
        // Windowed counters sum to the run-level counters exactly, both
        // globally and per server.
        let tl = windowed.timeline.as_ref().expect("timeline enabled");
        assert_eq!(tl.width, 128);
        assert!(tl.windows.len() > 1, "scenario too small to window");
        let sum = |f: fn(&WindowStats) -> u64| tl.windows.iter().map(|(_, w)| f(w)).sum::<u64>();
        assert_eq!(sum(|w| w.requests), windowed.measured_requests);
        assert_eq!(sum(|w| w.local_requests), windowed.local_requests);
        assert_eq!(sum(|w| w.cache_hits), windowed.cache_hits);
        assert_eq!(sum(|w| w.replica_hits), windowed.replica_hits);
        assert_eq!(sum(|w| w.origin_fetches), windowed.origin_fetches);
        assert_eq!(sum(|w| w.peer_fetches), windowed.peer_fetches);
        assert_eq!(sum(|w| w.failover_fetches), windowed.failover_fetches);
        assert_eq!(sum(|w| w.failed_requests), windowed.failed_requests);
        assert_eq!(sum(|w| w.total_bytes), windowed.total_bytes);
        assert_eq!(sum(|w| w.origin_bytes), windowed.origin_bytes);
        assert_eq!(
            sum(|w| w.sketch.count()),
            windowed.measured_requests - windowed.failed_requests
        );
        assert_eq!(tl.per_server.len(), problem.n_servers());
        for (i, st) in tl.per_server.iter().enumerate() {
            assert_eq!(st.server, i);
            let measured: u64 = st.windows.iter().map(|(_, w)| w.requests).sum();
            assert_eq!(measured, windowed.per_server[i].measured_requests);
        }
        // Every recorded window attributes a hottest site.
        assert!(tl.windows.iter().all(|(_, w)| w.top_site.is_some()));
        // Per-window sketch quantiles respect the advertised error bound
        // against the run-level histogram's range.
        for (_, w) in &tl.windows {
            if w.served() > 0 {
                let p99 = w.quantile_ms(0.99);
                assert!(p99 >= w.quantile_ms(0.50));
                assert!(p99 <= w.max_ms() * (1.0 + cdn_telemetry::RELATIVE_ERROR));
            }
        }
    }

    #[test]
    fn fetch_latency_zero_is_bit_identical_to_instant_fetch() {
        // Delayed-hit differential oracle: `fetch_latency` of `None` and
        // `Some(0)` must both run the instant-fetch path bit for bit.
        let (problem, catalog, trace) = scenario(0.1, LambdaMode::Expired);
        let pl = cdn_placement::greedy_global(&problem).placement;
        let run = |fetch_latency, shards| {
            let cfg = SimConfig {
                fetch_latency,
                sample_every: Some(7),
                window: Some(128),
                shards,
                ..Default::default()
            };
            simulate_system(&problem, &pl, &catalog, &trace, &cfg, None)
        };
        let off = run(None, None);
        let zero = run(Some(0), None);
        assert_eq!(off.delayed_hits, 0);
        assert_reports_identical(&off, &zero);

        // Positive latency: requests coalesce, yet every identity holds.
        let delayed = run(Some(64), None);
        assert!(delayed.delayed_hits > 0, "no request ever coalesced");
        assert_eq!(delayed.cause.delayed_hit.requests, delayed.delayed_hits);
        assert_eq!(delayed.cause.total_requests(), delayed.measured_requests);
        assert_eq!(
            delayed.local_requests
                + delayed.delayed_hits
                + delayed.origin_fetches
                + delayed.peer_fetches
                + delayed.failover_fetches
                + delayed.failed_requests,
            delayed.measured_requests
        );
        assert_eq!(
            delayed.local_requests,
            delayed.cache_hits + delayed.replica_hits,
            "delayed hits must stay out of the local buckets"
        );
        // Coalesced fetches travel no hops of their own.
        assert!(delayed.cost_hops_identity() < off.cost_hops_identity());
        // Windowed twins mirror the run level with the feature on.
        let tl = delayed.timeline.as_ref().unwrap();
        let win_delayed: u64 = tl.windows.iter().map(|(_, w)| w.delayed_hits).sum();
        assert_eq!(win_delayed, delayed.delayed_hits);
        // Byte-identical at any shard count and thread count, feature on.
        for shards in [1, 2, 4, 8] {
            assert_reports_identical(&delayed, &run(Some(64), Some(shards)));
        }
        let pool = |n: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .unwrap()
        };
        let one = pool(1).install(|| run(Some(64), Some(2)));
        let four = pool(4).install(|| run(Some(64), Some(2)));
        assert_reports_identical(&one, &four);
        assert_reports_identical(&delayed, &one);
    }

    #[test]
    fn retry_penalty_inflates_failover_latency() {
        let (problem, catalog, trace) = scenario(0.0, LambdaMode::Uncacheable);
        let pl = cdn_placement::greedy_global(&problem).placement;
        let run = |penalty: f64| {
            let cfg = SimConfig {
                faults: Some(FaultParams {
                    retry_penalty_ms: penalty,
                    ..faulty_params()
                }),
                ..Default::default()
            };
            simulate_system(&problem, &pl, &catalog, &trace, &cfg, None)
        };
        let cheap = run(0.0);
        let dear = run(400.0);
        // Same schedule (same seed): identical routing, dearer retries.
        assert_eq!(cheap.failover_fetches, dear.failover_fetches);
        assert!(cheap.failover_fetches > 0);
        assert!(
            dear.failover_histogram.mean() > cheap.failover_histogram.mean() + 399.0,
            "penalty not reflected: {} vs {}",
            dear.failover_histogram.mean(),
            cheap.failover_histogram.mean()
        );
    }
}
