//! Whole-system simulation: one engine run per server, in parallel
//! (servers are fully independent — separate caches, separate streams),
//! merged into a single [`SimReport`].

use crate::engine::{simulate_server_faulted, ServerReport, SiteObs};
use crate::fault::FaultSchedule;
use crate::metrics::{Cause, CauseBreakdown, LatencyHistogram, SimReport};
use crate::plan::{ServerPlan, SimConfig};
use cdn_cache::{Cache, LruCache};
use cdn_placement::{Placement, PlacementProblem};
use cdn_telemetry::{self as telemetry, TraceBuffer, Value};
use cdn_workload::{Request, SiteCatalog, TraceSpec};
use rayon::prelude::*;

/// Simulate `placement` under the request streams of `trace`.
///
/// `make_cache` builds the replacement policy per server; it receives the
/// plan's cache size in bytes and its result is used as-is (so a factory
/// that ignores its argument models a cache-less CDN). Pass `None` for the
/// paper's plain LRU sized to the plan.
pub fn simulate_system(
    problem: &PlacementProblem,
    placement: &Placement,
    catalog: &SiteCatalog,
    trace: &TraceSpec,
    config: &SimConfig,
    make_cache: Option<&(dyn Fn(u64) -> Box<dyn Cache> + Sync)>,
) -> SimReport {
    assert_eq!(
        trace.n_servers(),
        problem.n_servers(),
        "trace/problem server count mismatch"
    );
    let lengths: Vec<u64> = (0..trace.n_servers())
        .map(|i| trace.len_for_server(i))
        .collect();
    simulate_system_streams(
        problem,
        placement,
        catalog,
        config,
        make_cache,
        &lengths,
        |server| trace.stream_for_server(server),
    )
}

/// Generalisation of [`simulate_system`] over arbitrary request streams —
/// the entry point for non-stationary workloads (e.g. popularity drift via
/// `cdn_workload::Drifted`). `lengths[i]` must be stream `i`'s length (used
/// to size the warm-up window).
pub fn simulate_system_streams<F, I>(
    problem: &PlacementProblem,
    placement: &Placement,
    catalog: &SiteCatalog,
    config: &SimConfig,
    make_cache: Option<&(dyn Fn(u64) -> Box<dyn Cache> + Sync)>,
    lengths: &[u64],
    streams: F,
) -> SimReport
where
    F: Fn(usize) -> I + Sync,
    I: Iterator<Item = Request>,
{
    config.validate();
    assert_eq!(
        catalog.m(),
        problem.m_sites(),
        "catalog/problem site count mismatch"
    );
    assert_eq!(
        lengths.len(),
        problem.n_servers(),
        "lengths/problem server count mismatch"
    );

    // The fault schedule is fully precomputed before the parallel loop, so
    // runs stay deterministic regardless of thread scheduling.
    let schedule: Option<FaultSchedule> = config.faults.map(|f| {
        let horizon = lengths.iter().copied().max().unwrap_or(0);
        FaultSchedule::generate(&f, problem.n_servers(), horizon)
    });

    // Mean (unweighted) object size, for pre-sizing the default caches to
    // their expected resident count instead of growing through warm-up.
    let total_objects: usize = catalog.sites.iter().map(|s| s.object_sizes.len()).sum();
    let mean_object_bytes = if total_objects == 0 {
        0.0
    } else {
        catalog.total_bytes() as f64 / total_objects as f64
    };

    let plans = ServerPlan::all_from_placement(problem, placement);
    // Each worker records its server's trace into a detached buffer; the
    // ordered collect below means buffers are merged in server order, so
    // the trace stream never depends on which worker finished first.
    let _prof = telemetry::profile::span("sim.system");
    let collected: Vec<(ServerReport, Option<TraceBuffer>)> = plans
        .par_iter()
        .map(|plan| {
            let _prof = telemetry::profile::span("sim.server");
            let warmup = (lengths[plan.server] as f64 * config.warmup_fraction) as u64;
            let cache: Box<dyn Cache> = match make_cache {
                Some(f) => f(plan.cache_bytes),
                None => {
                    let expected = if mean_object_bytes > 0.0 {
                        (plan.cache_bytes as f64 / mean_object_bytes).ceil() as usize
                    } else {
                        0
                    };
                    Box::new(LruCache::with_expected_objects(plan.cache_bytes, expected))
                }
            };
            let report = simulate_server_faulted(
                plan,
                config,
                streams(plan.server),
                warmup,
                |site, object| catalog.sites[site as usize].object_sizes[object as usize],
                cache,
                schedule.as_ref(),
            );
            let buffer = telemetry::trace_installed().then(|| server_trace_buffer(&report));
            (report, buffer)
        })
        .collect();
    let mut reports = Vec::with_capacity(collected.len());
    let mut buffers = Vec::with_capacity(collected.len());
    for (r, b) in collected {
        reports.push(r);
        buffers.push(b);
    }
    emit_observability(&reports, buffers, schedule.as_ref());

    merge_reports(reports, config)
}

/// Build one server's trace contribution (runs inside the parallel map).
fn server_trace_buffer(report: &ServerReport) -> TraceBuffer {
    let mut buf = TraceBuffer::new();
    let span = buf.enter("sim.server");
    let mut fields = vec![
        ("server", Value::from(report.server)),
        ("total", Value::U64(report.total_requests)),
        ("measured", Value::U64(report.measured_requests)),
        ("local", Value::U64(report.local_requests)),
        ("cache_hits", Value::U64(report.cache_hits)),
        ("replica_hits", Value::U64(report.replica_hits)),
        ("origin_fetches", Value::U64(report.origin_fetches)),
        ("peer_fetches", Value::U64(report.peer_fetches)),
        ("failover_fetches", Value::U64(report.failover_fetches)),
        ("failed", Value::U64(report.failed_requests)),
        ("histogram_fills", Value::U64(report.histogram.count())),
    ];
    if let Some(obs) = &report.obs {
        fields.push(("cache_evictions", Value::U64(obs.cache.evictions)));
        fields.push(("cache_insertions", Value::U64(obs.cache.insertions)));
        fields.push(("cache_rejections", Value::U64(obs.cache.rejections)));
    }
    buf.event("sim.server", fields);
    if let Some(obs) = &report.obs {
        let quiet = SiteObs::default();
        for (site, o) in obs.per_site.iter().enumerate() {
            if *o == quiet {
                continue;
            }
            buf.event(
                "sim.site",
                vec![
                    ("site", Value::from(site)),
                    ("local_hits", Value::U64(o.local_hits)),
                    ("remote_fetches", Value::U64(o.remote_fetches)),
                    ("failovers", Value::U64(o.failovers)),
                    ("failed", Value::U64(o.failed)),
                ],
            );
        }
    }
    buf.exit(span);
    buf
}

/// Flush counters and the (fixed-order) trace after the parallel fan-out.
fn emit_observability(
    reports: &[ServerReport],
    buffers: Vec<Option<TraceBuffer>>,
    schedule: Option<&FaultSchedule>,
) {
    if !telemetry::enabled() {
        return;
    }
    let reg = telemetry::registry();
    let sum = |f: fn(&ServerReport) -> u64| reports.iter().map(f).sum::<u64>();
    reg.counter("sim.requests_total")
        .add(sum(|r| r.total_requests));
    reg.counter("sim.requests_measured")
        .add(sum(|r| r.measured_requests));
    reg.counter("sim.local_requests")
        .add(sum(|r| r.local_requests));
    reg.counter("sim.cache_hits").add(sum(|r| r.cache_hits));
    reg.counter("sim.replica_hits").add(sum(|r| r.replica_hits));
    reg.counter("sim.origin_fetches")
        .add(sum(|r| r.origin_fetches));
    reg.counter("sim.peer_fetches").add(sum(|r| r.peer_fetches));
    reg.counter("sim.failover_fetches")
        .add(sum(|r| r.failover_fetches));
    reg.counter("sim.failed_requests")
        .add(sum(|r| r.failed_requests));
    reg.counter("sim.histogram_fills")
        .add(sum(|r| r.histogram.count() + r.failover_histogram.count()));
    let cache_sum = |f: fn(&cdn_cache::CacheStats) -> u64| {
        reports
            .iter()
            .filter_map(|r| r.obs.as_ref().map(|o| f(&o.cache)))
            .sum::<u64>()
    };
    reg.counter("sim.cache_evictions")
        .add(cache_sum(|c| c.evictions));
    reg.counter("sim.cache_insertions")
        .add(cache_sum(|c| c.insertions));
    reg.counter("sim.cache_rejections")
        .add(cache_sum(|c| c.rejections));
    // Per-server mean latency distribution — filled sequentially here, so
    // the fixed-shape bins accumulate in a deterministic order too.
    let latency_hist = reg.histogram("sim.server_mean_latency_ms", 5.0, 400);
    for r in reports {
        latency_hist.record(r.histogram.mean());
    }
    // Cause attribution: request counts plus latency totals (in integer
    // microseconds, rounded once per run, so accumulation across several
    // sim runs stays exact and deterministic). Per-cause counts sum to
    // `sim.requests_measured`; `cdn report` renders the table from these.
    let mut cause = CauseBreakdown::default();
    for r in reports {
        cause.merge(&r.cause);
    }
    for c in Cause::ALL {
        let lat = cause.get(c);
        reg.counter(&format!("sim.cause.{}", c.label()))
            .add(lat.requests);
        reg.counter(&format!("sim.cause.{}_latency_us", c.label()))
            .add((lat.latency_ms * 1000.0).round() as u64);
    }
    reg.counter("sim.cause.failover_surcharge_us")
        .add((cause.failover_surcharge_ms * 1000.0).round() as u64);
    // Whole-run per-request latency distribution, folded bin-by-bin from
    // the per-server histograms (1 ms bins, 4 s range + overflow).
    let request_hist = reg.histogram("sim.latency_ms", 1.0, 4096);
    for r in reports {
        let bin_ms = r.histogram.bin_ms();
        for (i, &n) in r.histogram.bin_counts().iter().enumerate() {
            if n > 0 {
                request_hist.record_n((i as f64 + 0.5) * bin_ms, n);
            }
        }
        let overflow = r.histogram.overflow_count();
        if overflow > 0 {
            request_hist.record_n(f64::MAX, overflow);
        }
    }
    if let Some(s) = schedule {
        let server_windows: usize = (0..s.n_servers()).map(|i| s.server_windows(i).len()).sum();
        reg.counter("fault.server_down_windows")
            .add(server_windows as u64);
        reg.counter("fault.origin_down_windows")
            .add(s.origin_windows().len() as u64);
    }

    telemetry::with_trace(|t| {
        let span = t.enter("sim.system");
        if let Some(s) = schedule {
            for server in 0..s.n_servers() {
                for &(start, end) in s.server_windows(server) {
                    t.event(
                        "fault.server_down",
                        vec![
                            ("server", Value::from(server)),
                            ("start", Value::U64(start)),
                            ("end", Value::U64(end)),
                        ],
                    );
                }
            }
            for &(start, end) in s.origin_windows() {
                t.event(
                    "fault.origin_down",
                    vec![("start", Value::U64(start)), ("end", Value::U64(end))],
                );
            }
        }
        for buf in buffers.into_iter().flatten() {
            t.merge(buf);
        }
        t.exit(span);
    });
}

fn merge_reports(mut reports: Vec<ServerReport>, config: &SimConfig) -> SimReport {
    let per_server: Vec<crate::metrics::ServerSummary> = reports
        .iter()
        .map(|r| crate::metrics::ServerSummary {
            server: r.server,
            measured_requests: r.measured_requests,
            mean_latency_ms: r.histogram.mean(),
            local_ratio: if r.measured_requests == 0 {
                0.0
            } else {
                r.local_requests as f64 / r.measured_requests as f64
            },
            cache_hit_ratio: if r.measured_requests == 0 {
                0.0
            } else {
                r.cache_hits as f64 / r.measured_requests as f64
            },
            origin_fetches: r.origin_fetches,
            failed_requests: r.failed_requests,
            availability: if r.measured_requests == 0 {
                1.0
            } else {
                1.0 - r.failed_requests as f64 / r.measured_requests as f64
            },
        })
        .collect();
    let mut histogram = LatencyHistogram::new(config.bin_ms, config.n_bins);
    let mut failover_histogram = LatencyHistogram::new(config.bin_ms, config.n_bins);
    let mut total_requests = 0;
    let mut measured_requests = 0;
    let mut local_requests = 0;
    let mut cache_hits = 0;
    let mut replica_hits = 0;
    let mut origin_fetches = 0;
    let mut peer_fetches = 0;
    let mut failover_fetches = 0;
    let mut failed_requests = 0;
    let mut total_bytes = 0;
    let mut origin_bytes = 0;
    let mut cost_hops = 0u64;
    // Cause totals and samples merge in server order (reports are already
    // ordered by the fan-out's ordered collect), so both are independent
    // of the thread schedule.
    let mut cause = CauseBreakdown::default();
    let mut samples = Vec::new();
    for r in &mut reports {
        cause.merge(&r.cause);
        samples.append(&mut r.samples);
    }
    for r in &reports {
        histogram.merge(&r.histogram);
        failover_histogram.merge(&r.failover_histogram);
        total_requests += r.total_requests;
        measured_requests += r.measured_requests;
        local_requests += r.local_requests;
        cache_hits += r.cache_hits;
        replica_hits += r.replica_hits;
        origin_fetches += r.origin_fetches;
        peer_fetches += r.peer_fetches;
        failover_fetches += r.failover_fetches;
        failed_requests += r.failed_requests;
        total_bytes += r.total_bytes;
        origin_bytes += r.origin_bytes;
        cost_hops += r.cost_hops;
    }
    SimReport {
        mean_latency_ms: histogram.mean(),
        mean_cost_hops: if measured_requests == 0 {
            0.0
        } else {
            cost_hops as f64 / measured_requests as f64
        },
        histogram,
        total_requests,
        measured_requests,
        local_requests,
        cache_hits,
        replica_hits,
        origin_fetches,
        peer_fetches,
        failover_fetches,
        failover_histogram,
        failed_requests,
        total_bytes,
        origin_bytes,
        per_server,
        cause,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_workload::{DemandMatrix, LambdaMode, WorkloadConfig};

    /// A small but fully wired scenario: real catalog/demand/trace over a
    /// hand-made metric.
    fn scenario(lambda: f64, mode: LambdaMode) -> (PlacementProblem, SiteCatalog, TraceSpec) {
        let mut cfg = WorkloadConfig::small();
        cfg.m_sites = 6;
        cfg.objects_per_site = 40;
        cfg.base_requests = 3_000;
        let catalog = SiteCatalog::generate(&cfg, 42);
        let n = 3;
        let demand = DemandMatrix::generate(&catalog, n, 43);
        let dist_ss = vec![0, 2, 4, 2, 0, 2, 4, 2, 0];
        let mut dist_sp = vec![0u32; n * cfg.m_sites];
        for i in 0..n {
            for j in 0..cfg.m_sites {
                dist_sp[i * cfg.m_sites + j] = 8 + (i as u32) + (j as u32 % 2);
            }
        }
        let site_bytes: Vec<u64> = catalog.sites.iter().map(|s| s.total_bytes).collect();
        // A third of the corpus per server: with 6 roughly equal sites this
        // fits ~2 replicas per server while leaving cache head-room.
        let capacity = catalog.total_bytes() / 3;
        let raw: Vec<u64> = (0..n)
            .flat_map(|i| (0..cfg.m_sites).map(move |j| (i, j)))
            .map(|(i, j)| demand.requests(i, j))
            .collect();
        let problem = PlacementProblem::new(
            n,
            cfg.m_sites,
            dist_ss,
            dist_sp,
            site_bytes,
            vec![capacity; n],
            raw,
            vec![lambda; cfg.m_sites],
            catalog.mean_request_bytes(),
            cfg.objects_per_site,
            cfg.theta,
        );
        let trace = TraceSpec::new(&demand, catalog.object_zipf.clone(), lambda, mode, 44);
        (problem, catalog, trace)
    }

    #[test]
    fn caching_beats_no_storage_at_all() {
        let (problem, catalog, trace) = scenario(0.0, LambdaMode::Uncacheable);
        let cfg = SimConfig::default();
        let caching = Placement::primaries_only(&problem);
        let report = simulate_system(&problem, &caching, &catalog, &trace, &cfg, None);
        assert!(report.cache_hits > 0);
        assert!(report.local_ratio() > 0.1, "local {}", report.local_ratio());
        // Mean latency must be below the worst case (primary fetch always).
        let worst = cfg.hop_delay_ms * (1.0 + 10.0);
        assert!(report.mean_latency_ms < worst);
    }

    #[test]
    fn replicas_reduce_latency_versus_nothing() {
        let (problem, catalog, trace) = scenario(0.0, LambdaMode::Uncacheable);
        let cfg = SimConfig::default();
        // Zero cache: compare primaries-only vs greedy replication.
        let no_cache: Option<&(dyn Fn(u64) -> Box<dyn Cache> + Sync)> =
            Some(&|_cap| Box::new(LruCache::new(0)) as Box<dyn Cache>);
        let base = simulate_system(
            &problem,
            &Placement::primaries_only(&problem),
            &catalog,
            &trace,
            &cfg,
            no_cache,
        );
        let greedy = cdn_placement::greedy_global(&problem).placement;
        let repl = simulate_system(&problem, &greedy, &catalog, &trace, &cfg, no_cache);
        assert!(repl.mean_latency_ms < base.mean_latency_ms);
        assert!(repl.replica_hits > 0);
        assert_eq!(repl.cache_hits, 0);
    }

    #[test]
    fn lambda_expired_increases_latency_of_pure_caching() {
        let (problem, catalog, trace0) = scenario(0.0, LambdaMode::Expired);
        let (_, _, trace10) = scenario(0.10, LambdaMode::Expired);
        let cfg = SimConfig::default();
        let pl = Placement::primaries_only(&problem);
        let clean = simulate_system(&problem, &pl, &catalog, &trace0, &cfg, None);
        let stale = simulate_system(&problem, &pl, &catalog, &trace10, &cfg, None);
        assert!(
            stale.mean_latency_ms > clean.mean_latency_ms,
            "stale {} <= clean {}",
            stale.mean_latency_ms,
            clean.mean_latency_ms
        );
    }

    #[test]
    fn report_identities() {
        let (problem, catalog, trace) = scenario(0.05, LambdaMode::Uncacheable);
        let cfg = SimConfig::default();
        let pl = Placement::primaries_only(&problem);
        let report = simulate_system(&problem, &pl, &catalog, &trace, &cfg, None);
        assert_eq!(report.total_requests, trace_len(&trace));
        assert!(report.measured_requests <= report.total_requests);
        assert_eq!(
            report.local_requests,
            report.cache_hits + report.replica_hits
        );
        assert_eq!(report.histogram.count(), report.measured_requests);
        // No replicas: replica hits impossible.
        assert_eq!(report.replica_hits, 0);
    }

    fn trace_len(trace: &TraceSpec) -> u64 {
        (0..trace.n_servers())
            .map(|i| trace.len_for_server(i))
            .sum()
    }

    #[test]
    fn byte_accounting_consistent() {
        let (problem, catalog, trace) = scenario(0.0, LambdaMode::Uncacheable);
        let cfg = SimConfig::default();
        let pl = Placement::primaries_only(&problem);
        let report = simulate_system(&problem, &pl, &catalog, &trace, &cfg, None);
        assert!(report.total_bytes > 0);
        assert!(report.origin_bytes <= report.total_bytes);
        let off = report.origin_offload_bytes();
        assert!((0.0..=1.0).contains(&off));
        // With no replicas every remote fetch is an origin fetch, so byte
        // offload equals the cache's byte hit share.
        assert!(report.origin_bytes > 0);
    }

    #[test]
    fn weak_consistency_outperforms_strong_under_staleness() {
        let (problem, catalog, trace) = scenario(0.15, LambdaMode::Expired);
        let strong_cfg = SimConfig::default();
        let weak_cfg = SimConfig {
            consistency: crate::plan::ConsistencyMode::Weak,
            ..Default::default()
        };
        let pl = Placement::primaries_only(&problem);
        let strong = simulate_system(&problem, &pl, &catalog, &trace, &strong_cfg, None);
        let weak = simulate_system(&problem, &pl, &catalog, &trace, &weak_cfg, None);
        assert!(
            weak.mean_latency_ms < strong.mean_latency_ms,
            "weak {} >= strong {}",
            weak.mean_latency_ms,
            strong.mean_latency_ms
        );
        // Weak consistency turns refreshes into local hits.
        assert!(weak.cache_hits > strong.cache_hits);
    }

    #[test]
    fn per_server_summaries_sum_to_totals() {
        let (problem, catalog, trace) = scenario(0.0, LambdaMode::Uncacheable);
        let cfg = SimConfig::default();
        let pl = Placement::primaries_only(&problem);
        let report = simulate_system(&problem, &pl, &catalog, &trace, &cfg, None);
        assert_eq!(report.per_server.len(), problem.n_servers());
        let sum: u64 = report.per_server.iter().map(|s| s.measured_requests).sum();
        assert_eq!(sum, report.measured_requests);
        let origin: u64 = report.per_server.iter().map(|s| s.origin_fetches).sum();
        assert_eq!(origin, report.origin_fetches);
        assert!(report.load_imbalance() >= 1.0);
        // Servers are ordered by id.
        for (i, s) in report.per_server.iter().enumerate() {
            assert_eq!(s.server, i);
        }
    }

    #[test]
    fn drifting_stream_degrades_pure_caching() {
        use cdn_workload::{DriftConfig, Drifted};
        let (problem, catalog, trace) = scenario(0.0, LambdaMode::Uncacheable);
        let cfg = SimConfig::default();
        let pl = Placement::primaries_only(&problem);
        let lengths: Vec<u64> = (0..trace.n_servers())
            .map(|i| trace.len_for_server(i))
            .collect();
        let l = catalog.object_zipf.n() as u32;
        let stationary = simulate_system(&problem, &pl, &catalog, &trace, &cfg, None);
        let fast_drift =
            simulate_system_streams(&problem, &pl, &catalog, &cfg, None, &lengths, |server| {
                Drifted::new(
                    trace.stream_for_server(server),
                    DriftConfig {
                        rotation_period: 50,
                        objects_per_site: l,
                    },
                )
            });
        assert!(
            fast_drift.cache_hits < stationary.cache_hits,
            "drift {} >= stationary {}",
            fast_drift.cache_hits,
            stationary.cache_hits
        );
        assert!(fast_drift.mean_latency_ms > stationary.mean_latency_ms);
    }

    #[test]
    fn deterministic_end_to_end() {
        let (problem, catalog, trace) = scenario(0.1, LambdaMode::Expired);
        let cfg = SimConfig::default();
        let pl = cdn_placement::greedy_global(&problem).placement;
        let a = simulate_system(&problem, &pl, &catalog, &trace, &cfg, None);
        let b = simulate_system(&problem, &pl, &catalog, &trace, &cfg, None);
        assert_eq!(a.mean_latency_ms, b.mean_latency_ms);
        assert_eq!(a.cache_hits, b.cache_hits);
        assert_eq!(a.cost_hops_identity(), b.cost_hops_identity());
        // Thread-count invariance: the per-server fan-out must produce
        // bit-identical reports on one thread and on several.
        let pool = |n| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .unwrap()
        };
        let one = pool(1).install(|| simulate_system(&problem, &pl, &catalog, &trace, &cfg, None));
        let four = pool(4).install(|| simulate_system(&problem, &pl, &catalog, &trace, &cfg, None));
        assert_reports_identical(&a, &one);
        assert_reports_identical(&one, &four);
    }

    impl SimReport {
        fn cost_hops_identity(&self) -> u64 {
            (self.mean_cost_hops * self.measured_requests as f64).round() as u64
        }
    }

    use crate::fault::FaultParams;

    fn faulty_params() -> FaultParams {
        FaultParams {
            mttf: 400.0,
            mttr: 150.0,
            origin_outage: 0.25,
            retry_penalty_ms: 150.0,
            seed: 5,
        }
    }

    fn assert_reports_identical(a: &SimReport, b: &SimReport) {
        assert_eq!(a.mean_latency_ms.to_bits(), b.mean_latency_ms.to_bits());
        assert_eq!(a.mean_cost_hops.to_bits(), b.mean_cost_hops.to_bits());
        assert_eq!(a.total_requests, b.total_requests);
        assert_eq!(a.measured_requests, b.measured_requests);
        assert_eq!(a.local_requests, b.local_requests);
        assert_eq!(a.cache_hits, b.cache_hits);
        assert_eq!(a.replica_hits, b.replica_hits);
        assert_eq!(a.origin_fetches, b.origin_fetches);
        assert_eq!(a.peer_fetches, b.peer_fetches);
        assert_eq!(a.failover_fetches, b.failover_fetches);
        assert_eq!(a.failed_requests, b.failed_requests);
        assert_eq!(a.total_bytes, b.total_bytes);
        assert_eq!(a.origin_bytes, b.origin_bytes);
        assert_eq!(a.histogram.count(), b.histogram.count());
        assert_eq!(a.histogram.mean().to_bits(), b.histogram.mean().to_bits());
        assert_eq!(a.histogram.cdf(), b.histogram.cdf());
        assert_eq!(a.failover_histogram.count(), b.failover_histogram.count());
        assert_eq!(a.cause, b.cause);
        assert_eq!(a.samples, b.samples);
        for (x, y) in a.per_server.iter().zip(&b.per_server) {
            assert_eq!(x.measured_requests, y.measured_requests);
            assert_eq!(x.mean_latency_ms.to_bits(), y.mean_latency_ms.to_bits());
            assert_eq!(x.failed_requests, y.failed_requests);
            assert_eq!(x.availability.to_bits(), y.availability.to_bits());
        }
    }

    #[test]
    fn zero_fault_config_is_bit_identical_to_fault_free() {
        // The regression guard for the fault layer: enabling fault
        // injection with parameters that can never fire must not perturb a
        // single bit of the report.
        let (problem, catalog, trace) = scenario(0.1, LambdaMode::Expired);
        let pl = cdn_placement::greedy_global(&problem).placement;
        let plain = SimConfig::default();
        let zero_fault = SimConfig {
            faults: Some(FaultParams {
                seed: 123,
                retry_penalty_ms: 500.0, // multiplied by 0 skips: no effect
                ..Default::default()
            }),
            ..Default::default()
        };
        assert!(zero_fault.faults.unwrap().is_zero_fault());
        let a = simulate_system(&problem, &pl, &catalog, &trace, &plain, None);
        let b = simulate_system(&problem, &pl, &catalog, &trace, &zero_fault, None);
        assert_reports_identical(&a, &b);
    }

    #[test]
    fn deterministic_under_faults() {
        let (problem, catalog, trace) = scenario(0.1, LambdaMode::Expired);
        let cfg = SimConfig {
            faults: Some(faulty_params()),
            ..Default::default()
        };
        let pl = cdn_placement::greedy_global(&problem).placement;
        let a = simulate_system(&problem, &pl, &catalog, &trace, &cfg, None);
        let b = simulate_system(&problem, &pl, &catalog, &trace, &cfg, None);
        assert!(
            a.failed_requests > 0 || a.failover_fetches > 0,
            "faults never fired"
        );
        assert_reports_identical(&a, &b);
        // The precomputed fault schedule keeps multi-threaded runs
        // bit-identical too.
        let four = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
            .install(|| simulate_system(&problem, &pl, &catalog, &trace, &cfg, None));
        assert_reports_identical(&a, &four);
    }

    #[test]
    fn fault_accounting_identities() {
        let (problem, catalog, trace) = scenario(0.05, LambdaMode::Uncacheable);
        let cfg = SimConfig {
            faults: Some(faulty_params()),
            ..Default::default()
        };
        let pl = cdn_placement::greedy_global(&problem).placement;
        let report = simulate_system(&problem, &pl, &catalog, &trace, &cfg, None);
        // Every measured request lands in exactly one bucket.
        assert_eq!(
            report.local_requests
                + report.failover_fetches
                + report.origin_fetches
                + report.peer_fetches
                + report.failed_requests,
            report.measured_requests,
        );
        // Failed requests record no latency; failover fetches all do.
        assert_eq!(
            report.histogram.count(),
            report.measured_requests - report.failed_requests
        );
        assert_eq!(report.failover_histogram.count(), report.failover_fetches);
        assert!(
            report.failover_fetches > 0,
            "server faults never forced a failover"
        );
        let avail = report.availability();
        assert!((0.0..=1.0).contains(&avail));
        let failed: u64 = report.per_server.iter().map(|s| s.failed_requests).sum();
        assert_eq!(failed, report.failed_requests);
    }

    #[test]
    fn replication_survives_faults_better_than_pure_caching() {
        // Under origin outages plus server crashes, replicated copies keep
        // serving while pure caching must reach unreachable origins on
        // every miss — availability separates them strictly.
        let (problem, catalog, trace) = scenario(0.0, LambdaMode::Uncacheable);
        let cfg = SimConfig {
            faults: Some(faulty_params()),
            ..Default::default()
        };
        let caching = simulate_system(
            &problem,
            &Placement::primaries_only(&problem),
            &catalog,
            &trace,
            &cfg,
            None,
        );
        let greedy = cdn_placement::greedy_global(&problem).placement;
        let replicated = simulate_system(&problem, &greedy, &catalog, &trace, &cfg, None);
        assert!(
            caching.failed_requests > 0,
            "origin outages must drop requests"
        );
        assert!(
            replicated.availability() > caching.availability(),
            "replication {} <= caching {}",
            replicated.availability(),
            caching.availability()
        );
    }

    #[test]
    fn cause_attribution_matches_report_buckets() {
        let (problem, catalog, trace) = scenario(0.1, LambdaMode::Expired);
        let cfg = SimConfig {
            faults: Some(faulty_params()),
            ..Default::default()
        };
        let pl = cdn_placement::greedy_global(&problem).placement;
        let report = simulate_system(&problem, &pl, &catalog, &trace, &cfg, None);
        // Every per-cause request count equals its SimReport bucket...
        assert_eq!(report.cause.replica_hit.requests, report.replica_hits);
        assert_eq!(report.cause.cache_hit.requests, report.cache_hits);
        assert_eq!(report.cause.remote_replica.requests, report.peer_fetches);
        assert_eq!(report.cause.origin_fetch.requests, report.origin_fetches);
        assert_eq!(report.cause.failover.requests, report.failover_fetches);
        assert_eq!(report.cause.failed.requests, report.failed_requests);
        // ...and together they cover every measured request exactly once.
        assert_eq!(report.cause.total_requests(), report.measured_requests);
        // Attributed latency reconciles with the histogram (failed
        // requests contribute zero to both).
        let hist_total = report.mean_latency_ms * report.histogram.count() as f64;
        assert!(
            (report.cause.total_latency_ms() - hist_total).abs() < 1e-6 * hist_total.max(1.0),
            "cause latency {} != histogram total {hist_total}",
            report.cause.total_latency_ms()
        );
        // The failover surcharge is a strict part of failover latency.
        assert!(report.cause.failover_surcharge_ms > 0.0);
        assert!(report.cause.failover_surcharge_ms < report.cause.failover.latency_ms);
        // Local hits pay exactly one hop each.
        assert!(
            (report.cause.replica_hit.latency_ms - cfg.hop_delay_ms * report.replica_hits as f64)
                .abs()
                < 1e-6
        );
    }

    #[test]
    fn sampler_is_deterministic_and_non_perturbing() {
        let (problem, catalog, trace) = scenario(0.1, LambdaMode::Expired);
        let pl = cdn_placement::greedy_global(&problem).placement;
        let plain = SimConfig {
            faults: Some(faulty_params()),
            ..Default::default()
        };
        let sampled_cfg = SimConfig {
            sample_every: Some(7),
            ..plain
        };
        let base = simulate_system(&problem, &pl, &catalog, &trace, &plain, None);
        let sampled = simulate_system(&problem, &pl, &catalog, &trace, &sampled_cfg, None);
        // Sampling observes; it must not change any measured quantity.
        assert!(base.samples.is_empty());
        assert_eq!(
            base.mean_latency_ms.to_bits(),
            sampled.mean_latency_ms.to_bits()
        );
        assert_eq!(base.cache_hits, sampled.cache_hits);
        assert_eq!(base.failed_requests, sampled.failed_requests);
        assert_eq!(base.cause, sampled.cause);
        // 1-in-7 of measured requests per server, keyed on stream index.
        assert!(!sampled.samples.is_empty());
        let expected: usize = (0..trace.n_servers())
            .map(|i| {
                let len = trace.len_for_server(i);
                let warmup = (len as f64 * sampled_cfg.warmup_fraction) as u64;
                (warmup..len).filter(|t| t % 7 == 0).count()
            })
            .sum();
        assert_eq!(sampled.samples.len(), expected);
        for s in &sampled.samples {
            assert_eq!(s.index % 7, 0);
        }
        // Samples arrive in (server, stream index) order.
        for w in sampled.samples.windows(2) {
            assert!(
                (w[0].server, w[0].index) < (w[1].server, w[1].index),
                "samples out of order"
            );
        }
        // Reproducible across thread counts, faults and all.
        let pool = |n: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .unwrap()
        };
        let one = pool(1)
            .install(|| simulate_system(&problem, &pl, &catalog, &trace, &sampled_cfg, None));
        let four = pool(4)
            .install(|| simulate_system(&problem, &pl, &catalog, &trace, &sampled_cfg, None));
        assert_eq!(one.samples, sampled.samples);
        assert_eq!(four.samples, sampled.samples);
        assert_reports_identical(&one, &four);
    }

    #[test]
    fn retry_penalty_inflates_failover_latency() {
        let (problem, catalog, trace) = scenario(0.0, LambdaMode::Uncacheable);
        let pl = cdn_placement::greedy_global(&problem).placement;
        let run = |penalty: f64| {
            let cfg = SimConfig {
                faults: Some(FaultParams {
                    retry_penalty_ms: penalty,
                    ..faulty_params()
                }),
                ..Default::default()
            };
            simulate_system(&problem, &pl, &catalog, &trace, &cfg, None)
        };
        let cheap = run(0.0);
        let dear = run(400.0);
        // Same schedule (same seed): identical routing, dearer retries.
        assert_eq!(cheap.failover_fetches, dear.failover_fetches);
        assert!(cheap.failover_fetches > 0);
        assert!(
            dear.failover_histogram.mean() > cheap.failover_histogram.mean() + 399.0,
            "penalty not reflected: {} vs {}",
            dear.failover_histogram.mean(),
            cheap.failover_histogram.mean()
        );
    }
}
