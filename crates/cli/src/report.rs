//! `hybrid-cdn report` — render the observability artifacts the bench
//! harness and simulator emit (metrics snapshots, wall-clock profiles,
//! sampled request paths, deterministic traces) as human-readable
//! latency-attribution tables.
//!
//! Everything here is read-only post-processing: the command never runs a
//! simulation, it only parses files produced by earlier runs.

use crate::args::Args;
use cdn_telemetry::json::{self, Json};
use cdn_telemetry::timeline::{render_openmetrics, sparkline};
use std::fmt::Write as _;

/// The `--key`s accepted by `hybrid-cdn report`.
pub const REPORT_KEYS: &[&str] = &[
    "metrics", "profile", "samples", "trace", "timeline", "top", "format",
];

/// Fixed cause order — mirrors `cdn_sim::Cause::ALL` so tables line up
/// with the simulator's own accounting.
const CAUSES: &[&str] = &[
    "replica_hit",
    "cache_hit",
    "delayed_hit",
    "remote_replica",
    "origin_fetch",
    "failover",
    "failed",
];

pub fn report(a: &Args) -> Result<(), String> {
    let top = a.get_u64("top", 10)? as usize;
    if top == 0 {
        return Err("--top must be at least 1".into());
    }
    match a.get("format").unwrap_or("text") {
        "text" => {}
        "json" => {
            let path = a
                .get("metrics")
                .ok_or("--format json needs --metrics FILE")?;
            print!("{}", metrics_json(&load_json(path)?, path)?);
            return Ok(());
        }
        "openmetrics" => {
            let path = a
                .get("metrics")
                .ok_or("--format openmetrics needs --metrics FILE")?;
            print!("{}", render_openmetrics(&load_json(path)?)?);
            return Ok(());
        }
        other => {
            return Err(format!(
                "unknown --format '{other}' (text | json | openmetrics)"
            ))
        }
    }
    let mut sections = Vec::new();
    if let Some(path) = a.get("metrics") {
        sections.push(metrics_section(&load_json(path)?, path)?);
    }
    if let Some(path) = a.get("profile") {
        sections.push(profile_section(&load_json(path)?, path, top)?);
    }
    if let Some(path) = a.get("samples") {
        sections.push(samples_section(&load_text(path)?, path, top)?);
    }
    if let Some(path) = a.get("trace") {
        sections.push(trace_section(&load_text(path)?, path, top)?);
    }
    if let Some(path) = a.get("timeline") {
        sections.push(timeline_section(&load_json(path)?, path, top)?);
    }
    if sections.is_empty() {
        return Err(
            "report needs at least one input: --metrics, --profile, --samples, --trace, or --timeline"
                .into(),
        );
    }
    print!("{}", sections.join("\n"));
    Ok(())
}

fn load_text(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
}

fn load_json(path: &str) -> Result<Json, String> {
    json::parse(&load_text(path)?).map_err(|e| format!("parsing {path}: {e}"))
}

/// Latency attribution + percentile ladder from a metrics snapshot
/// (`results/<bin>_metrics.json` or `--metrics-out`).
fn metrics_section(doc: &Json, path: &str) -> Result<String, String> {
    let counters = doc
        .get("counters")
        .and_then(Json::as_obj)
        .ok_or_else(|| format!("{path}: no \"counters\" object — not a metrics snapshot"))?;
    let get = |name: &str| counters.get(name).and_then(Json::as_u64);
    let mut out = String::new();
    let _ = writeln!(out, "== latency attribution ({path}) ==");
    if CAUSES
        .iter()
        .all(|c| get(&format!("sim.cause.{c}")).is_none())
    {
        let _ = writeln!(
            out,
            "  no sim.cause.* counters — the snapshot predates attribution or no simulation ran"
        );
    } else {
        let total: u64 = CAUSES
            .iter()
            .filter_map(|c| get(&format!("sim.cause.{c}")))
            .sum();
        let _ = writeln!(
            out,
            "  {:<16} {:>12} {:>8} {:>14} {:>10}",
            "cause", "requests", "share", "latency_ms", "mean_ms"
        );
        for c in CAUSES {
            let requests = get(&format!("sim.cause.{c}")).unwrap_or(0);
            let ms = get(&format!("sim.cause.{c}_latency_us")).unwrap_or(0) as f64 / 1000.0;
            let share = if total > 0 {
                100.0 * requests as f64 / total as f64
            } else {
                0.0
            };
            let mean = if requests > 0 {
                ms / requests as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {c:<16} {requests:>12} {share:>7.2}% {ms:>14.1} {mean:>10.3}"
            );
        }
        let total_ms: f64 = CAUSES
            .iter()
            .filter_map(|c| get(&format!("sim.cause.{c}_latency_us")))
            .sum::<u64>() as f64
            / 1000.0;
        let _ = writeln!(
            out,
            "  {:<16} {total:>12} {:>7.2}% {total_ms:>14.1}",
            "total", 100.0
        );
        if let Some(us) = get("sim.cause.failover_surcharge_us") {
            let _ = writeln!(
                out,
                "  retry penalty inside failover rows: {:.1} ms",
                us as f64 / 1000.0
            );
        }
        if let Some(measured) = get("sim.requests_measured") {
            if measured == total {
                let _ = writeln!(
                    out,
                    "  cross-check: causes sum to sim.requests_measured ({measured}) — OK"
                );
            } else {
                let _ = writeln!(
                    out,
                    "  cross-check: causes sum to {total} but sim.requests_measured is {measured} — MISMATCH"
                );
            }
        }
    }
    if let Some(evaluated) = get("placement.candidates_evaluated") {
        let skipped = get("placement.candidates_skipped_lazy").unwrap_or(0);
        let dense = evaluated + skipped;
        let ratio = if evaluated > 0 {
            dense as f64 / evaluated as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "  planner: {evaluated} candidates evaluated, {skipped} skipped lazily \
             ({ratio:.1}x fewer than a dense scan)"
        );
    }
    if let Some(h) = doc
        .get("histograms")
        .and_then(|hs| hs.get("sim.latency_ms"))
    {
        let _ = write!(out, "{}", percentile_ladder(h));
    }
    Ok(out)
}

/// Machine-readable twin of [`metrics_section`] (`--format json`): the
/// cause-attribution table plus the percentile ladder as one JSON object.
fn metrics_json(doc: &Json, path: &str) -> Result<String, String> {
    let counters = doc
        .get("counters")
        .and_then(Json::as_obj)
        .ok_or_else(|| format!("{path}: no \"counters\" object — not a metrics snapshot"))?;
    let get = |name: &str| counters.get(name).and_then(Json::as_u64);
    let total: u64 = CAUSES
        .iter()
        .filter_map(|c| get(&format!("sim.cause.{c}")))
        .sum();
    let mut out = String::from("{\n\"causes\": [");
    for (i, c) in CAUSES.iter().enumerate() {
        let requests = get(&format!("sim.cause.{c}")).unwrap_or(0);
        let ms = get(&format!("sim.cause.{c}_latency_us")).unwrap_or(0) as f64 / 1000.0;
        let share = if total > 0 {
            requests as f64 / total as f64
        } else {
            0.0
        };
        let mean = if requests > 0 {
            ms / requests as f64
        } else {
            0.0
        };
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n{{\"cause\": \"{c}\", \"requests\": {requests}, \"share\": {share:.6}, \
             \"latency_ms\": {ms:.3}, \"mean_ms\": {mean:.3}}}"
        );
    }
    let _ = write!(out, "\n],\n\"causes_total\": {total}");
    if let Some(us) = get("sim.cause.failover_surcharge_us") {
        let _ = write!(
            out,
            ",\n\"failover_surcharge_ms\": {:.3}",
            us as f64 / 1000.0
        );
    }
    if let Some(measured) = get("sim.requests_measured") {
        let _ = write!(
            out,
            ",\n\"requests_measured\": {measured},\n\"cross_check\": \"{}\"",
            if measured == total { "ok" } else { "mismatch" }
        );
    }
    if let Some(h) = doc
        .get("histograms")
        .and_then(|hs| hs.get("sim.latency_ms"))
    {
        if let Some(ladder) = percentile_ladder_json(h) {
            let _ = write!(out, ",\n\"percentiles_ms\": {ladder}");
        }
    }
    out.push_str("\n}\n");
    Ok(out)
}

/// The percentile ladder as a JSON object (`null` = beyond the last bin).
fn percentile_ladder_json(h: &Json) -> Option<String> {
    let bin_width = h.get("bin_width").and_then(Json::as_f64)?;
    let counts: Vec<u64> = h
        .get("counts")
        .and_then(Json::as_arr)?
        .iter()
        .filter_map(Json::as_u64)
        .collect();
    let overflow = h.get("overflow").and_then(Json::as_u64).unwrap_or(0);
    let total: u64 = counts.iter().sum::<u64>() + overflow;
    if total == 0 {
        return None;
    }
    let mut out = String::from("{");
    for (i, &(label, p)) in [("p50", 0.50), ("p90", 0.90), ("p95", 0.95), ("p99", 0.99)]
        .iter()
        .enumerate()
    {
        let rank = ((p * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        let mut rendered = String::from("null");
        for (b, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                rendered = format!("{:.1}", (b as f64 + 1.0) * bin_width);
                break;
            }
        }
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{label}\": {rendered}");
    }
    out.push('}');
    Some(out)
}

/// p50/p90/p95/p99 from the `sim.latency_ms` registry histogram
/// (`{"bin_width": w, "counts": [...], "overflow": o, "count": n}`).
fn percentile_ladder(h: &Json) -> String {
    let mut out = String::new();
    let (Some(bin_width), Some(counts)) = (
        h.get("bin_width").and_then(Json::as_f64),
        h.get("counts").and_then(Json::as_arr),
    ) else {
        return out;
    };
    let counts: Vec<u64> = counts.iter().filter_map(Json::as_u64).collect();
    let overflow = h.get("overflow").and_then(Json::as_u64).unwrap_or(0);
    let total: u64 = counts.iter().sum::<u64>() + overflow;
    if total == 0 {
        return out;
    }
    let _ = writeln!(out, "  request latency percentiles ({total} requests):");
    let _ = write!(out, "   ");
    for &(label, p) in &[("p50", 0.50), ("p90", 0.90), ("p95", 0.95), ("p99", 0.99)] {
        // Rank of the requested percentile; the value is the upper edge of
        // the bin the rank falls in (matches `LatencyHistogram::percentile`).
        let rank = ((p * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        let mut rendered = String::from("overflow");
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                rendered = format!("{:.1} ms", (i as f64 + 1.0) * bin_width);
                break;
            }
        }
        let _ = write!(out, "  {label} {rendered}");
    }
    out.push('\n');
    if overflow > 0 {
        let _ = writeln!(
            out,
            "  {overflow} request(s) beyond the last histogram bin ({:.0} ms)",
            bin_width * counts.len() as f64
        );
    }
    out
}

/// Per-phase self-time table from a `--profile-out` Chrome trace (the
/// `phaseSummary` key Perfetto ignores).
fn profile_section(doc: &Json, path: &str, top: usize) -> Result<String, String> {
    let phases = doc
        .get("phaseSummary")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: no \"phaseSummary\" array — not a cdn profile"))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== wall-clock phases, top {top} by self time ({path}) =="
    );
    if phases.is_empty() {
        let _ = writeln!(out, "  no spans recorded");
        return Ok(out);
    }
    let _ = writeln!(
        out,
        "  {:<28} {:>8} {:>12} {:>12} {:>12}",
        "phase", "count", "total_ms", "self_ms", "max_ms"
    );
    // `phaseSummary` is already ordered by self time, descending.
    for p in phases.iter().take(top) {
        let name = p.get("name").and_then(Json::as_str).unwrap_or("?");
        let count = p.get("count").and_then(Json::as_u64).unwrap_or(0);
        let us = |k: &str| p.get(k).and_then(Json::as_f64).unwrap_or(0.0) / 1000.0;
        let _ = writeln!(
            out,
            "  {name:<28} {count:>8} {:>12.3} {:>12.3} {:>12.3}",
            us("total_us"),
            us("self_us"),
            us("max_us")
        );
    }
    let _ = writeln!(
        out,
        "  (open {path} in chrome://tracing or https://ui.perfetto.dev for the timeline)"
    );
    Ok(out)
}

/// Cause mix and slowest requests from a `<bin>_samples.jsonl` file.
fn samples_section(body: &str, path: &str, top: usize) -> Result<String, String> {
    let mut by_cause: Vec<(String, u64, f64)> = Vec::new();
    let mut slowest: Vec<(f64, String)> = Vec::new();
    let mut n = 0u64;
    for (lineno, line) in body.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let doc = json::parse(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        let cause = doc
            .get("cause")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}:{}: sample without a \"cause\"", lineno + 1))?;
        let latency = doc.get("latency_ms").and_then(Json::as_f64).unwrap_or(0.0);
        n += 1;
        match by_cause.iter_mut().find(|(c, _, _)| c == cause) {
            Some((_, count, ms)) => {
                *count += 1;
                *ms += latency;
            }
            None => by_cause.push((cause.to_string(), 1, latency)),
        }
        let brief = format!(
            "{:>10.1} ms  {:<14} run {} server {} index {} hops {}",
            latency,
            cause,
            doc.get("run").and_then(Json::as_str).unwrap_or("?"),
            doc.get("server").and_then(Json::as_u64).unwrap_or(0),
            doc.get("index").and_then(Json::as_u64).unwrap_or(0),
            doc.get("hops").and_then(Json::as_u64).unwrap_or(0),
        );
        slowest.push((latency, brief));
    }
    let mut out = String::new();
    let _ = writeln!(out, "== sampled requests ({n} samples, {path}) ==");
    if n == 0 {
        let _ = writeln!(out, "  no samples — was --sample-every passed to the run?");
        return Ok(out);
    }
    let _ = writeln!(
        out,
        "  {:<16} {:>10} {:>8} {:>10}",
        "cause", "samples", "share", "mean_ms"
    );
    by_cause.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for (cause, count, ms) in &by_cause {
        let _ = writeln!(
            out,
            "  {cause:<16} {count:>10} {:>7.2}% {:>10.3}",
            100.0 * *count as f64 / n as f64,
            ms / *count as f64
        );
    }
    let _ = writeln!(out, "  slowest {}:", top.min(slowest.len()));
    slowest.sort_by(|a, b| b.0.total_cmp(&a.0));
    for (_, brief) in slowest.iter().take(top) {
        let _ = writeln!(out, "  {brief}");
    }
    Ok(out)
}

/// Span/event tallies from the deterministic JSONL trace.
fn trace_section(body: &str, path: &str, top: usize) -> Result<String, String> {
    let (mut enters, mut events, mut exits) = (0u64, 0u64, 0u64);
    let mut names: Vec<(String, u64)> = Vec::new();
    for (lineno, line) in body.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let doc = json::parse(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        match doc.get("type").and_then(Json::as_str) {
            Some("enter") => enters += 1,
            Some("event") => events += 1,
            Some("exit") => exits += 1,
            other => return Err(format!("{path}:{}: bad record type {other:?}", lineno + 1)),
        }
        if let Some(name) = doc.get("name").and_then(Json::as_str) {
            match names.iter_mut().find(|(n, _)| n == name) {
                Some((_, c)) => *c += 1,
                None => names.push((name.to_string(), 1)),
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== deterministic trace ({path}) ==");
    let _ = writeln!(
        out,
        "  {} records: {enters} span enters, {events} events, {exits} span exits",
        enters + events + exits
    );
    names.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for (name, count) in names.iter().take(top) {
        let _ = writeln!(out, "  {name:<28} {count:>10}");
    }
    Ok(out)
}

/// Per-window sparklines plus a per-server hotspot table from a windowed
/// timeline export (`<bin>_timeline.json` or `--timeline-out`).
fn timeline_section(doc: &Json, path: &str, top: usize) -> Result<String, String> {
    let runs = doc
        .get("runs")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: no \"runs\" array — not a timeline export"))?;
    let mut out = String::new();
    let _ = writeln!(out, "== windowed timeline ({path}) ==");
    if runs.is_empty() {
        let _ = writeln!(out, "  no runs — was --window passed to the run?");
        return Ok(out);
    }
    for run in runs {
        let name = run.get("run").and_then(Json::as_str).unwrap_or("?");
        let width = run.get("window_width").and_then(Json::as_u64).unwrap_or(0);
        let u64s = |key: &str| -> Vec<u64> {
            run.get(key)
                .and_then(Json::as_arr)
                .map(|a| a.iter().filter_map(Json::as_u64).collect())
                .unwrap_or_default()
        };
        let f64s = |key: &str| -> Vec<f64> {
            run.get(key)
                .and_then(Json::as_arr)
                .map(|a| a.iter().filter_map(Json::as_f64).collect())
                .unwrap_or_default()
        };
        let windows = u64s("windows");
        let _ = writeln!(
            out,
            "  run {name}: {} windows x {width} ticks",
            windows.len()
        );
        if windows.is_empty() {
            // A run can legitimately complete zero windows (e.g. --window
            // wider than the measured stream, or no measured requests at
            // all); say so instead of rendering empty lanes.
            let _ = writeln!(
                out,
                "    no complete windows — stream shorter than one window, \
                 or the run measured no requests"
            );
            continue;
        }
        let lanes: &[(&str, Vec<f64>)] = &[
            (
                "requests",
                u64s("requests").iter().map(|&v| v as f64).collect(),
            ),
            ("mean_ms", f64s("mean_ms")),
            ("p99_ms", f64s("p99_ms")),
            (
                "evictions",
                u64s("evictions").iter().map(|&v| v as f64).collect(),
            ),
        ];
        for (label, vals) in lanes {
            let peak = vals.iter().fold(0.0f64, |m, &v| m.max(v));
            let _ = writeln!(out, "    {label:<10} {}  peak {peak:.1}", sparkline(vals));
        }
        // The busiest window's hottest site — per-window site attribution.
        let top_sites = u64s("top_site");
        let top_counts = u64s("top_site_requests");
        if let Some(hot) = (0..windows.len().min(top_counts.len()))
            .max_by_key(|&i| (top_counts[i], std::cmp::Reverse(windows[i])))
        {
            let _ = writeln!(
                out,
                "    hottest site: site {} with {} request(s) in window {}",
                top_sites.get(hot).copied().unwrap_or(0),
                top_counts[hot],
                windows[hot]
            );
        }
        // Hotspot attribution: the top server-windows by request volume.
        let mut hotspots: Vec<(u64, usize, u64, f64, u64, u64, u64)> = Vec::new();
        for server in run
            .get("servers")
            .and_then(Json::as_arr)
            .unwrap_or_default()
        {
            let id = server.get("server").and_then(Json::as_u64).unwrap_or(0) as usize;
            let col = |key: &str| -> Vec<u64> {
                server
                    .get(key)
                    .and_then(Json::as_arr)
                    .map(|a| a.iter().filter_map(Json::as_u64).collect())
                    .unwrap_or_default()
            };
            let (wins, reqs) = (col("windows"), col("requests"));
            let p99: Vec<f64> = server
                .get("p99_ms")
                .and_then(Json::as_arr)
                .map(|a| a.iter().filter_map(Json::as_f64).collect())
                .unwrap_or_default();
            let (used, evic, fail) = (
                col("cache_used_bytes"),
                col("evictions"),
                col("failover_fetches"),
            );
            for i in 0..wins.len().min(reqs.len()) {
                hotspots.push((
                    reqs[i],
                    id,
                    wins[i],
                    p99.get(i).copied().unwrap_or(0.0),
                    used.get(i).copied().unwrap_or(0),
                    evic.get(i).copied().unwrap_or(0),
                    fail.get(i).copied().unwrap_or(0),
                ));
            }
        }
        if !hotspots.is_empty() {
            // Busiest first; ties resolve to the lower server id, then the
            // earlier window, so the table is deterministic.
            hotspots.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
            let _ = writeln!(
                out,
                "    hotspots (top {} server-windows by requests):",
                top.min(hotspots.len())
            );
            let _ = writeln!(
                out,
                "    {:>6} {:>8} {:>10} {:>10} {:>12} {:>10} {:>9}",
                "server", "window", "requests", "p99_ms", "cache_bytes", "evictions", "failovers"
            );
            for (reqs, id, win, p99, used, evic, fail) in hotspots.iter().take(top) {
                let _ = writeln!(
                    out,
                    "    {id:>6} {win:>8} {reqs:>10} {p99:>10.1} {used:>12} {evic:>10} {fail:>9}"
                );
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SNAPSHOT: &str = r#"{
  "counters": {
    "sim.cause.cache_hit": 30, "sim.cause.cache_hit_latency_us": 600000,
    "sim.cause.delayed_hit": 0, "sim.cause.delayed_hit_latency_us": 0,
    "sim.cause.failed": 0, "sim.cause.failed_latency_us": 0,
    "sim.cause.failover": 10, "sim.cause.failover_latency_us": 2400000,
    "sim.cause.failover_surcharge_us": 2000000,
    "sim.cause.origin_fetch": 20, "sim.cause.origin_fetch_latency_us": 1600000,
    "sim.cause.remote_replica": 0, "sim.cause.remote_replica_latency_us": 0,
    "sim.cause.replica_hit": 40, "sim.cause.replica_hit_latency_us": 800000,
    "sim.requests_measured": 100
  },
  "gauges": {},
  "histograms": {
    "sim.latency_ms": {"bin_width": 1.0, "counts": [0, 50, 0, 0, 40], "overflow": 10, "count": 100}
  }
}"#;

    #[test]
    fn metrics_section_attributes_and_cross_checks() {
        let doc = json::parse(SNAPSHOT).unwrap();
        let s = metrics_section(&doc, "m.json").unwrap();
        assert!(s.contains("replica_hit"), "{s}");
        assert!(s.contains("delayed_hit"), "delayed-hit row renders: {s}");
        assert!(s.contains("40.00%"), "replica share: {s}");
        // Mean of the failover rows: 2400 ms over 10 requests.
        assert!(s.contains("240.000"), "{s}");
        assert!(
            s.contains("causes sum to sim.requests_measured (100) — OK"),
            "{s}"
        );
        // p50 falls in bin 1 (upper edge 2 ms), p95 in the overflow.
        assert!(s.contains("p50 2.0 ms"), "{s}");
        assert!(s.contains("p95 overflow"), "{s}");
        assert!(s.contains("10 request(s) beyond"), "{s}");
    }

    #[test]
    fn metrics_mismatch_is_flagged() {
        let doc = json::parse(&SNAPSHOT.replace(
            "\"sim.requests_measured\": 100",
            "\"sim.requests_measured\": 99",
        ))
        .unwrap();
        let s = metrics_section(&doc, "m.json").unwrap();
        assert!(s.contains("MISMATCH"), "{s}");
    }

    #[test]
    fn metrics_render_lazy_planner_counters() {
        let doc = json::parse(
            r#"{"counters": {"placement.candidates_evaluated": 100,
                             "placement.candidates_skipped_lazy": 1100},
                "gauges": {}, "histograms": {}}"#,
        )
        .unwrap();
        let s = metrics_section(&doc, "m.json").unwrap();
        assert!(s.contains("100 candidates evaluated"), "{s}");
        assert!(s.contains("1100 skipped lazily"), "{s}");
        assert!(s.contains("12.0x fewer"), "{s}");
    }

    #[test]
    fn metrics_without_cause_counters_degrades_gracefully() {
        let doc =
            json::parse(r#"{"counters": {"sim.cache_hits": 3}, "gauges": {}, "histograms": {}}"#)
                .unwrap();
        let s = metrics_section(&doc, "m.json").unwrap();
        assert!(s.contains("no sim.cause.* counters"), "{s}");
        assert!(metrics_section(&json::parse("{}").unwrap(), "m.json").is_err());
    }

    #[test]
    fn profile_section_reads_phase_summary() {
        let profile = r#"{"traceEvents": [], "displayTimeUnit": "ms", "phaseSummary": [
            {"name": "sim:hybrid", "count": 2, "total_us": 9000.0, "self_us": 8000.5, "max_us": 5000.0},
            {"name": "plan:hybrid", "count": 2, "total_us": 4000.0, "self_us": 3000.0, "max_us": 2100.0}
        ]}"#;
        let doc = json::parse(profile).unwrap();
        let s = profile_section(&doc, "p.json", 1).unwrap();
        assert!(s.contains("sim:hybrid"), "{s}");
        assert!(!s.contains("plan:hybrid"), "top 1 must truncate: {s}");
        assert!(s.contains("8.001"), "self_us rendered as ms: {s}");
        assert!(profile_section(&json::parse("{}").unwrap(), "p.json", 3).is_err());
    }

    #[test]
    fn samples_section_tallies_and_ranks() {
        let body = concat!(
            r#"{"run":"r0:hybrid","server":0,"index":0,"cause":"replica_hit","hops":0,"latency_ms":20}"#,
            "\n",
            r#"{"run":"r0:hybrid","server":1,"index":7,"cause":"failover","hops":11,"latency_ms":440}"#,
            "\n",
            r#"{"run":"r0:hybrid","server":0,"index":14,"cause":"replica_hit","hops":0,"latency_ms":20}"#,
            "\n",
        );
        let s = samples_section(body, "s.jsonl", 1).unwrap();
        assert!(s.contains("3 samples"), "{s}");
        assert!(s.contains("66.67%"), "replica_hit share: {s}");
        assert!(
            s.contains("server 1 index 7"),
            "slowest is the failover: {s}"
        );
        assert!(samples_section("{\"no_cause\":1}\n", "s.jsonl", 1).is_err());
        assert!(samples_section("not json\n", "s.jsonl", 1).is_err());
    }

    #[test]
    fn trace_section_counts_record_types() {
        let body = concat!(
            r#"{"seq":0,"type":"enter","span":1,"parent":0,"name":"sim.system"}"#,
            "\n",
            r#"{"seq":1,"type":"event","span":1,"name":"sim.request"}"#,
            "\n",
            r#"{"seq":2,"type":"exit","span":1,"records":1}"#,
            "\n",
        );
        let s = trace_section(body, "t.jsonl", 5).unwrap();
        assert!(s.contains("1 span enters, 1 events, 1 span exits"), "{s}");
        assert!(s.contains("sim.request"), "{s}");
        assert!(trace_section("{\"type\":\"wat\"}\n", "t.jsonl", 5).is_err());
    }

    #[test]
    fn report_requires_an_input() {
        let a = Args::parse(std::iter::empty(), REPORT_KEYS).unwrap();
        assert!(report(&a).unwrap_err().contains("at least one input"));
        let a = Args::parse(["--top", "0"].iter().map(|s| s.to_string()), REPORT_KEYS).unwrap();
        assert!(report(&a).unwrap_err().contains("--top"));
    }

    #[test]
    fn json_format_emits_machine_readable_attribution() {
        let doc = json::parse(SNAPSHOT).unwrap();
        let body = metrics_json(&doc, "m.json").unwrap();
        // The output must itself parse as JSON and carry the same facts
        // the text table renders.
        let parsed = json::parse(&body).unwrap();
        let causes = parsed.get("causes").unwrap().as_arr().unwrap();
        assert_eq!(causes.len(), CAUSES.len());
        let replica = causes
            .iter()
            .find(|c| c.get("cause").and_then(Json::as_str) == Some("replica_hit"))
            .unwrap();
        assert_eq!(replica.get("requests").unwrap().as_u64(), Some(40));
        assert!((replica.get("share").unwrap().as_f64().unwrap() - 0.4).abs() < 1e-9);
        assert_eq!(parsed.get("causes_total").unwrap().as_u64(), Some(100));
        assert_eq!(
            parsed.get("cross_check").unwrap().as_str(),
            Some("ok"),
            "{body}"
        );
        let pct = parsed.get("percentiles_ms").unwrap();
        assert_eq!(pct.get("p50").unwrap().as_f64(), Some(2.0));
        // p95 lands in the overflow bin: JSON null, not a fake number.
        assert!(matches!(pct.get("p95"), Some(Json::Null)), "{body}");
        assert!(metrics_json(&json::parse("{}").unwrap(), "m.json").is_err());
    }

    #[test]
    fn unknown_format_is_rejected() {
        let a = Args::parse(
            ["--format", "yaml"].iter().map(|s| s.to_string()),
            REPORT_KEYS,
        )
        .unwrap();
        assert!(report(&a).unwrap_err().contains("--format"));
        // json/openmetrics need a metrics snapshot to render.
        for f in ["json", "openmetrics"] {
            let a =
                Args::parse(["--format", f].iter().map(|s| s.to_string()), REPORT_KEYS).unwrap();
            assert!(report(&a).unwrap_err().contains("--metrics"), "{f}");
        }
    }

    /// A two-window, two-server timeline export in the exact shape
    /// `cdn_sim::render_timeline_json` produces.
    const TIMELINE: &str = r#"{
"runs": [
{
"run": "hybrid",
"window_width": 512,
"windows": [3, 4],
"requests": [100, 140],
"local_requests": [60, 80],
"cache_hits": [40, 50],
"replica_hits": [20, 30],
"origin_fetches": [30, 40],
"peer_fetches": [10, 20],
"failover_fetches": [0, 0],
"failed_requests": [0, 0],
"cost_hops": [300, 400],
"total_bytes": [9000, 9500],
"origin_bytes": [4000, 4100],
"cache_used_bytes": [800, 900],
"evictions": [5, 9],
"mean_ms": [40.000, 45.000],
"p50_ms": [30.000, 32.000],
"p90_ms": [80.000, 90.000],
"p99_ms": [120.000, 140.000],
"max_ms": [150.000, 180.000],
"top_site": [7, 2],
"top_site_requests": [33, 61],
"servers": [
{"server":0,
"windows": [3, 4], "requests": [90, 10],
"local_requests": [50, 5], "cache_hits": [35, 3], "replica_hits": [15, 2],
"origin_fetches": [25, 3], "peer_fetches": [5, 2], "failover_fetches": [0, 0],
"failed_requests": [0, 0], "cost_hops": [250, 30], "total_bytes": [8000, 500],
"origin_bytes": [3500, 100], "cache_used_bytes": [700, 100], "evictions": [5, 0],
"mean_ms": [41.000, 30.000], "p50_ms": [31.000, 25.000], "p90_ms": [82.000, 40.000],
"p99_ms": [125.000, 50.000], "max_ms": [150.000, 60.000]},
{"server":1,
"windows": [3, 4], "requests": [10, 130],
"local_requests": [10, 75], "cache_hits": [5, 47], "replica_hits": [5, 28],
"origin_fetches": [5, 37], "peer_fetches": [5, 18], "failover_fetches": [0, 0],
"failed_requests": [0, 0], "cost_hops": [50, 370], "total_bytes": [1000, 9000],
"origin_bytes": [500, 4000], "cache_used_bytes": [100, 800], "evictions": [0, 9],
"mean_ms": [35.000, 46.000], "p50_ms": [28.000, 33.000], "p90_ms": [70.000, 92.000],
"p99_ms": [100.000, 141.000], "max_ms": [120.000, 180.000]}
]
}
]
}"#;

    #[test]
    fn timeline_section_renders_sparklines_and_hotspots() {
        let doc = json::parse(TIMELINE).unwrap();
        let s = timeline_section(&doc, "tl.json", 2).unwrap();
        assert!(s.contains("run hybrid: 2 windows x 512 ticks"), "{s}");
        for lane in ["requests", "mean_ms", "p99_ms", "evictions"] {
            assert!(s.contains(lane), "{lane} lane missing: {s}");
        }
        // Sparklines scale to the lane maximum.
        assert!(s.contains('█'), "{s}");
        assert!(
            s.contains("hottest site: site 2 with 61 request(s) in window 4"),
            "{s}"
        );
        // Hotspot table ranks server-windows by requests: server 1 window 4
        // (130 requests) first, then server 0 window 3 (90).
        let hot1 = s.find("     1        4        130").expect(&s);
        let hot0 = s.find("     0        3         90").expect(&s);
        assert!(hot1 < hot0, "{s}");
        // top 2 truncates the remaining two server-windows.
        assert!(!s.contains("        10 "), "top must truncate: {s}");
        assert!(timeline_section(&json::parse("{}").unwrap(), "tl.json", 2).is_err());
    }

    #[test]
    fn empty_timeline_degrades_gracefully() {
        let doc = json::parse(r#"{"runs": []}"#).unwrap();
        let s = timeline_section(&doc, "tl.json", 3).unwrap();
        assert!(s.contains("no runs"), "{s}");
    }

    #[test]
    fn zero_complete_windows_render_cleanly() {
        // A run is present but completed no windows (stream shorter than
        // one window): the section must say so, render no lanes for that
        // run, and still render subsequent runs in full.
        let doc = json::parse(&TIMELINE.replace(
            "\"runs\": [\n{",
            r#""runs": [
{
"run": "warmup-only",
"window_width": 100000,
"windows": [],
"requests": [],
"mean_ms": [],
"p99_ms": [],
"evictions": [],
"top_site": [],
"top_site_requests": [],
"servers": []
},
{"#,
        ))
        .unwrap();
        let s = timeline_section(&doc, "tl.json", 2).unwrap();
        assert!(
            s.contains("run warmup-only: 0 windows x 100000 ticks"),
            "{s}"
        );
        assert!(s.contains("no complete windows"), "{s}");
        // The empty run renders no sparklines or hotspots of its own…
        let empty_part = &s[..s.find("run hybrid").expect(&s)];
        assert!(!empty_part.contains("hotspots"), "{s}");
        assert!(!empty_part.contains('█'), "{s}");
        // …while the populated run after it still renders fully.
        assert!(s.contains("run hybrid: 2 windows x 512 ticks"), "{s}");
        assert!(s.contains("hotspots"), "{s}");
    }
}
