//! `hybrid-cdn` — command-line front end for the reproduction.
//!
//! ```text
//! hybrid-cdn compare  [--capacity 0.05] [--lambda 0] [--mode uncacheable|expired]
//!                     [--scale small|paper] [--seed N]
//! hybrid-cdn plan     [--strategy hybrid|replication|caching|adhoc:<frac>|...]
//!                     [--capacity ...] [--scale ...] [--seed N]
//! hybrid-cdn topology [--scale small|paper] [--seed N] [--dot FILE] [--csv FILE]
//! hybrid-cdn workload [--theta 1.0] [--sites N] [--objects L] [--seed N]
//! hybrid-cdn report   [--metrics FILE] [--profile FILE] [--samples FILE]
//!                     [--trace FILE] [--top N]
//! hybrid-cdn ingest   --out FILE.events [--csv FILE] [scenario flags]
//! ```

mod args;
mod commands;
mod report;

use args::Args;

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        eprintln!("{}", commands::USAGE);
        std::process::exit(2);
    }
    let command = raw.remove(0);
    let result = match command.as_str() {
        "compare" => {
            let mut keys = vec!["cache-policy", "model", "trace-in"];
            keys.extend_from_slice(commands::SCENARIO_KEYS);
            Args::parse(raw, &keys).and_then(|a| commands::compare(&a))
        }
        "ingest" => {
            let mut keys = vec!["csv", "out"];
            keys.extend_from_slice(commands::SCENARIO_KEYS);
            Args::parse(raw, &keys).and_then(|a| commands::ingest(&a))
        }
        "plan" => {
            let mut keys = vec!["strategy", "model"];
            keys.extend_from_slice(commands::SCENARIO_KEYS);
            Args::parse(raw, &keys).and_then(|a| commands::plan(&a))
        }
        "topology" => {
            Args::parse(raw, &["scale", "seed", "dot", "csv"]).and_then(|a| commands::topology(&a))
        }
        "workload" => Args::parse(raw, &["theta", "sites", "objects", "seed"])
            .and_then(|a| commands::workload(&a)),
        "report" => Args::parse(raw, report::REPORT_KEYS).and_then(|a| report::report(&a)),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{}", commands::USAGE)),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    // The binary's logic lives in `args` and `commands`, both tested there;
    // this smoke test just keeps `main`'s dispatch table in sync with USAGE.
    #[test]
    fn usage_mentions_every_command() {
        for cmd in [
            "compare", "plan", "topology", "workload", "report", "ingest",
        ] {
            assert!(
                crate::commands::USAGE.contains(cmd),
                "{cmd} missing from USAGE"
            );
        }
    }
}
