//! The CLI subcommands.

use crate::args::Args;
use cdn_core::{
    compare_strategies_with_options, export_events, parse_csv_trace, replay_events, ModelBackend,
    Scenario, ScenarioConfig, Strategy,
};
use cdn_telemetry as telemetry;
use cdn_topology::metrics::compute_metrics;
use cdn_topology::{export, TransitStubConfig, TransitStubTopology};
use cdn_workload::{
    analysis::TraceStats, DemandMatrix, LambdaMode, SiteCatalog, TraceSpec, WorkloadConfig,
};

pub const USAGE: &str = "hybrid-cdn — replication + caching for CDNs (IPDPS 2005 reproduction)

USAGE:
  hybrid-cdn compare  [--capacity 0.05] [--lambda 0] [--mode uncacheable|expired]
                      [--scale small|paper|large|large-ci] [--seed N] [--threads N]
                      [--cache-policy lru|delayed-lru|fifo|lfu|clock|gdsf]
                      [--model paper|che|closed-form] [--trace-in FILE.events]
                      [fault options]
  hybrid-cdn plan     [--strategy hybrid] [--model paper|che|closed-form]
                      [--capacity 0.05] [--lambda 0] [--mode uncacheable|expired]
                      [--scale small|paper|large|large-ci] [--seed N]
                      [--threads N] [fault options]
  hybrid-cdn topology [--scale small|paper|large] [--seed N] [--dot FILE] [--csv FILE]
  hybrid-cdn workload [--theta 1.0] [--sites 15] [--objects 200] [--seed N]
  hybrid-cdn ingest   --out FILE.events [--csv FILE] [scenario flags]
  hybrid-cdn report   [--metrics FILE] [--profile FILE] [--samples FILE]
                      [--trace FILE] [--timeline FILE] [--top N]
                      [--format text|json|openmetrics]
  hybrid-cdn help

TRACES (the versioned binary .events format: (key, timestamp_us) pairs):
  `hybrid-cdn ingest --csv trace.csv --out trace.events` converts a text
  trace (rows `timestamp_us,key` or `timestamp_us,site,object`; a header
  row is skipped) to .events; without --csv it exports the synthetic
  workload of the selected scenario instead. `compare --trace-in
  trace.events` then replays the file through every strategy: requests
  are partitioned across servers by a deterministic key hash and clamped
  into the scenario's catalog, so any trace replays against any scale.

DELAYED HITS (compare, plan, and trace replay):
  --fetch-latency N     remote fetches complete N ticks after the miss
                        that started them; requests for the same object
                        arriving earlier coalesce onto the pending fetch
                        as `delayed_hit`s instead of separate fetches
                        (0 = instant fetches, the off switch)

FAULT OPTIONS (enable fault injection / failover routing in the simulator):
  --mttf TICKS          mean requests between server crashes (default: never)
  --mttr TICKS          mean requests to repair a crashed server (default 500)
  --origin-outage F     long-run fraction of time origins are down, [0, 1)
  --retry-penalty-ms MS latency per dead holder skipped (default 200)

OBSERVABILITY (compare and plan; deterministic — no timestamps, identical
bytes at any --threads value):
  --trace-out FILE      write the JSONL span/event trace to FILE
  --metrics-out FILE    write the counters/gauges/histograms snapshot to FILE
  --sample-every N      sample every Nth request per server stream
  --samples-out FILE    write sampled request paths (JSONL) to FILE
  --window N            bucket measured requests into N-tick virtual-time
                        windows (0 = off); timelines are byte-identical at
                        any --threads value and any shard count
  --timeline-out FILE   write the windowed timeline JSON to FILE
  --profile-out FILE    write a WALL-CLOCK Chrome trace profile to FILE
                        (load in chrome://tracing or Perfetto; timed data
                        lives only here — the files above stay byte-identical)

`hybrid-cdn report` renders these artifacts: a latency-attribution table
plus percentile ladder from --metrics, per-phase self-time from --profile,
cause mix and slowest requests from --samples, span tallies from --trace,
per-window sparklines and a per-server hotspot table from --timeline.
`--format json` emits the report machine-readable; `--format openmetrics`
re-exports the --metrics snapshot in OpenMetrics text format.

STRATEGIES (for --strategy):
  hybrid | replication | caching | popularity | greedy-local | backtrack
  | hybrid-che | random:<seed> | adhoc:<cache-fraction>";

/// The `--key`s shared by every scenario-driven subcommand.
pub const SCENARIO_KEYS: &[&str] = &[
    "capacity",
    "lambda",
    "mode",
    "scale",
    "seed",
    "threads",
    "mttf",
    "mttr",
    "origin-outage",
    "retry-penalty-ms",
    "trace-out",
    "metrics-out",
    "profile-out",
    "sample-every",
    "samples-out",
    "window",
    "timeline-out",
    "fetch-latency",
];

/// Observability outputs requested on the command line. Constructing it
/// (via [`Observability::setup`]) switches the telemetry layer on when any
/// output is wanted; [`Observability::flush`] writes the files after the
/// command's work is done.
struct Observability {
    trace_out: Option<String>,
    metrics_out: Option<String>,
    /// Wall-clock profile destination — strictly separate from the
    /// deterministic outputs above, which stay byte-identical whether or
    /// not profiling is on.
    profile_out: Option<String>,
    samples_out: Option<String>,
    /// Rendered sampled-request JSONL, accumulated via [`Self::record_samples`].
    samples: String,
    timeline_out: Option<String>,
    /// Windowed timelines buffered via [`Self::record_timeline`], rendered
    /// to JSON at flush time.
    timelines: Vec<(String, cdn_core::sim::Timeline)>,
}

impl Observability {
    fn setup(a: &Args) -> Self {
        let obs = Self {
            trace_out: a.get("trace-out").map(str::to_string),
            metrics_out: a.get("metrics-out").map(str::to_string),
            profile_out: a.get("profile-out").map(str::to_string),
            samples_out: a.get("samples-out").map(str::to_string),
            samples: String::new(),
            timeline_out: a.get("timeline-out").map(str::to_string),
            timelines: Vec::new(),
        };
        if obs.trace_out.is_some() || obs.metrics_out.is_some() {
            telemetry::reset_metrics();
            telemetry::set_enabled(true);
            if obs.trace_out.is_some() {
                telemetry::install_trace();
            }
        }
        if obs.profile_out.is_some() {
            telemetry::profile::install();
        }
        obs
    }

    /// Buffer one simulation's sampled request paths under `run`.
    fn record_samples(&mut self, run: &str, report: &cdn_core::sim::SimReport) {
        if self.samples_out.is_some() && !report.samples.is_empty() {
            cdn_core::sim::render_samples_jsonl(run, report, &mut self.samples);
        }
    }

    /// Buffer one simulation's windowed timeline under `run`.
    fn record_timeline(&mut self, run: &str, report: &cdn_core::sim::SimReport) {
        if self.timeline_out.is_some() {
            if let Some(tl) = &report.timeline {
                self.timelines.push((run.to_string(), tl.clone()));
            }
        }
    }

    fn flush(&self) -> Result<(), String> {
        if let Some(path) = &self.metrics_out {
            std::fs::write(path, telemetry::registry().snapshot_json())
                .map_err(|e| format!("writing {path}: {e}"))?;
            println!("wrote metrics snapshot to {path}");
        }
        if let Some(path) = &self.trace_out {
            let jsonl = telemetry::drain_trace().unwrap_or_default();
            std::fs::write(path, jsonl).map_err(|e| format!("writing {path}: {e}"))?;
            println!("wrote event trace to {path}");
        }
        if let Some(path) = &self.samples_out {
            std::fs::write(path, &self.samples).map_err(|e| format!("writing {path}: {e}"))?;
            println!("wrote sampled requests to {path}");
        }
        if let Some(path) = &self.timeline_out {
            let body = cdn_core::sim::render_timeline_json(&self.timelines);
            std::fs::write(path, body).map_err(|e| format!("writing {path}: {e}"))?;
            println!("wrote windowed timeline to {path}");
        }
        if let Some(path) = &self.profile_out {
            let profile = telemetry::profile::drain_chrome_trace().unwrap_or_default();
            std::fs::write(path, profile).map_err(|e| format!("writing {path}: {e}"))?;
            println!("wrote wall-clock profile to {path} (chrome://tracing, Perfetto)");
        }
        Ok(())
    }
}

/// Apply `--threads N` (configure the global rayon pool before any parallel
/// region runs) and return the effective worker count. Results are
/// bit-identical at any thread count, so this is purely a speed knob.
fn configure_threads(a: &Args) -> Result<usize, String> {
    if a.has("threads") {
        let n = a.get_u64("threads", 0)?;
        if n == 0 {
            return Err("--threads must be at least 1".into());
        }
        rayon::ThreadPoolBuilder::new()
            .num_threads(n as usize)
            .build_global()
            .map_err(|e| format!("--threads: {e}"))?;
    }
    Ok(rayon::current_num_threads())
}

/// Fault parameters from `--mttf`/`--mttr`/`--origin-outage`/
/// `--retry-penalty-ms`; `None` when no fault flag was given (the exact
/// fault-free simulation path). The schedule seed follows the scenario
/// seed so `--seed` varies faults and workload together.
fn fault_params(
    a: &Args,
    scenario_seed: u64,
) -> Result<Option<cdn_core::sim::FaultParams>, String> {
    if !["mttf", "mttr", "origin-outage", "retry-penalty-ms"]
        .iter()
        .any(|k| a.has(k))
    {
        return Ok(None);
    }
    let defaults = cdn_core::sim::FaultParams::default();
    let params = cdn_core::sim::FaultParams {
        mttf: a.get_f64("mttf", f64::INFINITY)?,
        mttr: a.get_f64("mttr", defaults.mttr)?,
        origin_outage: a.get_f64("origin-outage", 0.0)?,
        retry_penalty_ms: a.get_f64("retry-penalty-ms", defaults.retry_penalty_ms)?,
        seed: scenario_seed,
    };
    if params.mttf <= 0.0 {
        return Err(format!("--mttf must be positive, got {}", params.mttf));
    }
    if !(params.mttr > 0.0 && params.mttr.is_finite()) {
        return Err(format!(
            "--mttr must be positive and finite, got {}",
            params.mttr
        ));
    }
    if !(0.0..1.0).contains(&params.origin_outage) {
        return Err(format!(
            "--origin-outage must be in [0, 1), got {}",
            params.origin_outage
        ));
    }
    if !(params.retry_penalty_ms >= 0.0 && params.retry_penalty_ms.is_finite()) {
        return Err(format!(
            "--retry-penalty-ms must be non-negative, got {}",
            params.retry_penalty_ms
        ));
    }
    Ok(Some(params))
}

fn scenario_config(a: &Args) -> Result<ScenarioConfig, String> {
    let mode = match a.get("mode").unwrap_or("uncacheable") {
        "uncacheable" => LambdaMode::Uncacheable,
        "expired" => LambdaMode::Expired,
        other => return Err(format!("unknown --mode '{other}'")),
    };
    let capacity = a.get_f64("capacity", 0.05)?;
    if !(0.0..=1.0).contains(&capacity) || capacity == 0.0 {
        return Err(format!("--capacity must be in (0, 1], got {capacity}"));
    }
    let lambda = a.get_f64("lambda", 0.0)?;
    if !(0.0..=1.0).contains(&lambda) {
        return Err(format!("--lambda must be in [0, 1], got {lambda}"));
    }
    let mut cfg = match a.get("scale").unwrap_or("small") {
        "paper" => ScenarioConfig::paper(capacity, lambda, mode),
        "large" => ScenarioConfig::large(capacity, lambda, mode),
        "large-ci" => ScenarioConfig::large_ci(capacity, lambda, mode),
        "small" => {
            let mut c = ScenarioConfig::small();
            // Below 5% of the small corpus no site fits anywhere and every
            // strategy degenerates to pure caching; clamp, but say so.
            if capacity < 0.05 {
                eprintln!(
                    "note: --capacity {capacity} raised to 0.05 at small scale (sites are ~7% of the corpus each)"
                );
            }
            c.capacity_fraction = capacity.max(0.05);
            c.lambda = lambda;
            c.lambda_mode = mode;
            c
        }
        other => return Err(format!("unknown --scale '{other}'")),
    };
    if a.has("seed") {
        cfg.seed = a.get_u64("seed", cfg.seed)?;
    }
    cfg.sim.faults = fault_params(a, cfg.seed)?;
    if a.has("sample-every") {
        let n = a.get_u64("sample-every", 0)?;
        if n == 0 {
            return Err("--sample-every must be at least 1".into());
        }
        cfg.sim.sample_every = Some(n);
    }
    if a.has("window") {
        // 0 is valid: it is the documented timeline off switch, and the
        // `Some(0)` path is bit-identical to `None`.
        cfg.sim.window = Some(a.get_u64("window", 0)?);
    }
    if a.has("fetch-latency") {
        // Same contract as --window: 0 is the documented off switch and
        // the `Some(0)` path is bit-identical to `None`.
        cfg.sim.fetch_latency = Some(a.get_u64("fetch-latency", 0)?);
    }
    Ok(cfg)
}

fn parse_strategy(spec: &str) -> Result<Strategy, String> {
    if let Some(frac) = spec.strip_prefix("adhoc:") {
        let f: f64 = frac
            .parse()
            .map_err(|_| format!("bad ad-hoc fraction '{frac}'"))?;
        if !(0.0..=1.0).contains(&f) {
            return Err(format!("ad-hoc cache fraction must be in [0, 1], got {f}"));
        }
        return Ok(Strategy::AdHoc { cache_fraction: f });
    }
    if let Some(seed) = spec.strip_prefix("random:") {
        let s: u64 = seed.parse().map_err(|_| format!("bad seed '{seed}'"))?;
        return Ok(Strategy::Random { seed: s });
    }
    Ok(match spec {
        "hybrid" => Strategy::Hybrid,
        "replication" => Strategy::Replication,
        "caching" => Strategy::Caching,
        "popularity" => Strategy::Popularity,
        "greedy-local" => Strategy::GreedyLocal,
        "backtrack" => Strategy::Backtrack,
        "hybrid-che" => Strategy::HybridChe,
        other => return Err(format!("unknown strategy '{other}'")),
    })
}

/// Resolve `--model` through [`ModelBackend::by_name`] (same contract as
/// `--cache-policy` via `cdn_cache::by_name`: unknown names exit 1 with the
/// alternatives listed).
fn parse_model(a: &Args) -> Result<ModelBackend, String> {
    match a.get("model") {
        None => Ok(ModelBackend::Paper),
        Some(name) => ModelBackend::by_name(name).map_err(|e| format!("--model: {e}")),
    }
}

pub fn compare(a: &Args) -> Result<(), String> {
    let cfg = scenario_config(a)?;
    let threads = configure_threads(a)?;
    let obs = Observability::setup(a);
    println!(
        "scenario: {} servers, {} sites, capacity {:.1}%, lambda {:.0}%, seed {}, {threads} thread(s)",
        cfg.hosts.n_servers,
        cfg.workload.m_sites,
        cfg.capacity_fraction * 100.0,
        cfg.lambda * 100.0,
        cfg.seed
    );
    if let Some(f) = &cfg.sim.faults {
        println!(
            "faults: MTTF {} / MTTR {} requests, origin outage {:.0}%, retry penalty {} ms",
            f.mttf,
            f.mttr,
            f.origin_outage * 100.0,
            f.retry_penalty_ms
        );
    }
    let policy = a.get("cache-policy");
    if let Some(name) = policy {
        println!("cache policy: {name}");
    }
    let model = parse_model(a)?;
    if model != ModelBackend::Paper {
        println!("hit-ratio model: {}", model.name());
    }
    let scenario = Scenario::generate(&cfg);
    let strategies = [Strategy::Replication, Strategy::Caching, Strategy::Hybrid];
    let cmp = if let Some(path) = a.get("trace-in") {
        if policy.is_some() {
            return Err("--trace-in replays with each strategy's default cache; \
                        --cache-policy is not supported here"
                .into());
        }
        let events = cdn_workload::read_events_file(std::path::Path::new(path))
            .map_err(|e| format!("reading {path}: {e}"))?;
        println!("replaying {} events from {path}", events.len());
        let rows = strategies
            .iter()
            .map(|&strategy| {
                let plan = scenario.plan_with_model(strategy, model);
                let report = replay_events(&scenario, &plan, events.clone());
                cdn_core::ComparisonRow {
                    strategy,
                    plan,
                    report,
                }
            })
            .collect();
        cdn_core::StrategyComparison { rows }
    } else {
        compare_strategies_with_options(&scenario, &strategies, policy, model)
            .map_err(|e| format!("--cache-policy: {e}"))?
    };
    let mut obs = obs;
    for row in &cmp.rows {
        obs.record_samples(&row.strategy.name(), &row.report);
        obs.record_timeline(&row.strategy.name(), &row.report);
    }
    println!("\n{}", cmp.summary_table());
    if cfg.sim.faults.is_some() {
        println!("{}", cmp.fault_table());
    }
    if let Some(gain) = cmp.improvement(Strategy::Hybrid, Strategy::Replication) {
        println!("hybrid vs replication: {:+.1}%", gain * 100.0);
    }
    if let Some(gain) = cmp.improvement(Strategy::Hybrid, Strategy::Caching) {
        println!("hybrid vs caching:     {:+.1}%", gain * 100.0);
    }
    obs.flush()
}

pub fn plan(a: &Args) -> Result<(), String> {
    let cfg = scenario_config(a)?;
    let strategy = parse_strategy(a.get("strategy").unwrap_or("hybrid"))?;
    let model = parse_model(a)?;
    let threads = configure_threads(a)?;
    let obs = Observability::setup(a);
    let scenario = Scenario::generate(&cfg);
    let plan = scenario.plan_with_model(strategy, model);
    if model != ModelBackend::Paper {
        println!("hit-ratio model: {}", model.name());
    }
    println!(
        "strategy {}: {} replicas, predicted {:.3} hops/request ({threads} thread(s))",
        strategy.name(),
        plan.placement.replica_count(),
        plan.predicted_mean_hops(&scenario.problem)
    );
    println!("\nserver  replicas  cache_MB  sites");
    for i in 0..scenario.problem.n_servers() {
        let sites = plan.placement.sites_at(i);
        let listed = if sites.len() > 12 {
            format!("{:?} …", &sites[..12])
        } else {
            format!("{sites:?}")
        };
        println!(
            "{i:>6} {:>9} {:>9.1}  {listed}",
            sites.len(),
            plan.placement.free_bytes(i) as f64 / 1e6,
        );
    }
    obs.flush()
}

pub fn topology(a: &Args) -> Result<(), String> {
    let topo_cfg = match a.get("scale").unwrap_or("small") {
        "paper" => TransitStubConfig::paper_default(),
        "large" | "large-ci" => TransitStubConfig::large(),
        "small" => TransitStubConfig::small(),
        other => return Err(format!("unknown --scale '{other}'")),
    };
    let seed = a.get_u64("seed", 1)?;
    let topo = TransitStubTopology::generate(&topo_cfg, seed);
    let metrics = compute_metrics(&topo.graph, 4);
    println!(
        "transit-stub topology: {} nodes, {} edges, diameter {}, mean path {:.2} hops, \
         mean degree {:.2}",
        metrics.n_nodes,
        metrics.n_edges,
        metrics.diameter,
        metrics.mean_path_hops,
        metrics.mean_degree
    );
    if let Some(path) = a.get("dot") {
        std::fs::write(path, export::transit_stub_to_dot(&topo, "cdn"))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote DOT to {path}");
    }
    if let Some(path) = a.get("csv") {
        std::fs::write(path, export::to_edge_csv(&topo.graph))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote edge CSV to {path}");
    }
    Ok(())
}

pub fn workload(a: &Args) -> Result<(), String> {
    let mut cfg = WorkloadConfig::small();
    cfg.theta = a.get_f64("theta", 1.0)?;
    cfg.m_sites = a.get_u64("sites", 15)? as usize;
    cfg.objects_per_site = a.get_u64("objects", 200)? as usize;
    let seed = a.get_u64("seed", 1)?;
    let catalog = SiteCatalog::generate(&cfg, seed);
    let demand = DemandMatrix::generate(&catalog, 4, seed ^ 1);
    let spec = TraceSpec::new(
        &demand,
        catalog.object_zipf.clone(),
        0.0,
        LambdaMode::Uncacheable,
        seed ^ 2,
    );
    let stats = TraceStats::from_requests(spec.stream_for_server(0));
    let busiest = *stats
        .site_counts
        .iter()
        .max_by_key(|(_, &c)| c)
        .map(|(site, _)| site)
        .expect("non-empty trace");
    println!(
        "workload: {} sites x {} objects, theta {:.2}, corpus {:.1} MB",
        cfg.m_sites,
        cfg.objects_per_site,
        cfg.theta,
        catalog.total_bytes() as f64 / 1e6
    );
    println!(
        "trace (server 0): {} requests, {} distinct objects, entropy {:.2} bits",
        stats.total,
        stats.distinct_objects(),
        stats.entropy_bits()
    );
    println!(
        "top-1% objects carry {:.1}% of requests; top-10% carry {:.1}%",
        100.0 * stats.concentration(0.01),
        100.0 * stats.concentration(0.10)
    );
    if let Some(est) = stats.zipf_exponent_estimate_for_site(busiest, 30) {
        println!(
            "estimated site-internal Zipf exponent: {est:.2} (configured {:.2})",
            cfg.theta
        );
    }
    Ok(())
}

/// `hybrid-cdn ingest` — produce a binary `.events` trace file, either by
/// converting a CSV text trace (`--csv`) or by exporting the synthetic
/// workload of the selected scenario (no `--csv`).
pub fn ingest(a: &Args) -> Result<(), String> {
    let out = a
        .get("out")
        .ok_or("ingest needs --out FILE.events to know where to write")?;
    let (events, source) = match a.get("csv") {
        Some(csv) => {
            let text = std::fs::read_to_string(csv).map_err(|e| format!("reading {csv}: {e}"))?;
            (parse_csv_trace(&text)?, format!("csv {csv}"))
        }
        None => {
            let cfg = scenario_config(a)?;
            let scenario = Scenario::generate(&cfg);
            (
                export_events(&scenario),
                format!(
                    "synthetic scenario ({} servers, seed {})",
                    cfg.hosts.n_servers, cfg.seed
                ),
            )
        }
    };
    if events.is_empty() {
        return Err("trace is empty — nothing to write".into());
    }
    cdn_workload::write_events_file(std::path::Path::new(out), &events)
        .map_err(|e| format!("writing {out}: {e}"))?;
    let distinct: std::collections::HashSet<u64> = events.iter().map(|e| e.key).collect();
    let span_us = events.last().map(|e| e.timestamp_us).unwrap_or(0)
        - events.first().map(|e| e.timestamp_us).unwrap_or(0);
    println!(
        "wrote {} events ({} distinct keys, {:.3} s span) from {source} to {out}",
        events.len(),
        distinct.len(),
        span_us as f64 / 1e6
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_parsing_round_trip() {
        assert_eq!(parse_strategy("hybrid").unwrap(), Strategy::Hybrid);
        assert_eq!(
            parse_strategy("adhoc:0.4").unwrap(),
            Strategy::AdHoc {
                cache_fraction: 0.4
            }
        );
        assert_eq!(
            parse_strategy("random:9").unwrap(),
            Strategy::Random { seed: 9 }
        );
        assert!(parse_strategy("bogus").is_err());
        assert!(parse_strategy("adhoc:x").is_err());
    }

    #[test]
    fn model_parsing_defaults_and_rejects_unknown() {
        let a = Args::parse(std::iter::empty::<String>(), &["model"]).unwrap();
        assert_eq!(parse_model(&a).unwrap(), ModelBackend::Paper);
        let a = Args::parse(
            ["--model", "closed-form"].iter().map(|s| s.to_string()),
            &["model"],
        )
        .unwrap();
        assert_eq!(parse_model(&a).unwrap(), ModelBackend::ClosedForm);
        let a = Args::parse(
            ["--model", "fagin"].iter().map(|s| s.to_string()),
            &["model"],
        )
        .unwrap();
        let err = parse_model(&a).unwrap_err();
        assert!(err.starts_with("--model:"), "{err}");
        assert!(err.contains("fagin"), "{err}");
        assert!(err.contains("closed-form"), "must list alternatives: {err}");
    }

    #[test]
    fn scenario_config_defaults_and_overrides() {
        let a = Args::parse(
            [
                "--capacity",
                "0.2",
                "--lambda",
                "0.1",
                "--mode",
                "expired",
                "--seed",
                "5",
            ]
            .iter()
            .map(|s| s.to_string()),
            &["capacity", "lambda", "mode", "scale", "seed"],
        )
        .unwrap();
        let cfg = scenario_config(&a).unwrap();
        assert!((cfg.capacity_fraction - 0.2).abs() < 1e-12);
        assert!((cfg.lambda - 0.1).abs() < 1e-12);
        assert_eq!(cfg.lambda_mode, LambdaMode::Expired);
        assert_eq!(cfg.seed, 5);
    }

    #[test]
    fn out_of_range_numbers_rejected_cleanly() {
        let a = Args::parse(
            ["--capacity", "2.0"].iter().map(|s| s.to_string()),
            &["capacity"],
        )
        .unwrap();
        assert!(scenario_config(&a).unwrap_err().contains("--capacity"));
        let a = Args::parse(
            ["--lambda", "-0.2"].iter().map(|s| s.to_string()),
            &["lambda"],
        )
        .unwrap();
        assert!(scenario_config(&a).unwrap_err().contains("--lambda"));
        assert!(parse_strategy("adhoc:1.5")
            .unwrap_err()
            .contains("fraction"));
    }

    fn parse_scenario(args: &[&str]) -> Result<ScenarioConfig, String> {
        let a = Args::parse(args.iter().map(|s| s.to_string()), SCENARIO_KEYS).unwrap();
        scenario_config(&a)
    }

    #[test]
    fn window_flag_populates_sim_config_and_accepts_zero() {
        let cfg = parse_scenario(&["--window", "512"]).unwrap();
        assert_eq!(cfg.sim.window, Some(512));
        // --window 0 is the documented off switch, never an error.
        let cfg = parse_scenario(&["--window", "0"]).unwrap();
        assert_eq!(cfg.sim.window, Some(0));
        let cfg = parse_scenario(&[]).unwrap();
        assert_eq!(cfg.sim.window, None);
        assert!(parse_scenario(&["--window", "wide"]).is_err());
    }

    #[test]
    fn fetch_latency_flag_populates_sim_config_and_accepts_zero() {
        let cfg = parse_scenario(&["--fetch-latency", "64"]).unwrap();
        assert_eq!(cfg.sim.fetch_latency, Some(64));
        // --fetch-latency 0 is the documented off switch, never an error.
        let cfg = parse_scenario(&["--fetch-latency", "0"]).unwrap();
        assert_eq!(cfg.sim.fetch_latency, Some(0));
        let cfg = parse_scenario(&[]).unwrap();
        assert_eq!(cfg.sim.fetch_latency, None);
        assert!(parse_scenario(&["--fetch-latency", "slow"]).is_err());
    }

    #[test]
    fn ingest_round_trips_csv_and_synthetic_traces() {
        let dir = std::env::temp_dir().join("cdn-cli-ingest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("trace.csv");
        let out = dir.join("trace.events");
        std::fs::write(&csv, "timestamp_us,site,object\n20,1,3\n10,0,5\n").unwrap();
        let a = Args::parse(
            [
                "--csv",
                csv.to_str().unwrap(),
                "--out",
                out.to_str().unwrap(),
            ]
            .iter()
            .map(|s| s.to_string()),
            &["csv", "out"],
        )
        .unwrap();
        ingest(&a).unwrap();
        let events = cdn_workload::read_events_file(&out).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].timestamp_us, 10, "sorted by timestamp");

        // Without --csv the selected scenario's synthetic workload exports.
        let synth = dir.join("synth.events");
        let mut keys = vec!["csv", "out"];
        keys.extend_from_slice(SCENARIO_KEYS);
        let a = Args::parse(
            ["--out", synth.to_str().unwrap(), "--seed", "7"]
                .iter()
                .map(|s| s.to_string()),
            &keys,
        )
        .unwrap();
        ingest(&a).unwrap();
        let events = cdn_workload::read_events_file(&synth).unwrap();
        assert!(!events.is_empty());

        // Missing --out is a contextful error, not a panic.
        let a = Args::parse(std::iter::empty::<String>(), &["csv", "out"]).unwrap();
        assert!(ingest(&a).unwrap_err().contains("--out"));
    }

    #[test]
    fn fault_flags_populate_sim_config() {
        let cfg =
            parse_scenario(&["--mttf", "300", "--origin-outage", "0.2", "--seed", "9"]).unwrap();
        let f = cfg.sim.faults.expect("faults enabled");
        assert_eq!(f.mttf, 300.0);
        assert_eq!(f.origin_outage, 0.2);
        assert_eq!(f.mttr, 500.0, "default MTTR");
        assert_eq!(f.retry_penalty_ms, 200.0, "default retry penalty");
        assert_eq!(f.seed, 9, "fault seed follows the scenario seed");
    }

    #[test]
    fn no_fault_flags_means_no_fault_injection() {
        let cfg = parse_scenario(&["--capacity", "0.2"]).unwrap();
        assert!(cfg.sim.faults.is_none());
        // A single fault flag is enough to switch the layer on.
        let cfg = parse_scenario(&["--retry-penalty-ms", "50"]).unwrap();
        let f = cfg.sim.faults.unwrap();
        assert!(f.is_zero_fault(), "penalty alone never fires a fault");
        assert_eq!(f.retry_penalty_ms, 50.0);
    }

    #[test]
    fn invalid_fault_flags_rejected() {
        assert!(parse_scenario(&["--mttf", "0"])
            .unwrap_err()
            .contains("--mttf"));
        assert!(parse_scenario(&["--mttr", "-3"])
            .unwrap_err()
            .contains("--mttr"));
        assert!(parse_scenario(&["--origin-outage", "1.0"])
            .unwrap_err()
            .contains("--origin-outage"));
        assert!(parse_scenario(&["--retry-penalty-ms", "-1"])
            .unwrap_err()
            .contains("--retry-penalty-ms"));
    }

    #[test]
    fn threads_flag_configures_pool() {
        let a = Args::parse(
            ["--threads", "0"].iter().map(|s| s.to_string()),
            &["threads"],
        )
        .unwrap();
        assert!(configure_threads(&a).unwrap_err().contains("--threads"));
        let a = Args::parse(
            ["--threads", "3"].iter().map(|s| s.to_string()),
            &["threads"],
        )
        .unwrap();
        assert_eq!(configure_threads(&a).unwrap(), 3);
        // Without the flag the pool is left as-is.
        let a = Args::parse(std::iter::empty(), &["threads"]).unwrap();
        assert_eq!(configure_threads(&a).unwrap(), 3);
    }

    #[test]
    fn observability_keys_accepted_and_flushed() {
        let dir = std::env::temp_dir().join("cdn-cli-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.jsonl");
        let metrics = dir.join("metrics.json");
        let a = Args::parse(
            [
                "--trace-out",
                trace.to_str().unwrap(),
                "--metrics-out",
                metrics.to_str().unwrap(),
            ]
            .iter()
            .map(|s| s.to_string()),
            SCENARIO_KEYS,
        )
        .unwrap();
        let obs = Observability::setup(&a);
        assert!(telemetry::enabled());
        assert!(telemetry::trace_installed());
        obs.flush().unwrap();
        let snapshot = std::fs::read_to_string(&metrics).unwrap();
        assert!(snapshot.contains("\"counters\""));
        assert!(trace.exists());
        telemetry::uninstall_trace();
    }

    #[test]
    fn bad_mode_rejected() {
        let a = Args::parse(
            ["--mode", "sideways"].iter().map(|s| s.to_string()),
            &["mode"],
        )
        .unwrap();
        assert!(scenario_config(&a).is_err());
    }

    #[test]
    fn paper_scale_selected() {
        let a = Args::parse(
            ["--scale", "paper"].iter().map(|s| s.to_string()),
            &["scale"],
        )
        .unwrap();
        let cfg = scenario_config(&a).unwrap();
        assert_eq!(cfg.hosts.n_servers, 50);
    }

    #[test]
    fn large_scales_selected() {
        let parse_scale = |label: &str| {
            let a =
                Args::parse(["--scale", label].iter().map(|s| s.to_string()), &["scale"]).unwrap();
            scenario_config(&a).unwrap()
        };
        let large = parse_scale("large");
        assert_eq!(large.hosts.n_servers, 2000);
        assert_eq!(large.workload.m_sites, 400);
        let ci = parse_scale("large-ci");
        assert_eq!(ci.hosts.n_servers, 2000);
        assert!(ci.workload.base_requests < large.workload.base_requests);
    }
}
