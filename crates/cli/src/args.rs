//! Minimal flag parser — `--key value` and `--flag` pairs, no external
//! dependency. Unknown keys are an error so typos fail loudly.

use std::collections::HashMap;

/// Parsed `--key value` options plus positional arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    options: HashMap<String, String>,
    #[allow(dead_code)] // kept for parser completeness; read via positional()
    positional: Vec<String>,
}

impl Args {
    /// Parse raw arguments. `allowed` lists the recognised `--keys` (without
    /// dashes); anything else is rejected. A key appearing last wins.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I, allowed: &[&str]) -> Result<Self, String> {
        let mut options = HashMap::new();
        let mut positional = Vec::new();
        let mut iter = raw.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                if !allowed.contains(&key) {
                    return Err(format!(
                        "unknown option --{key}; expected one of: {}",
                        allowed
                            .iter()
                            .map(|k| format!("--{k}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ));
                }
                // Value is the next token unless it is another option or
                // missing (bare flags get "true").
                let value = match iter.peek() {
                    Some(v) if !v.starts_with("--") => iter.next().expect("peeked"),
                    _ => "true".to_string(),
                };
                options.insert(key.to_string(), value);
            } else {
                positional.push(arg);
            }
        }
        Ok(Self {
            options,
            positional,
        })
    }

    #[allow(dead_code)] // public surface of the tiny parser; exercised in tests
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects a number, got '{v}'")),
        }
    }

    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects an integer, got '{v}'")),
        }
    }

    pub fn has(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str], allowed: &[&str]) -> Result<Args, String> {
        Args::parse(args.iter().map(|s| s.to_string()), allowed)
    }

    #[test]
    fn parses_key_value_pairs() {
        let a = parse(
            &["--capacity", "0.1", "--seed", "42"],
            &["capacity", "seed"],
        )
        .unwrap();
        assert_eq!(a.get("capacity"), Some("0.1"));
        assert_eq!(a.get_f64("capacity", 0.0).unwrap(), 0.1);
        assert_eq!(a.get_u64("seed", 0).unwrap(), 42);
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = parse(&[], &["capacity"]).unwrap();
        assert_eq!(a.get_f64("capacity", 0.05).unwrap(), 0.05);
        assert!(!a.has("capacity"));
    }

    #[test]
    fn bare_flags_are_true() {
        let a = parse(&["--quick", "--dot", "out.dot"], &["quick", "dot"]).unwrap();
        assert_eq!(a.get("quick"), Some("true"));
        assert!(a.has("quick"));
        assert_eq!(a.get("dot"), Some("out.dot"));
    }

    #[test]
    fn unknown_option_rejected() {
        let err = parse(&["--bogus", "1"], &["capacity"]).unwrap_err();
        assert!(err.contains("--bogus"));
        assert!(err.contains("--capacity"));
    }

    #[test]
    fn positional_arguments_collected() {
        let a = parse(&["compare", "--seed", "1"], &["seed"]).unwrap();
        assert_eq!(a.positional(), &["compare".to_string()]);
    }

    #[test]
    fn bad_number_reported() {
        let a = parse(&["--capacity", "lots"], &["capacity"]).unwrap();
        assert!(a.get_f64("capacity", 0.0).is_err());
    }

    #[test]
    fn last_value_wins() {
        let a = parse(&["--seed", "1", "--seed", "2"], &["seed"]).unwrap();
        assert_eq!(a.get_u64("seed", 0).unwrap(), 2);
    }
}
