//! LFU replacement: evict the least frequently used object, ties broken by
//! age (older goes first). Frequency counts are per-residency (an object
//! restarts at 1 when readmitted) — the classic in-cache LFU.

use crate::stats::CacheStats;
use crate::traits::{Cache, ObjectKey};
use std::collections::{BTreeSet, HashMap};

#[derive(Debug, Clone, Copy)]
struct Meta {
    bytes: u64,
    count: u64,
    /// Monotone admission stamp for deterministic tie-breaking.
    stamp: u64,
}

/// Byte-capacity LFU cache backed by an ordered (count, stamp, key) set.
/// All operations are O(log n).
#[derive(Debug)]
pub struct LfuCache {
    map: HashMap<ObjectKey, Meta>,
    /// Ordered by (count, stamp, key): the first element is the eviction
    /// victim.
    order: BTreeSet<(u64, u64, ObjectKey)>,
    next_stamp: u64,
    used: u64,
    capacity: u64,
    stats: CacheStats,
}

impl LfuCache {
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            map: HashMap::new(),
            order: BTreeSet::new(),
            next_stamp: 0,
            used: 0,
            capacity: capacity_bytes,
            stats: CacheStats::default(),
        }
    }

    /// The key that would be evicted next.
    pub fn eviction_candidate(&self) -> Option<ObjectKey> {
        self.order.iter().next().map(|&(_, _, k)| k)
    }

    fn evict_until_fits(&mut self, incoming: u64) {
        while self.used + incoming > self.capacity {
            let Some(&(count, stamp, key)) = self.order.iter().next() else {
                break;
            };
            self.order.remove(&(count, stamp, key));
            let meta = self.map.remove(&key).expect("order/map consistent");
            self.used -= meta.bytes;
            self.stats.evictions += 1;
        }
    }
}

impl Cache for LfuCache {
    fn lookup(&mut self, key: ObjectKey) -> bool {
        if let Some(meta) = self.map.get_mut(&key) {
            self.stats.hits += 1;
            let old = (meta.count, meta.stamp, key);
            meta.count += 1;
            let new = (meta.count, meta.stamp, key);
            self.order.remove(&old);
            self.order.insert(new);
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    fn insert(&mut self, key: ObjectKey, bytes: u64) {
        if self.map.contains_key(&key) {
            return;
        }
        if bytes > self.capacity {
            self.stats.rejections += 1;
            return;
        }
        self.evict_until_fits(bytes);
        let meta = Meta {
            bytes,
            count: 1,
            stamp: self.next_stamp,
        };
        self.next_stamp += 1;
        self.order.insert((meta.count, meta.stamp, key));
        self.map.insert(key, meta);
        self.used += bytes;
        self.stats.insertions += 1;
    }

    fn contains(&self, key: ObjectKey) -> bool {
        self.map.contains_key(&key)
    }

    fn remove(&mut self, key: ObjectKey) -> bool {
        if let Some(meta) = self.map.remove(&key) {
            self.order.remove(&(meta.count, meta.stamp, key));
            self.used -= meta.bytes;
            true
        } else {
            false
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
        self.used = 0;
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn set_capacity(&mut self, bytes: u64) {
        self.capacity = bytes;
        self.evict_until_fits(0);
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u32) -> ObjectKey {
        ObjectKey::new(0, i)
    }

    #[test]
    fn evicts_least_frequent() {
        let mut c = LfuCache::new(30);
        c.insert(k(1), 10);
        c.insert(k(2), 10);
        c.insert(k(3), 10);
        c.lookup(k(1));
        c.lookup(k(1));
        c.lookup(k(3));
        // counts: k1=3, k2=1, k3=2
        c.insert(k(4), 10);
        assert!(!c.contains(k(2)));
        assert!(c.contains(k(1)));
        assert!(c.contains(k(3)));
    }

    #[test]
    fn ties_broken_by_age() {
        let mut c = LfuCache::new(20);
        c.insert(k(1), 10);
        c.insert(k(2), 10);
        assert_eq!(c.eviction_candidate(), Some(k(1)));
        c.insert(k(3), 10);
        assert!(!c.contains(k(1)));
        assert!(c.contains(k(2)));
    }

    #[test]
    fn count_resets_on_readmission() {
        let mut c = LfuCache::new(20);
        c.insert(k(1), 10);
        for _ in 0..5 {
            c.lookup(k(1));
        }
        c.remove(k(1));
        c.insert(k(1), 10);
        c.insert(k(2), 10);
        c.lookup(k(2));
        // k1 count restarted at 1; k2 is at 2 → k1 is the victim.
        assert_eq!(c.eviction_candidate(), Some(k(1)));
    }

    #[test]
    fn order_and_map_stay_consistent_under_churn() {
        let mut c = LfuCache::new(50);
        for round in 0..200u32 {
            c.access(k(round % 13), 7);
        }
        assert_eq!(c.order.len(), c.map.len());
        let used: u64 = c.map.values().map(|m| m.bytes).sum();
        assert_eq!(used, c.used_bytes());
        assert!(c.used_bytes() <= c.capacity_bytes());
    }

    #[test]
    fn oversized_rejected() {
        let mut c = LfuCache::new(5);
        c.insert(k(1), 100);
        assert!(c.is_empty());
        assert_eq!(c.stats().rejections, 1);
    }

    #[test]
    fn shrink_evicts_least_frequent_first() {
        let mut c = LfuCache::new(30);
        c.insert(k(1), 10);
        c.insert(k(2), 10);
        c.insert(k(3), 10);
        c.lookup(k(2));
        c.set_capacity(10);
        assert!(c.contains(k(2)));
        assert_eq!(c.len(), 1);
    }
}
