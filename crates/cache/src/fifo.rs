//! FIFO replacement: evict in insertion order, no promotion on hit.
//!
//! A deliberately recency-blind baseline for the policy ablation.

use crate::stats::CacheStats;
use crate::traits::{Cache, ObjectKey};
use std::collections::{HashMap, VecDeque};

/// Byte-capacity FIFO cache.
#[derive(Debug)]
pub struct FifoCache {
    map: HashMap<ObjectKey, u64>,
    /// Insertion order. Entries whose key is no longer in `map` (removed
    /// explicitly) are skipped lazily at eviction time.
    queue: VecDeque<ObjectKey>,
    used: u64,
    capacity: u64,
    stats: CacheStats,
}

impl FifoCache {
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            map: HashMap::new(),
            queue: VecDeque::new(),
            used: 0,
            capacity: capacity_bytes,
            stats: CacheStats::default(),
        }
    }

    fn evict_one(&mut self) -> bool {
        while let Some(key) = self.queue.pop_front() {
            if let Some(bytes) = self.map.remove(&key) {
                self.used -= bytes;
                self.stats.evictions += 1;
                return true;
            }
            // Stale queue entry for an explicitly removed key; skip.
        }
        false
    }

    fn evict_until_fits(&mut self, incoming: u64) {
        while self.used + incoming > self.capacity {
            if !self.evict_one() {
                break;
            }
        }
    }
}

impl Cache for FifoCache {
    fn lookup(&mut self, key: ObjectKey) -> bool {
        if self.map.contains_key(&key) {
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    fn insert(&mut self, key: ObjectKey, bytes: u64) {
        if self.map.contains_key(&key) {
            return;
        }
        if bytes > self.capacity {
            self.stats.rejections += 1;
            return;
        }
        self.evict_until_fits(bytes);
        self.map.insert(key, bytes);
        self.queue.push_back(key);
        self.used += bytes;
        self.stats.insertions += 1;
    }

    fn contains(&self, key: ObjectKey) -> bool {
        self.map.contains_key(&key)
    }

    fn remove(&mut self, key: ObjectKey) -> bool {
        if let Some(bytes) = self.map.remove(&key) {
            self.used -= bytes;
            true
        } else {
            false
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.queue.clear();
        self.used = 0;
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn set_capacity(&mut self, bytes: u64) {
        self.capacity = bytes;
        self.evict_until_fits(0);
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u32) -> ObjectKey {
        ObjectKey::new(0, i)
    }

    #[test]
    fn evicts_in_insertion_order_despite_hits() {
        let mut c = FifoCache::new(30);
        c.insert(k(1), 10);
        c.insert(k(2), 10);
        c.insert(k(3), 10);
        c.lookup(k(1)); // FIFO must NOT promote
        c.insert(k(4), 10);
        assert!(!c.contains(k(1)));
        assert!(c.contains(k(2)));
    }

    #[test]
    fn stale_queue_entries_skipped() {
        let mut c = FifoCache::new(20);
        c.insert(k(1), 10);
        c.insert(k(2), 10);
        assert!(c.remove(k(1)));
        c.insert(k(3), 10); // fits in freed space; queue front is stale
        assert_eq!(c.len(), 2);
        c.insert(k(4), 10); // must evict k(2), skipping stale k(1)
        assert!(!c.contains(k(2)));
        assert!(c.contains(k(3)));
        assert!(c.contains(k(4)));
    }

    #[test]
    fn oversized_rejected() {
        let mut c = FifoCache::new(5);
        c.insert(k(1), 6);
        assert_eq!(c.stats().rejections, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_shrink() {
        let mut c = FifoCache::new(30);
        for i in 0..3 {
            c.insert(k(i), 10);
        }
        c.set_capacity(10);
        assert_eq!(c.len(), 1);
        assert!(c.contains(k(2)));
    }

    #[test]
    fn byte_accounting() {
        let mut c = FifoCache::new(100);
        c.insert(k(1), 30);
        c.insert(k(2), 50);
        assert_eq!(c.used_bytes(), 80);
        c.remove(k(1));
        assert_eq!(c.used_bytes(), 50);
        c.clear();
        assert_eq!(c.used_bytes(), 0);
    }
}
