//! Cache replacement policies for the hybrid CDN reproduction.
//!
//! The paper's CDN servers run a plain byte-capacity LRU cache; the
//! evaluation of [Karlsson & Mahalingam] it cites also uses a *delayed* LRU
//! (admit on second touch). This crate provides those two plus FIFO, LFU and
//! CLOCK baselines behind one [`Cache`] trait so the ablation benchmarks can
//! swap policies inside the hybrid scheme.
//!
//! All policies:
//! * are byte-capacity bounded (web objects have heterogeneous sizes);
//! * refuse objects larger than their capacity instead of thrashing;
//! * keep their own [`CacheStats`] counters;
//! * are deterministic.

pub mod clock;
pub mod delayed_lru;
pub mod fifo;
pub mod fx;
pub mod gdsf;
pub mod lfu;
pub mod lru;
pub mod stats;
pub mod traits;

pub use clock::ClockCache;
pub use delayed_lru::DelayedLruCache;
pub use fifo::FifoCache;
pub use fx::{FxHashMap, FxHasher};
pub use gdsf::GdsfCache;
pub use lfu::LfuCache;
pub use lru::LruCache;
pub use stats::CacheStats;
pub use traits::{Cache, ObjectKey};

/// Every policy name [`by_name`] recognises, in documentation order.
pub const POLICY_NAMES: [&str; 6] = ["lru", "delayed-lru", "fifo", "lfu", "clock", "gdsf"];

/// Construct a boxed cache by policy name — the ablation harness's entry
/// point. Recognised names are listed in [`POLICY_NAMES`]; an unknown name
/// is reported as an `Err` naming the alternatives so CLI/bench arg
/// parsing can surface it instead of panicking.
pub fn by_name(name: &str, capacity_bytes: u64) -> Result<Box<dyn Cache>, String> {
    Ok(match name {
        "lru" => Box::new(LruCache::new(capacity_bytes)),
        "delayed-lru" => Box::new(DelayedLruCache::new(capacity_bytes)),
        "fifo" => Box::new(FifoCache::new(capacity_bytes)),
        "lfu" => Box::new(LfuCache::new(capacity_bytes)),
        "clock" => Box::new(ClockCache::new(capacity_bytes)),
        "gdsf" => Box::new(GdsfCache::new(capacity_bytes)),
        _ => {
            return Err(format!(
                "unknown cache policy '{name}' (known policies: {})",
                POLICY_NAMES.join(", ")
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_constructs_all_policies() {
        for name in POLICY_NAMES {
            let c = by_name(name, 100).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(c.capacity_bytes(), 100);
        }
        let err = by_name("arc", 100).err().expect("unknown policy must err");
        assert!(err.contains("arc") && err.contains("gdsf"), "{err}");
    }
}
