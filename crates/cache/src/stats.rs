//! Hit/miss accounting shared by all policies.

/// Counters a cache accumulates over its lifetime (or since the last
/// [`reset`](CacheStats::reset)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Objects admitted.
    pub insertions: u64,
    /// Objects pushed out to make room.
    pub evictions: u64,
    /// Insertions refused (object larger than the cache, or the admission
    /// policy declined it).
    pub rejections: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in `[0, 1]`; 0 when no lookups have happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Zero every counter.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_hit_ratio_is_zero() {
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn hit_ratio_computation() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert_eq!(s.lookups(), 4);
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut s = CacheStats {
            hits: 1,
            misses: 2,
            insertions: 3,
            evictions: 4,
            rejections: 5,
        };
        s.reset();
        assert_eq!(s, CacheStats::default());
    }
}
