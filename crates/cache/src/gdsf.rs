//! GreedyDual-Size-Frequency (GDSF) — the classic *size-aware* web cache
//! replacement policy (Cherkasova, 1998).
//!
//! Web objects vary in size by orders of magnitude, and evicting one huge
//! cold object can retain hundreds of small hot ones. GDSF scores each
//! object `H = L + frequency / size` where `L` is an inflating "clock"
//! equal to the score of the last eviction, and evicts the lowest score.
//! The `L` term ages frequencies without bookkeeping: objects must keep
//! earning their place as the clock rises past them.
//!
//! Included because the paper's plain-LRU choice deliberately ignores
//! sizes; `ablation_policy` quantifies what that leaves on the table for
//! SURGE's heavy-tailed size distribution.

use crate::stats::CacheStats;
use crate::traits::{Cache, ObjectKey};
use std::collections::{BTreeSet, HashMap};

/// Orderable f64 wrapper. Uses `total_cmp` so the ordering is total even
/// for NaN/±inf scores — a degenerate object must lose quietly in the
/// eviction order, never panic the whole simulation.
#[derive(Debug, Clone, Copy)]
struct Score(f64);

impl PartialEq for Score {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Score {}

impl PartialOrd for Score {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Score {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Debug, Clone, Copy)]
struct Meta {
    bytes: u64,
    frequency: u64,
    score: Score,
    /// Insertion stamp for deterministic tie-breaks.
    stamp: u64,
}

/// Byte-capacity GDSF cache. All operations are O(log n).
#[derive(Debug)]
pub struct GdsfCache {
    map: HashMap<ObjectKey, Meta>,
    /// Ordered by (score, stamp, key); the first element is evicted next.
    order: BTreeSet<(Score, u64, ObjectKey)>,
    /// The inflating clock: score of the most recent eviction.
    clock: f64,
    next_stamp: u64,
    used: u64,
    capacity: u64,
    stats: CacheStats,
}

impl GdsfCache {
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            map: HashMap::new(),
            order: BTreeSet::new(),
            clock: 0.0,
            next_stamp: 0,
            used: 0,
            capacity: capacity_bytes,
            stats: CacheStats::default(),
        }
    }

    /// The current clock value (exposed for tests).
    pub fn clock(&self) -> f64 {
        self.clock
    }

    fn score(&self, frequency: u64, bytes: u64) -> Score {
        Score(self.clock + frequency as f64 / bytes.max(1) as f64)
    }

    fn evict_until_fits(&mut self, incoming: u64) {
        while self.used + incoming > self.capacity {
            let Some(&(score, stamp, key)) = self.order.iter().next() else {
                break;
            };
            self.order.remove(&(score, stamp, key));
            let meta = self.map.remove(&key).expect("order/map consistent");
            self.used -= meta.bytes;
            // The defining GDSF step: the clock rises to the evicted score,
            // so long-resident objects age relative to new arrivals.
            self.clock = score.0;
            self.stats.evictions += 1;
        }
    }
}

impl Cache for GdsfCache {
    fn lookup(&mut self, key: ObjectKey) -> bool {
        // Compute the refreshed score before borrowing the entry mutably.
        let refreshed = self
            .map
            .get(&key)
            .map(|m| (m.score, m.stamp, self.score(m.frequency + 1, m.bytes)));
        if let Some((old_score, stamp, new_score)) = refreshed {
            self.stats.hits += 1;
            let meta = self.map.get_mut(&key).expect("just found");
            meta.frequency += 1;
            meta.score = new_score;
            self.order.remove(&(old_score, stamp, key));
            self.order.insert((new_score, stamp, key));
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    fn insert(&mut self, key: ObjectKey, bytes: u64) {
        if self.map.contains_key(&key) {
            return;
        }
        if bytes > self.capacity {
            self.stats.rejections += 1;
            return;
        }
        self.evict_until_fits(bytes);
        let meta = Meta {
            bytes,
            frequency: 1,
            score: self.score(1, bytes),
            stamp: self.next_stamp,
        };
        self.next_stamp += 1;
        self.order.insert((meta.score, meta.stamp, key));
        self.map.insert(key, meta);
        self.used += bytes;
        self.stats.insertions += 1;
    }

    fn contains(&self, key: ObjectKey) -> bool {
        self.map.contains_key(&key)
    }

    fn remove(&mut self, key: ObjectKey) -> bool {
        if let Some(meta) = self.map.remove(&key) {
            self.order.remove(&(meta.score, meta.stamp, key));
            self.used -= meta.bytes;
            true
        } else {
            false
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
        self.used = 0;
        self.clock = 0.0;
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn set_capacity(&mut self, bytes: u64) {
        self.capacity = bytes;
        self.evict_until_fits(0);
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u32) -> ObjectKey {
        ObjectKey::new(0, i)
    }

    #[test]
    fn small_objects_preferred_over_large_cold_ones() {
        let mut c = GdsfCache::new(100);
        c.insert(k(1), 80); // big
        c.insert(k(2), 10); // small
        c.insert(k(3), 10); // small
                            // All frequency 1: scores 1/80 < 1/10, so the big one is evicted.
        c.insert(k(4), 80);
        assert!(!c.contains(k(1)));
        assert!(c.contains(k(2)));
        assert!(c.contains(k(3)));
        assert!(c.contains(k(4)));
    }

    #[test]
    fn frequency_rescues_large_objects() {
        let mut c = GdsfCache::new(100);
        c.insert(k(1), 80);
        for _ in 0..100 {
            c.lookup(k(1)); // frequency 101: score 101/80 = 1.26
        }
        c.insert(k(2), 10); // score 0.1
        c.insert(k(3), 20); // needs 10 more bytes: k(2) has the lowest score
        assert!(c.contains(k(1)), "hot large object evicted");
        assert!(!c.contains(k(2)));
        assert!(c.contains(k(3)));
    }

    #[test]
    fn clock_inflates_on_eviction() {
        let mut c = GdsfCache::new(20);
        c.insert(k(1), 10);
        c.insert(k(2), 10);
        assert_eq!(c.clock(), 0.0);
        c.insert(k(3), 10); // evicts score 0.1
        assert!((c.clock() - 0.1).abs() < 1e-12);
        // New insertions now score clock + 1/size: newcomers are not
        // trivially below long-resident hot objects.
        c.insert(k(4), 10);
        let meta = c.map.get(&k(4)).unwrap();
        assert!((meta.score.0 - (0.1 + 0.1)).abs() < 1e-12);
    }

    #[test]
    fn capacity_and_accounting_invariants() {
        let mut c = GdsfCache::new(57);
        for i in 0..300u32 {
            c.access(k(i % 23), 3 + (i % 7) as u64);
            assert!(c.used_bytes() <= c.capacity_bytes());
            assert_eq!(c.order.len(), c.map.len());
        }
        let sum: u64 = c.map.values().map(|m| m.bytes).sum();
        assert_eq!(sum, c.used_bytes());
    }

    #[test]
    fn oversized_rejected() {
        let mut c = GdsfCache::new(10);
        c.insert(k(1), 11);
        assert!(c.is_empty());
        assert_eq!(c.stats().rejections, 1);
    }

    #[test]
    fn clear_resets_clock() {
        let mut c = GdsfCache::new(20);
        c.insert(k(1), 10);
        c.insert(k(2), 10);
        c.insert(k(3), 10);
        assert!(c.clock() > 0.0);
        c.clear();
        assert_eq!(c.clock(), 0.0);
        assert!(c.is_empty());
    }

    #[test]
    fn zero_byte_objects_never_panic_the_ordering() {
        // Regression: scoring used `partial_cmp(..).expect("scores are
        // finite")`, so any non-finite score aborted the simulation. A
        // 0-byte object is the realistic trigger (empty response bodies in
        // a trace); it must be admitted, re-scored on hits, and evictable
        // without panicking.
        let mut c = GdsfCache::new(20);
        c.insert(k(1), 0);
        assert!(c.contains(k(1)));
        assert_eq!(c.used_bytes(), 0);
        for _ in 0..5 {
            assert!(c.lookup(k(1)));
        }
        c.insert(k(2), 10);
        c.insert(k(3), 10);
        c.insert(k(4), 10); // forces an eviction with the 0-byte entry present
        assert!(c.used_bytes() <= c.capacity_bytes());
        assert_eq!(c.order.len(), c.map.len());
        assert!(c.remove(k(1)) || !c.contains(k(1)));
    }

    #[test]
    fn non_finite_scores_order_totally() {
        // total_cmp must keep the eviction set consistent even for scores
        // no realistic trace produces.
        let inf = Score(f64::INFINITY);
        let nan = Score(f64::NAN);
        let one = Score(1.0);
        assert_eq!(nan, nan);
        assert!(one < inf);
        assert!(inf < nan, "positive NaN sorts above +inf under total_cmp");
        let mut set = BTreeSet::new();
        set.insert((nan, 0, k(1)));
        set.insert((inf, 1, k(2)));
        set.insert((one, 2, k(3)));
        assert!(set.remove(&(nan, 0, k(1))), "NaN keys must round-trip");
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn deterministic_tie_breaks() {
        // Equal size, equal frequency: older entry evicted first.
        let mut c = GdsfCache::new(20);
        c.insert(k(1), 10);
        c.insert(k(2), 10);
        c.insert(k(3), 10);
        assert!(!c.contains(k(1)));
        assert!(c.contains(k(2)));
    }
}
