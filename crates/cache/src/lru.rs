//! Byte-capacity LRU — the paper's cache replacement policy.
//!
//! Implemented as a hash map into a slab-backed intrusive doubly-linked
//! list: O(1) lookup, promotion, insertion and eviction, no per-operation
//! allocation once the slab is warm. This is the hot structure of the
//! trace-driven simulator (tens of millions of operations per experiment).

use crate::fx::FxHashMap;
use crate::stats::CacheStats;
use crate::traits::{Cache, ObjectKey};

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Entry {
    key: ObjectKey,
    bytes: u64,
    prev: u32,
    next: u32,
}

/// LRU cache over [`ObjectKey`]s with a byte capacity.
///
/// ```
/// use cdn_cache::{Cache, LruCache, ObjectKey};
/// let mut cache = LruCache::new(100);
/// let key = ObjectKey::new(0, 7);
/// assert!(!cache.access(key, 40)); // miss, admitted
/// assert!(cache.access(key, 40));  // hit
/// assert_eq!(cache.used_bytes(), 40);
/// ```
#[derive(Debug)]
pub struct LruCache {
    map: FxHashMap<ObjectKey, u32>,
    slab: Vec<Entry>,
    free: Vec<u32>,
    /// Most recently used entry.
    head: u32,
    /// Least recently used entry (eviction end).
    tail: u32,
    used: u64,
    capacity: u64,
    stats: CacheStats,
}

impl LruCache {
    pub fn new(capacity_bytes: u64) -> Self {
        Self::with_expected_objects(capacity_bytes, 0)
    }

    /// [`LruCache::new`] with the map and slab pre-sized for roughly
    /// `expected_objects` residents, eliminating the rehash-and-copy churn
    /// of growing through the warm-up phase. The hint only reserves — a
    /// wrong value costs memory or growth, never correctness, and 0 means
    /// "start empty" (exactly `new`).
    pub fn with_expected_objects(capacity_bytes: u64, expected_objects: usize) -> Self {
        // Cap the reservation: a hint derived from a huge byte capacity
        // over a tiny mean object size must not pre-allocate gigabytes.
        let hint = expected_objects.min(1 << 22);
        let mut map = FxHashMap::default();
        map.reserve(hint);
        Self {
            map,
            slab: Vec::with_capacity(hint),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            used: 0,
            capacity: capacity_bytes,
            stats: CacheStats::default(),
        }
    }

    /// Keys from most to least recently used — for tests and introspection.
    pub fn keys_mru_to_lru(&self) -> Vec<ObjectKey> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            let e = &self.slab[cur as usize];
            out.push(e.key);
            cur = e.next;
        }
        out
    }

    /// The key that would be evicted next, if any.
    pub fn eviction_candidate(&self) -> Option<ObjectKey> {
        (self.tail != NIL).then(|| self.slab[self.tail as usize].key)
    }

    fn detach(&mut self, idx: u32) {
        let (prev, next) = {
            let e = &self.slab[idx as usize];
            (e.prev, e.next)
        };
        if prev != NIL {
            self.slab[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: u32) {
        {
            let e = &mut self.slab[idx as usize];
            e.prev = NIL;
            e.next = self.head;
        }
        if self.head != NIL {
            self.slab[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn evict_lru(&mut self) {
        debug_assert!(self.tail != NIL);
        let idx = self.tail;
        let (key, bytes) = {
            let e = &self.slab[idx as usize];
            (e.key, e.bytes)
        };
        self.detach(idx);
        self.map.remove(&key);
        self.free.push(idx);
        self.used -= bytes;
        self.stats.evictions += 1;
    }

    fn evict_until_fits(&mut self, incoming: u64) {
        while self.used + incoming > self.capacity && self.tail != NIL {
            self.evict_lru();
        }
    }
}

impl Cache for LruCache {
    fn lookup(&mut self, key: ObjectKey) -> bool {
        if let Some(&idx) = self.map.get(&key) {
            self.stats.hits += 1;
            self.detach(idx);
            self.push_front(idx);
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    fn insert(&mut self, key: ObjectKey, bytes: u64) {
        if self.map.contains_key(&key) {
            return;
        }
        if bytes > self.capacity {
            self.stats.rejections += 1;
            return;
        }
        self.evict_until_fits(bytes);
        let idx = if let Some(idx) = self.free.pop() {
            self.slab[idx as usize] = Entry {
                key,
                bytes,
                prev: NIL,
                next: NIL,
            };
            idx
        } else {
            let idx = self.slab.len() as u32;
            self.slab.push(Entry {
                key,
                bytes,
                prev: NIL,
                next: NIL,
            });
            idx
        };
        self.push_front(idx);
        self.map.insert(key, idx);
        self.used += bytes;
        self.stats.insertions += 1;
    }

    fn contains(&self, key: ObjectKey) -> bool {
        self.map.contains_key(&key)
    }

    fn remove(&mut self, key: ObjectKey) -> bool {
        if let Some(idx) = self.map.remove(&key) {
            let bytes = self.slab[idx as usize].bytes;
            self.detach(idx);
            self.free.push(idx);
            self.used -= bytes;
            true
        } else {
            false
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.used = 0;
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn set_capacity(&mut self, bytes: u64) {
        self.capacity = bytes;
        self.evict_until_fits(0);
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u32) -> ObjectKey {
        ObjectKey::new(0, i)
    }

    #[test]
    fn hit_after_insert() {
        let mut c = LruCache::new(100);
        assert!(!c.lookup(k(1)));
        c.insert(k(1), 10);
        assert!(c.lookup(k(1)));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(30);
        c.insert(k(1), 10);
        c.insert(k(2), 10);
        c.insert(k(3), 10);
        c.lookup(k(1)); // promote 1; LRU order now 2, 3, 1
        c.insert(k(4), 10); // must evict 2
        assert!(!c.contains(k(2)));
        assert!(c.contains(k(1)));
        assert!(c.contains(k(3)));
        assert!(c.contains(k(4)));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn mru_order_tracks_accesses() {
        let mut c = LruCache::new(100);
        c.insert(k(1), 1);
        c.insert(k(2), 1);
        c.insert(k(3), 1);
        c.lookup(k(2));
        assert_eq!(c.keys_mru_to_lru(), vec![k(2), k(3), k(1)]);
        assert_eq!(c.eviction_candidate(), Some(k(1)));
    }

    #[test]
    fn oversized_object_rejected() {
        let mut c = LruCache::new(10);
        c.insert(k(1), 11);
        assert!(!c.contains(k(1)));
        assert_eq!(c.stats().rejections, 1);
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn large_object_evicts_many() {
        let mut c = LruCache::new(30);
        for i in 0..3 {
            c.insert(k(i), 10);
        }
        c.insert(k(9), 30);
        assert_eq!(c.len(), 1);
        assert!(c.contains(k(9)));
        assert_eq!(c.used_bytes(), 30);
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut c = LruCache::new(100);
        c.insert(k(1), 10);
        c.insert(k(1), 10);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), 10);
        assert_eq!(c.stats().insertions, 1);
    }

    #[test]
    fn remove_frees_space() {
        let mut c = LruCache::new(20);
        c.insert(k(1), 10);
        c.insert(k(2), 10);
        assert!(c.remove(k(1)));
        assert!(!c.remove(k(1)));
        assert_eq!(c.used_bytes(), 10);
        c.insert(k(3), 10); // fits without eviction
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn shrink_capacity_evicts() {
        let mut c = LruCache::new(40);
        for i in 0..4 {
            c.insert(k(i), 10);
        }
        c.set_capacity(15);
        assert_eq!(c.len(), 1);
        assert!(c.contains(k(3))); // most recent survives
        assert!(c.used_bytes() <= 15);
    }

    #[test]
    fn clear_retains_stats() {
        let mut c = LruCache::new(40);
        c.insert(k(1), 10);
        c.lookup(k(1));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
        assert_eq!(c.stats().hits, 1);
        c.reset_stats();
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn access_combines_lookup_and_insert() {
        let mut c = LruCache::new(100);
        assert!(!c.access(k(5), 10));
        assert!(c.access(k(5), 10));
    }

    #[test]
    fn slab_reuse_after_eviction() {
        let mut c = LruCache::new(10);
        for i in 0..1000 {
            c.insert(k(i), 1);
        }
        // Slab should stay bounded by the max resident count, not grow to 1000.
        assert!(c.slab.len() <= 11, "slab grew to {}", c.slab.len());
    }

    #[test]
    fn zero_capacity_cache_accepts_nothing() {
        let mut c = LruCache::new(0);
        c.insert(k(1), 1);
        assert!(c.is_empty());
        // Zero-byte objects do fit in a zero-byte cache: degenerate but
        // consistent with the byte-accounting invariant.
        c.insert(k(2), 0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), 0);
    }
}
