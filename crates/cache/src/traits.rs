//! The common cache interface.

use crate::stats::CacheStats;

/// Identity of a cacheable object: a (site, object-rank) pair. Matches the
//  request representation of `cdn-workload`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectKey {
    pub site: u32,
    pub object: u32,
}

impl ObjectKey {
    pub fn new(site: u32, object: u32) -> Self {
        Self { site, object }
    }
}

/// A byte-capacity cache. Implementations must uphold:
///
/// * `used_bytes() <= capacity_bytes()` at all times;
/// * an object with `bytes > capacity_bytes()` is never admitted;
/// * `lookup` counts a hit/miss and (policy permitting) promotes the entry;
/// * `contains` never mutates policy state or statistics.
pub trait Cache: Send {
    /// Look `key` up, updating recency/frequency state and statistics.
    /// Returns true on hit.
    fn lookup(&mut self, key: ObjectKey) -> bool;

    /// Admit `key` with the given size, evicting as needed. No-op if the
    /// object is already resident (sizes are immutable per key) or larger
    /// than the whole cache. Not counted as a hit or miss.
    fn insert(&mut self, key: ObjectKey, bytes: u64);

    /// Pure membership test: no statistics, no promotion.
    fn contains(&self, key: ObjectKey) -> bool;

    /// Remove one object; returns true if it was resident.
    fn remove(&mut self, key: ObjectKey) -> bool;

    /// Drop everything (statistics retained).
    fn clear(&mut self);

    /// Bytes currently stored.
    fn used_bytes(&self) -> u64;

    /// Capacity in bytes.
    fn capacity_bytes(&self) -> u64;

    /// Number of resident objects.
    fn len(&self) -> usize;

    /// True when nothing is resident.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shrink or grow the capacity, evicting per policy until the contents
    /// fit again.
    fn set_capacity(&mut self, bytes: u64);

    /// Statistics accumulated so far.
    fn stats(&self) -> &CacheStats;

    /// Reset statistics (e.g. at the end of a warm-up phase) without
    /// touching the cached contents.
    fn reset_stats(&mut self);

    /// The standard access pattern of the simulator: `lookup`, and on miss
    /// `insert`. Returns true on hit.
    fn access(&mut self, key: ObjectKey, bytes: u64) -> bool {
        if self.lookup(key) {
            true
        } else {
            self.insert(key, bytes);
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_key_ordering_and_equality() {
        let a = ObjectKey::new(1, 2);
        let b = ObjectKey::new(1, 3);
        assert!(a < b);
        assert_eq!(a, ObjectKey { site: 1, object: 2 });
    }
}
