//! A fast, deterministic hasher for [`ObjectKey`](crate::ObjectKey) maps.
//!
//! `std`'s default SipHash is DoS-resistant but costs tens of nanoseconds
//! per lookup — measurable when the simulator hashes tens of millions of
//! keys per experiment. Cache keys here are simulator-internal (never
//! attacker-controlled), so the rustc/Firefox "Fx" multiply-xor hash is
//! the right trade: one rotate, one xor, one multiply per 8-byte word.
//!
//! Determinism note: unlike `RandomState`, [`FxHasher`] has no per-process
//! seed, so map behaviour is identical across runs *and* the policies
//! never iterate their maps — bucket order can never leak into results
//! either way.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` alias used by [`LruCache`](crate::LruCache) (the simulator's
/// default policy — the other policies keep std's hasher since they are
/// ablation-only).
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc hash: word-at-a-time multiply-xor. Not DoS-resistant — only
/// use for internal keys.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObjectKey;
    use std::hash::BuildHasher;

    fn hash_of(key: ObjectKey) -> u64 {
        BuildHasherDefault::<FxHasher>::default().hash_one(key)
    }

    #[test]
    fn stable_across_calls() {
        let k = ObjectKey::new(3, 917);
        assert_eq!(hash_of(k), hash_of(k));
    }

    #[test]
    fn distinguishes_site_and_object() {
        assert_ne!(hash_of(ObjectKey::new(1, 2)), hash_of(ObjectKey::new(2, 1)));
    }

    #[test]
    fn map_round_trip() {
        let mut m: FxHashMap<ObjectKey, u32> = FxHashMap::default();
        for i in 0..10_000u32 {
            m.insert(ObjectKey::new(i % 7, i), i);
        }
        for i in 0..10_000u32 {
            assert_eq!(m.get(&ObjectKey::new(i % 7, i)), Some(&i));
        }
    }

    #[test]
    fn spreads_sequential_keys() {
        // Sequential object ranks (the workload's hot pattern) must not
        // collapse into few buckets: check low-bits dispersion, which is
        // what HashMap actually indexes with.
        let mut low_bits = std::collections::HashSet::new();
        for i in 0..256u32 {
            low_bits.insert(hash_of(ObjectKey::new(0, i)) & 0xff);
        }
        assert!(low_bits.len() > 128, "only {} distinct", low_bits.len());
    }

    #[test]
    fn write_path_matches_wordwise_path() {
        // Hash derives via #[derive(Hash)] on two u32 fields; ensure the
        // byte-slice fallback produces *some* deterministic value too.
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let a = h.finish();
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a, h.finish());
    }
}
