//! Delayed LRU: admit an object only on its *second* request within a
//! sliding history window.
//!
//! Karlsson & Mahalingam ("Do we need replica placement algorithms in
//! content delivery networks?", WCW 2002 — reference [15] of the paper)
//! found this simple admission filter makes plain caching competitive with
//! replica placement; the paper cites that result as motivation, so the
//! policy is included for the ablation benchmarks.

use crate::lru::LruCache;
use crate::stats::CacheStats;
use crate::traits::{Cache, ObjectKey};
use std::collections::{HashMap, VecDeque};

/// LRU cache with a second-touch admission filter. The history of
/// recently-seen-but-not-admitted keys is itself bounded (FIFO) so the
/// filter cannot grow without limit.
#[derive(Debug)]
pub struct DelayedLruCache {
    inner: LruCache,
    history: HashMap<ObjectKey, ()>,
    history_order: VecDeque<ObjectKey>,
    history_cap: usize,
}

impl DelayedLruCache {
    /// Default history size: plenty for the reproduction's working sets.
    const DEFAULT_HISTORY: usize = 1 << 16;

    pub fn new(capacity_bytes: u64) -> Self {
        Self::with_history(capacity_bytes, Self::DEFAULT_HISTORY)
    }

    /// `history_entries` bounds how many distinct once-seen keys the
    /// admission filter remembers.
    pub fn with_history(capacity_bytes: u64, history_entries: usize) -> Self {
        Self {
            inner: LruCache::new(capacity_bytes),
            history: HashMap::new(),
            history_order: VecDeque::new(),
            history_cap: history_entries.max(1),
        }
    }

    /// Number of keys currently in the admission history.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    fn note_seen(&mut self, key: ObjectKey) -> bool {
        if self.history.remove(&key).is_some() {
            // Second touch: admit. (Stale queue entry removed lazily.)
            return true;
        }
        self.history.insert(key, ());
        self.history_order.push_back(key);
        while self.history.len() > self.history_cap {
            if let Some(old) = self.history_order.pop_front() {
                self.history.remove(&old);
            } else {
                break;
            }
        }
        false
    }
}

impl Cache for DelayedLruCache {
    fn lookup(&mut self, key: ObjectKey) -> bool {
        self.inner.lookup(key)
    }

    fn insert(&mut self, key: ObjectKey, bytes: u64) {
        if self.inner.contains(key) {
            return;
        }
        if self.note_seen(key) {
            self.inner.insert(key, bytes);
        }
        // First touch: filtered, intentionally not counted as a rejection
        // (the object was declined by policy, not by capacity).
    }

    fn contains(&self, key: ObjectKey) -> bool {
        self.inner.contains(key)
    }

    fn remove(&mut self, key: ObjectKey) -> bool {
        self.inner.remove(key)
    }

    fn clear(&mut self) {
        self.inner.clear();
        self.history.clear();
        self.history_order.clear();
    }

    fn used_bytes(&self) -> u64 {
        self.inner.used_bytes()
    }

    fn capacity_bytes(&self) -> u64 {
        self.inner.capacity_bytes()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn set_capacity(&mut self, bytes: u64) {
        self.inner.set_capacity(bytes);
    }

    fn stats(&self) -> &CacheStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u32) -> ObjectKey {
        ObjectKey::new(0, i)
    }

    #[test]
    fn first_touch_not_admitted() {
        let mut c = DelayedLruCache::new(100);
        c.insert(k(1), 10);
        assert!(!c.contains(k(1)));
        assert_eq!(c.history_len(), 1);
    }

    #[test]
    fn second_touch_admitted() {
        let mut c = DelayedLruCache::new(100);
        c.insert(k(1), 10);
        c.insert(k(1), 10);
        assert!(c.contains(k(1)));
        assert_eq!(c.history_len(), 0);
    }

    #[test]
    fn access_pattern_needs_two_misses() {
        let mut c = DelayedLruCache::new(100);
        assert!(!c.access(k(1), 10)); // miss, noted
        assert!(!c.access(k(1), 10)); // miss, admitted
        assert!(c.access(k(1), 10)); // hit
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn one_hit_wonders_never_pollute() {
        let mut c = DelayedLruCache::new(30);
        c.insert(k(1), 10);
        c.insert(k(1), 10); // admitted, resident
        for i in 100..200 {
            c.insert(k(i), 10); // one-hit wonders, all filtered
        }
        assert!(c.contains(k(1)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn history_is_bounded() {
        let mut c = DelayedLruCache::with_history(100, 4);
        for i in 0..10 {
            c.insert(k(i), 1);
        }
        assert!(c.history_len() <= 4);
        // k(0) aged out of history: a second touch is treated as first.
        c.insert(k(0), 1);
        assert!(!c.contains(k(0)));
    }

    #[test]
    fn clear_resets_history() {
        let mut c = DelayedLruCache::new(100);
        c.insert(k(1), 1);
        c.clear();
        assert_eq!(c.history_len(), 0);
        c.insert(k(1), 1);
        assert!(!c.contains(k(1)), "history survived clear");
    }
}
