//! Delayed LRU: admit an object only on its *second* request within a
//! sliding history window.
//!
//! Karlsson & Mahalingam ("Do we need replica placement algorithms in
//! content delivery networks?", WCW 2002 — reference [15] of the paper)
//! found this simple admission filter makes plain caching competitive with
//! replica placement; the paper cites that result as motivation, so the
//! policy is included for the ablation benchmarks.

use crate::lru::LruCache;
use crate::stats::CacheStats;
use crate::traits::{Cache, ObjectKey};
use std::collections::{HashMap, VecDeque};

/// LRU cache with a second-touch admission filter. The history of
/// recently-seen-but-not-admitted keys is itself bounded (FIFO) so the
/// filter cannot grow without limit.
#[derive(Debug)]
pub struct DelayedLruCache {
    inner: LruCache,
    /// Once-seen keys awaiting their second touch, each mapped to the
    /// sequence number of its live entry in `history_order`. A queue entry
    /// whose sequence no longer matches is stale (its key was admitted, or
    /// re-seen later) and is skipped on pop instead of evicting the key's
    /// newer entry.
    history: HashMap<ObjectKey, u64>,
    history_order: VecDeque<(u64, ObjectKey)>,
    history_cap: usize,
    next_seq: u64,
}

impl DelayedLruCache {
    /// Default history size: plenty for the reproduction's working sets.
    const DEFAULT_HISTORY: usize = 1 << 16;

    pub fn new(capacity_bytes: u64) -> Self {
        Self::with_history(capacity_bytes, Self::DEFAULT_HISTORY)
    }

    /// `history_entries` bounds how many distinct once-seen keys the
    /// admission filter remembers.
    pub fn with_history(capacity_bytes: u64, history_entries: usize) -> Self {
        Self {
            inner: LruCache::new(capacity_bytes),
            history: HashMap::new(),
            history_order: VecDeque::new(),
            history_cap: history_entries.max(1),
            next_seq: 0,
        }
    }

    /// Number of keys currently in the admission history.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    fn note_seen(&mut self, key: ObjectKey) -> bool {
        if self.history.remove(&key).is_some() {
            // Second touch: admit. The key's queue entry is now stale; its
            // sequence number no longer resolves in `history`, so pops skip
            // it rather than dropping a future re-seen entry for this key.
            return true;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.history.insert(key, seq);
        self.history_order.push_back((seq, key));
        while self.history.len() > self.history_cap {
            match self.history_order.pop_front() {
                // Tombstone skip: only a queue entry that still owns its
                // key may evict it from the history.
                Some((s, old)) => {
                    if self.history.get(&old) == Some(&s) {
                        self.history.remove(&old);
                    }
                }
                None => break,
            }
        }
        // Stale entries make the queue longer than the live history; keep
        // the overhead bounded by compacting once it doubles.
        if self.history_order.len() > self.history_cap.saturating_mul(2) {
            let history = &self.history;
            self.history_order
                .retain(|(s, k)| history.get(k) == Some(s));
        }
        false
    }
}

impl Cache for DelayedLruCache {
    fn lookup(&mut self, key: ObjectKey) -> bool {
        self.inner.lookup(key)
    }

    fn insert(&mut self, key: ObjectKey, bytes: u64) {
        if self.inner.contains(key) {
            return;
        }
        if self.note_seen(key) {
            self.inner.insert(key, bytes);
        }
        // First touch: filtered, intentionally not counted as a rejection
        // (the object was declined by policy, not by capacity).
    }

    fn contains(&self, key: ObjectKey) -> bool {
        self.inner.contains(key)
    }

    fn remove(&mut self, key: ObjectKey) -> bool {
        self.inner.remove(key)
    }

    fn clear(&mut self) {
        self.inner.clear();
        self.history.clear();
        self.history_order.clear();
        self.next_seq = 0;
    }

    fn used_bytes(&self) -> u64 {
        self.inner.used_bytes()
    }

    fn capacity_bytes(&self) -> u64 {
        self.inner.capacity_bytes()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn set_capacity(&mut self, bytes: u64) {
        self.inner.set_capacity(bytes);
    }

    fn stats(&self) -> &CacheStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u32) -> ObjectKey {
        ObjectKey::new(0, i)
    }

    #[test]
    fn first_touch_not_admitted() {
        let mut c = DelayedLruCache::new(100);
        c.insert(k(1), 10);
        assert!(!c.contains(k(1)));
        assert_eq!(c.history_len(), 1);
    }

    #[test]
    fn second_touch_admitted() {
        let mut c = DelayedLruCache::new(100);
        c.insert(k(1), 10);
        c.insert(k(1), 10);
        assert!(c.contains(k(1)));
        assert_eq!(c.history_len(), 0);
    }

    #[test]
    fn access_pattern_needs_two_misses() {
        let mut c = DelayedLruCache::new(100);
        assert!(!c.access(k(1), 10)); // miss, noted
        assert!(!c.access(k(1), 10)); // miss, admitted
        assert!(c.access(k(1), 10)); // hit
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn one_hit_wonders_never_pollute() {
        let mut c = DelayedLruCache::new(30);
        c.insert(k(1), 10);
        c.insert(k(1), 10); // admitted, resident
        for i in 100..200 {
            c.insert(k(i), 10); // one-hit wonders, all filtered
        }
        assert!(c.contains(k(1)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn history_is_bounded() {
        let mut c = DelayedLruCache::with_history(100, 4);
        for i in 0..10 {
            c.insert(k(i), 1);
        }
        assert!(c.history_len() <= 4);
        // k(0) aged out of history: a second touch is treated as first.
        c.insert(k(0), 1);
        assert!(!c.contains(k(0)));
    }

    #[test]
    fn premature_drop_of_reseen_key_regression() {
        // Regression: admission used to leave the admitted key's queue
        // entry behind. If the key was later evicted and seen again, the
        // queue held the key twice; overflowing the history then popped the
        // STALE front entry, which erased the key's fresh history entry —
        // even though it was not the oldest live one — so the genuine
        // second touch was treated as a first touch, while the key that
        // should have aged out (the true FIFO victim) survived.
        let mut c = DelayedLruCache::with_history(100, 2);
        c.insert(k(1), 1);
        c.insert(k(1), 1); // admitted; queue entry for k(1) is now stale
        assert!(c.contains(k(1)));
        assert!(c.remove(k(1)), "evict the admitted copy");
        c.insert(k(2), 1); // oldest live entry — the rightful FIFO victim
        c.insert(k(1), 1); // re-seen: fresh entry, NEWER than k(2)'s
        c.insert(k(3), 1); // overflow (3 live > cap 2): pop must skip the
                           // stale k(1) front entry and age out k(2)
        assert!(c.history_len() <= 2, "bound counts live entries");
        c.insert(k(1), 1); // k(1)'s genuine second touch
        assert!(
            c.contains(k(1)),
            "re-seen key lost its fresh history entry to a stale pop"
        );
        // And the rightful victim really aged out: k(2)'s next touch is a
        // first touch again.
        c.insert(k(2), 1);
        assert!(!c.contains(k(2)), "k(2) should have been the FIFO victim");
    }

    #[test]
    fn queue_overhead_stays_bounded_under_admission_churn() {
        // Admit/evict the same keys repeatedly: every admission strands a
        // stale queue entry; compaction must keep the queue near the cap.
        let mut c = DelayedLruCache::with_history(10, 8);
        for round in 0..1000u32 {
            let key = k(round % 16);
            c.insert(key, 1);
            if c.contains(key) {
                c.remove(key);
            }
        }
        assert!(c.history_len() <= 8);
        assert!(
            c.history_order.len() <= 16,
            "queue grew unboundedly: {}",
            c.history_order.len()
        );
    }

    #[test]
    fn clear_resets_history() {
        let mut c = DelayedLruCache::new(100);
        c.insert(k(1), 1);
        c.clear();
        assert_eq!(c.history_len(), 0);
        c.insert(k(1), 1);
        assert!(!c.contains(k(1)), "history survived clear");
    }
}
