//! CLOCK (second-chance) replacement: a one-bit approximation of LRU that
//! avoids list maintenance on hits — a hit only sets a reference bit.

use crate::stats::CacheStats;
use crate::traits::{Cache, ObjectKey};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
struct Slot {
    key: ObjectKey,
    bytes: u64,
    referenced: bool,
    occupied: bool,
}

/// Byte-capacity CLOCK cache. The ring grows on demand and holes left by
/// explicit removal are reused by the sweeping hand.
#[derive(Debug)]
pub struct ClockCache {
    map: HashMap<ObjectKey, usize>,
    ring: Vec<Slot>,
    hand: usize,
    used: u64,
    capacity: u64,
    stats: CacheStats,
}

impl ClockCache {
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            map: HashMap::new(),
            ring: Vec::new(),
            hand: 0,
            used: 0,
            capacity: capacity_bytes,
            stats: CacheStats::default(),
        }
    }

    /// Sweep until one occupied, unreferenced slot is evicted. Clears
    /// reference bits as it passes (the defining CLOCK behaviour).
    fn evict_one(&mut self) -> bool {
        if self.map.is_empty() {
            return false;
        }
        loop {
            let n = self.ring.len();
            debug_assert!(n > 0);
            let idx = self.hand % n;
            self.hand = (self.hand + 1) % n;
            let slot = &mut self.ring[idx];
            if !slot.occupied {
                continue;
            }
            if slot.referenced {
                slot.referenced = false;
                continue;
            }
            slot.occupied = false;
            self.used -= slot.bytes;
            self.map.remove(&slot.key);
            self.stats.evictions += 1;
            return true;
        }
    }

    fn evict_until_fits(&mut self, incoming: u64) {
        while self.used + incoming > self.capacity {
            if !self.evict_one() {
                break;
            }
        }
    }

    fn find_free_slot(&mut self) -> usize {
        // Reuse a hole if one exists, otherwise grow the ring.
        if let Some(idx) = self.ring.iter().position(|s| !s.occupied) {
            idx
        } else {
            self.ring.push(Slot {
                key: ObjectKey::new(0, 0),
                bytes: 0,
                referenced: false,
                occupied: false,
            });
            self.ring.len() - 1
        }
    }
}

impl Cache for ClockCache {
    fn lookup(&mut self, key: ObjectKey) -> bool {
        if let Some(&idx) = self.map.get(&key) {
            self.stats.hits += 1;
            self.ring[idx].referenced = true;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    fn insert(&mut self, key: ObjectKey, bytes: u64) {
        if self.map.contains_key(&key) {
            return;
        }
        if bytes > self.capacity {
            self.stats.rejections += 1;
            return;
        }
        self.evict_until_fits(bytes);
        let idx = self.find_free_slot();
        self.ring[idx] = Slot {
            key,
            bytes,
            referenced: false,
            occupied: true,
        };
        self.map.insert(key, idx);
        self.used += bytes;
        self.stats.insertions += 1;
    }

    fn contains(&self, key: ObjectKey) -> bool {
        self.map.contains_key(&key)
    }

    fn remove(&mut self, key: ObjectKey) -> bool {
        if let Some(idx) = self.map.remove(&key) {
            self.ring[idx].occupied = false;
            self.used -= self.ring[idx].bytes;
            true
        } else {
            false
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.ring.clear();
        self.hand = 0;
        self.used = 0;
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn set_capacity(&mut self, bytes: u64) {
        self.capacity = bytes;
        self.evict_until_fits(0);
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u32) -> ObjectKey {
        ObjectKey::new(0, i)
    }

    #[test]
    fn referenced_objects_get_second_chance() {
        let mut c = ClockCache::new(30);
        c.insert(k(1), 10);
        c.insert(k(2), 10);
        c.insert(k(3), 10);
        c.lookup(k(1)); // set ref bit on 1
        c.insert(k(4), 10);
        // The hand passes 1 (clears its bit), evicts 2.
        assert!(c.contains(k(1)));
        assert!(!c.contains(k(2)));
    }

    #[test]
    fn unreferenced_evicted_in_ring_order() {
        let mut c = ClockCache::new(20);
        c.insert(k(1), 10);
        c.insert(k(2), 10);
        c.insert(k(3), 10);
        assert!(!c.contains(k(1)));
    }

    #[test]
    fn holes_reused() {
        let mut c = ClockCache::new(100);
        c.insert(k(1), 10);
        c.insert(k(2), 10);
        c.remove(k(1));
        c.insert(k(3), 10);
        assert_eq!(c.ring.len(), 2, "hole not reused");
    }

    #[test]
    fn capacity_invariant_under_churn() {
        let mut c = ClockCache::new(55);
        for i in 0..500u32 {
            c.access(k(i % 17), 10);
            assert!(c.used_bytes() <= c.capacity_bytes());
        }
        assert_eq!(
            c.used_bytes(),
            c.ring
                .iter()
                .filter(|s| s.occupied)
                .map(|s| s.bytes)
                .sum::<u64>()
        );
    }

    #[test]
    fn all_referenced_still_evicts() {
        let mut c = ClockCache::new(20);
        c.insert(k(1), 10);
        c.insert(k(2), 10);
        c.lookup(k(1));
        c.lookup(k(2));
        c.insert(k(3), 10); // sweep clears both bits, then evicts
        assert_eq!(c.len(), 2);
        assert!(c.contains(k(3)));
    }
}
