//! Property tests: every policy upholds the capacity and accounting
//! invariants under arbitrary access sequences, and the LRU implementation
//! agrees with a naive reference model.

use cdn_cache::{by_name, Cache, LruCache, ObjectKey};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Access(u32, u64),
    Remove(u32),
    SetCapacity(u64),
    Clear,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (0u32..40, 1u64..30).prop_map(|(k, b)| Op::Access(k, b)),
        1 => (0u32..40).prop_map(Op::Remove),
        1 => (10u64..200).prop_map(Op::SetCapacity),
        1 => Just(Op::Clear),
    ]
}

/// Naive LRU over (key, bytes) pairs: Vec ordered MRU-first.
#[derive(Default)]
struct RefLru {
    items: Vec<(u32, u64)>,
    capacity: u64,
}

impl RefLru {
    fn used(&self) -> u64 {
        self.items.iter().map(|&(_, b)| b).sum()
    }

    fn access(&mut self, key: u32, bytes: u64) -> bool {
        if let Some(pos) = self.items.iter().position(|&(k, _)| k == key) {
            let item = self.items.remove(pos);
            self.items.insert(0, item);
            true
        } else {
            if bytes <= self.capacity {
                while self.used() + bytes > self.capacity {
                    self.items.pop();
                }
                self.items.insert(0, (key, bytes));
            }
            false
        }
    }

    fn remove(&mut self, key: u32) {
        self.items.retain(|&(k, _)| k != key);
    }

    fn set_capacity(&mut self, cap: u64) {
        self.capacity = cap;
        while self.used() > self.capacity {
            self.items.pop();
        }
    }
}

proptest! {
    #[test]
    fn lru_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut real = LruCache::new(100);
        let mut reference = RefLru { items: vec![], capacity: 100 };
        for op in ops {
            match op {
                Op::Access(k, b) => {
                    let hit_real = real.access(ObjectKey::new(0, k), b);
                    let hit_ref = reference.access(k, b);
                    prop_assert_eq!(hit_real, hit_ref, "hit divergence on key {}", k);
                }
                Op::Remove(k) => {
                    real.remove(ObjectKey::new(0, k));
                    reference.remove(k);
                }
                Op::SetCapacity(c) => {
                    real.set_capacity(c);
                    reference.set_capacity(c);
                }
                Op::Clear => {
                    real.clear();
                    reference.items.clear();
                }
            }
            prop_assert_eq!(real.used_bytes(), reference.used());
            prop_assert_eq!(real.len(), reference.items.len());
            let expected: Vec<ObjectKey> =
                reference.items.iter().map(|&(k, _)| ObjectKey::new(0, k)).collect();
            prop_assert_eq!(real.keys_mru_to_lru(), expected);
        }
    }

    #[test]
    fn all_policies_respect_capacity(
        name in prop_oneof![
            Just("lru"), Just("delayed-lru"), Just("fifo"), Just("lfu"),
            Just("clock"), Just("gdsf")
        ],
        ops in proptest::collection::vec(op_strategy(), 1..300),
    ) {
        let mut cache = by_name(name, 100).unwrap();
        for op in ops {
            match op {
                Op::Access(k, b) => {
                    cache.access(ObjectKey::new(0, k), b);
                }
                Op::Remove(k) => {
                    cache.remove(ObjectKey::new(0, k));
                }
                Op::SetCapacity(c) => cache.set_capacity(c),
                Op::Clear => cache.clear(),
            }
            prop_assert!(cache.used_bytes() <= cache.capacity_bytes(),
                "{}: used {} > cap {}", name, cache.used_bytes(), cache.capacity_bytes());
            if cache.is_empty() {
                prop_assert_eq!(cache.used_bytes(), 0);
            }
        }
    }

    #[test]
    fn stats_identities_hold(
        name in prop_oneof![
            Just("lru"), Just("fifo"), Just("lfu"), Just("clock"), Just("gdsf")
        ],
        keys in proptest::collection::vec((0u32..20, 1u64..20), 1..200),
    ) {
        let mut cache = by_name(name, 80).unwrap();
        for (k, b) in &keys {
            cache.access(ObjectKey::new(0, *k), *b);
        }
        let s = *cache.stats();
        prop_assert_eq!(s.lookups(), keys.len() as u64);
        // Every resident object was inserted; insertions = evictions + resident
        // (no removals happened, and non-delayed policies only reject oversize,
        // which cannot happen here since max object 19 < 80).
        prop_assert_eq!(s.rejections, 0);
        prop_assert_eq!(s.insertions, s.evictions + cache.len() as u64);
        // Misses produce insertions under these policies.
        prop_assert_eq!(s.insertions, s.misses);
    }
}
