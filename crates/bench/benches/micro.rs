//! Criterion micro-benchmarks for the hot paths of every substrate:
//! cache operations, Zipf sampling, shortest paths, the analytical model,
//! and the planners end-to-end at small/medium scale.

use cdn_cache::{Cache, GdsfCache, LruCache, ObjectKey};
use cdn_core::{Scenario, ScenarioConfig, Strategy};
use cdn_lru_model::{HitRatioTable, LruModel};
use cdn_placement::{greedy_global, hybrid::hybrid_greedy_paper, HybridConfig};
use cdn_topology::{bfs_hops, DistanceMatrix, TransitStubConfig, TransitStubTopology};
use cdn_workload::{SiteCatalog, WorkloadConfig, ZipfLike};
use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(1));
    // Steady-state mixed workload: Zipf-popular keys over a 1000-object
    // universe in a cache holding ~200 of them.
    let zipf = ZipfLike::new(1000, 1.0);
    let mut rng = StdRng::seed_from_u64(1);
    let keys: Vec<ObjectKey> = (0..10_000)
        .map(|_| ObjectKey::new(0, zipf.sample(&mut rng) as u32))
        .collect();
    group.bench_function("lru_access_steady_state", |b| {
        let mut cache = LruCache::new(200 * 100);
        let mut i = 0;
        b.iter(|| {
            let key = keys[i % keys.len()];
            i += 1;
            black_box(cache.access(key, 100))
        })
    });
    group.bench_function("gdsf_access_steady_state", |b| {
        let mut cache = GdsfCache::new(200 * 100);
        let mut i = 0;
        b.iter(|| {
            let key = keys[i % keys.len()];
            i += 1;
            black_box(cache.access(key, 100))
        })
    });
    group.finish();
}

fn bench_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload");
    group.throughput(Throughput::Elements(1));
    let zipf = ZipfLike::new(1000, 1.0);
    let mut rng = StdRng::seed_from_u64(2);
    group.bench_function("zipf_sample_1000", |b| {
        b.iter(|| black_box(zipf.sample(&mut rng)))
    });
    group.sample_size(20);
    group.bench_function("catalog_generate_small", |b| {
        b.iter(|| black_box(SiteCatalog::generate(&WorkloadConfig::small(), 3)))
    });
    group.finish();
}

fn bench_topology(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology");
    group.sample_size(20);
    let topo = TransitStubTopology::generate(&TransitStubConfig::paper_default(), 1);
    group.bench_function("bfs_1560_nodes", |b| {
        b.iter(|| black_box(bfs_hops(&topo.graph, 7)))
    });
    group.bench_function("distance_matrix_50_hosts", |b| {
        let hosts: Vec<u32> = (0..50).map(|i| (i * 31) % 1560).collect();
        b.iter(|| black_box(DistanceMatrix::compute(&topo.graph, &hosts)))
    });
    group.bench_function("generate_paper_topology", |b| {
        b.iter(|| {
            black_box(TransitStubTopology::generate(
                &TransitStubConfig::paper_default(),
                2,
            ))
        })
    });
    group.finish();
}

fn bench_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("lru_model");
    let model = LruModel::new(1000, 1.0);
    group.bench_function("site_hit_ratio_exact_L1000", |b| {
        b.iter(|| black_box(model.site_hit_ratio(black_box(0.01), black_box(5000.0))))
    });
    group.bench_function("eviction_horizon_exact_B20k", |b| {
        b.iter(|| black_box(model.eviction_horizon(20_000, 0.8)))
    });
    group.bench_function("eviction_horizon_approx_B20k", |b| {
        b.iter(|| black_box(model.eviction_horizon_approx(20_000, 0.8)))
    });
    group.bench_function("top_b_mass_10_sites_B5000", |b| {
        let pops = [0.1f64; 10];
        b.iter(|| black_box(model.top_b_mass(&pops, 5000)))
    });
    group.bench_function("table_lookup_warm", |b| {
        let table = HitRatioTable::planner_default(LruModel::new(1000, 1.0));
        table.site_hit_ratio(0.01, 5000.0); // warm the cell
        b.iter(|| black_box(table.site_hit_ratio(0.01, 5000.0)))
    });
    group.finish();
}

fn bench_planners(c: &mut Criterion) {
    let mut group = c.benchmark_group("planners");
    group.sample_size(10);
    let scenario = Scenario::generate(&ScenarioConfig::small());
    group.bench_function("greedy_global_small", |b| {
        b.iter(|| black_box(greedy_global(&scenario.problem)))
    });
    group.bench_function("hybrid_small", |b| {
        b.iter(|| {
            black_box(hybrid_greedy_paper(
                &scenario.problem,
                &HybridConfig::default(),
            ))
        })
    });
    group.bench_function("hybrid_small_exact_scan", |b| {
        let cfg = HybridConfig {
            exact_shrink_scan: true,
            ..Default::default()
        };
        b.iter(|| black_box(hybrid_greedy_paper(&scenario.problem, &cfg)))
    });
    let mut medium = ScenarioConfig::small();
    medium.hosts.n_servers = 12;
    medium.workload.m_sites = 40;
    medium.hosts.m_primaries = 40;
    let medium_scenario = Scenario::generate(&medium);
    group.bench_function("hybrid_medium_12x40", |b| {
        b.iter(|| {
            black_box(hybrid_greedy_paper(
                &medium_scenario.problem,
                &HybridConfig::default(),
            ))
        })
    });
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    let scenario = Scenario::generate(&ScenarioConfig::small());
    let plan = scenario.plan(Strategy::Hybrid);
    let total = scenario.problem.grand_total();
    group.throughput(Throughput::Elements(total));
    group.bench_function("simulate_small_scenario", |b| {
        b.iter_batched(
            || plan.clone(),
            |p| black_box(scenario.simulate(&p)),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("scenario_generate_small", |b| {
        b.iter(|| black_box(Scenario::generate(&ScenarioConfig::small())))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_workload,
    bench_topology,
    bench_model,
    bench_planners,
    bench_simulator,
    bench_end_to_end
);
criterion_main!(benches);
