pub mod harness;
