//! Shared experiment plumbing: scale selection, argument parsing, CSV
//! output, observability wiring, timing, and the standard per-figure
//! runner.

use cdn_core::{Scenario, ScenarioConfig, Strategy};
use cdn_sim::SimReport;
use cdn_telemetry as telemetry;
use cdn_workload::LambdaMode;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Experiment scale. `Paper` is the reconstructed evaluation setup
/// (N = 50, M = 200, 1560-node topology, ~12.5M requests); `Quick` is a
/// reduced instance for smoke-testing the harness (`--scale quick`, or the
/// `--quick` shorthand); `Large` is the internet-scale tier (N = 2000,
/// M = 400, 8256-node topology, ~10^8 requests) and `LargeCi` the same
/// fleet at ~10^7 requests, sized for a CI perf gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Paper,
    Quick,
    Large,
    LargeCi,
}

impl Scale {
    /// The scenario configuration for this scale at the given capacity/λ.
    pub fn config(self, capacity: f64, lambda: f64, mode: LambdaMode) -> ScenarioConfig {
        match self {
            Scale::Paper => ScenarioConfig::paper(capacity, lambda, mode),
            Scale::Quick => {
                let mut cfg = ScenarioConfig::small();
                cfg.capacity_fraction = capacity.max(0.10);
                cfg.lambda = lambda;
                cfg.lambda_mode = mode;
                cfg
            }
            Scale::Large => ScenarioConfig::large(capacity, lambda, mode),
            Scale::LargeCi => ScenarioConfig::large_ci(capacity, lambda, mode),
        }
    }

    /// The `--scale` spelling of this tier (also used in result files).
    pub fn label(self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Quick => "quick",
            Scale::Large => "large",
            Scale::LargeCi => "large-ci",
        }
    }

    /// Parse a `--scale` value.
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "paper" => Some(Scale::Paper),
            "quick" => Some(Scale::Quick),
            "large" => Some(Scale::Large),
            "large-ci" => Some(Scale::LargeCi),
            _ => None,
        }
    }
}

/// Parsed command line shared by every bench binary.
///
/// Every binary accepts the same flag set; anything else is rejected with
/// a usage message and exit code 2 (previously unknown flags were silently
/// ignored, so a typo like `--qiuck` ran the full paper scale).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchArgs {
    pub scale: Scale,
    /// Rayon pool size override (`--threads <n>`).
    pub threads: Option<usize>,
    /// Write the deterministic JSONL event trace here (`--trace-out`).
    pub trace_out: Option<PathBuf>,
    /// Write an extra metrics snapshot here (`--metrics-out`), in addition
    /// to the `results/<bin>_metrics.json` every binary emits.
    pub metrics_out: Option<PathBuf>,
    /// Write the wall-clock Chrome trace profile here (`--profile-out`).
    /// Timed data lives strictly in this file — enabling it never changes
    /// a byte of the deterministic outputs.
    pub profile_out: Option<PathBuf>,
    /// Sample every Nth simulated request into `results/<bin>_samples.jsonl`
    /// (`--sample-every <n>`). Deterministic: keyed on stream index.
    pub sample_every: Option<u64>,
    /// Virtual-time window width for the windowed timeline
    /// (`--window <n>`), written to `results/<bin>_timeline.json` and
    /// `.csv`. `--window 0` is the documented off switch, so unlike
    /// `--sample-every` a zero value parses cleanly.
    pub window: Option<u64>,
    /// Replay a binary `.events` trace file instead of the synthetic
    /// workload (`--trace-in <path>`). Only `bench_trace` consumes this;
    /// the figure binaries ignore it.
    pub trace_in: Option<PathBuf>,
    /// Suppress the stderr progress heartbeats (`--quiet`).
    pub quiet: bool,
}

/// Why [`BenchArgs::parse_from`] refused a command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// `--help` was passed: print usage, exit 0.
    Help,
    /// Bad flag or missing value: print message + usage, exit 2.
    Bad(String),
}

/// Usage text for the shared bench flag set.
pub fn usage(bin: &str) -> String {
    format!(
        "usage: {bin} [--scale <tier>] [--quick] [--threads <n>] [--trace-out <path>]\n\
         \x20          [--metrics-out <path>] [--profile-out <path>] [--sample-every <n>]\n\
         \x20          [--window <n>] [--trace-in <path>] [--quiet]\n\
         \n\
         \x20 --scale <tier>        quick | paper | large | large-ci (default: paper)\n\
         \x20 --quick               shorthand for --scale quick\n\
         \x20 --threads <n>         rayon thread-pool size (default: all cores)\n\
         \x20 --trace-out <path>    write the deterministic JSONL event trace to <path>\n\
         \x20 --metrics-out <path>  write the metrics snapshot JSON to <path>\n\
         \x20 --profile-out <path>  write a wall-clock Chrome trace profile to <path>\n\
         \x20                       (load in chrome://tracing or Perfetto)\n\
         \x20 --sample-every <n>    sample every Nth request into <bin>_samples.jsonl\n\
         \x20 --window <n>          bucket measured requests into n-tick virtual-time\n\
         \x20                       windows, written to <bin>_timeline.json/.csv (0 = off)\n\
         \x20 --trace-in <path>     replay a binary .events trace instead of the\n\
         \x20                       synthetic workload (bench_trace only)\n\
         \x20 --quiet               suppress stderr progress heartbeats\n\
         \x20 --help                print this message\n"
    )
}

impl BenchArgs {
    /// Parse an argument list (without the program name). Pure — no
    /// process exit, no global state — so tests can exercise every branch.
    pub fn parse_from<I>(args: I) -> Result<Self, ArgError>
    where
        I: IntoIterator<Item = String>,
    {
        let mut out = BenchArgs {
            scale: Scale::Paper,
            threads: None,
            trace_out: None,
            metrics_out: None,
            profile_out: None,
            sample_every: None,
            window: None,
            trace_in: None,
            quiet: false,
        };
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    let v = it
                        .next()
                        .ok_or_else(|| ArgError::Bad("--scale needs a value".into()))?;
                    out.scale = Scale::from_label(&v).ok_or_else(|| {
                        ArgError::Bad(format!(
                            "--scale: unknown tier `{v}` (quick | paper | large | large-ci)"
                        ))
                    })?;
                }
                "--quick" => out.scale = Scale::Quick,
                "--quiet" => out.quiet = true,
                "--sample-every" => {
                    let v = it
                        .next()
                        .ok_or_else(|| ArgError::Bad("--sample-every needs a value".into()))?;
                    let n: u64 = v
                        .parse()
                        .map_err(|_| ArgError::Bad(format!("--sample-every: bad value `{v}`")))?;
                    if n == 0 {
                        return Err(ArgError::Bad("--sample-every must be at least 1".into()));
                    }
                    out.sample_every = Some(n);
                }
                "--window" => {
                    let v = it
                        .next()
                        .ok_or_else(|| ArgError::Bad("--window needs a value".into()))?;
                    let n: u64 = v
                        .parse()
                        .map_err(|_| ArgError::Bad(format!("--window: bad value `{v}`")))?;
                    // 0 is valid: it is the documented timeline off switch.
                    out.window = Some(n);
                }
                "--profile-out" => {
                    let v = it
                        .next()
                        .ok_or_else(|| ArgError::Bad("--profile-out needs a path".into()))?;
                    out.profile_out = Some(PathBuf::from(v));
                }
                "--help" | "-h" => return Err(ArgError::Help),
                "--threads" => {
                    let v = it
                        .next()
                        .ok_or_else(|| ArgError::Bad("--threads needs a value".into()))?;
                    let n: usize = v
                        .parse()
                        .map_err(|_| ArgError::Bad(format!("--threads: bad value `{v}`")))?;
                    if n == 0 {
                        return Err(ArgError::Bad("--threads must be at least 1".into()));
                    }
                    out.threads = Some(n);
                }
                "--trace-in" => {
                    let v = it
                        .next()
                        .ok_or_else(|| ArgError::Bad("--trace-in needs a path".into()))?;
                    out.trace_in = Some(PathBuf::from(v));
                }
                "--trace-out" => {
                    let v = it
                        .next()
                        .ok_or_else(|| ArgError::Bad("--trace-out needs a path".into()))?;
                    out.trace_out = Some(PathBuf::from(v));
                }
                "--metrics-out" => {
                    let v = it
                        .next()
                        .ok_or_else(|| ArgError::Bad("--metrics-out needs a path".into()))?;
                    out.metrics_out = Some(PathBuf::from(v));
                }
                other => {
                    return Err(ArgError::Bad(format!("unrecognised argument `{other}`")));
                }
            }
        }
        Ok(out)
    }

    /// Parse the process command line, set up observability, and return.
    /// Unknown flags print the usage message and exit with status 2.
    pub fn parse(bin: &str) -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(args) => {
                args.apply(bin);
                args
            }
            Err(ArgError::Help) => {
                print!("{}", usage(bin));
                std::process::exit(0);
            }
            Err(ArgError::Bad(msg)) => {
                eprintln!("{bin}: {msg}\n\n{}", usage(bin));
                std::process::exit(2);
            }
        }
    }

    /// Configure the process for this run: size the global rayon pool,
    /// reset the metrics registry, enable telemetry counters (they are
    /// deterministic and cheap, so bench binaries always record them), and
    /// install a trace/profiler when requested.
    fn apply(&self, bin: &str) {
        start_instant(); // anchor the heartbeat clock at process setup
        QUIET.store(self.quiet, Ordering::Relaxed);
        if let Some(n) = self.threads {
            // Ignore "already built": tests and nested harnesses may have
            // initialised the global pool first.
            let _ = rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build_global();
        }
        telemetry::reset_metrics();
        telemetry::set_enabled(true);
        if self.trace_out.is_some() {
            telemetry::install_trace();
        }
        if self.profile_out.is_some() {
            telemetry::profile::install();
        }
        let _ = bin;
    }

    /// The scenario configuration for this run: [`Scale::config`] plus the
    /// per-request sampler wired through to the simulator.
    pub fn config(&self, capacity: f64, lambda: f64, mode: LambdaMode) -> ScenarioConfig {
        let mut cfg = self.scale.config(capacity, lambda, mode);
        cfg.sim.sample_every = self.sample_every;
        cfg.sim.window = self.window;
        cfg
    }

    /// Flush observability outputs. Every binary writes
    /// `results/<bin>_metrics.json`; `--metrics-out` / `--trace-out` get
    /// extra copies at the requested paths. Wall-clock never enters these
    /// files — the snapshot holds only deterministic counters, gauges, and
    /// histograms, so it is byte-comparable across machines and thread
    /// counts. Wall-clock timings go **only** to `--profile-out`, and
    /// sampled request paths to `results/<bin>_samples.jsonl` — separate
    /// files, so the byte-diffed artifacts never see either.
    pub fn finish(&self, bin: &str) {
        let snapshot = telemetry::registry().snapshot_json();
        write_json(&format!("{bin}_metrics.json"), &snapshot);
        if let Some(path) = &self.metrics_out {
            write_file_or_exit(path, &snapshot, "metrics snapshot");
            println!("  wrote {}", path.display());
        }
        if let Some(path) = &self.trace_out {
            let jsonl = telemetry::drain_trace().unwrap_or_default();
            write_file_or_exit(path, &jsonl, "event trace");
            println!("  wrote {}", path.display());
        }
        let samples = {
            let mut sink = lock_samples();
            std::mem::take(&mut *sink)
        };
        if !samples.is_empty() {
            write_json(&format!("{bin}_samples.jsonl"), &samples);
        }
        let timelines = {
            let mut sink = lock_timelines();
            std::mem::take(&mut *sink)
        };
        if !timelines.is_empty() {
            write_json(
                &format!("{bin}_timeline.json"),
                &cdn_sim::render_timeline_json(&timelines),
            );
            write_json(
                &format!("{bin}_timeline.csv"),
                &cdn_sim::render_timeline_csv(&timelines),
            );
        }
        if let Some(path) = &self.profile_out {
            let profile = telemetry::profile::drain_chrome_trace().unwrap_or_default();
            write_file_or_exit(path, &profile, "wall-clock profile");
            println!("  wrote {}", path.display());
        }
    }
}

static QUIET: AtomicBool = AtomicBool::new(false);

/// Wall-clock anchor for heartbeat lines, set once at argument parsing.
fn start_instant() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// Emit a progress heartbeat to stderr (stdout stays reserved for
/// results). Silenced by `--quiet`. Long paper-scale figures previously
/// ran for minutes with no output at all.
pub fn progress(msg: &str) {
    if !QUIET.load(Ordering::Relaxed) {
        eprintln!("[{:8.1}s] {msg}", start_instant().elapsed().as_secs_f64());
    }
}

fn samples_sink() -> &'static Mutex<String> {
    static SINK: OnceLock<Mutex<String>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(String::new()))
}

fn lock_samples() -> std::sync::MutexGuard<'static, String> {
    samples_sink()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Append `report`'s sampled request paths (if any) to the process-wide
/// sample sink, tagged with `run`; [`BenchArgs::finish`] writes the sink
/// to `results/<bin>_samples.jsonl`.
pub fn record_samples(run: &str, report: &SimReport) {
    if report.samples.is_empty() {
        return;
    }
    let mut sink = lock_samples();
    cdn_sim::render_samples_jsonl(run, report, &mut sink);
}

fn timelines_sink() -> &'static Mutex<Vec<(String, cdn_sim::Timeline)>> {
    static SINK: OnceLock<Mutex<Vec<(String, cdn_sim::Timeline)>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

fn lock_timelines() -> std::sync::MutexGuard<'static, Vec<(String, cdn_sim::Timeline)>> {
    timelines_sink()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Append `report`'s windowed timeline (if enabled) to the process-wide
/// timeline sink, tagged with `run`; [`BenchArgs::finish`] writes the sink
/// to `results/<bin>_timeline.json` and `.csv`.
pub fn record_timeline(run: &str, report: &SimReport) {
    let Some(tl) = &report.timeline else {
        return;
    };
    lock_timelines().push((run.to_string(), tl.clone()));
}

/// Write `body` to `path`, exiting with a contextful message on failure
/// (e.g. a bad `--metrics-out` directory) instead of a panic backtrace.
fn write_file_or_exit(path: &Path, body: &str, what: &str) {
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("error: writing {what} to {}: {e}", path.display());
        std::process::exit(1);
    }
}

/// Where result CSVs land.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("CDN_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    let path = PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&path) {
        eprintln!("error: creating results dir {}: {e}", path.display());
        std::process::exit(1);
    }
    path
}

/// Write a CSV file of `(header, rows)` under the results directory and
/// report the path on stdout.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = results_dir().join(name);
    let mut body = String::with_capacity(rows.len() * 32 + header.len() + 1);
    body.push_str(header);
    body.push('\n');
    for r in rows {
        body.push_str(r);
        body.push('\n');
    }
    write_file_or_exit(&path, &body, "result CSV");
    println!("  wrote {}", path.display());
    path
}

/// Write a pre-rendered JSON body under the results directory and report
/// the path on stdout — machine-readable sibling of [`write_csv`].
pub fn write_json(name: &str, body: &str) -> PathBuf {
    let path = results_dir().join(name);
    write_file_or_exit(&path, body, "result file");
    println!("  wrote {}", path.display());
    path
}

/// Wall-clock timings of named phases at one thread count, rendering to a
/// JSON object. Used by the `bench_parallel` binary; figure binaries keep
/// their inline `Instant` pairs.
#[derive(Debug, Clone)]
pub struct PhaseTimings {
    pub threads: usize,
    pub phases: Vec<(String, f64)>,
}

impl PhaseTimings {
    pub fn new(threads: usize) -> Self {
        Self {
            threads,
            phases: Vec::new(),
        }
    }

    /// Run `f`, recording its wall-clock under `name`.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let out = f();
        self.phases
            .push((name.to_string(), t0.elapsed().as_secs_f64()));
        out
    }

    /// Sum of all recorded phases.
    pub fn total_seconds(&self) -> f64 {
        self.phases.iter().map(|(_, s)| s).sum()
    }

    /// `{"threads": N, "phases": {"<name>_s": secs, ...}, "total_s": t}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"threads\": {}, \"phases\": {{", self.threads);
        for (idx, (name, secs)) in self.phases.iter().enumerate() {
            if idx > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{name}_s\": {secs:.6}");
        }
        let _ = write!(out, "}}, \"total_s\": {:.6}}}", self.total_seconds());
        out
    }
}

/// Format a CDF as CSV rows (`latency_ms,fraction`), downsampled to at most
/// `max_points` points to keep files plottable.
pub fn cdf_rows(report: &SimReport, max_points: usize) -> Vec<String> {
    let cdf = report.histogram.cdf();
    let stride = (cdf.len() / max_points.max(1)).max(1);
    let mut rows: Vec<String> = cdf
        .iter()
        .step_by(stride)
        .map(|(ms, frac)| format!("{ms:.1},{frac:.6}"))
        .collect();
    if let Some(last) = cdf.last() {
        let formatted = format!("{:.1},{:.6}", last.0, last.1);
        if rows.last() != Some(&formatted) {
            rows.push(formatted);
        }
    }
    rows
}

/// One strategy's results within a figure.
pub struct StrategyResult {
    pub strategy: Strategy,
    pub report: SimReport,
    pub predicted_mean_hops: f64,
    pub replicas: usize,
    pub plan_seconds: f64,
    pub sim_seconds: f64,
}

/// [`Scenario::generate`] with a heartbeat, so multi-scenario figures
/// show progress between panels as well as between strategies.
pub fn generate_scenario(config: &ScenarioConfig) -> Scenario {
    progress(&format!(
        "generating scenario (N={} M={} capacity {:.0}%)",
        config.hosts.n_servers,
        config.workload.m_sites,
        100.0 * config.capacity_fraction
    ));
    Scenario::generate(config)
}

/// Monotonic label for each [`run_strategies`] batch, so samples from
/// repeated batches (e.g. one per capacity point) stay distinguishable in
/// `results/<bin>_samples.jsonl`.
static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

/// Plan + simulate each strategy against a scenario, logging progress.
pub fn run_strategies(scenario: &Scenario, strategies: &[Strategy]) -> Vec<StrategyResult> {
    let run = RUN_SEQ.fetch_add(1, Ordering::Relaxed);
    strategies
        .iter()
        .map(|&strategy| {
            progress(&format!("planning {}", strategy.name()));
            let t0 = Instant::now();
            let plan = {
                let _prof = telemetry::profile::span(&format!("plan:{}", strategy.name()));
                scenario.plan(strategy)
            };
            let plan_seconds = t0.elapsed().as_secs_f64();
            progress(&format!("simulating {}", strategy.name()));
            let t1 = Instant::now();
            let report = {
                let _prof = telemetry::profile::span(&format!("sim:{}", strategy.name()));
                scenario.simulate(&plan)
            };
            let sim_seconds = t1.elapsed().as_secs_f64();
            record_samples(&format!("r{run}:{}", strategy.name()), &report);
            record_timeline(&format!("r{run}:{}", strategy.name()), &report);
            println!(
                "  {:<16} plan {:>6.1}s  sim {:>6.1}s  mean {:>8.2} ms  local {:>5.1}%  replicas {}",
                strategy.name(),
                plan_seconds,
                sim_seconds,
                report.mean_latency_ms,
                100.0 * report.local_ratio(),
                plan.placement.replica_count(),
            );
            StrategyResult {
                strategy,
                predicted_mean_hops: plan.predicted_mean_hops(&scenario.problem),
                replicas: plan.placement.replica_count(),
                report,
                plan_seconds,
                sim_seconds,
            }
        })
        .collect()
}

/// Render the standard per-figure summary block.
pub fn summary_block(results: &[StrategyResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  {:<16} {:>9} {:>9} {:>9} {:>8} {:>9} {:>9}",
        "strategy", "mean_ms", "p50_ms", "p95_ms", "local%", "hops/req", "replicas"
    );
    for r in results {
        let _ = writeln!(
            out,
            "  {:<16} {:>9.2} {:>9.1} {:>9.1} {:>8.1} {:>9.3} {:>9}",
            r.strategy.name(),
            r.report.mean_latency_ms,
            r.report.histogram.percentile(0.5),
            r.report.histogram.percentile(0.95),
            100.0 * r.report.local_ratio(),
            r.report.mean_cost_hops,
            r.replicas,
        );
    }
    out
}

/// Mean-latency improvement of `a` over `b`, in percent.
pub fn improvement_pct(results: &[StrategyResult], a: Strategy, b: Strategy) -> Option<f64> {
    let la = results
        .iter()
        .find(|r| r.strategy == a)?
        .report
        .mean_latency_ms;
    let lb = results
        .iter()
        .find(|r| r.strategy == b)?
        .report
        .mean_latency_ms;
    (lb > 0.0).then(|| 100.0 * (lb - la) / lb)
}

/// Stamp a figure banner.
pub fn banner(title: &str, scale: Scale) {
    println!("==== {title} [{:?} scale] ====", scale);
}

/// Helper to append a labelled CSV for every strategy's CDF.
pub fn write_cdf_csvs(prefix: &str, results: &[StrategyResult]) {
    for r in results {
        let name = format!("{prefix}_{}.csv", r.strategy.name().replace('%', "pc"));
        write_csv(&name, "latency_ms,cdf", &cdf_rows(&r.report, 400));
    }
}

/// Sanity guard used by every figure binary: results must be non-trivial.
pub fn assert_sane(results: &[StrategyResult]) {
    for r in results {
        assert!(r.report.measured_requests > 0, "{}", r.strategy.name());
        assert!(r.report.mean_latency_ms > 0.0, "{}", r.strategy.name());
    }
}

/// Check whether `path`'s parent exists (used in tests).
pub fn parent_exists(path: &Path) -> bool {
    path.parent().map(|p| p.exists()).unwrap_or(false)
}

/// Build a placement problem + catalog + trace on an **arbitrary graph**
/// (rather than the transit-stub scenario pipeline): servers and primaries
/// are placed on randomly chosen distinct nodes. Used by the topology
/// ablation to re-run the headline comparison on non-hierarchical graphs.
pub fn scenario_on_graph(
    graph: &cdn_topology::Graph,
    cfg: &ScenarioConfig,
) -> (
    cdn_placement::PlacementProblem,
    cdn_workload::SiteCatalog,
    cdn_workload::TraceSpec,
) {
    use cdn_topology::DistanceMatrix;
    use cdn_workload::{DemandMatrix, SiteCatalog, TraceSpec};
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    let n = cfg.hosts.n_servers;
    let m = cfg.workload.m_sites;
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ 0xABCD_EF01);
    let mut nodes: Vec<u32> = (0..graph.n_nodes() as u32).collect();
    nodes.shuffle(&mut rng);
    assert!(nodes.len() >= n + m, "graph too small for hosts");
    let hosts: Vec<u32> = nodes[..n + m].to_vec();
    let distances = DistanceMatrix::compute(graph, &hosts);

    let catalog = SiteCatalog::generate(&cfg.workload, cfg.seed ^ 0x2545_F491);
    let demand = DemandMatrix::generate(&catalog, n, cfg.seed ^ 0x9E37_79B9);

    let mut dist_ss = vec![0u32; n * n];
    for i in 0..n {
        for k in 0..n {
            dist_ss[i * n + k] = distances.host_dist(i, k);
        }
    }
    let mut dist_sp = vec![0u32; n * m];
    for i in 0..n {
        for j in 0..m {
            dist_sp[i * m + j] = distances.host_dist(i, n + j);
        }
    }
    let site_bytes: Vec<u64> = catalog.sites.iter().map(|s| s.total_bytes).collect();
    let capacity = (catalog.total_bytes() as f64 * cfg.capacity_fraction) as u64;
    let raw: Vec<u64> = (0..n)
        .flat_map(|i| (0..m).map(move |j| (i, j)))
        .map(|(i, j)| demand.requests(i, j))
        .collect();
    let problem = cdn_placement::PlacementProblem::new(
        n,
        m,
        dist_ss,
        dist_sp,
        site_bytes,
        vec![capacity; n],
        raw,
        vec![cfg.lambda; m],
        catalog.mean_request_bytes(),
        cfg.workload.objects_per_site,
        cfg.workload.theta,
    );
    let trace = TraceSpec::new(
        &demand,
        catalog.object_zipf.clone(),
        cfg.lambda,
        cfg.lambda_mode,
        cfg.seed ^ 0xBF58_476D,
    );
    (problem, catalog, trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_config_is_small() {
        let cfg = Scale::Quick.config(0.05, 0.1, LambdaMode::Expired);
        assert!(cfg.hosts.n_servers < 10);
        assert!((cfg.lambda - 0.1).abs() < 1e-12);
    }

    #[test]
    fn paper_scale_config_matches_paper() {
        let cfg = Scale::Paper.config(0.05, 0.0, LambdaMode::Uncacheable);
        assert_eq!(cfg.hosts.n_servers, 50);
        assert_eq!(cfg.workload.m_sites, 200);
        assert!((cfg.capacity_fraction - 0.05).abs() < 1e-12);
    }

    #[test]
    fn scenario_on_graph_builds_consistent_problem() {
        use cdn_topology::{barabasi_albert, BarabasiAlbertConfig};
        let g = barabasi_albert(
            &BarabasiAlbertConfig {
                n_nodes: 120,
                edges_per_node: 2,
            },
            3,
        );
        let cfg = Scale::Quick.config(0.15, 0.0, LambdaMode::Uncacheable);
        let (problem, catalog, trace) = scenario_on_graph(&g, &cfg);
        assert_eq!(problem.n_servers(), cfg.hosts.n_servers);
        assert_eq!(problem.m_sites(), cfg.workload.m_sites);
        assert_eq!(catalog.m(), problem.m_sites());
        assert_eq!(trace.n_servers(), problem.n_servers());
        // Distances embedded symmetrically with zero self-distance.
        for i in 0..problem.n_servers() {
            assert_eq!(problem.dist_servers(i, i), 0);
            for k in 0..problem.n_servers() {
                assert_eq!(problem.dist_servers(i, k), problem.dist_servers(k, i));
            }
        }
        assert_eq!(problem.grand_total(), catalog.total_requests());
    }

    fn parse(args: &[&str]) -> Result<BenchArgs, ArgError> {
        BenchArgs::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn empty_args_select_paper_scale() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.scale, Scale::Paper);
        assert_eq!(a.threads, None);
        assert_eq!(a.trace_out, None);
        assert_eq!(a.metrics_out, None);
        assert_eq!(a.profile_out, None);
        assert_eq!(a.sample_every, None);
        assert_eq!(a.window, None);
        assert_eq!(a.trace_in, None);
        assert!(!a.quiet);
    }

    #[test]
    fn all_flags_parse() {
        let a = parse(&[
            "--quick",
            "--threads",
            "4",
            "--trace-out",
            "/tmp/t.jsonl",
            "--metrics-out",
            "/tmp/m.json",
            "--profile-out",
            "/tmp/p.json",
            "--sample-every",
            "1000",
            "--window",
            "256",
            "--trace-in",
            "/tmp/t.events",
            "--quiet",
        ])
        .unwrap();
        assert_eq!(a.scale, Scale::Quick);
        assert_eq!(a.threads, Some(4));
        assert_eq!(a.trace_out.as_deref(), Some(Path::new("/tmp/t.jsonl")));
        assert_eq!(a.metrics_out.as_deref(), Some(Path::new("/tmp/m.json")));
        assert_eq!(a.profile_out.as_deref(), Some(Path::new("/tmp/p.json")));
        assert_eq!(a.sample_every, Some(1000));
        assert_eq!(a.window, Some(256));
        assert_eq!(a.trace_in.as_deref(), Some(Path::new("/tmp/t.events")));
        assert!(a.quiet);
    }

    #[test]
    fn window_zero_is_accepted_as_off_switch() {
        // Unlike --sample-every, --window 0 is a documented no-op.
        assert_eq!(parse(&["--window", "0"]).unwrap().window, Some(0));
        assert!(matches!(parse(&["--window"]), Err(ArgError::Bad(_))));
        assert!(matches!(
            parse(&["--window", "wide"]),
            Err(ArgError::Bad(_))
        ));
        assert!(usage("fig3").contains("--window"));
    }

    #[test]
    fn config_injects_sampler() {
        let mut a = parse(&["--quick"]).unwrap();
        assert_eq!(
            a.config(0.1, 0.0, LambdaMode::Uncacheable).sim.sample_every,
            None
        );
        a.sample_every = Some(64);
        a.window = Some(128);
        let cfg = a.config(0.1, 0.0, LambdaMode::Uncacheable);
        assert_eq!(cfg.sim.sample_every, Some(64));
        assert_eq!(cfg.sim.window, Some(128));
        // The sampler rides along without touching the scale parameters.
        assert_eq!(
            cfg.hosts.n_servers,
            Scale::Quick
                .config(0.1, 0.0, LambdaMode::Uncacheable)
                .hosts
                .n_servers
        );
    }

    #[test]
    fn scale_flag_selects_every_tier() {
        assert_eq!(parse(&["--scale", "quick"]).unwrap().scale, Scale::Quick);
        assert_eq!(parse(&["--scale", "paper"]).unwrap().scale, Scale::Paper);
        assert_eq!(parse(&["--scale", "large"]).unwrap().scale, Scale::Large);
        assert_eq!(
            parse(&["--scale", "large-ci"]).unwrap().scale,
            Scale::LargeCi
        );
        assert!(matches!(parse(&["--scale"]), Err(ArgError::Bad(_))));
        assert!(matches!(parse(&["--scale", "huge"]), Err(ArgError::Bad(_))));
        // Round-trip: every label parses back to its tier.
        for s in [Scale::Paper, Scale::Quick, Scale::Large, Scale::LargeCi] {
            assert_eq!(Scale::from_label(s.label()), Some(s));
        }
    }

    #[test]
    fn large_scale_config_is_internet_sized() {
        let cfg = Scale::Large.config(0.05, 0.0, LambdaMode::Uncacheable);
        assert_eq!(cfg.hosts.n_servers, 2000);
        assert_eq!(cfg.workload.m_sites, 400);
        // The CI tier keeps the fleet but shrinks the request volume.
        let ci = Scale::LargeCi.config(0.05, 0.0, LambdaMode::Uncacheable);
        assert_eq!(ci.hosts.n_servers, cfg.hosts.n_servers);
        assert_eq!(ci.workload.m_sites, cfg.workload.m_sites);
        assert!(ci.workload.base_requests * 5 < cfg.workload.base_requests);
    }

    #[test]
    fn unknown_flags_are_rejected_not_ignored() {
        // The old `Scale::from_args` scanned only for `--quick`, so a typo
        // silently ran the full paper scale. Now it is a hard error.
        match parse(&["--qiuck"]) {
            Err(ArgError::Bad(msg)) => assert!(msg.contains("--qiuck"), "{msg}"),
            other => panic!("expected Bad, got {other:?}"),
        }
        assert!(matches!(parse(&["extra"]), Err(ArgError::Bad(_))));
    }

    #[test]
    fn missing_or_bad_values_are_rejected() {
        assert!(matches!(parse(&["--threads"]), Err(ArgError::Bad(_))));
        assert!(matches!(
            parse(&["--threads", "zero"]),
            Err(ArgError::Bad(_))
        ));
        assert!(matches!(parse(&["--threads", "0"]), Err(ArgError::Bad(_))));
        assert!(matches!(parse(&["--trace-out"]), Err(ArgError::Bad(_))));
        assert!(matches!(parse(&["--trace-in"]), Err(ArgError::Bad(_))));
        assert!(matches!(parse(&["--metrics-out"]), Err(ArgError::Bad(_))));
        assert!(matches!(parse(&["--profile-out"]), Err(ArgError::Bad(_))));
        assert!(matches!(parse(&["--sample-every"]), Err(ArgError::Bad(_))));
        assert!(matches!(
            parse(&["--sample-every", "many"]),
            Err(ArgError::Bad(_))
        ));
        assert!(matches!(
            parse(&["--sample-every", "0"]),
            Err(ArgError::Bad(_))
        ));
    }

    #[test]
    fn help_is_distinguished_from_errors() {
        assert_eq!(parse(&["--help"]), Err(ArgError::Help));
        assert_eq!(parse(&["-h"]), Err(ArgError::Help));
        assert!(usage("fig3").contains("--trace-out"));
    }

    #[test]
    fn csv_written_and_readable() {
        std::env::set_var(
            "CDN_RESULTS_DIR",
            std::env::temp_dir().join("cdn-test-results"),
        );
        let path = write_csv("unit_test.csv", "a,b", &["1,2".into(), "3,4".into()]);
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "a,b\n1,2\n3,4\n");
        assert!(parent_exists(&path));
        std::env::remove_var("CDN_RESULTS_DIR");
    }
}
