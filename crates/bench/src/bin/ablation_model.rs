//! Ablation C: the paper's LRU model vs Che's approximation vs Monte-Carlo
//! ground truth, per buffer size, plus the paper's own fixed-p_B
//! simplification versus exact recomputation.
//!
//! Two questions:
//! 1. How accurate is the paper's Equation (1)/(2) model compared to a real
//!    LRU and to the modern standard (Che)?
//! 2. Does the paper's "compute K once at initialisation" shortcut cost
//!    anything? (The paper claims it "produced the same result".)
//!
//! ```text
//! cargo run -p cdn-bench --release --bin ablation_model -- \
//!     [--quick] [--threads <n>] [--trace-out <path>] [--metrics-out <path>]
//! ```

use cdn_bench::harness::{banner, write_csv, BenchArgs, Scale};
use cdn_core::lru_model::validation::monte_carlo_hit_ratio;
use cdn_core::lru_model::{CheModel, ClosedFormLru, LruModel};
use cdn_core::workload::ZipfLike;

fn main() {
    let args = BenchArgs::parse("ablation_model");
    let scale = args.scale;
    banner("Ablation C: hit-ratio model accuracy", scale);

    let (l, requests) = match scale {
        Scale::Paper => (1000usize, 3_000_000u64),
        Scale::Quick => (200, 300_000),
        // The model is per-server, so the internet-scale tiers only change
        // the per-site object count (the large workload's L = 5000).
        Scale::Large | Scale::LargeCi => (5000, 3_000_000),
    };
    let theta = 1.0;
    let zipf = ZipfLike::new(l, theta);
    let model = LruModel::from_zipf(zipf.clone());
    let che = CheModel::from_zipf(zipf.clone());
    let closed = ClosedFormLru::from_zipf(zipf.clone());
    // A representative server: 12 sites, popularity decaying geometrically.
    let mut pops: Vec<f64> = (0..12).map(|i| 0.75f64.powi(i)).collect();
    let norm: f64 = pops.iter().sum();
    pops.iter_mut().for_each(|p| *p /= norm);

    println!(
        "\n  {:>7} {:>9} {:>9} {:>8} {:>9} {:>8} {:>9} {:>8}",
        "buffer", "mc_hit", "paper", "err", "che", "err", "closed", "err"
    );
    let mut rows = Vec::new();
    let mut worst_paper: f64 = 0.0;
    let mut worst_closed: f64 = 0.0;
    for exp in 0..8 {
        let buffer = 25usize << exp; // 25 .. 3200
        let mc = monte_carlo_hit_ratio(&pops, &zipf, buffer, requests, requests / 4, 99);
        let p_b = model.top_b_mass(&pops, buffer);
        let k = model.eviction_horizon(buffer, p_b);
        let paper: f64 = pops.iter().map(|&p| p * model.site_hit_ratio(p, k)).sum();
        let che_h = che.aggregate_hit_ratio(&pops, buffer);
        let closed_h = closed.aggregate_hit_ratio(&pops, buffer);
        let perr = paper - mc.aggregate;
        let cerr = che_h - mc.aggregate;
        let ferr = closed_h - mc.aggregate;
        worst_paper = worst_paper.max(perr.abs());
        worst_closed = worst_closed.max(ferr.abs());
        println!(
            "  {buffer:>7} {:>9.4} {paper:>9.4} {perr:>+8.4} {che_h:>9.4} {cerr:>+8.4} {closed_h:>9.4} {ferr:>+8.4}",
            mc.aggregate
        );
        rows.push(format!(
            "{buffer},{:.5},{paper:.5},{che_h:.5},{closed_h:.5}",
            mc.aggregate
        ));
    }
    println!(
        "\n  worst |error| vs Monte-Carlo: paper {worst_paper:.4}, closed-form {worst_closed:.4} absolute hit ratio"
    );

    // Part 2: fixed-at-init p_B vs exact per-buffer p_B, as the buffer
    // shrinks (the hybrid run's situation). Fixed p_B uses the initial
    // (largest) buffer's mass throughout.
    println!("\n  fixed-p_B shortcut vs exact recomputation (paper's simplification):");
    println!(
        "  {:>7} {:>12} {:>12} {:>8}",
        "buffer", "h(fixed)", "h(exact)", "diff"
    );
    let initial_buffer = 3200usize;
    let p_b_fixed = model.top_b_mass(&pops, initial_buffer);
    let mut rows2 = Vec::new();
    for exp in 0..8 {
        let buffer = 25usize << exp;
        let k_fixed = model.eviction_horizon(buffer, p_b_fixed);
        let k_exact = model.eviction_horizon(buffer, model.top_b_mass(&pops, buffer));
        let h_fixed: f64 = pops
            .iter()
            .map(|&p| p * model.site_hit_ratio(p, k_fixed))
            .sum();
        let h_exact: f64 = pops
            .iter()
            .map(|&p| p * model.site_hit_ratio(p, k_exact))
            .sum();
        println!(
            "  {buffer:>7} {h_fixed:>12.4} {h_exact:>12.4} {:>+8.4}",
            h_fixed - h_exact
        );
        rows2.push(format!("{buffer},{h_fixed:.5},{h_exact:.5}"));
    }
    println!(
        "\n  the shortcut's bias is small but visible at small buffers — the\n\
         \x20 paper's claim that the two agree holds in the regime it operates in."
    );

    write_csv(
        "ablation_model_accuracy.csv",
        "buffer,mc,paper,che,closed_form",
        &rows,
    );
    write_csv(
        "ablation_model_fixed_pb.csv",
        "buffer,h_fixed,h_exact",
        &rows2,
    );
    args.finish("ablation_model");
}
