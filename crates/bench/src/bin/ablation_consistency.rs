//! Ablation H: strong vs weak cache consistency.
//!
//! The paper's §3.3 distinguishes strong consistency (accessed copies are
//! always fresh — its Figure 4 setting, where cached copies pay a refresh
//! round) from weak consistency (copies may be stale — typical proxy
//! behaviour). This ablation re-runs the λ = 10% experiment under both
//! regimes: weak consistency hands the caching mechanisms back most of what
//! staleness took away, while replication — consistent by push — is
//! unaffected. It quantifies what the CDN "pays" for its freshness
//! guarantee.
//!
//! ```text
//! cargo run -p cdn-bench --release --bin ablation_consistency -- \
//!     [--quick] [--threads <n>] [--trace-out <path>] [--metrics-out <path>]
//! ```

use cdn_bench::harness::{banner, generate_scenario, write_csv, BenchArgs};
use cdn_core::Strategy;
use cdn_sim::ConsistencyMode;
use cdn_workload::LambdaMode;

fn main() {
    let args = BenchArgs::parse("ablation_consistency");
    let scale = args.scale;
    banner(
        "Ablation H: strong vs weak consistency (lambda = 10%)",
        scale,
    );
    let config = args.config(0.05, 0.10, LambdaMode::Expired);
    let scenario = generate_scenario(&config);

    let plans: Vec<_> = [Strategy::Replication, Strategy::Caching, Strategy::Hybrid]
        .iter()
        .map(|&s| (s, scenario.plan(s)))
        .collect();

    println!(
        "\n  {:<12} {:>14} {:>14} {:>14}",
        "consistency", "replication", "caching", "hybrid"
    );
    let mut rows = Vec::new();
    for (mode, label) in [
        (ConsistencyMode::Strong, "strong"),
        (ConsistencyMode::Weak, "weak"),
    ] {
        let mut cells = Vec::new();
        for (strategy, plan) in &plans {
            // Re-simulate under the given consistency regime.
            let mut scenario_cfg = scenario.config.clone();
            scenario_cfg.sim.consistency = mode;
            let report = {
                let zero: &(dyn Fn(u64) -> Box<dyn cdn_core::cache::Cache> + Sync) =
                    &|_| Box::new(cdn_core::cache::LruCache::new(0));
                let factory = if *strategy == Strategy::Replication {
                    Some(zero)
                } else {
                    None
                };
                cdn_sim::simulate_system(
                    &scenario.problem,
                    &plan.placement,
                    &scenario.catalog,
                    &scenario.trace,
                    &scenario_cfg.sim,
                    factory,
                )
            };
            cells.push(report.mean_latency_ms);
        }
        println!(
            "  {:<12} {:>14.2} {:>14.2} {:>14.2}",
            label, cells[0], cells[1], cells[2]
        );
        rows.push(format!(
            "{label},{:.3},{:.3},{:.3}",
            cells[0], cells[1], cells[2]
        ));
    }
    println!(
        "\n  replication is identical in both rows (replicas are always fresh);\n\
         \x20 the gap between the caching rows is the price of the freshness\n\
         \x20 guarantee — what a CDN pays to never serve a stale page."
    );
    write_csv(
        "ablation_consistency.csv",
        "consistency,replication_ms,caching_ms,hybrid_ms",
        &rows,
    );
    args.finish("ablation_consistency");
}
