//! Ablation D: cache replacement policy inside the hybrid system.
//!
//! The paper uses plain LRU and cites Karlsson & Mahalingam's delayed-LRU
//! as the strongest pure-caching contender. This ablation keeps the hybrid
//! replica placement fixed and swaps the replacement policy of the leftover
//! cache space: LRU, delayed-LRU, LFU, FIFO, CLOCK.
//!
//! ```text
//! cargo run -p cdn-bench --release --bin ablation_policy -- \
//!     [--quick] [--threads <n>] [--trace-out <path>] [--metrics-out <path>]
//! ```

use cdn_bench::harness::{banner, generate_scenario, write_csv, BenchArgs};
use cdn_core::cache;
use cdn_core::Strategy;
use cdn_workload::LambdaMode;

fn main() {
    let args = BenchArgs::parse("ablation_policy");
    let scale = args.scale;
    banner(
        "Ablation D: replacement policy inside the hybrid scheme",
        scale,
    );
    let config = args.config(0.05, 0.0, LambdaMode::Uncacheable);
    let scenario = generate_scenario(&config);
    let plan = scenario.plan(Strategy::Hybrid);
    println!(
        "  hybrid placement fixed: {} replicas\n",
        plan.placement.replica_count()
    );

    println!(
        "  {:<12} {:>9} {:>9} {:>8} {:>11}",
        "policy", "mean_ms", "p95_ms", "local%", "cache-hit%"
    );
    let mut rows = Vec::new();
    for policy in ["lru", "delayed-lru", "lfu", "gdsf", "fifo", "clock"] {
        let factory = move |bytes: u64| {
            cache::by_name(policy, bytes).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            })
        };
        let report = scenario.simulate_with_cache(&plan.placement, &factory);
        println!(
            "  {:<12} {:>9.2} {:>9.1} {:>8.1} {:>11.1}",
            policy,
            report.mean_latency_ms,
            report.histogram.percentile(0.95),
            100.0 * report.local_ratio(),
            100.0 * report.cache_hit_ratio(),
        );
        rows.push(format!(
            "{policy},{:.3},{:.1},{:.4},{:.4}",
            report.mean_latency_ms,
            report.histogram.percentile(0.95),
            report.local_ratio(),
            report.cache_hit_ratio()
        ));
    }
    println!(
        "\n  LRU and CLOCK should sit within noise of each other; FIFO gives up\n\
         \x20 a little; delayed-LRU trades first-touch misses for admission\n\
         \x20 filtering (it shines when one-hit wonders dominate); LFU can win\n\
         \x20 on static popularity but adapts worst to drift; GDSF exploits the\n\
         \x20 heavy-tailed size distribution that LRU ignores."
    );
    write_csv(
        "ablation_policy.csv",
        "policy,mean_latency_ms,p95_ms,local_ratio,cache_hit_ratio",
        &rows,
    );
    args.finish("ablation_policy");
}
