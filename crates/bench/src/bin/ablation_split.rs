//! Ablation B: the full cache-fraction sweep the paper mentions but does
//! not plot ("further experiments with 40% and 60% cache sizes ... confirm
//! this"). Sweeps the ad-hoc split from pure replication (0% cache) to
//! pure caching (100%) and overlays the hybrid algorithm's operating
//! point.
//!
//! ```text
//! cargo run -p cdn-bench --release --bin ablation_split -- \
//!     [--quick] [--threads <n>] [--trace-out <path>] [--metrics-out <path>]
//! ```

use cdn_bench::harness::{banner, generate_scenario, run_strategies, write_csv, BenchArgs};
use cdn_core::Strategy;
use cdn_workload::LambdaMode;

fn main() {
    let args = BenchArgs::parse("ablation_split");
    let scale = args.scale;
    banner(
        "Ablation B: cache-fraction sweep vs the hybrid optimum",
        scale,
    );
    let config = args.config(0.05, 0.0, LambdaMode::Uncacheable);
    let scenario = generate_scenario(&config);

    let mut strategies = vec![Strategy::Replication];
    for fraction in [0.2, 0.4, 0.6, 0.8] {
        strategies.push(Strategy::AdHoc {
            cache_fraction: fraction,
        });
    }
    strategies.push(Strategy::Caching);
    strategies.push(Strategy::Hybrid);

    let results = run_strategies(&scenario, &strategies);

    let mut rows = Vec::new();
    println!(
        "\n  {:<18} {:>9} {:>9} {:>9}",
        "strategy", "mean_ms", "hops/req", "replicas"
    );
    let mut best_fixed = f64::INFINITY;
    let mut hybrid_ms = f64::INFINITY;
    for r in &results {
        println!(
            "  {:<18} {:>9.2} {:>9.3} {:>9}",
            r.strategy.name(),
            r.report.mean_latency_ms,
            r.report.mean_cost_hops,
            r.replicas
        );
        rows.push(format!(
            "{},{:.3},{:.4},{}",
            r.strategy.name(),
            r.report.mean_latency_ms,
            r.report.mean_cost_hops,
            r.replicas
        ));
        match r.strategy {
            Strategy::Hybrid => hybrid_ms = r.report.mean_latency_ms,
            _ => best_fixed = best_fixed.min(r.report.mean_latency_ms),
        }
    }
    println!(
        "\n  hybrid {hybrid_ms:.2} ms vs best fixed split {best_fixed:.2} ms \
         ({:+.1}%) — the hybrid needs no hand-tuned fraction",
        100.0 * (hybrid_ms - best_fixed) / best_fixed
    );
    write_csv(
        "ablation_split.csv",
        "strategy,mean_latency_ms,mean_cost_hops,replicas",
        &rows,
    );
    args.finish("ablation_split");
}
