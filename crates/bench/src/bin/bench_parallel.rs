//! Machine-readable parallel-timing benchmark: `BENCH_parallel.json`.
//!
//! Runs the standard hybrid scenario once on 1 thread and once on N
//! threads (default: all available; override with `--threads <n>`),
//! recording per-phase wall-clock — topology build, placement,
//! simulation — and asserting the two runs produce bit-identical
//! results. Emits `BENCH_parallel.json` under the results directory.
//!
//! Usage: `bench_parallel [--quick] [--threads <n>]`

use cdn_bench::harness::{banner, write_json, PhaseTimings, Scale};
use cdn_core::{PlanResult, Scenario, Strategy};
use cdn_sim::SimReport;
use cdn_workload::LambdaMode;
use std::fmt::Write as _;

/// Parse `--threads <n>` from process args.
fn arg_threads() -> Option<usize> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--threads" {
            return args.next().and_then(|v| v.parse().ok()).filter(|&n| n > 0);
        }
    }
    None
}

/// One full scenario pass on a pool of `threads` threads, timing each phase.
fn run_at(threads: usize, scale: Scale) -> (PhaseTimings, PlanResult, SimReport) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("build thread pool");
    pool.install(|| {
        let mut timings = PhaseTimings::new(threads);
        let config = scale.config(0.05, 0.0, LambdaMode::Uncacheable);
        let scenario = timings.time("topology", || Scenario::generate(&config));
        let plan = timings.time("placement", || scenario.plan(Strategy::Hybrid));
        let report = timings.time("simulation", || scenario.simulate(&plan));
        (timings, plan, report)
    })
}

/// Bitwise equality of the fields that summarise a run; any scheduling
/// nondeterminism would show up here first.
fn reports_identical(
    a: &(PhaseTimings, PlanResult, SimReport),
    b: &(PhaseTimings, PlanResult, SimReport),
) -> bool {
    let (pa, ra) = (&a.1, &a.2);
    let (pb, rb) = (&b.1, &b.2);
    pa.placement.replica_count() == pb.placement.replica_count()
        && pa.predicted_cost.to_bits() == pb.predicted_cost.to_bits()
        && ra.mean_latency_ms.to_bits() == rb.mean_latency_ms.to_bits()
        && ra.mean_cost_hops.to_bits() == rb.mean_cost_hops.to_bits()
        && ra.total_requests == rb.total_requests
        && ra.cache_hits == rb.cache_hits
        && ra.replica_hits == rb.replica_hits
        && ra.origin_fetches == rb.origin_fetches
        && ra.peer_fetches == rb.peer_fetches
        && ra.histogram.cdf() == rb.histogram.cdf()
}

fn main() {
    let scale = Scale::from_args();
    banner("bench_parallel: per-phase wall-clock, 1 thread vs N", scale);

    let n_threads = arg_threads()
        .unwrap_or_else(rayon::current_num_threads)
        .max(1);

    println!("  run 1/2: 1 thread");
    let base = run_at(1, scale);
    println!("  run 2/2: {n_threads} thread(s)");
    let multi = run_at(n_threads, scale);

    let identical = reports_identical(&base, &multi);
    let speedup = base.0.total_seconds() / multi.0.total_seconds().max(1e-12);

    for (t, lbl) in [(&base.0, "1 thread"), (&multi.0, "N threads")] {
        println!("  [{lbl}] total {:.3}s", t.total_seconds());
        for (name, secs) in &t.phases {
            println!("      {name:<12} {secs:.3}s");
        }
    }
    println!("  speedup (total): {speedup:.2}x at {n_threads} thread(s)");
    println!("  bit-identical reports: {identical}");

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"scale\": \"{}\",",
        if scale == Scale::Quick {
            "quick"
        } else {
            "paper"
        }
    );
    let _ = writeln!(json, "  \"baseline_threads\": 1,");
    let _ = writeln!(json, "  \"parallel_threads\": {n_threads},");
    let _ = writeln!(
        json,
        "  \"runs\": [{}, {}],",
        base.0.to_json(),
        multi.0.to_json()
    );
    let _ = writeln!(json, "  \"speedup_total\": {speedup:.4},");
    let _ = writeln!(json, "  \"bit_identical\": {identical}");
    json.push_str("}\n");
    write_json("BENCH_parallel.json", &json);

    assert!(
        identical,
        "multi-threaded run diverged from single-threaded run"
    );
}
