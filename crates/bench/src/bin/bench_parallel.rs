//! Machine-readable parallel-timing benchmark: `BENCH_parallel.json`.
//!
//! Runs the standard hybrid scenario once on 1 thread and once on N
//! threads (default: all available; override with `--threads <n>`),
//! recording per-phase wall-clock — topology build, placement,
//! simulation — and asserting the two runs produce bit-identical
//! results *and* bit-identical deterministic work counters (series terms
//! evaluated, placement candidates scanned, cache events, ...). Emits
//! `BENCH_parallel.json` under the results directory with the
//! deterministic counters in a `"work"` section and everything
//! machine-dependent quarantined under `"wall_clock"` — the perf gate
//! (`perf_gate`) compares the two sections with different strictness.
//!
//! Usage: `bench_parallel [--scale <tier>] [--quick] [--threads <n>]
//!                        [--trace-out <path>] [--metrics-out <path>]
//!                        [--profile-out <path>] [--sample-every <n>] [--quiet]`

use cdn_bench::harness::{banner, progress, write_json, BenchArgs, PhaseTimings, Scale};
use cdn_core::{PlanResult, Scenario, ScenarioConfig, Strategy};
use cdn_sim::SimReport;
use cdn_telemetry as telemetry;
use cdn_workload::LambdaMode;
use std::fmt::Write as _;

/// The strategy each tier benchmarks: the paper's hybrid everywhere. The
/// internet-scale tiers used to fall back to the per-server greedy
/// knapsack because a dense hybrid rescan was intractable at N = 2000;
/// the lazy-greedy planner (stale-set invalidation + incremental memo
/// maintenance, see DESIGN.md §9.2) made the hybrid strategy fit the CI
/// budget, so every tier now plans what the paper proposes.
fn strategy_for(scale: Scale) -> Strategy {
    match scale {
        Scale::Paper | Scale::Quick | Scale::Large | Scale::LargeCi => Strategy::Hybrid,
    }
}

/// One full scenario pass on a pool of `threads` threads, timing each
/// phase and capturing the deterministic work counters it accumulated.
fn run_at(
    threads: usize,
    config: &ScenarioConfig,
    strategy: Strategy,
) -> (PhaseTimings, PlanResult, SimReport, Vec<(String, u64)>) {
    // Fresh counters per run so the 1-thread and N-thread tallies are
    // directly comparable (handles cached elsewhere stay valid — values
    // are zeroed in place).
    telemetry::reset_metrics();
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("build thread pool");
    let (timings, plan, report) = pool.install(|| {
        let mut timings = PhaseTimings::new(threads);
        let scenario = timings.time("topology", || Scenario::generate(config));
        let plan = timings.time("placement", || scenario.plan(strategy));
        let report = timings.time("simulation", || scenario.simulate(&plan));
        (timings, plan, report)
    });
    let work = telemetry::registry().counter_values();
    (timings, plan, report, work)
}

/// Bitwise equality of the fields that summarise a run; any scheduling
/// nondeterminism would show up here first.
fn reports_identical(
    a: &(PhaseTimings, PlanResult, SimReport, Vec<(String, u64)>),
    b: &(PhaseTimings, PlanResult, SimReport, Vec<(String, u64)>),
) -> bool {
    let (pa, ra) = (&a.1, &a.2);
    let (pb, rb) = (&b.1, &b.2);
    pa.placement.replica_count() == pb.placement.replica_count()
        && pa.predicted_cost.to_bits() == pb.predicted_cost.to_bits()
        && ra.mean_latency_ms.to_bits() == rb.mean_latency_ms.to_bits()
        && ra.mean_cost_hops.to_bits() == rb.mean_cost_hops.to_bits()
        && ra.total_requests == rb.total_requests
        && ra.cache_hits == rb.cache_hits
        && ra.replica_hits == rb.replica_hits
        && ra.origin_fetches == rb.origin_fetches
        && ra.peer_fetches == rb.peer_fetches
        && ra.histogram.cdf() == rb.histogram.cdf()
}

fn main() {
    let args = BenchArgs::parse("bench_parallel");
    let scale = args.scale;
    banner("bench_parallel: per-phase wall-clock, 1 thread vs N", scale);

    let n_threads = args
        .threads
        .unwrap_or_else(rayon::current_num_threads)
        .max(1);

    let config = args.config(0.05, 0.0, LambdaMode::Uncacheable);
    let strategy = strategy_for(scale);
    println!("  strategy: {}", strategy.name());

    // Untimed warm-up pass: the first run through a fresh address space
    // pays first-touch page faults and allocator growth that the later
    // runs do not, which skewed the 1-thread arm (always run first) by
    // double-digit percentages at quick scale. One full pass on the wide
    // pool touches everything before either timed arm starts. Only worth
    // its cost where runs are short enough for those one-off effects to
    // matter — at the large tiers (minutes per run, dominated by the
    // hybrid planner) the warm-up would add a third full pass for a
    // sub-percent correction.
    if matches!(scale, Scale::Quick | Scale::Paper) {
        println!("  warm-up: untimed pass on {n_threads} thread(s)");
        progress("warm-up pass (untimed)");
        let _ = run_at(n_threads, &config, strategy);
    }

    println!("  run 1/2: 1 thread");
    progress("run 1/2: 1 thread");
    let base = run_at(1, &config, strategy);
    println!("  run 2/2: {n_threads} thread(s)");
    progress(&format!("run 2/2: {n_threads} thread(s)"));
    let multi = run_at(n_threads, &config, strategy);

    let identical = reports_identical(&base, &multi);
    let work_identical = base.3 == multi.3;
    let speedup = base.0.total_seconds() / multi.0.total_seconds().max(1e-12);

    for (t, lbl) in [(&base.0, "1 thread"), (&multi.0, "N threads")] {
        println!("  [{lbl}] total {:.3}s", t.total_seconds());
        for (name, secs) in &t.phases {
            println!("      {name:<12} {secs:.3}s");
        }
    }
    println!("  speedup (total): {speedup:.2}x at {n_threads} thread(s)");
    println!("  bit-identical reports:       {identical}");
    println!("  bit-identical work counters: {work_identical}");
    if !work_identical {
        // Show exactly which counter drifted — that is the debugging lead.
        let names: std::collections::BTreeSet<&str> = base
            .3
            .iter()
            .chain(multi.3.iter())
            .map(|(n, _)| n.as_str())
            .collect();
        for name in names {
            let get = |w: &[(String, u64)]| w.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
            let (a, b) = (get(&base.3), get(&multi.3));
            if a != b {
                println!("      {name}: 1-thread {a:?} vs N-thread {b:?}");
            }
        }
    }

    // `"work"` holds only deterministic counters — pure functions of the
    // scenario parameters, identical across machines and thread counts.
    // Everything timing-related lives under `"wall_clock"`, which the perf
    // gate treats with a wide tolerance band instead of exact equality.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": \"{}\",", scale.label());
    let _ = writeln!(json, "  \"strategy\": \"{}\",", strategy.name());
    let _ = writeln!(
        json,
        "  \"shards\": {},",
        config
            .sim
            .shards
            .unwrap_or_else(|| config.hosts.n_servers.min(cdn_sim::MAX_DEFAULT_SHARDS))
    );
    let _ = writeln!(json, "  \"work\": {{");
    for (idx, (name, value)) in base.3.iter().enumerate() {
        let comma = if idx + 1 < base.3.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{name}\": {value}{comma}");
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"work_identical\": {work_identical},");
    let _ = writeln!(json, "  \"bit_identical\": {identical},");
    let _ = writeln!(json, "  \"wall_clock\": {{");
    let _ = writeln!(json, "    \"baseline_threads\": 1,");
    let _ = writeln!(json, "    \"parallel_threads\": {n_threads},");
    let _ = writeln!(
        json,
        "    \"runs\": [{}, {}],",
        base.0.to_json(),
        multi.0.to_json()
    );
    let _ = writeln!(json, "    \"speedup_total\": {speedup:.4}");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    write_json("BENCH_parallel.json", &json);
    args.finish("bench_parallel");

    assert!(
        identical,
        "multi-threaded run diverged from single-threaded run"
    );
    assert!(
        work_identical,
        "deterministic work counters diverged between thread counts"
    );
}
