//! Figure 4: the same three-way CDF comparison as Figure 3, but with 10%
//! of requests hitting *expired* objects under strong consistency
//! (λ = 0.1): replicas stay consistent for free, cached copies must be
//! refreshed from the nearest replica.
//!
//! Paper-reported shape: hybrid still wins; its edge over replication drops
//! to ~30% while its edge over caching grows to ~20%.
//!
//! ```text
//! cargo run -p cdn-bench --release --bin fig4 -- \
//!     [--quick] [--threads <n>] [--trace-out <path>] [--metrics-out <path>]
//! ```

use cdn_bench::harness::{
    assert_sane, banner, generate_scenario, improvement_pct, run_strategies, summary_block,
    write_cdf_csvs, BenchArgs,
};
use cdn_core::Strategy;
use cdn_workload::LambdaMode;

fn main() {
    let args = BenchArgs::parse("fig4");
    let scale = args.scale;
    banner(
        "Figure 4: CDFs with 10% expired requests, strong consistency",
        scale,
    );
    let strategies = [Strategy::Replication, Strategy::Caching, Strategy::Hybrid];

    for (panel, capacity) in [("a", 0.05), ("b", 0.10)] {
        println!(
            "\n-- Figure 4({panel}): capacity {:.0}%, lambda = 0.10 --",
            capacity * 100.0
        );
        let config = args.config(capacity, 0.10, LambdaMode::Expired);
        let scenario = generate_scenario(&config);
        let results = run_strategies(&scenario, &strategies);
        assert_sane(&results);
        println!("\n{}", summary_block(&results));
        if let Some(gain) = improvement_pct(&results, Strategy::Hybrid, Strategy::Replication) {
            println!("  hybrid vs replication: {gain:+.1}% mean latency (paper: ~30%)");
        }
        if let Some(gain) = improvement_pct(&results, Strategy::Hybrid, Strategy::Caching) {
            println!("  hybrid vs caching:     {gain:+.1}% mean latency (paper: ~20%)");
        }
        write_cdf_csvs(&format!("fig4{panel}"), &results);
    }
    args.finish("fig4");
}
