//! Figure 6: accuracy of the analytical LRU model — the average cost per
//! request (in hops) the greedy hybrid algorithm *predicts* versus what
//! trace-driven simulation *measures*, across six parameter settings:
//! (capacity%, uncacheable%) ∈ {5, 10, 20} × {0, 10}.
//!
//! Paper-reported result: the model "tends to slightly overestimate the
//! total cost, especially for large buffer sizes, but the overall error is
//! less than 7%."
//!
//! ```text
//! cargo run -p cdn-bench --release --bin fig6 -- \
//!     [--quick] [--threads <n>] [--trace-out <path>] [--metrics-out <path>]
//! ```

use cdn_bench::harness::{banner, generate_scenario, write_csv, BenchArgs};
use cdn_core::Strategy;
use cdn_workload::LambdaMode;

fn main() {
    let args = BenchArgs::parse("fig6");
    let scale = args.scale;
    banner("Figure 6: predicted vs actual cost per request", scale);

    println!(
        "\n  {:<22} {:>10} {:>10} {:>8}",
        "setting (cap%, unc%)", "actual", "predicted", "error%"
    );
    let mut rows = Vec::new();
    let mut worst_err: f64 = 0.0;
    for (capacity, lambda) in [
        (0.05, 0.0),
        (0.10, 0.0),
        (0.20, 0.0),
        (0.05, 0.10),
        (0.10, 0.10),
        (0.20, 0.10),
    ] {
        let config = args.config(capacity, lambda, LambdaMode::Uncacheable);
        let scenario = generate_scenario(&config);
        let plan = scenario.plan(Strategy::Hybrid);
        let predicted = plan.predicted_mean_hops(&scenario.problem);
        let report = scenario.simulate(&plan);
        let actual = report.mean_cost_hops;
        let err = if actual > 0.0 {
            100.0 * (predicted - actual) / actual
        } else {
            0.0
        };
        worst_err = worst_err.max(err.abs());
        let label = format!("({:.0},{:.0})", capacity * 100.0, lambda * 100.0);
        println!("  {label:<22} {actual:>10.3} {predicted:>10.3} {err:>+8.2}");
        rows.push(format!(
            "{:.0},{:.0},{actual:.4},{predicted:.4},{err:.3}",
            capacity * 100.0,
            lambda * 100.0
        ));
    }
    println!("\n  worst |error|: {worst_err:.2}% (paper reports < 7%)");
    write_csv(
        "fig6_model_accuracy.csv",
        "capacity_pc,uncacheable_pc,actual_hops,predicted_hops,error_pc",
        &rows,
    );
    args.finish("fig6");
}
