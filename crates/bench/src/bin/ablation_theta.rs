//! Ablation A: sensitivity to the Zipf exponent θ.
//!
//! The paper claims (§5.2) that "ad-hoc approaches are sensitive to changes
//! in the Zipf parameter θ ... The hybrid algorithm, however, takes the
//! Zipf parameter as input and defines a cache size that leads to higher
//! performance." This sweep quantifies that: for each θ we compare the
//! hybrid against the two fixed splits and report who wins.
//!
//! ```text
//! cargo run -p cdn-bench --release --bin ablation_theta -- \
//!     [--quick] [--threads <n>] [--trace-out <path>] [--metrics-out <path>]
//! ```

use cdn_bench::harness::{banner, generate_scenario, run_strategies, write_csv, BenchArgs};
use cdn_core::Strategy;
use cdn_workload::LambdaMode;

fn main() {
    let args = BenchArgs::parse("ablation_theta");
    let scale = args.scale;
    banner("Ablation A: Zipf-theta sensitivity", scale);
    let strategies = [
        Strategy::Hybrid,
        Strategy::AdHoc {
            cache_fraction: 0.2,
        },
        Strategy::AdHoc {
            cache_fraction: 0.8,
        },
    ];

    let mut rows = Vec::new();
    println!(
        "\n  {:>5} {:>12} {:>12} {:>12} {:>16}",
        "theta", "hybrid_ms", "adhoc20_ms", "adhoc80_ms", "hybrid replicas"
    );
    for theta in [0.6, 0.8, 1.0, 1.2] {
        let mut config = args.config(0.05, 0.0, LambdaMode::Uncacheable);
        config.workload.theta = theta;
        let scenario = generate_scenario(&config);
        let results = run_strategies(&scenario, &strategies);
        let ms = |s: Strategy| {
            results
                .iter()
                .find(|r| r.strategy == s)
                .map(|r| r.report.mean_latency_ms)
                .unwrap_or(f64::NAN)
        };
        let hybrid = ms(Strategy::Hybrid);
        let a20 = ms(Strategy::AdHoc {
            cache_fraction: 0.2,
        });
        let a80 = ms(Strategy::AdHoc {
            cache_fraction: 0.8,
        });
        let replicas = results
            .iter()
            .find(|r| r.strategy == Strategy::Hybrid)
            .map(|r| r.replicas)
            .unwrap_or(0);
        println!("  {theta:>5.1} {hybrid:>12.2} {a20:>12.2} {a80:>12.2} {replicas:>16}");
        rows.push(format!("{theta},{hybrid:.3},{a20:.3},{a80:.3},{replicas}"));
    }
    println!(
        "\n  as theta falls (flatter popularity) caching loses power and the\n\
         \x20 80%-cache split suffers; as theta rises the 20%-cache split wastes\n\
         \x20 space on replicas the cache would cover. The hybrid re-balances\n\
         \x20 its replica count with theta and should track the winner at both ends."
    );
    write_csv(
        "ablation_theta.csv",
        "theta,hybrid_ms,adhoc20_ms,adhoc80_ms,hybrid_replicas",
        &rows,
    );
    args.finish("ablation_theta");
}
